#include "src/common/failpoint.h"

#include <cstdlib>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace edna {

namespace {

constexpr char kCrashPrefix[] = "simulated crash at ";

}  // namespace

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

FailPoints::FailPoints() {
  const char* env = std::getenv("EDNA_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status parsed = EnableFromSpec(env);
    if (!parsed.ok()) {
      EDNA_LOG(kError) << "ignoring malformed EDNA_FAILPOINTS: " << parsed;
    }
  }
}

void FailPoints::Enable(const std::string& site, FailPointConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.armed = true;
  s.config = config;
  s.hits_since_armed = 0;
}

void FailPoints::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) {
    it->second.armed = false;
  }
}

void FailPoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : sites_) {
    s.armed = false;
  }
}

Status FailPoints::EnableFromSpec(const std::string& spec) {
  for (const std::string& clause : StrSplitTrimmed(spec, ';')) {
    if (clause.empty()) {
      continue;
    }
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return InvalidArgument("fail-point clause \"" + clause + "\" is not SITE=ACTION");
    }
    std::string site = clause.substr(0, eq);
    std::vector<std::string> parts = StrSplit(clause.substr(eq + 1), ':');
    FailPointConfig config;
    if (parts.empty()) {
      return InvalidArgument("fail-point clause \"" + clause + "\" has no action");
    }
    if (parts[0] == "error") {
      config.action = FailPointAction::kReturnError;
    } else if (parts[0] == "crash") {
      config.action = FailPointAction::kCrash;
    } else {
      return InvalidArgument("unknown fail-point action \"" + parts[0] + "\"");
    }
    if (parts.size() >= 2) {
      if (parts[1] == "always") {
        config.trigger = FailPointTrigger::kAlways;
      } else if (parts[1] == "oneshot") {
        config.trigger = FailPointTrigger::kOneShot;
      } else if (parts[1] == "everynth") {
        config.trigger = FailPointTrigger::kEveryNth;
      } else {
        return InvalidArgument("unknown fail-point trigger \"" + parts[1] + "\"");
      }
    }
    if (parts.size() >= 3) {
      config.n = std::strtoull(parts[2].c_str(), nullptr, 10);
      if (config.n == 0) {
        return InvalidArgument("fail-point count must be >= 1 in \"" + clause + "\"");
      }
    }
    if (parts.size() > 3) {
      return InvalidArgument("trailing fields in fail-point clause \"" + clause + "\"");
    }
    Enable(site, config);
  }
  return OkStatus();
}

Status FailPoints::Check(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  ++s.hits;
  if (!s.armed) {
    return OkStatus();
  }
  ++s.hits_since_armed;
  bool fire = false;
  switch (s.config.trigger) {
    case FailPointTrigger::kAlways:
      fire = true;
      break;
    case FailPointTrigger::kOneShot:
      if (s.hits_since_armed == s.config.n) {
        fire = true;
        s.armed = false;
      }
      break;
    case FailPointTrigger::kEveryNth:
      fire = s.hits_since_armed % s.config.n == 0;
      break;
  }
  if (!fire) {
    return OkStatus();
  }
  ++s.fires;
  if (s.config.action == FailPointAction::kCrash) {
    return Internal(std::string(kCrashPrefix) + site);
  }
  return Internal("injected failure at " + site);
}

std::vector<std::string> FailPoints::RegisteredSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, s] : sites_) {
    out.push_back(name);
  }
  return out;
}

uint64_t FailPoints::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

void FailPoints::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : sites_) {
    s.hits = 0;
    s.fires = 0;
    s.hits_since_armed = 0;
  }
}

bool FailPoints::IsSimulatedCrash(const Status& s) {
  return !s.ok() && StartsWith(s.message(), kCrashPrefix);
}

}  // namespace edna
