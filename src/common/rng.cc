#include "src/common/rng.h"

#include <cassert>

namespace edna {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : s_) {
    s = SplitMix64(&sm);
  }
  // xoshiro's all-zero state is absorbing; splitmix cannot produce four zeros
  // from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return NextDouble() < p;
}

std::string Rng::NextAlphaString(size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + NextBounded(26)));
  }
  return out;
}

std::string Rng::NextAlnumString(size_t len) {
  static const char kAlnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlnum[NextBounded(sizeof(kAlnum) - 1)]);
  }
  return out;
}

std::vector<uint8_t> Rng::NextBytes(size_t len) {
  std::vector<uint8_t> out(len);
  size_t i = 0;
  while (i + 8 <= len) {
    uint64_t r = NextU64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(r >> (8 * b));
    }
  }
  if (i < len) {
    uint64_t r = NextU64();
    while (i < len) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
  return out;
}

std::string Rng::NextPseudoword(size_t min_len, size_t max_len) {
  static const char kConsonants[] = "bcdfghjklmnprstvwxz";
  static const char kVowels[] = "aeiou";
  assert(min_len >= 1 && min_len <= max_len);
  size_t len = min_len + NextBounded(max_len - min_len + 1);
  std::string out;
  out.reserve(len);
  bool consonant = NextBool();
  for (size_t i = 0; i < len; ++i) {
    if (consonant) {
      out.push_back(kConsonants[NextBounded(sizeof(kConsonants) - 1)]);
    } else {
      out.push_back(kVowels[NextBounded(sizeof(kVowels) - 1)]);
    }
    consonant = !consonant;
  }
  out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Derive a child seed from the parent stream plus the id; draws once from
  // the parent so successive forks differ even with equal ids.
  uint64_t mix = NextU64() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

}  // namespace edna
