// Small string utilities shared across modules. Kept minimal and allocation-
// conscious; nothing here depends on other edna modules.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edna {

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Splits and drops empty fields after trimming each piece.
std::vector<std::string> StrSplitTrimmed(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

// ASCII case conversion.
std::string AsciiLower(std::string_view s);
std::string AsciiUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string StrReplaceAll(std::string_view s, std::string_view from, std::string_view to);

// Lowercase hex of a byte buffer.
std::string BytesToHex(const uint8_t* data, size_t len);
std::string BytesToHex(const std::vector<uint8_t>& data);

// Inverse of BytesToHex; returns false on odd length or non-hex characters.
bool HexToBytes(std::string_view hex, std::vector<uint8_t>* out);

// SQL-style LIKE matching: '%' matches any run, '_' matches one char.
// Matching is case-sensitive, as in binary-collation SQL.
bool LikeMatch(std::string_view text, std::string_view pattern);

// Quotes a string as a SQL literal: it's -> 'it''s'.
std::string SqlQuote(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Strict numeric parsing for flags and environment values: the whole string
// (after trimming ASCII whitespace) must be one number — "12abc", "", "-",
// "0x10", and out-of-range values all return false and leave *out untouched.
// The strtoll-style "parse a prefix, silently ignore the rest" behavior is
// exactly what these exist to replace (a mistyped --threads must be an
// error, not thread count 4 from "4x").
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseInt64(std::string_view s, int64_t* out);
// Decimal or scientific notation; rejects nan/inf and trailing garbage.
bool ParseDouble(std::string_view s, double* out);

// Counts the non-empty, non-comment ("#" or "--" prefixed) lines in `text`.
// Used by the Figure-4 spec-complexity experiment.
size_t CountEffectiveLines(std::string_view text);

}  // namespace edna

#endif  // SRC_COMMON_STRINGS_H_
