// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320): the checksum used to
// frame every durable artifact — WAL records and database image bodies —
// so a torn write or a flipped bit is detected at load time instead of
// surfacing later as a referential-integrity mystery.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edna {

// One-shot checksum of `len` bytes.
uint32_t Crc32(const uint8_t* data, size_t len);

inline uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

// Incremental form: feed `crc` from a previous call to extend the checksum
// over discontiguous buffers. Start from Crc32Init(), finish with
// Crc32Finish().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, const uint8_t* data, size_t len);
uint32_t Crc32Finish(uint32_t crc);

}  // namespace edna

#endif  // SRC_COMMON_CRC32_H_
