// Deterministic fail-point injection for crash-consistency testing.
//
// A fail point is a named site compiled into a fallible code path:
//
//   Status Database::Commit() {
//     EDNA_FAIL_POINT(failpoints::kDbCommit);
//     ...
//   }
//
// Sites are inert by default (one registry lookup per evaluation; nothing is
// enabled in production builds). Tests — or an operator via the
// EDNA_FAILPOINTS environment variable — arm individual sites with a trigger
// mode and an action:
//
//   triggers:  kAlways        fire on every hit
//              kOneShot       fire on the n-th hit, then disarm
//              kEveryNth      fire on every n-th hit
//   actions:   kReturnError   the site returns an injected error Status
//              kCrash         the site returns a *simulated-crash* Status;
//                             cooperating callers (the disguise engine)
//                             propagate it without running any compensation,
//                             freezing state exactly as a process death would
//
// Crash statuses are recognized with FailPoints::IsSimulatedCrash(); after a
// simulated crash, DisguiseEngine::Recover() repairs the frozen state from
// the commit journal (see src/core/recovery.h).
//
// Environment grammar (';'-separated): SITE=ACTION[:TRIGGER[:N]]
//   EDNA_FAILPOINTS="db.commit=crash;vault.store=error:everynth:2"
#ifndef SRC_COMMON_FAILPOINT_H_
#define SRC_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace edna {

// Canonical site names, one per cross-store step of the apply/reveal
// protocol. Keeping them in one place lets the fault-injection sweep
// enumerate every site without scraping source.
namespace failpoints {
inline constexpr char kDbBegin[] = "db.begin";
inline constexpr char kDbCommit[] = "db.commit";
inline constexpr char kDbRollback[] = "db.rollback";
inline constexpr char kVaultStore[] = "vault.store";
inline constexpr char kVaultRemove[] = "vault.remove";
inline constexpr char kLogAppend[] = "log.append";
inline constexpr char kLogUnappend[] = "log.unappend";
inline constexpr char kLogMarkRevealed[] = "log.mark_revealed";
inline constexpr char kStorageSave[] = "storage.save";
inline constexpr char kStorageLoad[] = "storage.load";
inline constexpr char kApplyBeforeCommit[] = "apply.before_commit";
inline constexpr char kApplyAfterCommit[] = "apply.after_commit";
inline constexpr char kRevealBeforeCommit[] = "reveal.before_commit";
inline constexpr char kRevealAfterCommit[] = "reveal.after_commit";
// Durability layer (src/db/wal.h, src/db/durable.h): one site per step of
// the append / fsync / checkpoint / replay pipeline.
inline constexpr char kWalAppend[] = "wal.append";
inline constexpr char kWalSync[] = "wal.sync";
inline constexpr char kWalTruncate[] = "wal.truncate";
inline constexpr char kWalReplay[] = "wal.replay";
inline constexpr char kSnapshotWrite[] = "snapshot.write";
inline constexpr char kSnapshotRename[] = "snapshot.rename";
inline constexpr char kJournalPersist[] = "journal.persist";
// Page cache (src/db/pagecache.h): eviction writeback of dirty pages into
// an extent frame, and the fault-path extent read.
inline constexpr char kPagecacheWriteback[] = "pagecache.writeback";
inline constexpr char kExtentRead[] = "extent.read";
// Disguise-as-a-service daemon (src/server/shard.h): the per-request
// dispatch step, and the two-phase barrier that coordinates global
// disguises across shards (checked once per phase, so a one-shot schedule
// can crash between prepare and commit).
inline constexpr char kServerDispatch[] = "server.dispatch";
inline constexpr char kServerBarrier[] = "server.barrier";
}  // namespace failpoints

enum class FailPointAction : uint8_t { kReturnError, kCrash };
enum class FailPointTrigger : uint8_t { kAlways, kOneShot, kEveryNth };

struct FailPointConfig {
  FailPointAction action = FailPointAction::kReturnError;
  FailPointTrigger trigger = FailPointTrigger::kAlways;
  // kOneShot: fire on the n-th hit after arming; kEveryNth: every n-th hit.
  uint64_t n = 1;
};

class FailPoints {
 public:
  // Process-wide registry. Reads EDNA_FAILPOINTS once on first use.
  static FailPoints& Instance();

  void Enable(const std::string& site, FailPointConfig config);
  void Disable(const std::string& site);
  void DisableAll();

  // Parses the environment grammar above and arms the named sites.
  Status EnableFromSpec(const std::string& spec);

  // Site evaluation: counts the hit and, if the site is armed and its
  // trigger matches, returns the injected error / simulated-crash status.
  Status Check(const std::string& site);

  // Every site evaluated at least once this process, sorted.
  std::vector<std::string> RegisteredSites() const;

  uint64_t Hits(const std::string& site) const;   // evaluations
  uint64_t Fires(const std::string& site) const;  // injected failures
  void ResetCounters();

  // True iff `s` was produced by a kCrash action (and must be propagated
  // without compensation).
  static bool IsSimulatedCrash(const Status& s);

 private:
  struct SiteState {
    uint64_t hits = 0;
    uint64_t fires = 0;
    bool armed = false;
    FailPointConfig config;
    uint64_t hits_since_armed = 0;
  };

  FailPoints();

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
};

// Evaluates a fail point; on a triggered site, returns the injected status
// from the enclosing function.
#define EDNA_FAIL_POINT(site) RETURN_IF_ERROR(::edna::FailPoints::Instance().Check(site))

}  // namespace edna

#endif  // SRC_COMMON_FAILPOINT_H_
