// Minimal leveled logging. Disabled below the global threshold at runtime;
// the default threshold is kWarning so library internals stay quiet in
// benches unless explicitly enabled.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace edna {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

// Sets/gets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr if `level` >= threshold.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define EDNA_LOG(level)                                                           \
  ::edna::log_internal::LogLine(::edna::LogLevel::level, __FILE__, __LINE__)

#define EDNA_DLOG EDNA_LOG(kDebug)

}  // namespace edna

#endif  // SRC_COMMON_LOGGING_H_
