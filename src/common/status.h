// Status and StatusOr: lightweight error-handling vocabulary used across the
// library instead of exceptions. Every fallible public API returns a Status or
// a StatusOr<T>; callers branch on ok() and propagate with RETURN_IF_ERROR.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace edna {

// Error taxonomy. Codes are stable and coarse; detail lives in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad spec text, bad predicate, type error)
  kNotFound,          // missing table / column / row / vault entry / disguise id
  kAlreadyExists,     // duplicate table, duplicate primary key, duplicate disguise
  kFailedPrecondition,// operation illegal in current state (e.g. reveal of expired vault)
  kIntegrityViolation,// referential-integrity or constraint violation
  kPermissionDenied,  // vault access without the required key/approval
  kInternal,          // invariant broken inside the library (bug)
  kUnimplemented,
  kAborted,           // write-write conflict under concurrency; safe to retry
};

// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A success-or-error result with an optional message. Cheap to copy on the
// success path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status FailedPrecondition(std::string msg);
Status IntegrityViolation(std::string msg);
Status PermissionDenied(std::string msg);
Status Internal(std::string msg);
Status Unimplemented(std::string msg);
Status Aborted(std::string msg);

std::ostream& operator<<(std::ostream& os, const Status& s);

// Value-or-error. Accessing value() on an error status is a programming error
// (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "StatusOr from OK status must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate an error Status from the current function.
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::edna::Status _st = (expr);                \
    if (!_st.ok()) {                            \
      return _st;                               \
    }                                           \
  } while (0)

// Evaluate a StatusOr expression, propagating errors, else bind the value.
#define ASSIGN_OR_RETURN(lhs, expr)             \
  ASSIGN_OR_RETURN_IMPL(                        \
      EDNA_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto tmp = (expr);                            \
  if (!tmp.ok()) {                              \
    return tmp.status();                        \
  }                                             \
  lhs = std::move(tmp).value()

#define EDNA_STATUS_CONCAT_INNER(a, b) a##b
#define EDNA_STATUS_CONCAT(a, b) EDNA_STATUS_CONCAT_INNER(a, b)

}  // namespace edna

#endif  // SRC_COMMON_STATUS_H_
