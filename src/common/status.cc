#include "src/common/status.h"

namespace edna {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIntegrityViolation:
      return "INTEGRITY_VIOLATION";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status IntegrityViolation(std::string msg) {
  return Status(StatusCode::kIntegrityViolation, std::move(msg));
}
Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Aborted(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

}  // namespace edna
