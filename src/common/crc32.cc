#include "src/common/crc32.h"

#include <array>

namespace edna {

namespace {

// Table generated once at first use from the reflected IEEE polynomial.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t crc, const uint8_t* data, size_t len) {
  const std::array<uint32_t, 256>& table = CrcTable();
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t Crc32(const uint8_t* data, size_t len) {
  return Crc32Finish(Crc32Update(Crc32Init(), data, len));
}

}  // namespace edna
