#include "src/common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace edna {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> StrSplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : StrSplit(s, sep)) {
    std::string_view trimmed = StrTrim(piece);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string StrReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(s);
  }
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out += s.substr(start);
      return out;
    }
    out += s.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

std::string BytesToHex(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

std::string BytesToHex(const std::vector<uint8_t>& data) {
  return BytesToHex(data.data(), data.size());
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

bool HexToBytes(std::string_view hex, std::vector<uint8_t>* out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') {
    ++p;
  }
  return p == pattern.size();
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') {
      out.push_back('\'');
    }
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

namespace {

// Shared tail of the strict parsers: trims, rejects empty input, runs the
// strto* conversion on a NUL-terminated copy, and demands full consumption.
template <typename T, typename Fn>
bool ParseStrict(std::string_view s, T* out, Fn convert) {
  std::string_view trimmed = StrTrim(s);
  if (trimmed.empty()) {
    return false;
  }
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  T value = convert(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

bool ParseUint64(std::string_view s, uint64_t* out) {
  // strtoull accepts "-1" (wraps) and "0x" prefixes; forbid both explicitly.
  std::string_view trimmed = StrTrim(s);
  for (char c : trimmed) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return ParseStrict<uint64_t>(trimmed, out, [](const char* p, char** end) {
    return std::strtoull(p, end, 10);
  });
}

bool ParseInt64(std::string_view s, int64_t* out) {
  std::string_view trimmed = StrTrim(s);
  for (size_t i = 0; i < trimmed.size(); ++i) {
    char c = trimmed[i];
    if (i == 0 && (c == '-' || c == '+')) {
      continue;
    }
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return ParseStrict<int64_t>(trimmed, out, [](const char* p, char** end) {
    return std::strtoll(p, end, 10);
  });
}

bool ParseDouble(std::string_view s, double* out) {
  double value = 0;
  if (!ParseStrict<double>(s, &value,
                           [](const char* p, char** end) { return std::strtod(p, end); })) {
    return false;
  }
  if (std::isnan(value) || std::isinf(value)) {
    return false;
  }
  *out = value;
  return true;
}

size_t CountEffectiveLines(std::string_view text) {
  size_t count = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    std::string_view line = StrTrim(raw);
    if (line.empty() || StartsWith(line, "#") || StartsWith(line, "--")) {
      continue;
    }
    ++count;
  }
  return count;
}

}  // namespace edna
