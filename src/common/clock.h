// Virtual time. The disguise log, vault-entry expiry, and the expiration /
// data-decay policy scheduler all consume time through a Clock interface so
// tests and benches can advance time synthetically.
#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace edna {

// Seconds since an arbitrary epoch. The library never interprets absolute
// values, only orderings and differences.
using TimePoint = int64_t;
using Duration = int64_t;

constexpr Duration kSecond = 1;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;
constexpr Duration kYear = 365 * kDay;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

// Wall-clock time (unix seconds).
class SystemClock : public Clock {
 public:
  TimePoint Now() const override {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

// Manually-advanced clock for tests and policy simulations. Reads and
// advances are atomic so worker threads may consult the clock while a test
// driver moves time forward.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimePoint start = 0) : now_(start) {}

  TimePoint Now() const override { return now_.load(std::memory_order_relaxed); }
  void Advance(Duration d) { now_.fetch_add(d, std::memory_order_relaxed); }
  void Set(TimePoint t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<TimePoint> now_;
};

}  // namespace edna

#endif  // SRC_COMMON_CLOCK_H_
