// Deterministic pseudo-random number generation. All randomness in the
// library (data generators, placeholder identities, crypto nonces in tests)
// flows through Rng so that experiments are reproducible from a seed.
//
// The core generator is xoshiro256**, a small, fast, high-quality PRNG.
// It is NOT cryptographically secure; the crypto module keeps its own notion
// of randomness (callers supply keys/nonces explicitly).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace edna {

class Rng {
 public:
  // Seeds the state from `seed` via splitmix64 so that nearby seeds produce
  // unrelated streams.
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, bound) for bound > 0 (debiased via rejection sampling).
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  // Random lowercase alphabetic string of length `len`.
  std::string NextAlphaString(size_t len);

  // Random alphanumeric string of length `len`.
  std::string NextAlnumString(size_t len);

  // `len` random bytes.
  std::vector<uint8_t> NextBytes(size_t len);

  // A pronounceable pseudoword (alternating consonant/vowel), for
  // human-looking placeholder names such as "Axolotl"-style handles.
  std::string NextPseudoword(size_t min_len, size_t max_len);

  // Picks a uniform element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextBounded(v.size())];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Forks an independent deterministic stream (e.g. per table or per user) so
  // that adding draws in one consumer does not perturb another.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

}  // namespace edna

#endif  // SRC_COMMON_RNG_H_
