// Static analyzer entry point: runs every pass (validation, lint, PII taint
// flow, composition conflicts) over a set of disguise specs against one
// application schema and aggregates the findings into a single report.
// `disguisectl analyze` is a thin wrapper around this.
#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "src/analysis/coverage.h"
#include "src/analysis/findings.h"
#include "src/analysis/lifecycle.h"
#include "src/analysis/taint.h"
#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

struct AnalyzerOptions {
  TaintOptions taint;
  bool run_lint = true;
  bool run_taint = true;
  bool run_conflicts = true;
};

struct AnalysisReport {
  std::vector<Finding> findings;

  FindingCounts Counts() const { return CountFindings(findings); }
  bool HasErrors() const { return Counts().errors > 0; }

  // Human-readable report: one finding per line plus a summary line.
  std::string ToString() const;

  // {"findings": [...], "errors": N, "warnings": N, "infos": N}
  std::string ToJson() const;
};

// Analyzes all `specs` against `schema`. A spec that fails Validate() gets
// an error finding ("invalid-spec") and is excluded from the other passes;
// analysis never aborts.
AnalysisReport Analyze(const std::vector<disguise::DisguiseSpec>& specs,
                       const db::Schema& schema, const AnalyzerOptions& options = {});

// --- `disguisectl verify`: the deep lifecycle pipeline -----------------------

struct VerifyOptions {
  LifecycleOptions lifecycle;
  CoverageOptions coverage;
  // Compile every transformation and assertion predicate against its table,
  // run the static program checker (sql/verify.h), and prove the program
  // equivalent to its AST via decompilation + the symbolic engine.
  bool run_program_checks = true;
};

struct VerifyReport {
  std::vector<Finding> findings;
  LifecycleStats stats;

  FindingCounts Counts() const { return CountFindings(findings); }
  bool HasErrors() const { return Counts().errors > 0; }

  // Same shapes as AnalysisReport, plus a stats block in the JSON
  // (docs/FORMATS.md §5).
  std::string ToString() const;
  std::string ToJson() const;
};

// Model-checks the registered spec set end-to-end: per-spec reversibility,
// vault completeness and idempotence, reveal-order safety of every spec
// combination up to lifecycle.max_k, whole-registry PII coverage, and the
// compiled-program checks. Invalid specs get "invalid-spec" errors and are
// excluded, as in Analyze().
VerifyReport Verify(const std::vector<disguise::DisguiseSpec>& specs,
                    const db::Schema& schema, const VerifyOptions& options = {});

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_ANALYZER_H_
