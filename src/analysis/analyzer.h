// Static analyzer entry point: runs every pass (validation, lint, PII taint
// flow, composition conflicts) over a set of disguise specs against one
// application schema and aggregates the findings into a single report.
// `disguisectl analyze` is a thin wrapper around this.
#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "src/analysis/findings.h"
#include "src/analysis/taint.h"
#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

struct AnalyzerOptions {
  TaintOptions taint;
  bool run_lint = true;
  bool run_taint = true;
  bool run_conflicts = true;
};

struct AnalysisReport {
  std::vector<Finding> findings;

  FindingCounts Counts() const { return CountFindings(findings); }
  bool HasErrors() const { return Counts().errors > 0; }

  // Human-readable report: one finding per line plus a summary line.
  std::string ToString() const;

  // {"findings": [...], "errors": N, "warnings": N, "infos": N}
  std::string ToJson() const;
};

// Analyzes all `specs` against `schema`. A spec that fails Validate() gets
// an error finding ("invalid-spec") and is excluded from the other passes;
// analysis never aborts.
AnalysisReport Analyze(const std::vector<disguise::DisguiseSpec>& specs,
                       const db::Schema& schema, const AnalyzerOptions& options = {});

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_ANALYZER_H_
