// Shared findings model for the disguise static analyzer: every pass (lint,
// PII taint flow, composition conflicts) reports Finding records with a
// severity, a stable machine-readable code, and the spec/table/column the
// finding anchors to. `disguisectl lint --json` and `disguisectl analyze
// --json` both serialize this shape, so CI tooling parses one format.
#ifndef SRC_ANALYSIS_FINDINGS_H_
#define SRC_ANALYSIS_FINDINGS_H_

#include <string>
#include <vector>

namespace edna::analysis {

enum class Severity { kInfo = 0, kWarning, kError };

const char* SeverityName(Severity s);

struct Finding {
  Severity severity = Severity::kInfo;
  std::string code;     // stable kebab-case identifier, e.g. "pii-retained"
  std::string spec;     // disguise spec name ("" if cross-spec or global)
  std::string table;    // table the finding anchors to ("" if none)
  std::string column;   // column the finding anchors to ("" if none)
  std::string message;  // human-readable explanation

  // One text line: "error[pii-retained] spec/table.column: message".
  std::string ToString() const;
};

// Counts by severity; `HasErrors` drives the CLI exit code.
struct FindingCounts {
  size_t errors = 0;
  size_t warnings = 0;
  size_t infos = 0;
};

FindingCounts CountFindings(const std::vector<Finding>& findings);

// True if any finding is an error.
bool HasErrors(const std::vector<Finding>& findings);

// Sorts by severity (errors first), then table, column, spec, code, message
// — anchored to the schema location first so `--json` output diffs cleanly
// in CI when specs are renamed or passes reorder their output.
void SortFindings(std::vector<Finding>* findings);

// Sorts, then drops findings that are identical in every field: multiple
// passes (e.g. the pairwise predictor and the lifecycle verifier) may report
// the same fact, and CI diffs should see it once.
void DedupFindings(std::vector<Finding>* findings);

// JSON array of finding objects, e.g.
//   [{"severity":"error","code":"pii-retained","spec":"gdpr",...}]
// Deterministic key order; strings escaped per RFC 8259.
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_FINDINGS_H_
