// Composition conflict analysis: predicts interactions between registered
// disguise specs before any of them is applied (the paper's §5 composition
// problem). Two specs conflict when their transformations can touch the same
// (table, column) cells: a later disguise may overwrite an earlier one's
// work, and revealing them out of application order can resurrect data the
// other spec still wants hidden.
//
// Detection is symbolic: for each pair of transformations on the same table,
// the predicate engine decides whether their match sets can intersect
// (Intersects, predicate.h). Same-named parameters are shared across the
// pair, so "contactId = $UID" in two specs means the same user disguised by
// both -- the composition case that actually happens.
//
// Findings:
//   conflicting-modify       (error if provable, warning if possible) — two
//       specs Modify the same column of intersecting rows: the second apply
//       destroys the first's placeholder values and reveal order matters.
//   remove-shadows-transform (warning) — one spec Removes rows another spec
//       Modifies/Decorrelates: if the Remove applies first the other spec
//       silently no-ops; if last, its reveal may resurrect transformed data.
//   decorrelate-overlap      (info) — two specs re-point the same FK column;
//       benign for placeholder-fresh decorrelation but reveal-order
//       sensitive.
//   remove-overlap           (info) — two specs Remove intersecting rows;
//       idempotent at apply time but the second Remove records no reveal
//       rows, so reveal ordering matters.
#ifndef SRC_ANALYSIS_CONFLICTS_H_
#define SRC_ANALYSIS_CONFLICTS_H_

#include <vector>

#include "src/analysis/findings.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

// Pairwise analysis over all registered specs (i < j). Findings carry
// `spec` = "specA+specB" and the shared table/column. Null entries are
// skipped.
std::vector<Finding> AnalyzeConflicts(
    const std::vector<const disguise::DisguiseSpec*>& specs);

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_CONFLICTS_H_
