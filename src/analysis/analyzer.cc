#include "src/analysis/analyzer.h"

#include <utility>

#include "src/analysis/conflicts.h"
#include "src/analysis/lint.h"
#include "src/common/strings.h"

namespace edna::analysis {

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Finding& f : findings) {
    out += f.ToString();
    out += "\n";
  }
  FindingCounts counts = Counts();
  out += StrFormat("%zu error(s), %zu warning(s), %zu info(s)\n", counts.errors,
                   counts.warnings, counts.infos);
  return out;
}

std::string AnalysisReport::ToJson() const {
  FindingCounts counts = Counts();
  std::string out = "{\"findings\": ";
  out += FindingsToJson(findings);
  out += StrFormat(",\n \"errors\": %zu, \"warnings\": %zu, \"infos\": %zu}\n",
                   counts.errors, counts.warnings, counts.infos);
  return out;
}

AnalysisReport Analyze(const std::vector<disguise::DisguiseSpec>& specs,
                       const db::Schema& schema, const AnalyzerOptions& options) {
  AnalysisReport report;
  std::vector<const disguise::DisguiseSpec*> valid;
  for (const disguise::DisguiseSpec& spec : specs) {
    Status st = spec.Validate(schema);
    if (!st.ok()) {
      report.findings.push_back(Finding{Severity::kError, "invalid-spec", spec.name(), "",
                                        "", std::string(st.message())});
      continue;
    }
    valid.push_back(&spec);
  }

  for (const disguise::DisguiseSpec* spec : valid) {
    if (options.run_lint) {
      std::vector<Finding> lint = LintSpec(*spec, schema);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(lint.begin()),
                             std::make_move_iterator(lint.end()));
    }
    if (options.run_taint) {
      std::vector<Finding> taint = AnalyzeTaint(*spec, schema, options.taint);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(taint.begin()),
                             std::make_move_iterator(taint.end()));
    }
  }

  if (options.run_conflicts && valid.size() > 1) {
    std::vector<Finding> conflicts = AnalyzeConflicts(valid);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(conflicts.begin()),
                           std::make_move_iterator(conflicts.end()));
  }

  SortFindings(&report.findings);
  return report;
}

}  // namespace edna::analysis
