#include "src/analysis/analyzer.h"

#include <utility>

#include "src/analysis/conflicts.h"
#include "src/analysis/lint.h"
#include "src/analysis/predicate.h"
#include "src/common/strings.h"
#include "src/sql/compile.h"
#include "src/sql/verify.h"

namespace edna::analysis {

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Finding& f : findings) {
    out += f.ToString();
    out += "\n";
  }
  FindingCounts counts = Counts();
  out += StrFormat("%zu error(s), %zu warning(s), %zu info(s)\n", counts.errors,
                   counts.warnings, counts.infos);
  return out;
}

std::string AnalysisReport::ToJson() const {
  FindingCounts counts = Counts();
  std::string out = "{\"findings\": ";
  out += FindingsToJson(findings);
  out += StrFormat(",\n \"errors\": %zu, \"warnings\": %zu, \"infos\": %zu}\n",
                   counts.errors, counts.warnings, counts.infos);
  return out;
}

AnalysisReport Analyze(const std::vector<disguise::DisguiseSpec>& specs,
                       const db::Schema& schema, const AnalyzerOptions& options) {
  AnalysisReport report;
  std::vector<const disguise::DisguiseSpec*> valid;
  for (const disguise::DisguiseSpec& spec : specs) {
    Status st = spec.Validate(schema);
    if (!st.ok()) {
      report.findings.push_back(Finding{Severity::kError, "invalid-spec", spec.name(), "",
                                        "", std::string(st.message())});
      continue;
    }
    valid.push_back(&spec);
  }

  for (const disguise::DisguiseSpec* spec : valid) {
    if (options.run_lint) {
      std::vector<Finding> lint = LintSpec(*spec, schema);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(lint.begin()),
                             std::make_move_iterator(lint.end()));
    }
    if (options.run_taint) {
      std::vector<Finding> taint = AnalyzeTaint(*spec, schema, options.taint);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(taint.begin()),
                             std::make_move_iterator(taint.end()));
    }
  }

  if (options.run_conflicts && valid.size() > 1) {
    std::vector<Finding> conflicts = AnalyzeConflicts(valid);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(conflicts.begin()),
                           std::make_move_iterator(conflicts.end()));
  }

  SortFindings(&report.findings);
  DedupFindings(&report.findings);
  return report;
}

std::string VerifyReport::ToString() const {
  std::string out;
  for (const Finding& f : findings) {
    out += f.ToString();
    out += "\n";
  }
  FindingCounts counts = Counts();
  out += StrFormat(
      "%zu error(s), %zu warning(s), %zu info(s); %zu combo(s), %zu region(s), "
      "%zu sequence(s) explored\n",
      counts.errors, counts.warnings, counts.infos, stats.combos, stats.regions,
      stats.sequences);
  return out;
}

std::string VerifyReport::ToJson() const {
  FindingCounts counts = Counts();
  std::string out = "{\"findings\": ";
  out += FindingsToJson(findings);
  out += StrFormat(",\n \"errors\": %zu, \"warnings\": %zu, \"infos\": %zu",
                   counts.errors, counts.warnings, counts.infos);
  out += StrFormat(
      ",\n \"stats\": {\"combos\": %zu, \"tables\": %zu, \"regions\": %zu, "
      "\"sequences\": %zu, \"truncated\": %zu}}\n",
      stats.combos, stats.tables, stats.regions, stats.sequences, stats.truncated);
  return out;
}

namespace {

// Compiles one predicate against its table, statically checks the program,
// and proves it equivalent to the AST it came from (syntactically when the
// decompiled rendering matches, else via the symbolic engine).
void CheckProgram(const std::string& spec, const std::string& table,
                  const sql::Expr& pred, const db::TableSchema& ts,
                  std::vector<Finding>* findings) {
  auto fail = [&](const std::string& message) {
    findings->push_back(
        Finding{Severity::kError, "program-check-failed", spec, table, "", message});
  };
  sql::ColumnBinder binder = [&ts](const std::string& tbl,
                                   const std::string& column) -> StatusOr<size_t> {
    if (!tbl.empty() && tbl != ts.name()) {
      return NotFound("unknown table \"" + tbl + "\"");
    }
    const std::vector<db::ColumnDef>& cols = ts.columns();
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].name == column) {
        return i;
      }
    }
    return NotFound("unknown column \"" + column + "\"");
  };
  StatusOr<sql::CompiledPredicate> program = sql::CompiledPredicate::Compile(pred, binder);
  if (!program.ok()) {
    fail("compilation failed: " + std::string(program.status().message()));
    return;
  }
  sql::ProgramCheckOptions check;
  check.row_width = static_cast<int>(ts.num_columns());
  Status st = sql::VerifyProgram(*program, check);
  if (!st.ok()) {
    fail("program checker rejected the compiled predicate " + pred.ToString() + ": " +
         std::string(st.message()));
    return;
  }
  sql::ColumnNamer namer = [&ts](size_t ordinal) -> StatusOr<std::string> {
    if (ordinal >= ts.num_columns()) {
      return NotFound("column ordinal out of range");
    }
    return ts.columns()[ordinal].name;
  };
  StatusOr<sql::ExprPtr> decompiled = sql::DecompileProgram(*program, namer);
  if (!decompiled.ok()) {
    fail("decompilation failed for " + pred.ToString() + ": " +
         std::string(decompiled.status().message()));
    return;
  }
  if ((*decompiled)->ToString() == pred.ToString()) {
    return;  // syntactically identical round trip
  }
  if (Implies(pred, **decompiled) == Tri::kYes &&
      Implies(**decompiled, pred) == Tri::kYes) {
    return;  // provably equivalent
  }
  findings->push_back(Finding{
      Severity::kInfo, "program-unproven", spec, table, "",
      "compiled program decompiles to " + (*decompiled)->ToString() +
          " which could not be proven equivalent to " + pred.ToString()});
}

void RunProgramChecks(const disguise::DisguiseSpec& spec, const db::Schema& schema,
                      std::vector<Finding>* findings) {
  for (const disguise::TableDisguise& td : spec.tables()) {
    const db::TableSchema* ts = schema.FindTable(td.table);
    if (ts == nullptr) {
      continue;  // Validate() already reported it
    }
    for (const disguise::Transformation& tr : td.transformations) {
      if (tr.predicate() != nullptr) {
        CheckProgram(spec.name(), td.table, *tr.predicate(), *ts, findings);
      }
    }
  }
  for (const disguise::Assertion& a : spec.assertions()) {
    const db::TableSchema* ts = schema.FindTable(a.table);
    if (ts != nullptr && a.predicate != nullptr) {
      CheckProgram(spec.name(), a.table, *a.predicate, *ts, findings);
    }
  }
}

}  // namespace

VerifyReport Verify(const std::vector<disguise::DisguiseSpec>& specs,
                    const db::Schema& schema, const VerifyOptions& options) {
  VerifyReport report;
  std::vector<const disguise::DisguiseSpec*> valid;
  for (const disguise::DisguiseSpec& spec : specs) {
    Status st = spec.Validate(schema);
    if (!st.ok()) {
      report.findings.push_back(Finding{Severity::kError, "invalid-spec", spec.name(),
                                        "", "", std::string(st.message())});
      continue;
    }
    valid.push_back(&spec);
  }

  std::vector<Finding> lifecycle =
      VerifyLifecycle(valid, schema, options.lifecycle, &report.stats);
  report.findings.insert(report.findings.end(),
                         std::make_move_iterator(lifecycle.begin()),
                         std::make_move_iterator(lifecycle.end()));

  std::vector<Finding> coverage = AnalyzePiiCoverage(valid, schema, options.coverage);
  report.findings.insert(report.findings.end(),
                         std::make_move_iterator(coverage.begin()),
                         std::make_move_iterator(coverage.end()));

  if (options.run_program_checks) {
    for (const disguise::DisguiseSpec* spec : valid) {
      RunProgramChecks(*spec, schema, &report.findings);
    }
  }

  SortFindings(&report.findings);
  DedupFindings(&report.findings);
  return report;
}

}  // namespace edna::analysis
