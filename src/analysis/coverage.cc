#include "src/analysis/coverage.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/taint.h"

namespace edna::analysis {
namespace {

using disguise::DisguiseSpec;
using disguise::TableDisguise;
using disguise::Transformation;
using disguise::TransformKind;

// Tables whose rows can link to an identity row: BFS from the identity
// tables along reverse FK edges (child -> parent chains reversed).
std::set<std::string> ReachableTables(const db::Schema& schema,
                                      const std::set<std::string>& identity,
                                      size_t max_depth) {
  std::set<std::string> reachable = identity;
  std::vector<std::string> frontier(identity.begin(), identity.end());
  for (size_t depth = 0; depth < max_depth && !frontier.empty(); ++depth) {
    std::vector<std::string> next;
    for (const db::TableSchema& ts : schema.tables()) {
      if (reachable.count(ts.name()) != 0) {
        continue;
      }
      for (const db::ForeignKeyDef& fk : ts.foreign_keys()) {
        bool hit = false;
        for (const std::string& f : frontier) {
          hit = hit || fk.parent_table == f;
        }
        if (hit || reachable.count(fk.parent_table) != 0) {
          reachable.insert(ts.name());
          next.push_back(ts.name());
          break;
        }
      }
    }
    frontier = std::move(next);
  }
  return reachable;
}

bool SpecTouches(const DisguiseSpec& spec, const std::string& table,
                 const std::string& column) {
  const TableDisguise* td = spec.FindTable(table);
  if (td == nullptr) {
    return false;
  }
  for (const Transformation& tr : td->transformations) {
    switch (tr.kind()) {
      case TransformKind::kRemove:
        return true;  // removing the row disguises every column of it
      case TransformKind::kModify:
        if (tr.column() == column &&
            tr.generator().kind() != disguise::Generator::Kind::kKeep) {
          return true;
        }
        break;
      case TransformKind::kDecorrelate:
        if (tr.foreign_key().column == column) {
          return true;
        }
        break;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> AnalyzePiiCoverage(const std::vector<const DisguiseSpec*>& specs,
                                        const db::Schema& schema,
                                        const CoverageOptions& options) {
  std::vector<Finding> findings;

  std::set<std::string> identity;
  if (!options.identity_table.empty()) {
    identity.insert(options.identity_table);
  } else {
    for (const DisguiseSpec* s : specs) {
      if (s == nullptr || !s->per_user()) {
        continue;
      }
      std::string derived = DeriveIdentityTable(*s, schema);
      if (!derived.empty()) {
        identity.insert(derived);
      }
    }
  }
  if (identity.empty()) {
    findings.push_back(Finding{
        Severity::kInfo, "coverage-skipped", "", "", "",
        "no identity table could be derived from the registered specs (and none "
        "was given); PII coverage was not analyzed"});
    return findings;
  }

  std::string identity_names;
  for (const std::string& t : identity) {
    if (!identity_names.empty()) {
      identity_names += ", ";
    }
    identity_names += "\"" + t + "\"";
  }

  std::set<std::string> reachable =
      ReachableTables(schema, identity, options.max_depth);
  for (const db::TableSchema& ts : schema.tables()) {
    if (reachable.count(ts.name()) == 0) {
      continue;
    }
    for (const db::ColumnDef& cd : ts.columns()) {
      if (cd.sensitivity == db::Sensitivity::kPublic) {
        continue;
      }
      bool touched = false;
      for (const DisguiseSpec* s : specs) {
        touched = touched || (s != nullptr && SpecTouches(*s, ts.name(), cd.name));
      }
      if (touched) {
        continue;
      }
      findings.push_back(Finding{
          cd.sensitivity == db::Sensitivity::kPii ? Severity::kWarning
                                                  : Severity::kInfo,
          "pii-uncovered", "", ts.name(), cd.name,
          std::string(db::SensitivityName(cd.sensitivity)) + " column is linked to " +
              identity_names + " through the FK graph but no registered disguise "
              "Removes, Modifies, or Decorrelates it: there is no way to hide "
              "this data"});
    }
  }

  DedupFindings(&findings);
  return findings;
}

}  // namespace edna::analysis
