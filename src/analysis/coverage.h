// PII coverage: the cross-spec complement of the taint pass. Taint asks
// "does THIS spec unlink everything it should"; coverage asks "is there
// sensitive data NO registered disguise ever touches". A Sensitive-annotated
// column that is reachable from an identity table in the FK graph but that
// no spec Removes, Modifies, or Decorrelates is a `pii-uncovered` finding
// (warning for pii, info for quasi): the application has privacy-relevant
// state its disguise library cannot hide at all.
#ifndef SRC_ANALYSIS_COVERAGE_H_
#define SRC_ANALYSIS_COVERAGE_H_

#include <string>
#include <vector>

#include "src/analysis/findings.h"
#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

struct CoverageOptions {
  // Identity-table override; empty = derive one per per-user spec (taint.h's
  // DeriveIdentityTable) and take the union.
  std::string identity_table;
  // FK reachability bound (hops from an identity table).
  size_t max_depth = 8;
};

// Analyzes the whole registered spec set at once. Null entries are ignored.
std::vector<Finding> AnalyzePiiCoverage(
    const std::vector<const disguise::DisguiseSpec*>& specs,
    const db::Schema& schema, const CoverageOptions& options = {});

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_COVERAGE_H_
