#include "src/analysis/lint.h"

#include <algorithm>
#include <string>

#include "src/analysis/predicate.h"
#include "src/common/strings.h"

namespace edna::analysis {

namespace {

using disguise::DisguiseSpec;
using disguise::GenContext;
using disguise::Generator;
using disguise::kUidParam;
using disguise::PlaceholderColumn;
using disguise::TableDisguise;
using disguise::Transformation;
using disguise::TransformKind;

// True if any transformation exists on `table` in the spec.
bool SpecTouches(const DisguiseSpec& spec, const std::string& table) {
  const TableDisguise* td = spec.FindTable(table);
  return td != nullptr && !td->transformations.empty();
}

// True if the spec transforms the given FK column of `table` specifically
// (decorrelates it, modifies it, or removes rows of the table).
bool SpecHandlesReference(const DisguiseSpec& spec, const std::string& table,
                          const std::string& column) {
  const TableDisguise* td = spec.FindTable(table);
  if (td == nullptr) {
    return false;
  }
  for (const Transformation& tr : td->transformations) {
    switch (tr.kind()) {
      case TransformKind::kRemove:
        return true;  // removal covers all columns
      case TransformKind::kDecorrelate:
        if (tr.foreign_key().column == column) {
          return true;
        }
        break;
      case TransformKind::kModify:
        if (tr.column() == column) {
          return true;
        }
        break;
    }
  }
  return false;
}

// Column names that conventionally flag dead accounts.
bool IsDisabledStyleColumn(const std::string& name) {
  std::string lower = AsciiLower(name);
  return lower == "disabled" || lower == "deleted" || lower == "banned" ||
         lower == "is_deleted" || lower == "inactive";
}

}  // namespace

std::vector<Finding> LintSpec(const DisguiseSpec& spec, const db::Schema& schema) {
  std::vector<Finding> findings;
  auto add = [&findings, &spec](Severity severity, const char* code, std::string table,
                                std::string message) {
    findings.push_back(Finding{severity, code, spec.name(), std::move(table),
                               /*column=*/"", std::move(message)});
  };

  // --- Removal coverage: walk every table the spec removes from and audit
  // its referencing tables.
  for (const TableDisguise& td : spec.tables()) {
    bool removes = std::any_of(
        td.transformations.begin(), td.transformations.end(),
        [](const Transformation& tr) { return tr.kind() == TransformKind::kRemove; });
    if (!removes) {
      continue;
    }
    for (const db::TableSchema& child : schema.tables()) {
      for (const db::ForeignKeyDef& fk : child.foreign_keys()) {
        if (fk.parent_table != td.table || child.name() == td.table) {
          continue;
        }
        bool handled = SpecHandlesReference(spec, child.name(), fk.column);
        switch (fk.on_delete) {
          case db::FkAction::kRestrict:
            if (!handled) {
              add(Severity::kError, "blocked-removal", child.name(),
                  "removing rows of \"" + td.table + "\" is blocked by RESTRICT foreign key \"" +
                      child.name() + "." + fk.column +
                      "\"; the spec must remove, decorrelate, or null those references first");
            }
            break;
          case db::FkAction::kCascade:
            if (!handled) {
              add(Severity::kWarning, "coverage-gap", child.name(),
                  "rows of \"" + child.name() + "\" will be CASCADE-deleted with \"" +
                      td.table + "\" rows; add an explicit transformation if that is not " +
                      "the intended policy");
            }
            break;
          case db::FkAction::kSetNull:
            if (!handled && !SpecTouches(spec, child.name())) {
              add(Severity::kWarning, "coverage-gap", child.name(),
                  "\"" + child.name() + "." + fk.column + "\" will be silently nulled when \"" +
                      td.table + "\" rows are removed; the rows themselves are retained " +
                      "un-transformed");
            }
            break;
        }
      }
    }
  }

  // --- Per-user Removes must be provably scoped to the disguising user.
  // Syntactic $UID mention is not enough: "user_id = $UID OR TRUE" matches
  // every row. BindsParamEquality proves that every satisfiable branch of
  // the predicate forces some column = $UID.
  if (spec.per_user()) {
    for (const TableDisguise& td : spec.tables()) {
      for (const Transformation& tr : td.transformations) {
        if (tr.kind() != TransformKind::kRemove) {
          continue;
        }
        if (!BindsParamEquality(*tr.predicate(), kUidParam)) {
          add(Severity::kWarning, "global-remove-all", td.table,
              "Remove predicate " + tr.predicate()->ToString() +
                  " is not scoped to $UID on every branch: it deletes matching rows of "
                  "EVERY user");
        }
      }
    }
  }

  // --- Placeholder hygiene.
  for (const TableDisguise& td : spec.tables()) {
    if (td.placeholder.empty()) {
      continue;
    }
    bool targeted = false;
    for (const TableDisguise& other : spec.tables()) {
      for (const Transformation& tr : other.transformations) {
        if (tr.kind() == TransformKind::kDecorrelate &&
            tr.foreign_key().parent_table == td.table) {
          targeted = true;
        }
      }
    }
    if (!targeted) {
      add(Severity::kWarning, "unused-placeholder", td.table,
          "generate_placeholder recipe is never used: no Decorrelate targets \"" + td.table +
              "\"");
    }

    const db::TableSchema* ts = schema.FindTable(td.table);
    for (const db::ColumnDef& col : ts->columns()) {
      if (col.type != db::ColumnType::kBool || !IsDisabledStyleColumn(col.name)) {
        continue;
      }
      bool set_true = false;
      for (const PlaceholderColumn& pc : td.placeholder) {
        if (pc.column == col.name && pc.generator.kind() == Generator::Kind::kConst) {
          // Probe the generator with an empty context: Const needs none.
          auto v = pc.generator.Generate(GenContext{});
          if (v.ok() && v->is_bool() && v->AsBool()) {
            set_true = true;
          }
        }
      }
      if (!set_true) {
        add(Severity::kWarning, "placeholder-enabled", td.table,
            "placeholder recipe does not set \"" + col.name +
                "\" to TRUE; placeholder identities should be disabled so they cannot log in");
      }
    }
  }

  // --- No-op modifies.
  for (const TableDisguise& td : spec.tables()) {
    for (const Transformation& tr : td.transformations) {
      if (tr.kind() == TransformKind::kModify &&
          tr.generator().kind() == Generator::Kind::kKeep) {
        add(Severity::kWarning, "noop-modify", td.table,
            "Modify of \"" + tr.column() + "\" uses Keep: it changes nothing");
      }
    }
  }

  // --- Policy-level nudges.
  if (spec.assertions().empty()) {
    add(Severity::kInfo, "no-assertions", "",
        "no end-state assertions declared; consider assert_empty checks for the "
        "spec's privacy goal");
  }
  if (!spec.reversible()) {
    add(Severity::kInfo, "irreversible", "",
        "spec is irreversible: no reveal functions will be stored, so users cannot return");
  }

  SortFindings(&findings);
  return findings;
}

}  // namespace edna::analysis
