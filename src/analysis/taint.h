// PII taint-flow analysis: verifies that a per-user disguise spec actually
// unlinks every sensitive column reachable from the user's identity row.
//
// The schema's FK graph is the data-linkage graph: a row of table X is
// linked to the disguising user iff some FK path X -> ... -> identity table
// resolves to the user's identity row. For every column annotated kPii or
// kQuasi (db::Sensitivity), the analysis enumerates those paths and checks
// that the spec severs each one -- by removing the linked rows, modifying
// the column, decorrelating an FK hop to a placeholder, or deleting the
// identity row so SET NULL / CASCADE actions fire. A pii column with a
// surviving path is reported as an error ("pii-retained") naming the
// concrete retention path; quasi columns degrade to warnings.
//
// Predicate reasoning uses the symbolic engine (predicate.h): a
// transformation only counts as covering the user's rows when its predicate
// provably matches them (e.g. Implies(author_id = $UID, pred) == kYes for
// rows linked through the author_id edge). Syntactic $UID matching is never
// trusted.
//
// Sensitivity comes from the schema (applications annotate in code) plus an
// optional sidecar annotation file (docs/FORMATS.md):
//   ContactInfo."email": pii
//   Paper."authorInformation": pii    # comments with '#' or '--'
#ifndef SRC_ANALYSIS_TAINT_H_
#define SRC_ANALYSIS_TAINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/findings.h"
#include "src/common/status.h"
#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

// One parsed line of a sensitivity sidecar file.
struct SensitivityAnnotation {
  std::string table;
  std::string column;
  db::Sensitivity sensitivity = db::Sensitivity::kPublic;
};

// Parses the sidecar format: one `Table."column": level` entry per line,
// blank lines and '#'/'--' comments ignored. Column quotes are optional.
StatusOr<std::vector<SensitivityAnnotation>> ParseSensitivityAnnotations(
    std::string_view text);

// Applies annotations onto the schema (overriding in-code sensitivities).
// Fails on unknown tables or columns -- a misspelled annotation silently
// protecting nothing is exactly the bug class this analyzer exists for.
Status ApplySensitivityAnnotations(const std::vector<SensitivityAnnotation>& annotations,
                                   db::Schema* schema);

struct TaintOptions {
  // Identity table override; empty = derive it from the spec (the most
  // FK-referenced table whose single-column PK the spec pins to $UID).
  std::string identity_table;
  // FK-path enumeration bounds; paths beyond these are not explored and the
  // analysis reports that coverage was truncated.
  size_t max_depth = 8;
  size_t max_paths = 64;
};

// Returns the derived identity-table name, or "" when no table qualifies.
std::string DeriveIdentityTable(const disguise::DisguiseSpec& spec,
                                const db::Schema& schema);

// Runs the taint-flow analysis for one spec. The spec must already
// Validate() against `schema`. Non-per-user specs are skipped with an info
// finding (their transformations are not scoped to one user, so per-user
// retention is not well-defined).
std::vector<Finding> AnalyzeTaint(const disguise::DisguiseSpec& spec,
                                  const db::Schema& schema,
                                  const TaintOptions& options = {});

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_TAINT_H_
