#include "src/analysis/conflicts.h"

#include <string>

#include "src/analysis/predicate.h"

namespace edna::analysis {

namespace {

using disguise::DisguiseSpec;
using disguise::TableDisguise;
using disguise::Transformation;
using disguise::TransformKind;
using disguise::TransformKindName;

// The column a transformation rewrites, for overlap purposes ("" = whole row).
std::string TouchedColumn(const Transformation& tr) {
  switch (tr.kind()) {
    case TransformKind::kRemove:
      return "";
    case TransformKind::kModify:
      return tr.column();
    case TransformKind::kDecorrelate:
      return tr.foreign_key().column;
  }
  return "";
}

void CheckPair(const DisguiseSpec& a, const DisguiseSpec& b, const std::string& table,
               const Transformation& ta, const Transformation& tb,
               std::vector<Finding>* findings) {
  const std::string pair = a.name() + "+" + b.name();
  auto add = [&](Severity severity, const char* code, std::string column,
                 std::string message) {
    findings->push_back(
        Finding{severity, code, pair, table, std::move(column), std::move(message)});
  };

  Tri overlap = Intersects(*ta.predicate(), *tb.predicate());
  if (overlap == Tri::kNo) {
    return;  // provably disjoint row sets cannot interact
  }
  const char* certainty = overlap == Tri::kYes ? "" : " (possible, not proven)";

  const TransformKind ka = ta.kind(), kb = tb.kind();

  if (ka == TransformKind::kModify && kb == TransformKind::kModify &&
      ta.column() == tb.column()) {
    add(overlap == Tri::kYes ? Severity::kError : Severity::kWarning,
        "conflicting-modify", ta.column(),
        "\"" + a.name() + "\" and \"" + b.name() + "\" both Modify \"" + table + "." +
            ta.column() + "\" on intersecting rows" + certainty +
            ": whichever applies second overwrites the first, and revealing them out "
            "of application order restores the wrong value");
    return;
  }

  if (ka == TransformKind::kRemove || kb == TransformKind::kRemove) {
    if (ka == TransformKind::kRemove && kb == TransformKind::kRemove) {
      add(Severity::kInfo, "remove-overlap", "",
          "\"" + a.name() + "\" and \"" + b.name() + "\" both Remove intersecting rows of \"" +
              table + "\"" + certainty +
              ": the second Remove stores no reveal rows, so reveals must run in "
              "reverse application order");
      return;
    }
    const DisguiseSpec& remover = ka == TransformKind::kRemove ? a : b;
    const DisguiseSpec& other = ka == TransformKind::kRemove ? b : a;
    const Transformation& other_tr = ka == TransformKind::kRemove ? tb : ta;
    add(Severity::kWarning, "remove-shadows-transform", TouchedColumn(other_tr),
        "\"" + remover.name() + "\" Removes rows of \"" + table + "\" that \"" +
            other.name() + "\" " + TransformKindName(other_tr.kind()) + "s" + certainty +
            ": applied Remove-first the other transformation no-ops; applied "
            "Remove-last its reveal can resurrect disguised data");
    return;
  }

  if (ka == TransformKind::kDecorrelate && kb == TransformKind::kDecorrelate &&
      ta.foreign_key().column == tb.foreign_key().column) {
    add(Severity::kInfo, "decorrelate-overlap", ta.foreign_key().column,
        "\"" + a.name() + "\" and \"" + b.name() + "\" both re-point \"" + table + "." +
            ta.foreign_key().column + "\"" + certainty +
            ": reveal order decides which original correlation is restored");
  }
}

}  // namespace

std::vector<Finding> AnalyzeConflicts(const std::vector<const DisguiseSpec*>& specs) {
  std::vector<Finding> findings;
  for (size_t i = 0; i < specs.size(); ++i) {
    for (size_t j = i + 1; j < specs.size(); ++j) {
      if (specs[i] == nullptr || specs[j] == nullptr) {
        continue;
      }
      for (const TableDisguise& ta : specs[i]->tables()) {
        const TableDisguise* tb = specs[j]->FindTable(ta.table);
        if (tb == nullptr) {
          continue;
        }
        for (const Transformation& tra : ta.transformations) {
          for (const Transformation& trb : tb->transformations) {
            CheckPair(*specs[i], *specs[j], ta.table, tra, trb, &findings);
          }
        }
      }
    }
  }
  SortFindings(&findings);
  return findings;
}

}  // namespace edna::analysis
