// Symbolic predicate engine: abstract interpretation over the SQL predicate
// AST (src/sql/ast.h) used by the disguise static analyzer. Predicates are
// lowered to negation normal form over atomic constraints, expanded to a
// bounded DNF, and each conjunct is solved with an interval + equality
// abstract domain per variable (columns and $params share one variable
// space; equalities are tracked with a union-find).
//
// Answers are three-valued. The engine is conservative in the directions
// its clients rely on:
//   * kNo from IsSatisfiable/Intersects means "provably no matching row
//     over the untyped value domain" (so also none over any typed domain);
//   * kYes from Implies means "provably every row matched by the premise is
//     matched by the conclusion", with SQL three-valued semantics: rows
//     where the conclusion evaluates to NULL count as NOT matched.
// kYes from IsSatisfiable means a witness exists in the untyped value
// domain; column types and NOT NULL constraints are not consulted (see
// DESIGN.md "Static analysis" for the soundness caveats).
//
// Parameters ($UID, ...) are treated as free non-NULL symbolic constants.
// The same parameter name appearing in both arguments of Implies/Intersects
// denotes the same value (the same user).
#ifndef SRC_ANALYSIS_PREDICATE_H_
#define SRC_ANALYSIS_PREDICATE_H_

#include <string>
#include <vector>

#include "src/sql/ast.h"

namespace edna::analysis {

// Three-valued verdict: kNo / kYes are proofs, kMaybe means the predicate
// escapes the abstract domain (opaque functions, arithmetic, DNF overflow).
enum class Tri { kNo, kMaybe, kYes };

const char* TriName(Tri t);

// Can `pred` evaluate to TRUE for some row and parameter binding?
Tri IsSatisfiable(const sql::Expr& pred);

// Does every row matched by `premise` get matched by `conclusion`?
// (Rows where `conclusion` is NULL count as unmatched.)
Tri Implies(const sql::Expr& premise, const sql::Expr& conclusion);

// Can some row be matched by both `a` and `b` (same parameter binding)?
Tri Intersects(const sql::Expr& a, const sql::Expr& b);

// True iff every satisfiable branch of `pred` forces `column = $param` for
// at least one column, i.e. the predicate's match set is scoped to the
// user bound to `param` (a Remove with such a predicate is per-user). A
// provably unsatisfiable predicate binds vacuously. If `columns` is
// non-null it receives the distinct bound column names across branches.
bool BindsParamEquality(const sql::Expr& pred, const std::string& param,
                        std::vector<std::string>* columns = nullptr);

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_PREDICATE_H_
