#include "src/analysis/predicate.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "src/common/strings.h"
#include "src/sql/value.h"

namespace edna::analysis {

const char* TriName(Tri t) {
  switch (t) {
    case Tri::kNo:
      return "no";
    case Tri::kMaybe:
      return "maybe";
    case Tri::kYes:
      return "yes";
  }
  return "?";
}

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;
using sql::Value;

// DNF expansion budget: beyond this many conjuncts every answer degrades to
// kMaybe rather than risking exponential blowup.
constexpr size_t kMaxConjuncts = 256;

// Atomic constraint in negation normal form. Variables are column names
// (unqualified) or "$"-prefixed parameter names.
struct Atom {
  enum class Kind {
    kTrue,
    kFalse,
    kCmp,     // var (op) literal; op in Eq/Ne/Lt/Le/Gt/Ge; literal non-NULL
    kVarEq,   // a = b
    kVarNe,   // a <> b
    kVarCmp,  // a (op) b, ordering comparison -- approximated
    kIsNull,  // a IS NULL (negated=false) / a IS NOT NULL (negated=true)
    kTouch,   // opaque condition that requires a non-NULL (LIKE with wildcards)
    kOpaque,  // condition outside the domain (calls, arithmetic, bare params)
  };
  Kind kind = Kind::kOpaque;
  std::string a, b;
  BinaryOp op = BinaryOp::kEq;
  Value value;
  bool negated = false;

  static Atom True() { return {.kind = Kind::kTrue}; }
  static Atom False() { return {.kind = Kind::kFalse}; }
  static Atom Opaque() { return {.kind = Kind::kOpaque}; }
};

// NNF tree: atoms combined with AND/OR only.
struct Node {
  enum class Kind { kAtom, kAnd, kOr };
  Kind kind = Kind::kAtom;
  Atom atom;
  std::vector<Node> children;

  static Node Leaf(Atom a) { return Node{Kind::kAtom, std::move(a), {}}; }
  static Node And(std::vector<Node> ch) { return Node{Kind::kAnd, {}, std::move(ch)}; }
  static Node Or(std::vector<Node> ch) { return Node{Kind::kOr, {}, std::move(ch)}; }
};

// The complementary comparison: NOT (x op y) under SQL three-valued logic is
// TRUE exactly when (x comp(op) y) is TRUE (both require non-NULL operands).
BinaryOp Complement(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    case BinaryOp::kNe:
      return BinaryOp::kEq;
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
    default:
      return op;
  }
}

// Mirror for swapped operands: (x op y) == (y Flip(op) x).
BinaryOp Flip(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // Eq/Ne are symmetric
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Classifies an operand of a comparison.
struct Operand {
  enum class Kind { kVar, kLiteral, kOther };
  Kind kind = Kind::kOther;
  std::string var;
  const Value* literal = nullptr;
};

Operand ClassifyOperand(const Expr& e) {
  Operand out;
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      out.kind = Operand::Kind::kVar;
      out.var = e.column();
      break;
    case ExprKind::kParam:
      out.kind = Operand::Kind::kVar;
      out.var = "$" + e.param_name();
      break;
    case ExprKind::kLiteral:
      out.kind = Operand::Kind::kLiteral;
      out.literal = &e.literal();
      break;
    default:
      break;
  }
  return out;
}

bool EvalLiteralCmp(const Value& lhs, BinaryOp op, const Value& rhs) {
  int c = lhs.Compare(rhs);
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

// Lowers `e` to NNF. `neg` false asks for "e is TRUE", true for "e is FALSE"
// (Kleene negation: rows where e is NULL satisfy neither).
Node Nnf(const Expr& e, bool neg) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      if (v.is_bool()) {
        return Node::Leaf(v.AsBool() != neg ? Atom::True() : Atom::False());
      }
      if (v.is_null()) {
        return Node::Leaf(Atom::False());  // NULL is neither TRUE nor FALSE
      }
      return Node::Leaf(Atom::Opaque());
    }
    case ExprKind::kColumnRef: {
      // A bare boolean column as predicate: TRUE iff col = TRUE.
      Atom a{.kind = Atom::Kind::kCmp, .a = e.column(), .op = BinaryOp::kEq,
             .value = Value::Bool(!neg)};
      return Node::Leaf(std::move(a));
    }
    case ExprKind::kParam:
      return Node::Leaf(Atom::Opaque());
    case ExprKind::kUnary:
      if (e.unary_op() == UnaryOp::kNot) {
        return Nnf(*e.children()[0], !neg);
      }
      return Node::Leaf(Atom::Opaque());
    case ExprKind::kBinary: {
      BinaryOp op = e.binary_op();
      const Expr& lhs = *e.children()[0];
      const Expr& rhs = *e.children()[1];
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        std::vector<Node> ch;
        ch.push_back(Nnf(lhs, neg));
        ch.push_back(Nnf(rhs, neg));
        bool conjunction = (op == BinaryOp::kAnd) != neg;  // De Morgan
        return conjunction ? Node::And(std::move(ch)) : Node::Or(std::move(ch));
      }
      if (!IsComparison(op)) {
        return Node::Leaf(Atom::Opaque());
      }
      if (neg) {
        op = Complement(op);
      }
      Operand l = ClassifyOperand(lhs);
      Operand r = ClassifyOperand(rhs);
      if (l.kind == Operand::Kind::kLiteral && r.kind == Operand::Kind::kLiteral) {
        if (l.literal->is_null() || r.literal->is_null()) {
          return Node::Leaf(Atom::False());
        }
        return Node::Leaf(EvalLiteralCmp(*l.literal, op, *r.literal) ? Atom::True()
                                                                     : Atom::False());
      }
      if (l.kind == Operand::Kind::kVar && r.kind == Operand::Kind::kLiteral) {
        if (r.literal->is_null()) {
          return Node::Leaf(Atom::False());
        }
        return Node::Leaf(Atom{.kind = Atom::Kind::kCmp, .a = l.var, .op = op,
                               .value = *r.literal});
      }
      if (l.kind == Operand::Kind::kLiteral && r.kind == Operand::Kind::kVar) {
        if (l.literal->is_null()) {
          return Node::Leaf(Atom::False());
        }
        return Node::Leaf(Atom{.kind = Atom::Kind::kCmp, .a = r.var, .op = Flip(op),
                               .value = *l.literal});
      }
      if (l.kind == Operand::Kind::kVar && r.kind == Operand::Kind::kVar) {
        Atom a{.a = l.var, .b = r.var, .op = op};
        a.kind = op == BinaryOp::kEq   ? Atom::Kind::kVarEq
                 : op == BinaryOp::kNe ? Atom::Kind::kVarNe
                                       : Atom::Kind::kVarCmp;
        return Node::Leaf(std::move(a));
      }
      return Node::Leaf(Atom::Opaque());
    }
    case ExprKind::kIsNull: {
      // IS NULL never yields SQL NULL, so Kleene negation is plain negation:
      // the AST flag and the NNF polarity cancel when both are set.
      bool want_null = (e.negated() == neg);
      const Expr& operand = *e.children()[0];
      Operand o = ClassifyOperand(operand);
      if (o.kind == Operand::Kind::kLiteral) {
        return Node::Leaf(o.literal->is_null() == want_null ? Atom::True()
                                                            : Atom::False());
      }
      if (o.kind == Operand::Kind::kVar) {
        return Node::Leaf(
            Atom{.kind = Atom::Kind::kIsNull, .a = o.var, .negated = !want_null});
      }
      return Node::Leaf(Atom::Opaque());
    }
    case ExprKind::kIn: {
      bool negated = e.negated() != neg;
      Operand needle = ClassifyOperand(*e.children()[0]);
      if (needle.kind != Operand::Kind::kVar) {
        return Node::Leaf(Atom::Opaque());
      }
      std::vector<Node> ch;
      if (!negated) {
        // x IN (a, b, NULL) is TRUE iff x = a OR x = b; the NULL never hits.
        for (size_t i = 1; i < e.children().size(); ++i) {
          Operand o = ClassifyOperand(*e.children()[i]);
          if (o.kind == Operand::Kind::kLiteral) {
            if (o.literal->is_null()) {
              continue;
            }
            ch.push_back(Node::Leaf(Atom{.kind = Atom::Kind::kCmp, .a = needle.var,
                                         .op = BinaryOp::kEq, .value = *o.literal}));
          } else {
            ch.push_back(Node::Leaf(Atom::Opaque()));
          }
        }
        if (ch.empty()) {
          return Node::Leaf(Atom::False());
        }
        return Node::Or(std::move(ch));
      }
      // x NOT IN (..) with a NULL element is never TRUE.
      for (size_t i = 1; i < e.children().size(); ++i) {
        Operand o = ClassifyOperand(*e.children()[i]);
        if (o.kind == Operand::Kind::kLiteral) {
          if (o.literal->is_null()) {
            return Node::Leaf(Atom::False());
          }
          ch.push_back(Node::Leaf(Atom{.kind = Atom::Kind::kCmp, .a = needle.var,
                                       .op = BinaryOp::kNe, .value = *o.literal}));
        } else {
          ch.push_back(Node::Leaf(Atom::Opaque()));
        }
      }
      if (ch.empty()) {
        return Node::Leaf(Atom::True());
      }
      return Node::And(std::move(ch));
    }
    case ExprKind::kBetween: {
      bool negated = e.negated() != neg;
      Operand x = ClassifyOperand(*e.children()[0]);
      Operand lo = ClassifyOperand(*e.children()[1]);
      Operand hi = ClassifyOperand(*e.children()[2]);
      if (x.kind != Operand::Kind::kVar || lo.kind != Operand::Kind::kLiteral ||
          hi.kind != Operand::Kind::kLiteral) {
        return Node::Leaf(Atom::Opaque());
      }
      if (lo.literal->is_null() || hi.literal->is_null()) {
        return Node::Leaf(Atom::False());  // comparisons with NULL never hold
      }
      Atom ge{.kind = Atom::Kind::kCmp, .a = x.var, .op = BinaryOp::kGe,
              .value = *lo.literal};
      Atom le{.kind = Atom::Kind::kCmp, .a = x.var, .op = BinaryOp::kLe,
              .value = *hi.literal};
      if (!negated) {
        std::vector<Node> ch;
        ch.push_back(Node::Leaf(std::move(ge)));
        ch.push_back(Node::Leaf(std::move(le)));
        return Node::And(std::move(ch));
      }
      Atom lt{.kind = Atom::Kind::kCmp, .a = x.var, .op = BinaryOp::kLt,
              .value = *lo.literal};
      Atom gt{.kind = Atom::Kind::kCmp, .a = x.var, .op = BinaryOp::kGt,
              .value = *hi.literal};
      std::vector<Node> ch;
      ch.push_back(Node::Leaf(std::move(lt)));
      ch.push_back(Node::Leaf(std::move(gt)));
      return Node::Or(std::move(ch));
    }
    case ExprKind::kLike: {
      bool negated = e.negated() != neg;
      Operand x = ClassifyOperand(*e.children()[0]);
      Operand pat = ClassifyOperand(*e.children()[1]);
      if (x.kind != Operand::Kind::kVar || pat.kind != Operand::Kind::kLiteral) {
        return Node::Leaf(Atom::Opaque());
      }
      if (pat.literal->is_null()) {
        return Node::Leaf(Atom::False());
      }
      if (pat.literal->is_string()) {
        const std::string& p = pat.literal->AsString();
        if (p.find('%') == std::string::npos && p.find('_') == std::string::npos) {
          // Wildcard-free LIKE is plain equality.
          return Node::Leaf(Atom{.kind = Atom::Kind::kCmp, .a = x.var,
                                 .op = negated ? BinaryOp::kNe : BinaryOp::kEq,
                                 .value = *pat.literal});
        }
      }
      // [NOT] LIKE with wildcards: opaque, but requires a non-NULL operand.
      return Node::Leaf(Atom{.kind = Atom::Kind::kTouch, .a = x.var});
    }
    case ExprKind::kCall:
      return Node::Leaf(Atom::Opaque());
  }
  return Node::Leaf(Atom::Opaque());
}

// Collects the column variables (non-'$') referenced anywhere in `e`, and
// whether `e` contains subexpressions outside the abstract domain.
void CollectVarsAndOpacity(const Expr& e, std::set<std::string>* columns, bool* opaque) {
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      columns->insert(e.column());
      return;
    case ExprKind::kCall:
      *opaque = true;
      break;
    case ExprKind::kBinary:
      if (!IsComparison(e.binary_op()) && e.binary_op() != BinaryOp::kAnd &&
          e.binary_op() != BinaryOp::kOr) {
        *opaque = true;
      }
      break;
    case ExprKind::kUnary:
      if (e.unary_op() != UnaryOp::kNot) {
        *opaque = true;
      }
      break;
    default:
      break;
  }
  for (const sql::ExprPtr& child : e.children()) {
    CollectVarsAndOpacity(*child, columns, opaque);
  }
}

// "e is not TRUE" (FALSE or NULL): the complement of the matched set. Built
// as F(e) OR (some referenced column IS NULL) OR opaque -- an
// over-approximation, which keeps Implies' kYes answers sound. Parameters
// are assumed non-NULL, so they do not contribute NULL branches.
Node NotMatched(const Expr& e) {
  std::vector<Node> ch;
  ch.push_back(Nnf(e, /*neg=*/true));
  std::set<std::string> columns;
  bool opaque = false;
  CollectVarsAndOpacity(e, &columns, &opaque);
  for (const std::string& c : columns) {
    ch.push_back(Node::Leaf(Atom{.kind = Atom::Kind::kIsNull, .a = c, .negated = false}));
  }
  if (opaque) {
    ch.push_back(Node::Leaf(Atom::Opaque()));
  }
  return Node::Or(std::move(ch));
}

using Conjunct = std::vector<Atom>;

// Expands `n` to DNF; false on budget overflow.
bool ToDnf(const Node& n, std::vector<Conjunct>* out) {
  switch (n.kind) {
    case Node::Kind::kAtom:
      out->push_back({n.atom});
      return true;
    case Node::Kind::kOr:
      for (const Node& child : n.children) {
        if (!ToDnf(child, out)) {
          return false;
        }
        if (out->size() > kMaxConjuncts) {
          return false;
        }
      }
      return true;
    case Node::Kind::kAnd: {
      std::vector<Conjunct> acc = {{}};
      for (const Node& child : n.children) {
        std::vector<Conjunct> rhs;
        if (!ToDnf(child, &rhs)) {
          return false;
        }
        std::vector<Conjunct> next;
        if (acc.size() * rhs.size() > kMaxConjuncts) {
          return false;
        }
        for (const Conjunct& a : acc) {
          for (const Conjunct& b : rhs) {
            Conjunct merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return out->size() <= kMaxConjuncts;
    }
  }
  return false;
}

// --- Conjunct solving: union-find over variables with an interval +
// disequality + nullability state per equivalence class.

enum class Nullness { kUnknown, kNonNull, kNull };

struct ClassState {
  std::optional<Value> lo, hi;
  bool lo_strict = false, hi_strict = false;
  std::vector<Value> neq;
  Nullness nullness = Nullness::kUnknown;
};

class ConjunctSolver {
 public:
  enum class Result { kUnsat, kSatExact, kSatApprox };

  Result Solve(const Conjunct& atoms) {
    for (const Atom& atom : atoms) {
      if (!Apply(atom)) {
        return Result::kUnsat;
      }
    }
    // Deferred checks: disequality pairs that collapsed into one class, or
    // two point-valued classes pinned to the same value.
    for (const auto& [a, b] : var_ne_) {
      int ra = Find(vars_.at(a)), rb = Find(vars_.at(b));
      if (ra == rb) {
        return Result::kUnsat;
      }
      std::optional<Value> pa = PointValue(ra), pb = PointValue(rb);
      if (pa.has_value() && pb.has_value() && pa->SqlEquals(*pb)) {
        return Result::kUnsat;
      }
    }
    // Point values vs. collected disequalities.
    for (size_t i = 0; i < states_.size(); ++i) {
      if (Find(static_cast<int>(i)) != static_cast<int>(i)) {
        continue;
      }
      std::optional<Value> p = PointValue(static_cast<int>(i));
      if (!p.has_value()) {
        continue;
      }
      for (const Value& v : states_[i].neq) {
        if (p->SqlEquals(v)) {
          return Result::kUnsat;
        }
      }
    }
    return approx_ ? Result::kSatApprox : Result::kSatExact;
  }

  // Post-Solve query: are the two variables in the same equivalence class?
  // Unseen variables are never equal to anything.
  bool SameClass(const std::string& a, const std::string& b) {
    auto ia = vars_.find(a), ib = vars_.find(b);
    if (ia == vars_.end() || ib == vars_.end()) {
      return false;
    }
    return Find(ia->second) == Find(ib->second);
  }

  const std::map<std::string, int>& vars() const { return vars_; }

 private:
  int Intern(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) {
      return it->second;
    }
    int id = static_cast<int>(states_.size());
    vars_.emplace(name, id);
    states_.emplace_back();
    parent_.push_back(id);
    return id;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  ClassState& State(const std::string& name) { return states_[Find(Intern(name))]; }

  std::optional<Value> PointValue(int root) const {
    const ClassState& s = states_[root];
    if (s.lo.has_value() && s.hi.has_value() && !s.lo_strict && !s.hi_strict &&
        s.lo->SqlEquals(*s.hi)) {
      return s.lo;
    }
    return std::nullopt;
  }

  bool RequireNonNull(ClassState& s) {
    if (s.nullness == Nullness::kNull) {
      return false;
    }
    s.nullness = Nullness::kNonNull;
    return true;
  }

  bool TightenLo(ClassState& s, const Value& v, bool strict) {
    int c = s.lo.has_value() ? v.Compare(*s.lo) : 1;
    if (!s.lo.has_value() || c > 0 || (c == 0 && strict)) {
      s.lo = v;
      s.lo_strict = strict;
    }
    return IntervalConsistent(s);
  }

  bool TightenHi(ClassState& s, const Value& v, bool strict) {
    int c = s.hi.has_value() ? v.Compare(*s.hi) : -1;
    if (!s.hi.has_value() || c < 0 || (c == 0 && strict)) {
      s.hi = v;
      s.hi_strict = strict;
    }
    return IntervalConsistent(s);
  }

  static bool IntervalConsistent(const ClassState& s) {
    if (!s.lo.has_value() || !s.hi.has_value()) {
      return true;
    }
    int c = s.lo->Compare(*s.hi);
    if (c > 0) {
      return false;
    }
    if (c == 0 && (s.lo_strict || s.hi_strict)) {
      return false;
    }
    return true;
  }

  bool Union(const std::string& a, const std::string& b) {
    int ra = Find(Intern(a)), rb = Find(Intern(b));
    if (ra == rb) {
      return true;
    }
    ClassState& sa = states_[ra];
    ClassState& sb = states_[rb];
    // Merge b into a.
    if (sb.nullness != Nullness::kUnknown) {
      if (sa.nullness != Nullness::kUnknown && sa.nullness != sb.nullness) {
        return false;
      }
      sa.nullness = sb.nullness;
    }
    if (sb.lo.has_value() && !TightenLo(sa, *sb.lo, sb.lo_strict)) {
      return false;
    }
    if (sb.hi.has_value() && !TightenHi(sa, *sb.hi, sb.hi_strict)) {
      return false;
    }
    sa.neq.insert(sa.neq.end(), sb.neq.begin(), sb.neq.end());
    parent_[rb] = ra;
    return true;
  }

  bool Apply(const Atom& atom) {
    switch (atom.kind) {
      case Atom::Kind::kTrue:
        return true;
      case Atom::Kind::kFalse:
        return false;
      case Atom::Kind::kOpaque:
        approx_ = true;
        return true;
      case Atom::Kind::kTouch:
        approx_ = true;
        return RequireNonNull(State(atom.a));
      case Atom::Kind::kIsNull: {
        ClassState& s = State(atom.a);
        if (atom.negated) {
          return RequireNonNull(s);
        }
        if (s.nullness == Nullness::kNonNull) {
          return false;
        }
        s.nullness = Nullness::kNull;
        return true;
      }
      case Atom::Kind::kCmp: {
        ClassState& s = State(atom.a);
        if (!RequireNonNull(s)) {
          return false;
        }
        switch (atom.op) {
          case BinaryOp::kEq:
            return TightenLo(s, atom.value, false) && TightenHi(s, atom.value, false);
          case BinaryOp::kNe:
            s.neq.push_back(atom.value);
            return true;
          case BinaryOp::kLt:
            return TightenHi(s, atom.value, true);
          case BinaryOp::kLe:
            return TightenHi(s, atom.value, false);
          case BinaryOp::kGt:
            return TightenLo(s, atom.value, true);
          case BinaryOp::kGe:
            return TightenLo(s, atom.value, false);
          default:
            approx_ = true;
            return true;
        }
      }
      case Atom::Kind::kVarEq:
        if (!RequireNonNull(State(atom.a)) || !RequireNonNull(State(atom.b))) {
          return false;
        }
        return Union(atom.a, atom.b);
      case Atom::Kind::kVarNe:
        if (!RequireNonNull(State(atom.a)) || !RequireNonNull(State(atom.b))) {
          return false;
        }
        var_ne_.emplace_back(atom.a, atom.b);
        return true;
      case Atom::Kind::kVarCmp:
        if (!RequireNonNull(State(atom.a)) || !RequireNonNull(State(atom.b))) {
          return false;
        }
        approx_ = true;
        return true;
    }
    return true;
  }

  std::map<std::string, int> vars_;
  std::vector<ClassState> states_;
  std::vector<int> parent_;
  std::vector<std::pair<std::string, std::string>> var_ne_;
  bool approx_ = false;
};

// Solves a whole NNF formula: kNo if every conjunct is unsat, kYes if some
// conjunct is satisfiable within the exact fragment, else kMaybe.
Tri Solve(const Node& root) {
  std::vector<Conjunct> dnf;
  if (!ToDnf(root, &dnf)) {
    return Tri::kMaybe;
  }
  bool any_maybe = false;
  for (const Conjunct& conjunct : dnf) {
    ConjunctSolver solver;
    switch (solver.Solve(conjunct)) {
      case ConjunctSolver::Result::kUnsat:
        break;
      case ConjunctSolver::Result::kSatExact:
        return Tri::kYes;
      case ConjunctSolver::Result::kSatApprox:
        any_maybe = true;
        break;
    }
  }
  return any_maybe ? Tri::kMaybe : Tri::kNo;
}

}  // namespace

Tri IsSatisfiable(const sql::Expr& pred) { return Solve(Nnf(pred, false)); }

Tri Intersects(const sql::Expr& a, const sql::Expr& b) {
  std::vector<Node> ch;
  ch.push_back(Nnf(a, false));
  ch.push_back(Nnf(b, false));
  return Solve(Node::And(std::move(ch)));
}

Tri Implies(const sql::Expr& premise, const sql::Expr& conclusion) {
  std::vector<Node> ch;
  ch.push_back(Nnf(premise, false));
  ch.push_back(NotMatched(conclusion));
  switch (Solve(Node::And(std::move(ch)))) {
    case Tri::kNo:
      return Tri::kYes;  // no counterexample row exists
    case Tri::kYes:
      return Tri::kNo;
    case Tri::kMaybe:
      return Tri::kMaybe;
  }
  return Tri::kMaybe;
}

bool BindsParamEquality(const sql::Expr& pred, const std::string& param,
                        std::vector<std::string>* columns) {
  std::vector<Conjunct> dnf;
  if (!ToDnf(Nnf(pred, false), &dnf)) {
    return false;  // cannot prove scoping on overflow
  }
  const std::string pvar = "$" + param;
  std::set<std::string> bound;
  for (const Conjunct& conjunct : dnf) {
    ConjunctSolver solver;
    if (solver.Solve(conjunct) == ConjunctSolver::Result::kUnsat) {
      continue;  // an impossible branch matches nothing
    }
    bool this_bound = false;
    for (const auto& [name, id] : solver.vars()) {
      (void)id;
      if (name.empty() || name[0] == '$') {
        continue;
      }
      if (solver.SameClass(name, pvar)) {
        bound.insert(name);
        this_bound = true;
      }
    }
    if (!this_bound) {
      return false;
    }
  }
  if (columns != nullptr) {
    columns->assign(bound.begin(), bound.end());
  }
  return true;
}

}  // namespace edna::analysis
