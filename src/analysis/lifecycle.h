// Lifecycle verifier: bounded symbolic model checking of disguise
// compositions (§5 generalized beyond pairs).
//
// The pairwise conflict predictor (conflicts.h) compares transformation
// predicates two at a time; it cannot see a 3-way interleaving that strands
// vault entries or resurrects disguised data. This pass model-checks the
// full apply/reveal lifecycle instead:
//
//  1. For every table a spec combination touches, the table's row space is
//     partitioned into REGIONS: the satisfiable sign assignments over the
//     combination's (deduplicated) transformation predicates, decided by the
//     symbolic predicate engine (predicate.h). A region stands for "the rows
//     that originally matched predicates {P1, !P3, ...}".
//  2. The abstract state tracks, per (table, region): row presence plus a
//     per-column tag (original value vs. generated-by spec/op), and a model
//     vault per disguise. Apply executes the engine's phase order
//     (Decorrelate, Modify, Remove), vaulting overwritten state for
//     reversible specs; Reveal restores vault entries in reverse, skipping
//     cell restores whose rows are absent (mirroring the engine).
//  3. Every complete apply/reveal interleaving of the k specs (k <= 3) is
//     explored. After each event the HIDING INVARIANT is checked: while a
//     disguise is active, regions its Removes matched stay absent and cells
//     its Modifies/Decorrelates matched stay non-original. At the end of an
//     all-reversible sequence the state must equal the initial state.
//
// Properties proven per spec / combination, with their finding codes:
//   reversibility    -> "not-reversible" (error): no explored reveal order
//                       restores the pre-apply abstract state.
//   vault completeness -> "vault-incomplete" (error for pii, warning for
//                       quasi): a reversible spec overwrites or removes
//                       Sensitive-annotated state without a vault write.
//   reveal-order safety -> "reveal-order-unsafe" (warning, info for benign
//                       double-remove shadowing): some order breaks the
//                       hiding invariant or the final state, but a safe
//                       order exists (reverse application order always is).
//   idempotence      -> "not-idempotent" (warning if provable, info if
//                       possible): re-applying the spec re-fires a
//                       value-changing transformation, decided by symbolic
//                       substitution of generated values into the predicate.
//   budget overruns  -> "verify-truncated" (warning).
//
// Matching is evaluated against the original-value partition, so a
// transformation that destroys a later spec's predicate match is
// over-approximated as may-match; see DESIGN.md "Lifecycle verification"
// for the soundness argument and caveats.
#ifndef SRC_ANALYSIS_LIFECYCLE_H_
#define SRC_ANALYSIS_LIFECYCLE_H_

#include <cstddef>
#include <vector>

#include "src/analysis/findings.h"
#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

// Model-level fault injection, used by the verifier's own test battery to
// prove it catches broken lifecycles (an engine that forgets reveal records,
// a reveal that restores a non-inverse value). Production callers leave
// these off.
struct LifecycleFaults {
  // Apply skips all model-vault writes: reveals restore nothing.
  bool drop_vault_writes = false;
  // Reveal writes a fresh generated value instead of the vaulted one
  // (a non-inverse transform).
  bool skew_reveal_values = false;
};

struct LifecycleOptions {
  // Largest spec combination explored; clamped to [1, 3]. Pairs reproduce
  // the pairwise predictor; 3 covers the paper's compose-of-compose case.
  int max_k = 2;
  // Region budget: a table with more distinct predicates than this is
  // reported as truncated rather than partitioned (2^n sign vectors).
  size_t max_predicates_per_table = 8;
  // Interleaving budget per combination (k=3 all-reversible needs 90).
  size_t max_sequences_per_combo = 512;
  bool check_idempotence = true;
  LifecycleFaults faults;
};

// Work counters for `verify --json` and bench/ablJ_verifier.
struct LifecycleStats {
  size_t combos = 0;     // spec combinations explored
  size_t tables = 0;     // (combo, table) models built
  size_t regions = 0;    // satisfiable regions across all models
  size_t sequences = 0;  // complete interleavings simulated
  size_t truncated = 0;  // tables/combos skipped over budget
};

// Verifies every combination of up to options.max_k specs. Specs must
// already Validate() against `schema`; null entries are ignored. Findings
// come back sorted and deduplicated.
std::vector<Finding> VerifyLifecycle(
    const std::vector<const disguise::DisguiseSpec*>& specs,
    const db::Schema& schema, const LifecycleOptions& options = {},
    LifecycleStats* stats = nullptr);

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_LIFECYCLE_H_
