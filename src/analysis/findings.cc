#include "src/analysis/findings.h"

#include <algorithm>
#include <tuple>

#include "src/common/strings.h"

namespace edna::analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Finding::ToString() const {
  std::string out = std::string(SeverityName(severity)) + "[" + code + "]";
  std::string where;
  if (!spec.empty()) {
    where = spec;
  }
  if (!table.empty()) {
    if (!where.empty()) {
      where += "/";
    }
    where += table;
    if (!column.empty()) {
      where += "." + column;
    }
  }
  if (!where.empty()) {
    out += " " + where;
  }
  out += ": " + message;
  return out;
}

bool HasErrors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.severity == Severity::kError; });
}

FindingCounts CountFindings(const std::vector<Finding>& findings) {
  FindingCounts counts;
  for (const Finding& f : findings) {
    switch (f.severity) {
      case Severity::kError:
        ++counts.errors;
        break;
      case Severity::kWarning:
        ++counts.warnings;
        break;
      case Severity::kInfo:
        ++counts.infos;
        break;
    }
  }
  return counts;
}

void SortFindings(std::vector<Finding>* findings) {
  std::stable_sort(findings->begin(), findings->end(),
                   [](const Finding& a, const Finding& b) {
                     return std::make_tuple(-static_cast<int>(a.severity), a.table,
                                            a.column, a.spec, a.code, a.message) <
                            std::make_tuple(-static_cast<int>(b.severity), b.table,
                                            b.column, b.spec, b.code, b.message);
                   });
}

void DedupFindings(std::vector<Finding>* findings) {
  SortFindings(findings);
  findings->erase(std::unique(findings->begin(), findings->end(),
                              [](const Finding& a, const Finding& b) {
                                return a.severity == b.severity && a.code == b.code &&
                                       a.spec == b.spec && a.table == b.table &&
                                       a.column == b.column && a.message == b.message;
                              }),
                  findings->end());
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) {
      out += ",";
    }
    out += "\n  {";
    out += "\"severity\":\"" + std::string(SeverityName(f.severity)) + "\",";
    out += "\"code\":\"" + JsonEscape(f.code) + "\",";
    out += "\"spec\":\"" + JsonEscape(f.spec) + "\",";
    out += "\"table\":\"" + JsonEscape(f.table) + "\",";
    out += "\"column\":\"" + JsonEscape(f.column) + "\",";
    out += "\"message\":\"" + JsonEscape(f.message) + "\"}";
  }
  out += findings.empty() ? "]" : "\n]";
  return out;
}

}  // namespace edna::analysis
