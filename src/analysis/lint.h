// Disguise-spec linter: the "data analysis tools and heuristics [that] can
// help developers improve or catch errors in disguise specifications" the
// paper's §7 calls for. Validate() (spec.h) rejects specs that cannot run;
// the linter flags specs that run but likely fail their privacy goal or
// fail at apply time. Lives in src/analysis (moved from src/disguise) so it
// can lean on the symbolic predicate engine (predicate.h).
//
// Findings (by code):
//   blocked-removal     (error)   — the spec removes rows of a table that is
//       referenced through an ON DELETE RESTRICT foreign key by a table the
//       spec leaves untouched: Apply will abort with an integrity error.
//   coverage-gap        (warning) — the spec removes a user's identity row
//       but a table referencing that identity is not transformed; the FK's
//       SET NULL / CASCADE action will fire implicitly, which may be
//       unintended (silent data loss or silent retention).
//   global-remove-all   (warning) — a per-user spec contains a Remove whose
//       predicate is not provably scoped to the disguising user: unless every
//       satisfiable branch forces some column = $UID, it deletes matching
//       rows of EVERY user. (Checked semantically with BindsParamEquality,
//       so "user_id = $UID OR TRUE" is flagged even though it mentions $UID.)
//   unused-placeholder  (warning) — a placeholder recipe no Decorrelate ever
//       targets.
//   placeholder-enabled (warning) — a placeholder recipe for a table with a
//       disabled/deleted-style flag column that is not set TRUE; §3 says
//       placeholder users "should be disabled, ensuring they ... cannot
//       log in".
//   no-assertions       (info)    — the spec declares no end-state
//       assertions; §7 recommends them.
//   noop-modify         (warning) — a Modify whose generator is Keep.
//   irreversible        (info)    — the spec is irreversible; users cannot
//       return (§2 argues for reversibility).
#ifndef SRC_ANALYSIS_LINT_H_
#define SRC_ANALYSIS_LINT_H_

#include <vector>

#include "src/analysis/findings.h"
#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::analysis {

// Analyzes `spec` against `schema`. The spec must already Validate().
// Findings are ordered errors first, then warnings, then infos; `spec` is
// filled in on every finding.
std::vector<Finding> LintSpec(const disguise::DisguiseSpec& spec,
                              const db::Schema& schema);

}  // namespace edna::analysis

#endif  // SRC_ANALYSIS_LINT_H_
