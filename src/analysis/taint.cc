#include "src/analysis/taint.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/analysis/predicate.h"
#include "src/common/strings.h"
#include "src/sql/ast.h"

namespace edna::analysis {

namespace {

using disguise::DisguiseSpec;
using disguise::Generator;
using disguise::kUidParam;
using disguise::TableDisguise;
using disguise::Transformation;
using disguise::TransformKind;

// Builds the linkage predicate `column = $UID`.
sql::ExprPtr ColumnEqualsUid(const std::string& column) {
  return sql::Expr::Binary(sql::BinaryOp::kEq, sql::Expr::ColumnRef("", column),
                           sql::Expr::Param(kUidParam));
}

sql::ExprPtr TautologyTrue() { return sql::Expr::Literal(sql::Value::Bool(true)); }

// Does `tr`'s predicate provably match every row satisfying `linkage`?
bool PredicateCoversLinkage(const Transformation& tr, const sql::Expr& linkage) {
  return Implies(linkage, *tr.predicate()) == Tri::kYes;
}

bool IsRealModify(const Transformation& tr) {
  return tr.kind() == TransformKind::kModify &&
         tr.generator().kind() != Generator::Kind::kKeep;
}

}  // namespace

StatusOr<std::vector<SensitivityAnnotation>> ParseSensitivityAnnotations(
    std::string_view text) {
  std::vector<SensitivityAnnotation> out;
  std::vector<std::string> lines = StrSplit(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    // Strip comments ('#' or '--' to end of line) outside quotes.
    bool in_quote = false;
    size_t cut = line.size();
    for (size_t j = 0; j < line.size(); ++j) {
      if (line[j] == '"') {
        in_quote = !in_quote;
      } else if (!in_quote &&
                 (line[j] == '#' ||
                  (line[j] == '-' && j + 1 < line.size() && line[j + 1] == '-'))) {
        cut = j;
        break;
      }
    }
    line = StrTrim(line.substr(0, cut));
    if (line.empty()) {
      continue;
    }
    auto fail = [&i](const std::string& why) {
      return InvalidArgument(
          StrFormat("sensitivity annotation line %zu: %s", i + 1, why.c_str()));
    };
    size_t colon = line.rfind(':');
    if (colon == std::string_view::npos) {
      return fail("expected `Table.\"column\": level`");
    }
    std::string_view target = StrTrim(line.substr(0, colon));
    std::string_view level = StrTrim(line.substr(colon + 1));
    SensitivityAnnotation ann;
    if (!db::ParseSensitivity(level, &ann.sensitivity)) {
      return fail("unknown sensitivity \"" + std::string(level) +
                  "\" (expected public, quasi, or pii)");
    }
    size_t dot = target.find('.');
    if (dot == std::string_view::npos || dot == 0 || dot + 1 >= target.size()) {
      return fail("expected `Table.\"column\"` before the colon");
    }
    ann.table = std::string(StrTrim(target.substr(0, dot)));
    std::string_view col = StrTrim(target.substr(dot + 1));
    if (col.size() >= 2 && col.front() == '"' && col.back() == '"') {
      col = col.substr(1, col.size() - 2);
    }
    if (col.empty()) {
      return fail("empty column name");
    }
    ann.column = std::string(col);
    out.push_back(std::move(ann));
  }
  return out;
}

Status ApplySensitivityAnnotations(const std::vector<SensitivityAnnotation>& annotations,
                                   db::Schema* schema) {
  for (const SensitivityAnnotation& ann : annotations) {
    db::TableSchema* table = schema->FindMutableTable(ann.table);
    if (table == nullptr) {
      return InvalidArgument("sensitivity annotation names unknown table \"" + ann.table +
                             "\"");
    }
    db::ColumnDef* col = table->FindMutableColumn(ann.column);
    if (col == nullptr) {
      return InvalidArgument("sensitivity annotation names unknown column \"" + ann.table +
                             "." + ann.column + "\"");
    }
    col->sensitivity = ann.sensitivity;
  }
  return OkStatus();
}

std::string DeriveIdentityTable(const DisguiseSpec& spec, const db::Schema& schema) {
  // Candidates: tables with a single-column PK that some transformation of
  // the spec pins to $UID (its predicate only ever matches the user's own
  // row: pred implies pk = $UID).
  std::string best;
  size_t best_in_degree = 0;
  for (const TableDisguise& td : spec.tables()) {
    const db::TableSchema* ts = schema.FindTable(td.table);
    if (ts == nullptr || ts->primary_key().size() != 1) {
      continue;
    }
    sql::ExprPtr pk_eq_uid = ColumnEqualsUid(ts->primary_key()[0]);
    bool pinned = std::any_of(td.transformations.begin(), td.transformations.end(),
                              [&pk_eq_uid](const Transformation& tr) {
                                return Implies(*tr.predicate(), *pk_eq_uid) == Tri::kYes;
                              });
    if (!pinned) {
      continue;
    }
    size_t in_degree = 0;
    for (const db::TableSchema& other : schema.tables()) {
      for (const db::ForeignKeyDef& fk : other.foreign_keys()) {
        if (fk.parent_table == td.table) {
          ++in_degree;
        }
      }
    }
    if (best.empty() || in_degree > best_in_degree) {
      best = td.table;
      best_in_degree = in_degree;
    }
  }
  return best;
}

namespace {

// One FK hop: `child`.`column` references `parent`.
struct Edge {
  std::string child;
  std::string column;
  std::string parent;
  db::FkAction on_delete = db::FkAction::kRestrict;
};

class TaintPass {
 public:
  TaintPass(const DisguiseSpec& spec, const db::Schema& schema, const TaintOptions& options)
      : spec_(spec), schema_(schema), options_(options) {}

  std::vector<Finding> Run() {
    identity_ = options_.identity_table.empty() ? DeriveIdentityTable(spec_, schema_)
                                                : options_.identity_table;
    if (identity_.empty()) {
      Add(Severity::kWarning, "no-identity-anchor", "", "",
          "cannot derive the identity table (no transformation pins a single-column "
          "primary key to $UID); taint analysis skipped -- pass an explicit identity "
          "table to analyze this spec");
      return std::move(findings_);
    }
    const db::TableSchema* identity_ts = schema_.FindTable(identity_);
    if (identity_ts == nullptr || identity_ts->primary_key().size() != 1) {
      Add(Severity::kWarning, "no-identity-anchor", identity_, "",
          "identity table must exist and have a single-column primary key; taint "
          "analysis skipped");
      return std::move(findings_);
    }
    identity_pk_ = identity_ts->primary_key()[0];
    identity_removed_ = IdentityRowRemoved();

    for (const db::TableSchema& ts : schema_.tables()) {
      for (const db::ColumnDef& col : ts.columns()) {
        if (col.sensitivity == db::Sensitivity::kPublic) {
          continue;
        }
        CheckColumn(ts, col);
      }
    }
    SortFindings(&findings_);
    return std::move(findings_);
  }

 private:
  void Add(Severity severity, const char* code, std::string table, std::string column,
           std::string message) {
    findings_.push_back(Finding{severity, code, spec_.name(), std::move(table),
                                std::move(column), std::move(message)});
  }

  // Is the user's identity row itself deleted? True when some Remove on the
  // identity table matches the row with pk = $UID.
  bool IdentityRowRemoved() const {
    const TableDisguise* td = spec_.FindTable(identity_);
    if (td == nullptr) {
      return false;
    }
    sql::ExprPtr linkage = ColumnEqualsUid(identity_pk_);
    for (const Transformation& tr : td->transformations) {
      if (tr.kind() == TransformKind::kRemove && PredicateCoversLinkage(tr, *linkage)) {
        return true;
      }
    }
    return false;
  }

  // Is the FK edge severed for the disguising user's rows? `linkage` is the
  // predicate known to hold on child rows that link to the user THROUGH THIS
  // EDGE (column = $UID for edges into the identity table, TRUE -- i.e. no
  // usable knowledge -- for interior edges of longer paths).
  bool EdgeSevered(const Edge& edge, const sql::Expr& linkage) const {
    // Implicit severing: deleting the identity row fires the FK action.
    // SET NULL breaks the link; CASCADE deletes the child row outright.
    if (edge.parent == identity_ && identity_removed_ &&
        (edge.on_delete == db::FkAction::kSetNull ||
         edge.on_delete == db::FkAction::kCascade)) {
      return true;
    }
    const TableDisguise* td = spec_.FindTable(edge.child);
    if (td == nullptr) {
      return false;
    }
    for (const Transformation& tr : td->transformations) {
      bool hits_column = false;
      switch (tr.kind()) {
        case TransformKind::kRemove:
          hits_column = true;  // deletes the whole row, link included
          break;
        case TransformKind::kDecorrelate:
          hits_column = tr.foreign_key().column == edge.column;
          break;
        case TransformKind::kModify:
          hits_column = tr.column() == edge.column && IsRealModify(tr);
          break;
      }
      if (hits_column && PredicateCoversLinkage(tr, linkage)) {
        return true;
      }
    }
    return false;
  }

  // Is the sensitive column itself destroyed on rows satisfying `linkage`
  // (rows removed, or the column rewritten)?
  bool ColumnCovered(const std::string& table, const std::string& column,
                     const sql::Expr& linkage) const {
    const TableDisguise* td = spec_.FindTable(table);
    if (td == nullptr) {
      return false;
    }
    for (const Transformation& tr : td->transformations) {
      bool hits = tr.kind() == TransformKind::kRemove ||
                  (IsRealModify(tr) && tr.column() == column);
      if (hits && PredicateCoversLinkage(tr, linkage)) {
        return true;
      }
    }
    return false;
  }

  // Enumerates FK paths from `start` to the identity table (DFS over FK
  // edges child -> parent; cycles cut on the current path). Each path is a
  // list of edges; an empty path means start == identity.
  void EnumeratePaths(const std::string& start, std::vector<Edge>* current,
                      std::set<std::string>* on_path, std::vector<std::vector<Edge>>* out,
                      bool* truncated) const {
    if (out->size() >= options_.max_paths) {
      *truncated = true;
      return;
    }
    if (start == identity_ && !current->empty()) {
      out->push_back(*current);
      return;
    }
    if (current->size() >= options_.max_depth) {
      *truncated = true;
      return;
    }
    const db::TableSchema* ts = schema_.FindTable(start);
    if (ts == nullptr) {
      return;
    }
    for (const db::ForeignKeyDef& fk : ts->foreign_keys()) {
      if (on_path->count(fk.parent_table) != 0 && fk.parent_table != identity_) {
        continue;  // cycle
      }
      Edge edge{start, fk.column, fk.parent_table, fk.on_delete};
      current->push_back(edge);
      on_path->insert(fk.parent_table);
      EnumeratePaths(fk.parent_table, current, on_path, out, truncated);
      on_path->erase(fk.parent_table);
      current->pop_back();
    }
  }

  static std::string RenderPath(const std::string& table, const std::string& column,
                                const std::vector<Edge>& path) {
    std::string out = table + "." + column;
    for (const Edge& e : path) {
      out += " -[" + e.child + "." + e.column + "]-> " + e.parent;
    }
    return out;
  }

  void CheckColumn(const db::TableSchema& ts, const db::ColumnDef& col) {
    const bool pii = col.sensitivity == db::Sensitivity::kPii;

    if (ts.name() == identity_) {
      // The column sits on the identity row itself; linkage is pk = $UID.
      sql::ExprPtr linkage = ColumnEqualsUid(identity_pk_);
      if (identity_removed_ || ColumnCovered(ts.name(), col.name, *linkage)) {
        return;
      }
      Add(pii ? Severity::kError : Severity::kWarning,
          pii ? "pii-retained" : "quasi-retained", ts.name(), col.name,
          std::string(db::SensitivityName(col.sensitivity)) + " column \"" + ts.name() +
              "." + col.name +
              "\" on the identity row is neither removed nor modified by this spec");
      return;
    }

    std::vector<std::vector<Edge>> paths;
    std::vector<Edge> current;
    std::set<std::string> on_path = {ts.name()};
    bool truncated = false;
    EnumeratePaths(ts.name(), &current, &on_path, &paths, &truncated);

    if (paths.empty()) {
      if (truncated) {
        Add(Severity::kWarning, "taint-truncated", ts.name(), col.name,
            "FK-path enumeration hit analysis bounds before reaching the identity "
            "table; retention of \"" + ts.name() + "." + col.name + "\" is unverified");
      } else if (pii) {
        Add(Severity::kInfo, "pii-unlinked", ts.name(), col.name,
            "pii column \"" + ts.name() + "." + col.name +
                "\" has no FK path to \"" + identity_ +
                "\": not linkable to a user through the schema (verify no identity is "
                "embedded in values)");
      }
      return;
    }

    for (const std::vector<Edge>& path : paths) {
      // Rows of ts linked through this path satisfy firstEdge.column = $UID
      // only when the path is one hop; for longer paths the linkage is
      // transitive and row-level knowledge degrades to TRUE.
      sql::ExprPtr linkage = path.size() == 1 ? ColumnEqualsUid(path[0].column)
                                              : TautologyTrue();
      if (ColumnCovered(ts.name(), col.name, *linkage)) {
        continue;
      }
      bool severed = false;
      for (size_t i = 0; i < path.size(); ++i) {
        // The final hop's child rows point straight at the user's identity
        // row, so column = $UID is known there; interior hops get no
        // row-level knowledge (TRUE).
        sql::ExprPtr edge_linkage = i == path.size() - 1
                                        ? ColumnEqualsUid(path[i].column)
                                        : TautologyTrue();
        if (EdgeSevered(path[i], *edge_linkage)) {
          severed = true;
          break;
        }
      }
      if (severed) {
        continue;
      }
      Add(pii ? Severity::kError : Severity::kWarning,
          pii ? "pii-retained" : "quasi-retained", ts.name(), col.name,
          std::string(db::SensitivityName(col.sensitivity)) + " column \"" + ts.name() +
              "." + col.name + "\" stays linked to the user via " +
              RenderPath(ts.name(), col.name, path) +
              "; no transformation severs this path");
      return;  // one retention path per column is enough to act on
    }

    if (truncated) {
      Add(Severity::kWarning, "taint-truncated", ts.name(), col.name,
          "some FK paths from \"" + ts.name() + "." + col.name +
              "\" exceeded analysis bounds and were not verified");
    }
  }

  const DisguiseSpec& spec_;
  const db::Schema& schema_;
  const TaintOptions& options_;
  std::string identity_;
  std::string identity_pk_;
  bool identity_removed_ = false;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> AnalyzeTaint(const DisguiseSpec& spec, const db::Schema& schema,
                                  const TaintOptions& options) {
  if (!spec.per_user()) {
    return {Finding{Severity::kInfo, "taint-skipped", spec.name(), "", "",
                    "spec is not per-user; PII taint flow is defined relative to one "
                    "disguising user and was skipped"}};
  }
  return TaintPass(spec, schema, options).Run();
}

}  // namespace edna::analysis
