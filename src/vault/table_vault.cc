#include "src/vault/table_vault.h"

#include <set>

#include "src/common/failpoint.h"
#include "src/sql/parser.h"

namespace edna::vault {

namespace {

// Column order of the reserved table (kept in one place).
constexpr size_t kColId = 0;
constexpr size_t kColDisguiseId = 1;
constexpr size_t kColUserId = 2;    // rendered text of the owner id; NULL = global
constexpr size_t kColCreated = 3;
constexpr size_t kColPayload = 4;

db::TableSchema VaultSchema() {
  db::TableSchema t(kVaultTableName);
  t.AddColumn({.name = "id", .type = db::ColumnType::kInt, .nullable = false,
               .auto_increment = true})
      .AddColumn({.name = "disguiseId", .type = db::ColumnType::kInt, .nullable = false})
      .AddColumn({.name = "userId", .type = db::ColumnType::kString, .nullable = true})
      .AddColumn({.name = "created", .type = db::ColumnType::kInt, .nullable = false})
      .AddColumn({.name = "payload", .type = db::ColumnType::kBlob, .nullable = false})
      .SetPrimaryKey({"id"})
      .AddIndex("disguiseId")
      .AddIndex("userId");
  return t;
}

// Owner ids are stored as their SQL rendering so one STRING column can hold
// int or string user keys uniformly.
sql::Value RenderUid(const sql::Value& uid) {
  if (uid.is_null()) {
    return sql::Value::Null();
  }
  return sql::Value::String(uid.ToSqlString());
}

}  // namespace

StatusOr<std::unique_ptr<TableVault>> TableVault::Create(db::Database* db) {
  if (!db->HasTable(kVaultTableName)) {
    RETURN_IF_ERROR(db->CreateTable(VaultSchema()));
  }
  return std::unique_ptr<TableVault>(new TableVault(db));
}

Status TableVault::Store(const RevealRecord& record) {
  EDNA_FAIL_POINT(failpoints::kVaultStore);
  std::vector<uint8_t> wire = record.Serialize();
  stats_.bytes_stored += wire.size();
  ++stats_.stores;
  db::Row row(5, sql::Value::Null());
  row[kColId] = sql::Value::Null();  // auto-increment
  row[kColDisguiseId] = sql::Value::Int(static_cast<int64_t>(record.disguise_id));
  row[kColUserId] = RenderUid(record.user_id);
  row[kColCreated] = sql::Value::Int(record.created);
  row[kColPayload] = sql::Value::Blob(std::move(wire));
  return db_->Insert(kVaultTableName, std::move(row)).status();
}

StatusOr<std::vector<RevealRecord>> TableVault::FetchWhere(const std::string& predicate,
                                                           const sql::ParamMap& params) {
  ++stats_.fetches;
  ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression(predicate));
  // SelectRows copies under the table lock: a concurrent Store/Remove from
  // another batch worker cannot invalidate the result mid-deserialize.
  ASSIGN_OR_RETURN(std::vector<db::Row> rows,
                   db_->SelectRows(kVaultTableName, pred.get(), params));
  std::vector<RevealRecord> out;
  out.reserve(rows.size());
  for (const db::Row& row : rows) {
    const sql::Value& payload = row[kColPayload];
    ASSIGN_OR_RETURN(RevealRecord rec, RevealRecord::Deserialize(payload.AsBlob()));
    out.push_back(std::move(rec));
    ++stats_.records_fetched;
  }
  return out;
}

StatusOr<std::vector<RevealRecord>> TableVault::FetchForUser(const sql::Value& uid) {
  sql::ParamMap params;
  params.emplace("OWNER", RenderUid(uid));
  return FetchWhere("\"userId\" = $OWNER", params);
}

StatusOr<std::vector<RevealRecord>> TableVault::FetchForDisguise(uint64_t disguise_id) {
  sql::ParamMap params;
  params.emplace("DID", sql::Value::Int(static_cast<int64_t>(disguise_id)));
  return FetchWhere("\"disguiseId\" = $DID", params);
}

StatusOr<std::vector<RevealRecord>> TableVault::FetchGlobal() {
  return FetchWhere("\"userId\" IS NULL", {});
}

Status TableVault::Remove(uint64_t disguise_id) {
  EDNA_FAIL_POINT(failpoints::kVaultRemove);
  ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression("\"disguiseId\" = $DID"));
  sql::ParamMap params;
  params.emplace("DID", sql::Value::Int(static_cast<int64_t>(disguise_id)));
  return db_->Delete(kVaultTableName, pred.get(), params).status();
}

StatusOr<std::vector<uint64_t>> TableVault::ListDisguiseIds() const {
  if (!db_->HasTable(kVaultTableName)) {
    return std::vector<uint64_t>{};
  }
  ASSIGN_OR_RETURN(std::vector<db::Row> rows,
                   db_->SelectRows(kVaultTableName, nullptr, {}));
  std::set<uint64_t> ids;
  for (const db::Row& row : rows) {
    ids.insert(static_cast<uint64_t>(row[kColDisguiseId].AsInt()));
  }
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

StatusOr<size_t> TableVault::ExpireBefore(TimePoint cutoff) {
  ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression("\"created\" < $CUTOFF"));
  sql::ParamMap params;
  params.emplace("CUTOFF", sql::Value::Int(cutoff));
  return db_->Delete(kVaultTableName, pred.get(), params);
}

size_t TableVault::NumRecords() const {
  auto count = db_->Count(kVaultTableName, nullptr, {});
  return count.ok() ? *count : 0;
}

}  // namespace edna::vault
