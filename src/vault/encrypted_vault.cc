#include "src/vault/encrypted_vault.h"

#include <set>

#include "src/common/failpoint.h"

namespace edna::vault {

EncryptedVault::EncryptedVault(std::vector<uint8_t> app_key, KeyProvider keys, Rng rng)
    : app_key_(std::move(app_key)), keys_(std::move(keys)), rng_(rng) {}

std::string EncryptedVault::RenderOwner(const sql::Value& uid) {
  return uid.is_null() ? std::string() : uid.ToSqlString();
}

void EncryptedVault::RegisterUser(const sql::Value& uid, const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  fingerprints_[RenderOwner(uid)] = fingerprint;
}

const std::string* EncryptedVault::FindFingerprintLocked(const sql::Value& uid) const {
  auto it = fingerprints_.find(RenderOwner(uid));
  return it == fingerprints_.end() ? nullptr : &it->second;
}

const std::string* EncryptedVault::FindFingerprint(const sql::Value& uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindFingerprintLocked(uid);
}

StatusOr<std::vector<uint8_t>> EncryptedVault::KeyFor(const sql::Value& uid) {
  if (uid.is_null()) {
    return app_key_;
  }
  if (!keys_) {
    return PermissionDenied("no key provider configured");
  }
  ASSIGN_OR_RETURN(std::vector<uint8_t> key, keys_(uid));
  // Verify against the registered fingerprint when one exists, so a wrong
  // key fails loudly instead of producing a MAC error deep in a reveal.
  const std::string* fp = FindFingerprintLocked(uid);
  if (fp != nullptr && crypto::KeyFingerprint(key) != *fp) {
    return PermissionDenied("supplied key does not match registered fingerprint for " +
                            uid.ToSqlString());
  }
  return key;
}

Status EncryptedVault::Store(const RevealRecord& record) {
  EDNA_FAIL_POINT(failpoints::kVaultStore);
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(std::vector<uint8_t> key, KeyFor(record.user_id));
  Entry e;
  e.disguise_id = record.disguise_id;
  e.user_id = record.user_id;
  e.created = record.created;
  crypto::ChaChaNonce nonce{};
  std::vector<uint8_t> nbytes = rng_.NextBytes(nonce.size());
  std::copy(nbytes.begin(), nbytes.end(), nonce.begin());
  // Owner + disguise id are authenticated-but-visible metadata: the vault
  // must route records without decrypting them.
  std::string aad = RenderOwner(e.user_id) + "#" + std::to_string(e.disguise_id);
  e.box = crypto::Seal(key, nonce, record.Serialize(), aad);
  ++stats_.crypto_ops;
  ++stats_.stores;
  stats_.bytes_stored += e.box.ciphertext.size() + e.box.nonce.size() + e.box.mac.size();
  entries_.push_back(std::move(e));
  return OkStatus();
}

Status EncryptedVault::StoreBatch(const std::vector<RevealRecord>& records) {
  if (!batched_crypto_) {
    return Vault::StoreBatch(records);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Seal keys derived once per distinct owner key across the batch. Keyed by
  // the raw key bytes (not the owner) so a KeyProvider that rotates keys
  // mid-batch can never pair a record with stale subkeys.
  std::map<std::vector<uint8_t>, crypto::SealKeys> derived;
  for (const RevealRecord& record : records) {
    // Same per-record sequence as Store: fail point, key resolution, nonce
    // draw, seal — so crash batteries and deterministic-rng fingerprints see
    // an identical schedule, and output bytes match a Store loop exactly.
    EDNA_FAIL_POINT(failpoints::kVaultStore);
    ASSIGN_OR_RETURN(std::vector<uint8_t> key, KeyFor(record.user_id));
    auto [it, inserted] = derived.try_emplace(key);
    if (inserted) {
      it->second = crypto::DeriveSealKeys(key);
    }
    Entry e;
    e.disguise_id = record.disguise_id;
    e.user_id = record.user_id;
    e.created = record.created;
    crypto::ChaChaNonce nonce{};
    std::vector<uint8_t> nbytes = rng_.NextBytes(nonce.size());
    std::copy(nbytes.begin(), nbytes.end(), nonce.begin());
    std::string aad = RenderOwner(e.user_id) + "#" + std::to_string(e.disguise_id);
    e.box = crypto::SealWith(it->second, nonce, record.Serialize(), aad);
    ++stats_.crypto_ops;
    ++stats_.stores;
    stats_.bytes_stored += e.box.ciphertext.size() + e.box.nonce.size() + e.box.mac.size();
    entries_.push_back(std::move(e));
  }
  return OkStatus();
}

StatusOr<RevealRecord> EncryptedVault::OpenEntry(const Entry& e,
                                                 const crypto::SealKeys& keys) {
  std::string aad = RenderOwner(e.user_id) + "#" + std::to_string(e.disguise_id);
  ++stats_.crypto_ops;
  ASSIGN_OR_RETURN(std::vector<uint8_t> plain, crypto::OpenWith(keys, e.box, aad));
  return RevealRecord::Deserialize(plain);
}

StatusOr<std::vector<RevealRecord>> EncryptedVault::FetchForUser(const sql::Value& uid) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  std::vector<RevealRecord> out;
  bool any = false;
  std::vector<uint8_t> key;
  crypto::SealKeys keys;
  for (const Entry& e : entries_) {
    if (e.user_id.is_null() || uid.is_null() || !e.user_id.SqlEquals(uid)) {
      continue;
    }
    if (!any) {
      ASSIGN_OR_RETURN(key, KeyFor(uid));  // one approval per fetch, not per record
      if (batched_crypto_) {
        keys = crypto::DeriveSealKeys(key);  // ...and one subkey split per fetch
      }
      any = true;
    }
    ASSIGN_OR_RETURN(RevealRecord rec,
                     OpenEntry(e, batched_crypto_ ? keys : crypto::DeriveSealKeys(key)));
    out.push_back(std::move(rec));
    ++stats_.records_fetched;
  }
  return out;
}

StatusOr<std::vector<RevealRecord>> EncryptedVault::FetchForDisguise(uint64_t disguise_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  std::vector<RevealRecord> out;
  std::map<std::vector<uint8_t>, crypto::SealKeys> derived;
  for (const Entry& e : entries_) {
    if (e.disguise_id != disguise_id) {
      continue;
    }
    ASSIGN_OR_RETURN(std::vector<uint8_t> key, KeyFor(e.user_id));
    if (batched_crypto_) {
      auto [it, inserted] = derived.try_emplace(key);
      if (inserted) {
        it->second = crypto::DeriveSealKeys(key);
      }
      ASSIGN_OR_RETURN(RevealRecord rec, OpenEntry(e, it->second));
      out.push_back(std::move(rec));
    } else {
      ASSIGN_OR_RETURN(RevealRecord rec, OpenEntry(e, crypto::DeriveSealKeys(key)));
      out.push_back(std::move(rec));
    }
    ++stats_.records_fetched;
  }
  return out;
}

StatusOr<std::vector<RevealRecord>> EncryptedVault::FetchGlobal() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  std::vector<RevealRecord> out;
  bool have_keys = false;
  crypto::SealKeys app_keys;
  for (const Entry& e : entries_) {
    if (!e.user_id.is_null()) {
      continue;
    }
    if (batched_crypto_ && !have_keys) {
      app_keys = crypto::DeriveSealKeys(app_key_);
      have_keys = true;
    }
    ASSIGN_OR_RETURN(
        RevealRecord rec,
        OpenEntry(e, batched_crypto_ ? app_keys : crypto::DeriveSealKeys(app_key_)));
    out.push_back(std::move(rec));
    ++stats_.records_fetched;
  }
  return out;
}

Status EncryptedVault::Remove(uint64_t disguise_id) {
  EDNA_FAIL_POINT(failpoints::kVaultRemove);
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_, [&](const Entry& e) { return e.disguise_id == disguise_id; });
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> EncryptedVault::ListDisguiseIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<uint64_t> ids;
  for (const Entry& e : entries_) {
    ids.insert(e.disguise_id);
  }
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

StatusOr<size_t> EncryptedVault::ExpireBefore(TimePoint cutoff) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t before = entries_.size();
  std::erase_if(entries_, [&](const Entry& e) { return e.created < cutoff; });
  return before - entries_.size();
}

}  // namespace edna::vault
