#include "src/vault/offline_vault.h"

#include <chrono>
#include <set>

#include "src/common/failpoint.h"

namespace edna::vault {

void OfflineVault::SimulateAccess() const {
  if (access_delay_us_ == 0) {
    return;
  }
  auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(access_delay_us_);
  while (std::chrono::steady_clock::now() < until) {
    // Busy-wait: models synchronous storage latency without descheduling
    // noise skewing small benchmark intervals.
  }
}

Status OfflineVault::Store(const RevealRecord& record) {
  EDNA_FAIL_POINT(failpoints::kVaultStore);
  SimulateAccess();
  // Serialize outside the lock; only the list append is critical.
  Entry e;
  e.disguise_id = record.disguise_id;
  e.user_id = record.user_id;
  e.created = record.created;
  e.wire = record.Serialize();
  stats_.bytes_stored += e.wire.size();
  ++stats_.stores;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(e));
  return OkStatus();
}

StatusOr<std::vector<RevealRecord>> OfflineVault::FetchForUser(const sql::Value& uid) {
  SimulateAccess();
  ++stats_.fetches;
  // Copy the matching wire images under the lock, decode outside it.
  std::vector<std::vector<uint8_t>> wires;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (!e.user_id.is_null() && e.user_id.SqlEquals(uid)) {
        wires.push_back(e.wire);
      }
    }
  }
  std::vector<RevealRecord> out;
  out.reserve(wires.size());
  for (const std::vector<uint8_t>& wire : wires) {
    ASSIGN_OR_RETURN(RevealRecord rec, RevealRecord::Deserialize(wire));
    out.push_back(std::move(rec));
    ++stats_.records_fetched;
  }
  return out;
}

StatusOr<std::vector<RevealRecord>> OfflineVault::FetchForDisguise(uint64_t disguise_id) {
  SimulateAccess();
  ++stats_.fetches;
  std::vector<std::vector<uint8_t>> wires;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.disguise_id == disguise_id) {
        wires.push_back(e.wire);
      }
    }
  }
  std::vector<RevealRecord> out;
  out.reserve(wires.size());
  for (const std::vector<uint8_t>& wire : wires) {
    ASSIGN_OR_RETURN(RevealRecord rec, RevealRecord::Deserialize(wire));
    out.push_back(std::move(rec));
    ++stats_.records_fetched;
  }
  return out;
}

StatusOr<std::vector<RevealRecord>> OfflineVault::FetchGlobal() {
  SimulateAccess();
  ++stats_.fetches;
  std::vector<std::vector<uint8_t>> wires;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.user_id.is_null()) {
        wires.push_back(e.wire);
      }
    }
  }
  std::vector<RevealRecord> out;
  out.reserve(wires.size());
  for (const std::vector<uint8_t>& wire : wires) {
    ASSIGN_OR_RETURN(RevealRecord rec, RevealRecord::Deserialize(wire));
    out.push_back(std::move(rec));
    ++stats_.records_fetched;
  }
  return out;
}

Status OfflineVault::Remove(uint64_t disguise_id) {
  EDNA_FAIL_POINT(failpoints::kVaultRemove);
  SimulateAccess();
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_, [&](const Entry& e) { return e.disguise_id == disguise_id; });
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> OfflineVault::ListDisguiseIds() const {
  std::set<uint64_t> ids;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    ids.insert(e.disguise_id);
  }
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

StatusOr<size_t> OfflineVault::ExpireBefore(TimePoint cutoff) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t before = entries_.size();
  std::erase_if(entries_, [&](const Entry& e) { return e.created < cutoff; });
  return before - entries_.size();
}

}  // namespace edna::vault
