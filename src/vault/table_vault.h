// Table vault: Edna's implementation — reveal records stored as rows of a
// reserved table inside the application database itself. Cheapest to access
// (same storage engine, same transaction), but the weakest deployment model:
// disguised data survives in the application database, so it neither
// protects against breaches nor satisfies GDPR (§4.2's discussion).
#ifndef SRC_VAULT_TABLE_VAULT_H_
#define SRC_VAULT_TABLE_VAULT_H_

#include "src/db/database.h"
#include "src/vault/vault.h"

namespace edna::vault {

// Name of the reserved table; application specs must not touch it.
inline constexpr char kVaultTableName[] = "__edna_vault";

class TableVault : public Vault {
 public:
  // Creates the reserved table in `db` if it does not exist. `db` must
  // outlive the vault.
  static StatusOr<std::unique_ptr<TableVault>> Create(db::Database* db);

  std::string ModelName() const override { return "table"; }

  Status Store(const RevealRecord& record) override;
  StatusOr<std::vector<RevealRecord>> FetchForUser(const sql::Value& uid) override;
  StatusOr<std::vector<RevealRecord>> FetchForDisguise(uint64_t disguise_id) override;
  StatusOr<std::vector<RevealRecord>> FetchGlobal() override;
  Status Remove(uint64_t disguise_id) override;
  StatusOr<std::vector<uint64_t>> ListDisguiseIds() const override;
  StatusOr<size_t> ExpireBefore(TimePoint cutoff) override;
  size_t NumRecords() const override;

 private:
  explicit TableVault(db::Database* db) : db_(db) {}

  StatusOr<std::vector<RevealRecord>> FetchWhere(const std::string& predicate,
                                                 const sql::ParamMap& params);

  db::Database* db_;
};

}  // namespace edna::vault

#endif  // SRC_VAULT_TABLE_VAULT_H_
