#include "src/vault/reveal_record.h"

#include "src/sql/codec.h"

namespace edna::vault {

RevealOp RevealOp::RestoreRow(std::string table, db::RowId id, db::Row row) {
  RevealOp op;
  op.kind = Kind::kRestoreRow;
  op.table = std::move(table);
  op.row_id = id;
  op.row = std::move(row);
  return op;
}

RevealOp RevealOp::RestoreColumn(std::string table, db::RowId id, std::string column,
                                 sql::Value old_value, sql::Value new_value) {
  RevealOp op;
  op.kind = Kind::kRestoreColumn;
  op.table = std::move(table);
  op.row_id = id;
  op.column = std::move(column);
  op.old_value = std::move(old_value);
  op.new_value = std::move(new_value);
  return op;
}

RevealOp RevealOp::DropPlaceholder(std::string table, db::RowId id) {
  RevealOp op;
  op.kind = Kind::kDropPlaceholder;
  op.table = std::move(table);
  op.row_id = id;
  return op;
}

std::vector<uint8_t> RevealRecord::Serialize() const {
  sql::ByteWriter w;
  w.U64(disguise_id);
  w.String(disguise_name);
  w.Value(user_id);
  w.I64(created);
  w.U32(static_cast<uint32_t>(ops.size()));
  for (const RevealOp& op : ops) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.String(op.table);
    w.U64(op.row_id);
    w.Value(op.owner);
    switch (op.kind) {
      case RevealOp::Kind::kRestoreRow:
        w.U32(static_cast<uint32_t>(op.row.size()));
        for (const sql::Value& v : op.row) {
          w.Value(v);
        }
        break;
      case RevealOp::Kind::kRestoreColumn:
        w.String(op.column);
        w.Value(op.old_value);
        w.Value(op.new_value);
        break;
      case RevealOp::Kind::kDropPlaceholder:
        break;
    }
  }
  return w.Take();
}

StatusOr<RevealRecord> RevealRecord::Deserialize(const std::vector<uint8_t>& wire) {
  sql::ByteReader r(wire);
  RevealRecord rec;
  ASSIGN_OR_RETURN(rec.disguise_id, r.U64());
  ASSIGN_OR_RETURN(rec.disguise_name, r.String());
  ASSIGN_OR_RETURN(rec.user_id, r.Value());
  ASSIGN_OR_RETURN(rec.created, r.I64());
  ASSIGN_OR_RETURN(uint32_t num_ops, r.U32());
  rec.ops.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    RevealOp op;
    ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind < 1 || kind > 3) {
      return InvalidArgument("bad reveal op kind");
    }
    op.kind = static_cast<RevealOp::Kind>(kind);
    ASSIGN_OR_RETURN(op.table, r.String());
    ASSIGN_OR_RETURN(op.row_id, r.U64());
    ASSIGN_OR_RETURN(op.owner, r.Value());
    switch (op.kind) {
      case RevealOp::Kind::kRestoreRow: {
        ASSIGN_OR_RETURN(uint32_t width, r.U32());
        op.row.reserve(width);
        for (uint32_t c = 0; c < width; ++c) {
          ASSIGN_OR_RETURN(sql::Value v, r.Value());
          op.row.push_back(std::move(v));
        }
        break;
      }
      case RevealOp::Kind::kRestoreColumn: {
        ASSIGN_OR_RETURN(op.column, r.String());
        ASSIGN_OR_RETURN(op.old_value, r.Value());
        ASSIGN_OR_RETURN(op.new_value, r.Value());
        break;
      }
      case RevealOp::Kind::kDropPlaceholder:
        break;
    }
    rec.ops.push_back(std::move(op));
  }
  if (!r.AtEnd()) {
    return InvalidArgument("trailing bytes in reveal record");
  }
  return rec;
}

}  // namespace edna::vault
