// Encrypted per-user vault: the strongest deployment model of §4.2. Each
// record is sealed (ChaCha20 + HMAC) under the owning user's vault key; the
// application stores only ciphertext and key fingerprints. Reading a user's
// records requires the user's key, supplied through a KeyProvider — modeling
// "access might require explicit approval by the user, who holds the private
// key". Global records are sealed under an application-level key.
//
// Keys may additionally be escrowed via 2-of-3 secret sharing (crypto/key.h)
// so a lost user key is recoverable with user+app, user+third-party, or
// app+third-party cooperation.
#ifndef SRC_VAULT_ENCRYPTED_VAULT_H_
#define SRC_VAULT_ENCRYPTED_VAULT_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/common/rng.h"
#include "src/crypto/aead.h"
#include "src/crypto/key.h"
#include "src/vault/vault.h"

namespace edna::vault {

// Returns the vault key for `uid`, or kPermissionDenied if the user (or
// their escrow quorum) declines / is unavailable.
using KeyProvider = std::function<StatusOr<std::vector<uint8_t>>(const sql::Value& uid)>;

class EncryptedVault : public Vault {
 public:
  // `app_key` seals global records; `keys` resolves per-user keys; `rng`
  // supplies nonces (deterministic in tests).
  EncryptedVault(std::vector<uint8_t> app_key, KeyProvider keys, Rng rng);

  std::string ModelName() const override { return "encrypted"; }

  // Registers a user's key fingerprint (the key itself is never stored).
  void RegisterUser(const sql::Value& uid, const std::string& fingerprint);
  const std::string* FindFingerprint(const sql::Value& uid) const;

  // When true (the default), fetch loops and StoreBatch derive the enc/MAC
  // subkey pair once per owner key and reuse it across records
  // (crypto::SealKeys); when false every record pays its own two-chain
  // derivation, matching the pre-batched behavior. Output bytes are
  // identical either way — the knob exists so the ablation bench can
  // measure the amortization honestly.
  void set_batched_crypto(bool on) { batched_crypto_ = on; }
  bool batched_crypto() const { return batched_crypto_; }

  Status Store(const RevealRecord& record) override;
  Status StoreBatch(const std::vector<RevealRecord>& records) override;
  StatusOr<std::vector<RevealRecord>> FetchForUser(const sql::Value& uid) override;
  StatusOr<std::vector<RevealRecord>> FetchForDisguise(uint64_t disguise_id) override;
  StatusOr<std::vector<RevealRecord>> FetchGlobal() override;
  Status Remove(uint64_t disguise_id) override;
  StatusOr<std::vector<uint64_t>> ListDisguiseIds() const override;
  StatusOr<size_t> ExpireBefore(TimePoint cutoff) override;
  size_t NumRecords() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    uint64_t disguise_id;
    sql::Value user_id;  // Null = global
    TimePoint created;
    crypto::SealedBox box;
  };

  StatusOr<std::vector<uint8_t>> KeyFor(const sql::Value& uid);
  static std::string RenderOwner(const sql::Value& uid);
  StatusOr<RevealRecord> OpenEntry(const Entry& e, const crypto::SealKeys& keys);
  const std::string* FindFingerprintLocked(const sql::Value& uid) const;

  std::vector<uint8_t> app_key_;
  KeyProvider keys_;
  bool batched_crypto_ = true;
  // One mutex guards entries_, fingerprints_, and the nonce rng. Crypto runs
  // under the lock: this backend models the per-user-approval deployment and
  // is not on the parallel-batch fast path (OfflineVault is); the KeyProvider
  // callback must not call back into the vault.
  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, std::string> fingerprints_;  // rendered uid -> fp
  std::vector<Entry> entries_;
};

}  // namespace edna::vault

#endif  // SRC_VAULT_ENCRYPTED_VAULT_H_
