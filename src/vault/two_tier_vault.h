// Two-tier vault: the multi-tier design sketched in §4.2. Reveal records of
// global (non-user-invoked) disguises such as ConfAnon go to a first-tier
// vault freely accessible to the disguising tool; records of user-invoked
// disguises go to a second-tier per-user (typically encrypted) vault. This
// keeps complete reversal of a global disguise feasible while keeping user
// data under user-held keys.
#ifndef SRC_VAULT_TWO_TIER_VAULT_H_
#define SRC_VAULT_TWO_TIER_VAULT_H_

#include <algorithm>
#include <memory>

#include "src/vault/vault.h"

namespace edna::vault {

class TwoTierVault : public Vault {
 public:
  // Takes ownership of both tiers.
  TwoTierVault(std::unique_ptr<Vault> global_tier, std::unique_ptr<Vault> user_tier)
      : global_tier_(std::move(global_tier)), user_tier_(std::move(user_tier)) {}

  std::string ModelName() const override {
    return "two-tier(" + global_tier_->ModelName() + "," + user_tier_->ModelName() + ")";
  }

  Status Store(const RevealRecord& record) override {
    ++stats_.stores;
    if (record.user_id.is_null()) {
      return global_tier_->Store(record);
    }
    return user_tier_->Store(record);
  }

  StatusOr<std::vector<RevealRecord>> FetchForUser(const sql::Value& uid) override {
    ++stats_.fetches;
    return user_tier_->FetchForUser(uid);
  }

  StatusOr<std::vector<RevealRecord>> FetchForDisguise(uint64_t disguise_id) override {
    ++stats_.fetches;
    // A disguise application writes to exactly one tier; probe global first
    // (cheap), then the user tier.
    ASSIGN_OR_RETURN(std::vector<RevealRecord> global,
                     global_tier_->FetchForDisguise(disguise_id));
    if (!global.empty()) {
      return global;
    }
    return user_tier_->FetchForDisguise(disguise_id);
  }

  StatusOr<std::vector<RevealRecord>> FetchGlobal() override {
    ++stats_.fetches;
    return global_tier_->FetchGlobal();
  }

  Status Remove(uint64_t disguise_id) override {
    RETURN_IF_ERROR(global_tier_->Remove(disguise_id));
    return user_tier_->Remove(disguise_id);
  }

  StatusOr<std::vector<uint64_t>> ListDisguiseIds() const override {
    ASSIGN_OR_RETURN(std::vector<uint64_t> ids, global_tier_->ListDisguiseIds());
    ASSIGN_OR_RETURN(std::vector<uint64_t> user_ids, user_tier_->ListDisguiseIds());
    ids.insert(ids.end(), user_ids.begin(), user_ids.end());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  }

  StatusOr<size_t> ExpireBefore(TimePoint cutoff) override {
    ASSIGN_OR_RETURN(size_t a, global_tier_->ExpireBefore(cutoff));
    ASSIGN_OR_RETURN(size_t b, user_tier_->ExpireBefore(cutoff));
    return a + b;
  }

  size_t NumRecords() const override {
    return global_tier_->NumRecords() + user_tier_->NumRecords();
  }

  VaultStats CombinedStats() const override {
    VaultStats out = stats_;
    for (const Vault* tier : {global_tier_.get(), user_tier_.get()}) {
      VaultStats s = tier->CombinedStats();
      out.records_fetched += s.records_fetched;
      out.bytes_stored += s.bytes_stored;
      out.crypto_ops += s.crypto_ops;
    }
    return out;
  }

  Vault* global_tier() { return global_tier_.get(); }
  Vault* user_tier() { return user_tier_.get(); }

 private:
  std::unique_ptr<Vault> global_tier_;
  std::unique_ptr<Vault> user_tier_;
};

}  // namespace edna::vault

#endif  // SRC_VAULT_TWO_TIER_VAULT_H_
