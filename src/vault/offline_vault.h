// Offline vault: models the "vaults in offline storage" deployment of §4.2.
// Records are held as serialized wire bytes (as they would sit in a file or
// object store) and decoded on every fetch; an optional simulated access
// latency models the extra cost of leaving the database process. This is a
// SIMULATION of offline storage — see DESIGN.md, substitutions table.
#ifndef SRC_VAULT_OFFLINE_VAULT_H_
#define SRC_VAULT_OFFLINE_VAULT_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/vault/vault.h"

namespace edna::vault {

// Thread-safe: an internal mutex guards the entry list; (de)serialization
// and the simulated access latency run outside the lock so concurrent batch
// workers overlap the expensive part.
class OfflineVault : public Vault {
 public:
  // `access_delay_us`: simulated per-operation storage latency (0 = none).
  explicit OfflineVault(uint64_t access_delay_us = 0)
      : access_delay_us_(access_delay_us) {}

  std::string ModelName() const override { return "offline"; }

  Status Store(const RevealRecord& record) override;
  StatusOr<std::vector<RevealRecord>> FetchForUser(const sql::Value& uid) override;
  StatusOr<std::vector<RevealRecord>> FetchForDisguise(uint64_t disguise_id) override;
  StatusOr<std::vector<RevealRecord>> FetchGlobal() override;
  Status Remove(uint64_t disguise_id) override;
  StatusOr<std::vector<uint64_t>> ListDisguiseIds() const override;
  StatusOr<size_t> ExpireBefore(TimePoint cutoff) override;
  size_t NumRecords() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    uint64_t disguise_id;
    sql::Value user_id;
    TimePoint created;
    std::vector<uint8_t> wire;
  };

  void SimulateAccess() const;

  uint64_t access_delay_us_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // insertion (= time) order
};

}  // namespace edna::vault

#endif  // SRC_VAULT_OFFLINE_VAULT_H_
