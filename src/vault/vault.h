// Vault interface (§4.2): a storage location, not accessible to application
// queries, holding the reveal records of applied disguises. Deployment
// models differ in where records live and who can read them; all implement
// this interface so the disguise engine is backend-agnostic.
#ifndef SRC_VAULT_VAULT_H_
#define SRC_VAULT_VAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/vault/reveal_record.h"

namespace edna::vault {

// Access-cost accounting so the vault-model ablation can compare backends.
// Counters are atomics (vaults are shared by batch worker threads); copies
// take a relaxed snapshot so by-value uses keep compiling.
struct VaultStats {
  std::atomic<uint64_t> stores{0};
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> records_fetched{0};
  std::atomic<uint64_t> bytes_stored{0};
  std::atomic<uint64_t> crypto_ops{0};  // seal/open operations (encrypted backends)

  VaultStats() = default;
  VaultStats(const VaultStats& o) { *this = o; }
  VaultStats& operator=(const VaultStats& o) {
    stores = o.stores.load(std::memory_order_relaxed);
    fetches = o.fetches.load(std::memory_order_relaxed);
    records_fetched = o.records_fetched.load(std::memory_order_relaxed);
    bytes_stored = o.bytes_stored.load(std::memory_order_relaxed);
    crypto_ops = o.crypto_ops.load(std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = VaultStats{}; }
};

class Vault {
 public:
  virtual ~Vault() = default;

  // Human-readable deployment model name ("table", "offline", ...).
  virtual std::string ModelName() const = 0;

  // Persists one reveal record.
  virtual Status Store(const RevealRecord& record) = 0;

  // Persists N reveal records in order, stopping at the first failure
  // (records before the failure remain stored, matching a Store loop).
  // Backends override this to amortize per-record costs — the encrypted
  // vault derives its seal keys once per owner instead of once per record —
  // but every override must keep the loop's observable behavior: same
  // record order, same per-record fail-point hits, same nonce draw order.
  virtual Status StoreBatch(const std::vector<RevealRecord>& records) {
    for (const RevealRecord& record : records) {
      RETURN_IF_ERROR(Store(record));
    }
    return OkStatus();
  }

  // All records owned by `uid` (per-user disguises), oldest first.
  virtual StatusOr<std::vector<RevealRecord>> FetchForUser(const sql::Value& uid) = 0;

  // All records of one disguise application.
  virtual StatusOr<std::vector<RevealRecord>> FetchForDisguise(uint64_t disguise_id) = 0;

  // All global (ownerless) records, oldest first.
  virtual StatusOr<std::vector<RevealRecord>> FetchGlobal() = 0;

  // Drops the records of a disguise (after permanent reveal).
  virtual Status Remove(uint64_t disguise_id) = 0;

  // Distinct disguise ids with at least one stored record, ascending. Used
  // by the recovery/audit subsystem to find vault records orphaned by a
  // crash (no matching disguise-log entry).
  virtual StatusOr<std::vector<uint64_t>> ListDisguiseIds() const = 0;

  // Drops every record created before `cutoff`: entries "configured to
  // expire after some time, making the corresponding disguises irreversible".
  // Returns the number of records dropped.
  virtual StatusOr<size_t> ExpireBefore(TimePoint cutoff) = 0;

  virtual size_t NumRecords() const = 0;

  VaultStats& stats() { return stats_; }
  const VaultStats& stats() const { return stats_; }

  // Aggregated view for composite vaults (default: own stats).
  virtual VaultStats CombinedStats() const { return stats_; }

 protected:
  VaultStats stats_;
};

}  // namespace edna::vault

#endif  // SRC_VAULT_VAULT_H_
