// Reveal records: the "reveal functions" of §4.2, reified as data. When a
// reversible disguise runs, the engine emits one RevealRecord per disguise
// application; each record carries the exact inverse operations (in apply
// order) needed to restore the pre-disguise state:
//   * kRestoreRow      — re-insert a removed row,
//   * kRestoreColumn   — put back an overwritten column value (undoes both
//                        Modify and the FK rewrite of Decorrelate),
//   * kDropPlaceholder — delete a placeholder identity the disguise created.
// Reversal applies the ops in reverse order inside one transaction.
#ifndef SRC_VAULT_REVEAL_RECORD_H_
#define SRC_VAULT_REVEAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/db/row.h"
#include "src/sql/value.h"

namespace edna::vault {

struct RevealOp {
  enum class Kind : uint8_t {
    kRestoreRow = 1,
    kRestoreColumn = 2,
    kDropPlaceholder = 3,
  };

  Kind kind = Kind::kRestoreRow;
  std::string table;
  db::RowId row_id = db::kInvalidRowId;
  db::Row row;           // kRestoreRow: the full removed row
  std::string column;    // kRestoreColumn
  sql::Value old_value;  // kRestoreColumn: pre-disguise value
  sql::Value new_value;  // kRestoreColumn: what the disguise wrote (lets the
                         // composition path map placeholder -> original)
  // The user this op's data belonged to, when attributable (decorrelation
  // ops know the identity they detached). Global disguises shard their
  // reveal records by this owner into per-user vault entries, so that
  // composing a later per-user disguise only reads ONE user's vault — Edna's
  // "per-user database tables" vault model. Null = unattributed.
  sql::Value owner;

  static RevealOp RestoreRow(std::string table, db::RowId id, db::Row row);
  static RevealOp RestoreColumn(std::string table, db::RowId id, std::string column,
                                sql::Value old_value, sql::Value new_value);
  static RevealOp DropPlaceholder(std::string table, db::RowId id);
};

struct RevealRecord {
  uint64_t disguise_id = 0;    // id in the persistent disguise log
  std::string disguise_name;
  sql::Value user_id;          // owner; Null for global (non-per-user) disguises
  TimePoint created = 0;
  std::vector<RevealOp> ops;   // in apply order

  // Wire form for offline / encrypted vault backends.
  std::vector<uint8_t> Serialize() const;
  static StatusOr<RevealRecord> Deserialize(const std::vector<uint8_t>& wire);
};

}  // namespace edna::vault

#endif  // SRC_VAULT_REVEAL_RECORD_H_
