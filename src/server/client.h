// Client: blocking request/reply connection to a disguised daemon.
//
// One socket, one in-flight request at a time (request_id correlates the
// pair; a mismatched reply is a protocol error, not silently dropped).
// Thread-compatible, not thread-safe — concurrent callers open one client
// each, which is also how the soak test models independent applications.
//
// The Raw* surface (send arbitrary bytes, read one frame) exists for the
// protocol fuzz battery: it lets a test speak malformed frames through the
// same connection plumbing the real client uses.
#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/server/protocol.h"
#include "src/sql/value.h"

namespace edna::server {

class Client {
 public:
  // Connects (with retries over `timeout_ms`, so tests can race the daemon's
  // startup) and returns a ready client.
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host, uint16_t port,
                                                   int timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Verbs -----------------------------------------------------------------

  // Round-trips `echo`; returns the server's echo back.
  StatusOr<std::string> Ping(const std::string& echo);

  // Null uid = global disguise.
  StatusOr<OpReply> Apply(const std::string& spec_name, const sql::Value& uid);
  // disguise_id 0 = latest active disguise of (spec_name, uid).
  StatusOr<OpReply> Reveal(const std::string& spec_name, const sql::Value& uid,
                           uint64_t disguise_id = 0);
  StatusOr<AuditReply> Audit();
  StatusOr<CheckpointReply> Checkpoint();
  StatusOr<StatsReply> Stats();
  // Asks the daemon to stop; OK once the shutdown reply arrives.
  Status Shutdown();

  // --- Raw surface (tests) ---------------------------------------------------

  // Writes bytes verbatim — no framing, no validation.
  Status RawSend(const std::vector<uint8_t>& bytes);
  // Reads one well-formed frame off the socket (header + payload, CRC
  // checked). kNotFound on clean EOF, kInternal on torn reads.
  StatusOr<Frame> RawReadFrame(int timeout_ms = 5000);
  // Sends a correctly framed request with an explicit body.
  Status RawSendFrame(Verb verb, uint64_t request_id, const std::vector<uint8_t>& body);

 private:
  explicit Client(int fd) : fd_(fd) {}

  // One request -> its reply frame. Verifies the request_id round-trip and
  // turns kError replies into their carried Status.
  StatusOr<Frame> Call(Verb verb, const std::vector<uint8_t>& body, Verb expect_reply);

  Status SendAll(const uint8_t* data, size_t n);
  Status RecvAll(uint8_t* data, size_t n, bool* clean_eof);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace edna::server

#endif  // SRC_SERVER_CLIENT_H_
