#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/strings.h"
#include "src/core/batch.h"

namespace edna::server {

namespace {

void CloseQuietly(int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

}  // namespace

DisguisedServer::DisguisedServer(ShardSet* shards, ServerOptions options)
    : shards_(shards), options_(std::move(options)) {}

DisguisedServer::~DisguisedServer() { Stop(); }

Status DisguisedServer::Start() {
  if (running_.load()) {
    return FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgument(StrFormat("bad listen address \"%s\"", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Internal(StrFormat("bind %s:%u: %s", options_.host.c_str(),
                                  options_.port, std::strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Internal(StrFormat("listen: %s", std::strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status s = Internal(StrFormat("getsockname: %s", std::strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = false;
  }
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void DisguisedServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    WaitForShutdown();  // another stopper is at work; ride along
    return;
  }
  if (!running_.load()) {
    stopping_.store(false);
    return;
  }
  // Unblock accept(), then every read still parked on a live connection.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& conn : connections_) {
      if (conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // The accept loop is gone, so connections_ is frozen; drain it.
  std::vector<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    CloseQuietly(conn->fd);
  }
  CloseQuietly(listen_fd_);
  listen_fd_ = -1;
  running_.store(false);
  {
    // Notify under the lock: after the unlock a woken waiter may destroy
    // the server, so this thread must be done touching it by then.
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = true;
    stopped_cv_.notify_all();
  }
}

void DisguisedServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stopped_cv_.wait(lock, [&] { return stopped_; });
}

std::vector<std::pair<std::string, uint64_t>> DisguisedServer::Counters() const {
  return {
      {"srv_accepted", accepted_.load(std::memory_order_relaxed)},
      {"srv_frames_ok", frames_ok_.load(std::memory_order_relaxed)},
      {"srv_frames_rejected", frames_rejected_.load(std::memory_order_relaxed)},
      {"srv_bytes_in", bytes_in_.load(std::memory_order_relaxed)},
      {"srv_bytes_out", bytes_out_.load(std::memory_order_relaxed)},
  };
}

void DisguisedServer::Reap() {
  // Collect finished handlers so a long-lived daemon facing churny clients
  // (the fuzz battery opens thousands of connections) does not accumulate
  // dead threads. Joins outside conn_mu_; a done handler exits promptly.
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done.load()) {
        finished.push_back(std::move(connections_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

void DisguisedServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // listener is gone; nothing sane to do but stop accepting
    }
    if (stopping_.load()) {
      CloseQuietly(fd);
      return;
    }
    Reap();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

int DisguisedServer::ReadFully(int fd, uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      bytes_in_.fetch_add(static_cast<uint64_t>(r), std::memory_order_relaxed);
      continue;
    }
    if (r == 0) {
      return got == 0 ? 0 : -1;  // clean EOF only at a frame boundary
    }
    if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) && !stopping_.load()) {
      continue;  // SO_RCVTIMEO tick; keep waiting unless the server stops
    }
    return -1;
  }
  return 1;
}

bool DisguisedServer::SendFrame(int fd, Verb verb, uint64_t request_id,
                                const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame = EncodeFrame(verb, request_id, body);
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stopping_.load()) {
          return false;
        }
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  bytes_out_.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

bool DisguisedServer::SendError(int fd, uint64_t request_id, const Status& status) {
  frames_rejected_.fetch_add(1, std::memory_order_relaxed);
  ErrorReply reply;
  reply.code = status.code();
  reply.message = status.message();
  return SendFrame(fd, Verb::kError, request_id, EncodeErrorReply(reply));
}

void DisguisedServer::HandleConnection(Connection* conn) {
  const int fd = conn->fd;
  uint8_t header[kFrameHeaderBytes];
  for (;;) {
    int r = ReadFully(fd, header, sizeof(header));
    if (r <= 0) {
      break;  // clean EOF, torn header, or server stopping
    }
    if (PeekFrameMagic(header) != kFrameMagic) {
      // The stream is desynced: nothing downstream of this byte can be
      // trusted, and replying mid-garbage would only feed the desync.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    uint32_t payload_len = 0;
    Status head = DecodeFrameHeader(header, &payload_len);
    if (!head.ok()) {
      // Framing boundary intact but the length is unusable (zero/oversized):
      // tell the client why, then close — we cannot skip unknown bytes.
      SendError(fd, 0, head);
      break;
    }
    std::vector<uint8_t> payload(payload_len);
    if (ReadFully(fd, payload.data(), payload.size()) != 1) {
      break;  // torn payload
    }
    if (!HandleFrame(fd, header, payload)) {
      break;
    }
  }
  // Close under conn_mu_ and mark the slot dead first, so a concurrent
  // Stop() never calls shutdown() on a recycled fd number.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn->fd = -1;
    ::close(fd);
  }
  conn->done.store(true);
}

bool DisguisedServer::HandleFrame(int fd, const uint8_t* header,
                                  const std::vector<uint8_t>& payload) {
  Frame frame;
  Status decoded = DecodeFramePayload(header, payload, &frame);
  if (!decoded.ok()) {
    // CRC mismatch: framing held, payload bits didn't. The stream is still
    // in sync, so the connection survives.
    return SendError(fd, 0, decoded);
  }

  switch (frame.verb) {
    case Verb::kPing: {
      PingRequest req;
      Status s = DecodePing(frame.body, &req);
      if (!s.ok()) {
        return SendError(fd, frame.request_id, s);
      }
      frames_ok_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(fd, Verb::kPingReply, frame.request_id, EncodePing(req));
    }
    case Verb::kApply:
    case Verb::kReveal: {
      core::BatchTask task;
      if (frame.verb == Verb::kApply) {
        ApplyRequest req;
        Status s = DecodeApply(frame.body, &req);
        if (!s.ok()) {
          return SendError(fd, frame.request_id, s);
        }
        task = core::BatchTask::Apply(std::move(req.spec_name), std::move(req.uid));
      } else {
        RevealRequest req;
        Status s = DecodeReveal(frame.body, &req);
        if (!s.ok()) {
          return SendError(fd, frame.request_id, s);
        }
        task = core::BatchTask::Reveal(std::move(req.spec_name), std::move(req.uid),
                                       req.disguise_id);
      }
      OpReply reply;
      reply.shard = task.uid.is_null()
                        ? 0
                        : static_cast<uint32_t>(shards_->ShardFor(task.uid));
      core::BatchTaskResult result = shards_->Dispatch(std::move(task));
      if (!result.status.ok()) {
        return SendError(fd, frame.request_id, result.status);
      }
      reply.disguise_id = result.disguise_id;
      reply.attempts = static_cast<uint32_t>(result.attempts);
      reply.queries = result.queries;
      reply.rows_touched = result.rows_touched;
      frames_ok_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(fd,
                       frame.verb == Verb::kApply ? Verb::kApplyReply : Verb::kRevealReply,
                       frame.request_id, EncodeOpReply(reply));
    }
    case Verb::kAudit: {
      if (!frame.body.empty()) {
        return SendError(fd, frame.request_id,
                         InvalidArgument("audit: body must be empty"));
      }
      StatusOr<ShardAuditReport> audit = shards_->Audit();
      if (!audit.ok()) {
        return SendError(fd, frame.request_id, audit.status());
      }
      AuditReply reply;
      reply.shards = static_cast<uint32_t>(audit->shards);
      reply.violations = audit->violations;
      reply.summary = audit->summary;
      frames_ok_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(fd, Verb::kAuditReply, frame.request_id, EncodeAuditReply(reply));
    }
    case Verb::kCheckpoint: {
      if (!frame.body.empty()) {
        return SendError(fd, frame.request_id,
                         InvalidArgument("checkpoint: body must be empty"));
      }
      Status s = shards_->Checkpoint();
      if (!s.ok()) {
        return SendError(fd, frame.request_id, s);
      }
      CheckpointReply reply;
      reply.shards = static_cast<uint32_t>(shards_->num_shards());
      frames_ok_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(fd, Verb::kCheckpointReply, frame.request_id,
                       EncodeCheckpointReply(reply));
    }
    case Verb::kStats: {
      if (!frame.body.empty()) {
        return SendError(fd, frame.request_id,
                         InvalidArgument("stats: body must be empty"));
      }
      StatsReply reply;
      reply.counters = shards_->Stats();
      for (auto& counter : Counters()) {
        reply.counters.push_back(std::move(counter));
      }
      frames_ok_.fetch_add(1, std::memory_order_relaxed);
      return SendFrame(fd, Verb::kStatsReply, frame.request_id, EncodeStatsReply(reply));
    }
    case Verb::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        return SendError(fd, frame.request_id,
                         PermissionDenied("remote shutdown is disabled"));
      }
      frames_ok_.fetch_add(1, std::memory_order_relaxed);
      SendFrame(fd, Verb::kShutdownReply, frame.request_id, {});
      // Stop() joins every handler thread — including this one — so it must
      // run elsewhere. WaitForShutdown()'s stopped_ handshake keeps the
      // detached thread's work visible to whoever waits.
      std::thread([this] { Stop(); }).detach();
      return false;
    }
    default:
      return SendError(fd, frame.request_id,
                       Unimplemented(StrFormat("unknown verb 0x%02x",
                                               static_cast<unsigned>(frame.verb))));
  }
}

}  // namespace edna::server
