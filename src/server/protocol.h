// Wire protocol of the disguise-as-a-service daemon (docs/FORMATS.md §6).
//
// Every message — request or reply — travels as one length-prefixed,
// CRC-framed binary frame over a byte stream:
//
//   frame   := magic u32 | payload_len u32 | payload_crc u32 | payload
//   payload := verb u8 | request_id u64 | body
//
// All integers little-endian (sql::ByteWriter). The CRC covers the payload
// only; the fixed 12-byte header is validated structurally (magic, bounded
// length). Framing is deliberately the same shape as the WAL's record
// framing (src/db/wal.h): a torn or bit-flipped frame is detected at the
// boundary, never half-decoded into the engine.
//
// Error taxonomy (what a malformed input yields — the protocol fuzz battery
// in tests/server_protocol_test.cc pins this contract):
//   * bad magic                      -> connection closed (stream desynced;
//                                       no resync is attempted)
//   * payload_len 0 or > max         -> error reply, then connection closed
//   * CRC mismatch                   -> error reply, connection stays open
//                                       (framing was intact, payload wasn't)
//   * undecodable / trailing body    -> error reply (kInvalidArgument)
//   * unknown verb                   -> error reply (kUnimplemented)
//   * engine-level failure           -> error reply carrying the engine's
//                                       StatusCode verbatim
// An error reply echoes the request_id when the payload got far enough to
// carry one, 0 otherwise.
#ifndef SRC_SERVER_PROTOCOL_H_
#define SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/sql/value.h"

namespace edna::server {

// "EDNP" as the first four bytes on the wire.
inline constexpr uint32_t kFrameMagic = 0x504E4445u;
// Hard ceiling on payload bytes; anything larger is rejected before
// allocation. Large results (audit text, stats) stay far below this.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
// Fixed bytes before the payload: magic, length, crc.
inline constexpr size_t kFrameHeaderBytes = 12;

enum class Verb : uint8_t {
  kPing = 0x01,
  kApply = 0x02,
  kReveal = 0x03,
  kAudit = 0x04,
  kCheckpoint = 0x05,
  kStats = 0x06,
  kShutdown = 0x07,
  // Replies set the high bit of the request verb; errors use kError.
  kPingReply = 0x81,
  kApplyReply = 0x82,
  kRevealReply = 0x83,
  kAuditReply = 0x84,
  kCheckpointReply = 0x85,
  kStatsReply = 0x86,
  kShutdownReply = 0x87,
  kError = 0xFF,
};

// One decoded payload: the verb, the client-chosen correlation id, and the
// still-encoded body bytes (decoded by the per-verb structs below).
struct Frame {
  Verb verb = Verb::kError;
  uint64_t request_id = 0;
  std::vector<uint8_t> body;
};

// --- Request bodies ----------------------------------------------------------

struct PingRequest {
  std::string echo;
};

struct ApplyRequest {
  std::string spec_name;
  sql::Value uid = sql::Value::Null();  // Null = global disguise (barrier path)
};

struct RevealRequest {
  std::string spec_name;
  sql::Value uid = sql::Value::Null();
  // 0 = latest active disguise of (spec_name, uid), resolved server-side.
  uint64_t disguise_id = 0;
};

// Audit, Checkpoint, Stats, and Shutdown carry empty bodies.

// --- Reply bodies ------------------------------------------------------------

// Shared by apply and reveal replies.
struct OpReply {
  uint64_t disguise_id = 0;
  uint32_t shard = 0;       // shard that executed (first shard for globals)
  uint32_t attempts = 0;    // 1 = no conflict retries
  uint64_t queries = 0;
  uint64_t rows_touched = 0;
};

struct AuditReply {
  uint32_t shards = 0;
  uint64_t violations = 0;
  std::string summary;  // per-shard text, empty when clean
};

struct CheckpointReply {
  uint32_t shards = 0;
};

// Stats travel as named counters so the set can grow without a wire bump.
struct StatsReply {
  std::vector<std::pair<std::string, uint64_t>> counters;

  uint64_t Get(const std::string& name) const;  // 0 when absent
  std::string ToString() const;                 // one "name value" per line
};

struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};

// --- Encoding ----------------------------------------------------------------

// Encodes a complete frame (header + payload) ready to write to a socket.
std::vector<uint8_t> EncodeFrame(Verb verb, uint64_t request_id,
                                 const std::vector<uint8_t>& body);

// Validates a 12-byte header. On success stores the payload length to read
// next; kInvalidArgument with a "frame:"-prefixed message otherwise.
Status DecodeFrameHeader(const uint8_t header[kFrameHeaderBytes], uint32_t* payload_len);

// First header word. The server branches on it for the close-vs-reply
// decision: bad magic means the stream is desynced (close silently), while a
// bad length still travels on an intact frame boundary (error reply first).
uint32_t PeekFrameMagic(const uint8_t header[kFrameHeaderBytes]);

// Checks the CRC and splits the payload into verb / request_id / body.
Status DecodeFramePayload(const uint8_t header[kFrameHeaderBytes],
                          const std::vector<uint8_t>& payload, Frame* frame);

// Per-verb body codecs. Decoders reject truncated and over-long bodies.
std::vector<uint8_t> EncodePing(const PingRequest& req);
Status DecodePing(const std::vector<uint8_t>& body, PingRequest* req);
std::vector<uint8_t> EncodeApply(const ApplyRequest& req);
Status DecodeApply(const std::vector<uint8_t>& body, ApplyRequest* req);
std::vector<uint8_t> EncodeReveal(const RevealRequest& req);
Status DecodeReveal(const std::vector<uint8_t>& body, RevealRequest* req);
std::vector<uint8_t> EncodeOpReply(const OpReply& reply);
Status DecodeOpReply(const std::vector<uint8_t>& body, OpReply* reply);
std::vector<uint8_t> EncodeAuditReply(const AuditReply& reply);
Status DecodeAuditReply(const std::vector<uint8_t>& body, AuditReply* reply);
std::vector<uint8_t> EncodeCheckpointReply(const CheckpointReply& reply);
Status DecodeCheckpointReply(const std::vector<uint8_t>& body, CheckpointReply* reply);
std::vector<uint8_t> EncodeStatsReply(const StatsReply& reply);
Status DecodeStatsReply(const std::vector<uint8_t>& body, StatsReply* reply);
std::vector<uint8_t> EncodeErrorReply(const ErrorReply& reply);
Status DecodeErrorReply(const std::vector<uint8_t>& body, ErrorReply* reply);

}  // namespace edna::server

#endif  // SRC_SERVER_PROTOCOL_H_
