#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/strings.h"

namespace edna::server {

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host, uint16_t port,
                                                  int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument(StrFormat("bad address \"%s\"", host.c_str()));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Internal(StrFormat("socket: %s", std::strerror(errno)));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Client>(new Client(fd));
    }
    int err = errno;
    ::close(fd);
    // The daemon may still be binding (tests race its startup); retry
    // connection-refused until the deadline.
    if ((err != ECONNREFUSED && err != ETIMEDOUT) ||
        std::chrono::steady_clock::now() >= deadline) {
      return Internal(StrFormat("connect %s:%u: %s", host.c_str(), port,
                                std::strerror(err)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status Client::SendAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Internal(StrFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  return OkStatus();
}

Status Client::RecvAll(uint8_t* data, size_t n, bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, data + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) {
        *clean_eof = true;
        return NotFound("connection closed by server");
      }
      return Internal(StrFormat("connection closed mid-frame (%zu of %zu bytes)", got, n));
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired — surface a timeout instead of spinning so fuzz
      // tests can assert "replies or closes, never hangs".
      return Internal(StrFormat("recv timed out (%zu of %zu bytes)", got, n));
    }
    return Internal(StrFormat("recv: %s", std::strerror(errno)));
  }
  return OkStatus();
}

Status Client::RawSend(const std::vector<uint8_t>& bytes) {
  return SendAll(bytes.data(), bytes.size());
}

Status Client::RawSendFrame(Verb verb, uint64_t request_id,
                            const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame = EncodeFrame(verb, request_id, body);
  return SendAll(frame.data(), frame.size());
}

StatusOr<Frame> Client::RawReadFrame(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  uint8_t header[kFrameHeaderBytes];
  bool clean_eof = false;
  RETURN_IF_ERROR(RecvAll(header, sizeof(header), &clean_eof));
  uint32_t payload_len = 0;
  RETURN_IF_ERROR(DecodeFrameHeader(header, &payload_len));
  std::vector<uint8_t> payload(payload_len);
  RETURN_IF_ERROR(RecvAll(payload.data(), payload.size(), &clean_eof));
  Frame frame;
  RETURN_IF_ERROR(DecodeFramePayload(header, payload, &frame));
  return frame;
}

StatusOr<Frame> Client::Call(Verb verb, const std::vector<uint8_t>& body,
                             Verb expect_reply) {
  const uint64_t id = next_request_id_++;
  RETURN_IF_ERROR(RawSendFrame(verb, id, body));
  // Generous timeout: audits/checkpoints over large shards are legitimately
  // slow under sanitizers, and a wedged daemon still fails the call.
  ASSIGN_OR_RETURN(Frame reply, RawReadFrame(/*timeout_ms=*/120000));
  if (reply.verb == Verb::kError) {
    ErrorReply err;
    RETURN_IF_ERROR(DecodeErrorReply(reply.body, &err));
    return err.ToStatus();
  }
  if (reply.verb != expect_reply) {
    return Internal(StrFormat("unexpected reply verb 0x%02x (wanted 0x%02x)",
                              static_cast<unsigned>(reply.verb),
                              static_cast<unsigned>(expect_reply)));
  }
  if (reply.request_id != id) {
    return Internal(StrFormat("reply correlates request %llu, expected %llu",
                              static_cast<unsigned long long>(reply.request_id),
                              static_cast<unsigned long long>(id)));
  }
  return reply;
}

StatusOr<std::string> Client::Ping(const std::string& echo) {
  PingRequest req;
  req.echo = echo;
  ASSIGN_OR_RETURN(Frame reply, Call(Verb::kPing, EncodePing(req), Verb::kPingReply));
  PingRequest echoed;
  RETURN_IF_ERROR(DecodePing(reply.body, &echoed));
  return echoed.echo;
}

StatusOr<OpReply> Client::Apply(const std::string& spec_name, const sql::Value& uid) {
  ApplyRequest req;
  req.spec_name = spec_name;
  req.uid = uid;
  ASSIGN_OR_RETURN(Frame reply, Call(Verb::kApply, EncodeApply(req), Verb::kApplyReply));
  OpReply op;
  RETURN_IF_ERROR(DecodeOpReply(reply.body, &op));
  return op;
}

StatusOr<OpReply> Client::Reveal(const std::string& spec_name, const sql::Value& uid,
                                 uint64_t disguise_id) {
  RevealRequest req;
  req.spec_name = spec_name;
  req.uid = uid;
  req.disguise_id = disguise_id;
  ASSIGN_OR_RETURN(Frame reply,
                   Call(Verb::kReveal, EncodeReveal(req), Verb::kRevealReply));
  OpReply op;
  RETURN_IF_ERROR(DecodeOpReply(reply.body, &op));
  return op;
}

StatusOr<AuditReply> Client::Audit() {
  ASSIGN_OR_RETURN(Frame reply, Call(Verb::kAudit, {}, Verb::kAuditReply));
  AuditReply audit;
  RETURN_IF_ERROR(DecodeAuditReply(reply.body, &audit));
  return audit;
}

StatusOr<CheckpointReply> Client::Checkpoint() {
  ASSIGN_OR_RETURN(Frame reply, Call(Verb::kCheckpoint, {}, Verb::kCheckpointReply));
  CheckpointReply ckpt;
  RETURN_IF_ERROR(DecodeCheckpointReply(reply.body, &ckpt));
  return ckpt;
}

StatusOr<StatsReply> Client::Stats() {
  ASSIGN_OR_RETURN(Frame reply, Call(Verb::kStats, {}, Verb::kStatsReply));
  StatsReply stats;
  RETURN_IF_ERROR(DecodeStatsReply(reply.body, &stats));
  return stats;
}

Status Client::Shutdown() {
  ASSIGN_OR_RETURN(Frame reply, Call(Verb::kShutdown, {}, Verb::kShutdownReply));
  (void)reply;
  return OkStatus();
}

}  // namespace edna::server
