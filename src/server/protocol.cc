#include "src/server/protocol.h"

#include "src/common/crc32.h"
#include "src/common/strings.h"
#include "src/sql/codec.h"

namespace edna::server {

namespace {

// Little-endian u32 at `p` (the frame header is hand-framed so the payload
// codec — sql::ByteWriter — never sees partially read bytes).
uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void StoreU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

// A decoded body must consume every byte: trailing garbage means the frame
// was assembled by something that disagrees about the schema — reject it
// rather than silently ignore bytes.
Status RequireEnd(const sql::ByteReader& reader, const char* what) {
  if (reader.remaining() != 0) {
    return InvalidArgument(StrFormat("%s: %zu trailing byte(s) after body", what,
                                     reader.remaining()));
  }
  return OkStatus();
}

}  // namespace

uint64_t StatsReply::Get(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) {
      return value;
    }
  }
  return 0;
}

std::string StatsReply::ToString() const {
  std::string out;
  for (const auto& [key, value] : counters) {
    out += StrFormat("%-28s %llu\n", key.c_str(), static_cast<unsigned long long>(value));
  }
  return out;
}

std::vector<uint8_t> EncodeFrame(Verb verb, uint64_t request_id,
                                 const std::vector<uint8_t>& body) {
  sql::ByteWriter payload;
  payload.U8(static_cast<uint8_t>(verb));
  payload.U64(request_id);
  payload.Bytes(body.data(), body.size());
  std::vector<uint8_t> encoded = payload.Take();

  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + encoded.size());
  StoreU32(kFrameMagic, &frame);
  StoreU32(static_cast<uint32_t>(encoded.size()), &frame);
  StoreU32(Crc32(encoded), &frame);
  frame.insert(frame.end(), encoded.begin(), encoded.end());
  return frame;
}

uint32_t PeekFrameMagic(const uint8_t header[kFrameHeaderBytes]) {
  return LoadU32(header);
}

Status DecodeFrameHeader(const uint8_t header[kFrameHeaderBytes], uint32_t* payload_len) {
  if (LoadU32(header) != kFrameMagic) {
    return InvalidArgument(StrFormat("frame: bad magic 0x%08x", LoadU32(header)));
  }
  uint32_t len = LoadU32(header + 4);
  if (len == 0) {
    return InvalidArgument("frame: zero-length payload");
  }
  if (len > kMaxFrameBytes) {
    return InvalidArgument(StrFormat("frame: payload of %u bytes exceeds the %u-byte cap",
                                     len, kMaxFrameBytes));
  }
  *payload_len = len;
  return OkStatus();
}

Status DecodeFramePayload(const uint8_t header[kFrameHeaderBytes],
                          const std::vector<uint8_t>& payload, Frame* frame) {
  uint32_t want_crc = LoadU32(header + 8);
  uint32_t got_crc = Crc32(payload);
  if (want_crc != got_crc) {
    return InvalidArgument(
        StrFormat("frame: payload crc mismatch (header 0x%08x, computed 0x%08x)",
                  want_crc, got_crc));
  }
  sql::ByteReader reader(payload);
  ASSIGN_OR_RETURN(uint8_t verb, reader.U8());
  ASSIGN_OR_RETURN(frame->request_id, reader.U64());
  frame->verb = static_cast<Verb>(verb);
  frame->body.assign(payload.begin() + static_cast<long>(payload.size() - reader.remaining()),
                     payload.end());
  return OkStatus();
}

// --- Bodies ------------------------------------------------------------------

std::vector<uint8_t> EncodePing(const PingRequest& req) {
  sql::ByteWriter w;
  w.String(req.echo);
  return w.Take();
}

Status DecodePing(const std::vector<uint8_t>& body, PingRequest* req) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(req->echo, r.String());
  return RequireEnd(r, "ping");
}

std::vector<uint8_t> EncodeApply(const ApplyRequest& req) {
  sql::ByteWriter w;
  w.String(req.spec_name);
  w.Value(req.uid);
  return w.Take();
}

Status DecodeApply(const std::vector<uint8_t>& body, ApplyRequest* req) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(req->spec_name, r.String());
  ASSIGN_OR_RETURN(req->uid, r.Value());
  return RequireEnd(r, "apply");
}

std::vector<uint8_t> EncodeReveal(const RevealRequest& req) {
  sql::ByteWriter w;
  w.String(req.spec_name);
  w.Value(req.uid);
  w.U64(req.disguise_id);
  return w.Take();
}

Status DecodeReveal(const std::vector<uint8_t>& body, RevealRequest* req) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(req->spec_name, r.String());
  ASSIGN_OR_RETURN(req->uid, r.Value());
  ASSIGN_OR_RETURN(req->disguise_id, r.U64());
  return RequireEnd(r, "reveal");
}

std::vector<uint8_t> EncodeOpReply(const OpReply& reply) {
  sql::ByteWriter w;
  w.U64(reply.disguise_id);
  w.U32(reply.shard);
  w.U32(reply.attempts);
  w.U64(reply.queries);
  w.U64(reply.rows_touched);
  return w.Take();
}

Status DecodeOpReply(const std::vector<uint8_t>& body, OpReply* reply) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(reply->disguise_id, r.U64());
  ASSIGN_OR_RETURN(reply->shard, r.U32());
  ASSIGN_OR_RETURN(reply->attempts, r.U32());
  ASSIGN_OR_RETURN(reply->queries, r.U64());
  ASSIGN_OR_RETURN(reply->rows_touched, r.U64());
  return RequireEnd(r, "op-reply");
}

std::vector<uint8_t> EncodeAuditReply(const AuditReply& reply) {
  sql::ByteWriter w;
  w.U32(reply.shards);
  w.U64(reply.violations);
  w.String(reply.summary);
  return w.Take();
}

Status DecodeAuditReply(const std::vector<uint8_t>& body, AuditReply* reply) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(reply->shards, r.U32());
  ASSIGN_OR_RETURN(reply->violations, r.U64());
  ASSIGN_OR_RETURN(reply->summary, r.String());
  return RequireEnd(r, "audit-reply");
}

std::vector<uint8_t> EncodeCheckpointReply(const CheckpointReply& reply) {
  sql::ByteWriter w;
  w.U32(reply.shards);
  return w.Take();
}

Status DecodeCheckpointReply(const std::vector<uint8_t>& body, CheckpointReply* reply) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(reply->shards, r.U32());
  return RequireEnd(r, "checkpoint-reply");
}

std::vector<uint8_t> EncodeStatsReply(const StatsReply& reply) {
  sql::ByteWriter w;
  w.U32(static_cast<uint32_t>(reply.counters.size()));
  for (const auto& [name, value] : reply.counters) {
    w.String(name);
    w.U64(value);
  }
  return w.Take();
}

Status DecodeStatsReply(const std::vector<uint8_t>& body, StatsReply* reply) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(uint32_t count, r.U32());
  reply->counters.clear();
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.String());
    ASSIGN_OR_RETURN(uint64_t value, r.U64());
    reply->counters.emplace_back(std::move(name), value);
  }
  return RequireEnd(r, "stats-reply");
}

std::vector<uint8_t> EncodeErrorReply(const ErrorReply& reply) {
  sql::ByteWriter w;
  w.U8(static_cast<uint8_t>(reply.code));
  w.String(reply.message);
  return w.Take();
}

Status DecodeErrorReply(const std::vector<uint8_t>& body, ErrorReply* reply) {
  sql::ByteReader r(body);
  ASSIGN_OR_RETURN(uint8_t code, r.U8());
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kAborted)) {
    return InvalidArgument(StrFormat("error-reply: unknown status code %u", code));
  }
  reply->code = static_cast<StatusCode>(code);
  ASSIGN_OR_RETURN(reply->message, r.String());
  return RequireEnd(r, "error-reply");
}

}  // namespace edna::server
