#include "src/server/shard.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>

#include "src/common/failpoint.h"
#include "src/common/strings.h"

namespace edna::server {

namespace {

constexpr char kManifestName[] = "shards.manifest";

Status EnsureDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Internal(StrFormat("mkdir %s: %s", dir.c_str(), std::strerror(errno)));
  }
  return OkStatus();
}

// The manifest pins the shard count: reopening a 4-shard directory as
// 2 shards would re-route half the users to shards that never saw them.
Status CheckOrWriteManifest(const std::string& root, int num_shards) {
  const std::string path = root + "/" + kManifestName;
  std::ifstream in(path);
  if (in) {
    std::string line;
    std::getline(in, line);
    uint64_t recorded = 0;
    if (!ParseUint64(StrTrim(line), &recorded)) {
      return InvalidArgument(StrFormat("%s: unreadable shard count \"%s\"", path.c_str(),
                                       line.c_str()));
    }
    if (recorded != static_cast<uint64_t>(num_shards)) {
      return InvalidArgument(StrFormat(
          "%s holds %llu shard(s) but the server was asked for %d; uid routing is "
          "pinned at creation time",
          root.c_str(), static_cast<unsigned long long>(recorded), num_shards));
    }
    return OkStatus();
  }
  std::ofstream out(path, std::ios::trunc);
  out << num_shards << "\n";
  out.flush();
  if (!out) {
    return Internal(StrFormat("cannot write %s", path.c_str()));
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::unique_ptr<ShardSet>> ShardSet::Open(const std::string& root_dir,
                                                   ShardSetOptions options) {
  if (options.num_shards < 1) {
    return InvalidArgument(StrFormat("num_shards must be >= 1 (got %d)",
                                     options.num_shards));
  }
  RETURN_IF_ERROR(EnsureDir(root_dir));
  RETURN_IF_ERROR(CheckOrWriteManifest(root_dir, options.num_shards));

  auto set = std::unique_ptr<ShardSet>(new ShardSet());
  set->shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int i = 0; i < options.num_shards; ++i) {
    core::DurableEngineOptions dopts;
    dopts.durable = options.durable;
    dopts.engine = options.engine;
    dopts.clock = options.clock;
    core::DurableEngineReport report;
    ASSIGN_OR_RETURN(std::unique_ptr<core::DurableEngine> engine,
                     core::DurableEngine::Open(
                         StrFormat("%s/shard-%d", root_dir.c_str(), i), dopts, &report));
    for (const disguise::DisguiseSpec& spec : options.specs) {
      RETURN_IF_ERROR(engine->engine()->RegisterSpec(spec));
    }
    core::BatchOptions batch = options.batch;
    batch.num_threads = options.threads_per_shard;
    batch.drain_flush = nullptr;  // the daemon flushes via Flush()/Checkpoint()
    Shard shard;
    shard.executor = std::make_unique<core::BatchExecutor>(engine->engine(), batch);
    shard.engine = std::move(engine);
    set->shards_.push_back(std::move(shard));
  }
  return set;
}

// Executors first: they drain their queues against still-live engines.
ShardSet::~ShardSet() {
  for (Shard& shard : shards_) {
    shard.executor.reset();
    shard.engine.reset();
  }
}

size_t ShardSet::ShardFor(const sql::Value& uid) const {
  return std::hash<std::string>{}(uid.ToSqlString()) % shards_.size();
}

core::BatchTaskResult ShardSet::Dispatch(core::BatchTask task) {
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  (task.kind == core::BatchTask::Kind::kApply ? applies_ : reveals_)
      .fetch_add(1, std::memory_order_relaxed);

  core::BatchTaskResult result;
  result.task = task;
  Status injected = FailPoints::Instance().Check(failpoints::kServerDispatch);
  if (!injected.ok()) {
    if (FailPoints::IsSimulatedCrash(injected)) {
      Freeze();
    }
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
    result.status = injected;
    return result;
  }
  if (frozen_.load()) {
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
    result.status = FailedPrecondition(
        "service frozen by a simulated crash; restart the daemon to recover");
    return result;
  }

  if (task.uid.is_null()) {
    return DispatchGlobal(std::move(task));
  }

  size_t shard = ShardFor(task.uid);
  std::promise<core::BatchTaskResult> done;
  std::future<core::BatchTaskResult> future = done.get_future();
  shards_[shard].executor->Submit(
      std::move(task),
      [&done](const core::BatchTaskResult& r) { done.set_value(r); });
  result = future.get();
  if (result.attempts > 1) {
    conflict_retries_.fetch_add(static_cast<uint64_t>(result.attempts - 1),
                                std::memory_order_relaxed);
  }
  if (FailPoints::IsSimulatedCrash(result.status)) {
    Freeze();
  }
  if (!result.status.ok()) {
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

core::BatchTaskResult ShardSet::DispatchGlobal(core::BatchTask task) {
  globals_.fetch_add(1, std::memory_order_relaxed);
  core::BatchTaskResult result;
  result.task = task;

  std::lock_guard<std::mutex> serialize(global_mu_);

  // Phase 1 (prepare): quiesce the whole service. Gates are acquired in
  // shard order; each acquisition waits for that shard's in-flight tasks.
  Status injected = FailPoints::Instance().Check(failpoints::kServerBarrier);
  if (!injected.ok()) {
    if (FailPoints::IsSimulatedCrash(injected)) {
      Freeze();
    }
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
    result.status = injected;
    return result;
  }
  std::vector<std::unique_lock<std::shared_mutex>> leases;
  leases.reserve(shards_.size());
  for (Shard& shard : shards_) {
    leases.push_back(shard.executor->AcquireExclusive());
  }

  // Phase 2 (commit): every shard is quiesced; run the disguise shard by
  // shard. The same fail point checked again here lets a one-shot schedule
  // crash exactly between the phases.
  injected = FailPoints::Instance().Check(failpoints::kServerBarrier);
  if (!injected.ok()) {
    if (FailPoints::IsSimulatedCrash(injected)) {
      Freeze();
    }
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
    result.status = injected;
    return result;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    core::BatchTaskResult shard_result;
    shards_[i].executor->RunInline(task, &shard_result);
    if (FailPoints::IsSimulatedCrash(shard_result.status)) {
      Freeze();
    }
    if (!shard_result.status.ok()) {
      // Per-shard commits are independent: shards [0, i) keep the disguise.
      // Name the prefix so the operator can finish or reverse it per shard.
      dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
      result.status = Status(
          shard_result.status.code(),
          StrFormat("global \"%s\" failed on shard %zu after %zu shard(s) applied: %s",
                    task.spec_name.c_str(), i, i,
                    shard_result.status.message().c_str()));
      return result;
    }
    if (i == 0) {
      result.disguise_id = shard_result.disguise_id;
      result.attempts = shard_result.attempts;
    }
    result.queries += shard_result.queries;
    result.rows_touched += shard_result.rows_touched;
  }
  result.status = OkStatus();
  return result;
}

StatusOr<ShardAuditReport> ShardSet::Audit() {
  ShardAuditReport report;
  report.shards = shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    ASSIGN_OR_RETURN(core::ConsistencyReport audit,
                     shards_[i].engine->engine()->AuditConsistency());
    for (const std::string& violation : audit.violations) {
      ++report.violations;
      report.summary += StrFormat("shard %zu: %s\n", i, violation.c_str());
    }
    Status integrity = shards_[i].engine->db()->CheckIntegrity();
    if (!integrity.ok()) {
      ++report.violations;
      report.summary += StrFormat("shard %zu: %s\n", i, integrity.ToString().c_str());
    }
  }
  return report;
}

Status ShardSet::Checkpoint() {
  if (frozen_.load()) {
    return FailedPrecondition("service frozen by a simulated crash; nothing may flush");
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s = shards_[i].engine->Checkpoint();
    if (!s.ok()) {
      return Status(s.code(), StrFormat("shard %zu: %s", i, s.message().c_str()));
    }
  }
  return OkStatus();
}

Status ShardSet::Flush() {
  if (frozen_.load()) {
    return FailedPrecondition("service frozen by a simulated crash; nothing may flush");
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s = shards_[i].engine->Flush();
    if (!s.ok()) {
      return Status(s.code(), StrFormat("shard %zu: %s", i, s.message().c_str()));
    }
  }
  return OkStatus();
}

std::vector<std::pair<std::string, uint64_t>> ShardSet::Stats() const {
  db::DbStats total;
  uint64_t rows = 0;
  uint64_t active_disguises = 0;
  for (const Shard& shard : shards_) {
    const db::DbStats snapshot = shard.engine->db()->stats();
    total.queries += snapshot.queries.load(std::memory_order_relaxed);
    total.rows_read += snapshot.rows_read.load(std::memory_order_relaxed);
    total.rows_inserted += snapshot.rows_inserted.load(std::memory_order_relaxed);
    total.rows_updated += snapshot.rows_updated.load(std::memory_order_relaxed);
    total.rows_deleted += snapshot.rows_deleted.load(std::memory_order_relaxed);
    total.index_lookups += snapshot.index_lookups.load(std::memory_order_relaxed);
    total.full_scans += snapshot.full_scans.load(std::memory_order_relaxed);
    total.rows_examined += snapshot.rows_examined.load(std::memory_order_relaxed);
    total.plan_cache_hits += snapshot.plan_cache_hits.load(std::memory_order_relaxed);
    total.plan_cache_misses += snapshot.plan_cache_misses.load(std::memory_order_relaxed);
    total.range_probes += snapshot.range_probes.load(std::memory_order_relaxed);
    total.page_hits += snapshot.page_hits.load(std::memory_order_relaxed);
    total.page_misses += snapshot.page_misses.load(std::memory_order_relaxed);
    total.page_evictions += snapshot.page_evictions.load(std::memory_order_relaxed);
    total.page_writebacks += snapshot.page_writebacks.load(std::memory_order_relaxed);
    total.resident_bytes += snapshot.resident_bytes.load(std::memory_order_relaxed);
    total.chunks_scanned += snapshot.chunks_scanned.load(std::memory_order_relaxed);
    total.vector_ops += snapshot.vector_ops.load(std::memory_order_relaxed);
    total.vector_lanes += snapshot.vector_lanes.load(std::memory_order_relaxed);
    // Density is a gauge; summing across shards would be meaningless, so the
    // aggregate reports the max (the busiest shard's most recent statement).
    const uint64_t density =
        snapshot.selection_density_bp.load(std::memory_order_relaxed);
    if (density > total.selection_density_bp.load(std::memory_order_relaxed)) {
      total.selection_density_bp.store(density, std::memory_order_relaxed);
    }
    rows += shard.engine->db()->TotalRows();
    active_disguises += shard.engine->engine()->log().size();
  }
  auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  return {
      {"shards", shards_.size()},
      {"total_rows", rows},
      {"active_disguises", active_disguises},
      {"dispatched", load(dispatched_)},
      {"dispatch_errors", load(dispatch_errors_)},
      {"applies", load(applies_)},
      {"reveals", load(reveals_)},
      {"globals", load(globals_)},
      {"conflict_retries", load(conflict_retries_)},
      {"frozen", frozen_.load() ? 1u : 0u},
      {"db_queries", load(total.queries)},
      {"db_rows_read", load(total.rows_read)},
      {"db_rows_inserted", load(total.rows_inserted)},
      {"db_rows_updated", load(total.rows_updated)},
      {"db_rows_deleted", load(total.rows_deleted)},
      {"db_index_lookups", load(total.index_lookups)},
      {"db_full_scans", load(total.full_scans)},
      {"db_rows_examined", load(total.rows_examined)},
      {"db_plan_cache_hits", load(total.plan_cache_hits)},
      {"db_plan_cache_misses", load(total.plan_cache_misses)},
      {"db_range_probes", load(total.range_probes)},
      {"db_page_hits", load(total.page_hits)},
      {"db_page_misses", load(total.page_misses)},
      {"db_page_evictions", load(total.page_evictions)},
      {"db_page_writebacks", load(total.page_writebacks)},
      {"db_resident_bytes", load(total.resident_bytes)},
      {"db_chunks_scanned", load(total.chunks_scanned)},
      {"db_vector_ops", load(total.vector_ops)},
      {"db_vector_lanes", load(total.vector_lanes)},
      {"db_selection_density_bp", load(total.selection_density_bp)},
  };
}

}  // namespace edna::server
