// disguised: the disguise-as-a-service daemon's network front end.
//
// Accept-loop thread + one handler thread per connection. That is the right
// shape for this service: each request blocks inside the shard set anyway
// (per-user FIFO queue or the global barrier), so the handler thread IS the
// backpressure — a client gets its reply exactly when its operation is
// durable, and a slow shard slows only the clients talking to it.
//
// Frame handling implements the error taxonomy documented in protocol.h:
// desynced streams (bad magic, torn read) close; well-framed garbage (CRC
// mismatch, undecodable body, unknown verb) earns an error reply and the
// connection lives on. A handler never lets malformed bytes past the decode
// boundary, which is the property the protocol fuzz battery pins.
//
// Shutdown: Stop() (or a kShutdown frame, when allow_remote_shutdown) closes
// the listener, shuts down every live connection socket, and joins all
// threads. WaitForShutdown() parks the caller (the daemon's main thread)
// until then.
#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/server/protocol.h"
#include "src/server/shard.h"

namespace edna::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 = ephemeral; the bound port is readable via port() after Start().
  uint16_t port = 0;
  int backlog = 64;
  // Per-read socket timeout. Reads retry on timeout until the server stops,
  // so this bounds only shutdown latency, not connection lifetime.
  int recv_timeout_ms = 250;
  // Whether a kShutdown frame stops the whole daemon (tests and disguisectl
  // use it; a production deployment would disable it and use signals).
  bool allow_remote_shutdown = true;
};

class DisguisedServer {
 public:
  // `shards` must outlive the server.
  DisguisedServer(ShardSet* shards, ServerOptions options);
  ~DisguisedServer();  // implies Stop()

  DisguisedServer(const DisguisedServer&) = delete;
  DisguisedServer& operator=(const DisguisedServer&) = delete;

  // Binds, listens, and spawns the accept loop. Fails (kUnavailable-ish
  // kInternal) if the address cannot be bound.
  Status Start();

  // Idempotent. Closes the listener and every live connection, joins all
  // threads, and releases WaitForShutdown().
  void Stop();

  // Blocks until Stop() (local or via a kShutdown frame) completes.
  void WaitForShutdown();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  // Server-level counters, merged into every kStats reply next to the shard
  // set's (srv_* prefix).
  std::vector<std::pair<std::string, uint64_t>> Counters() const;

 private:
  struct Connection {
    int fd = -1;  // under conn_mu_ once the handler runs; -1 after close
    std::thread thread;
    std::atomic<bool> done{false};  // handler finished; safe to join + reap
  };

  void AcceptLoop();
  // Joins and discards finished handlers (called from the accept loop, so a
  // churny client population cannot accumulate dead threads/slots).
  void Reap();
  void HandleConnection(Connection* conn);
  // One request frame -> one reply frame. Returns false when the connection
  // must close (bad magic, oversized frame, shutdown verb, write failure).
  bool HandleFrame(int fd, const uint8_t* header, const std::vector<uint8_t>& payload);
  bool SendError(int fd, uint64_t request_id, const Status& status);
  bool SendFrame(int fd, Verb verb, uint64_t request_id, const std::vector<uint8_t>& body);

  // Reads exactly n bytes. 1 = ok, 0 = clean EOF before any byte, -1 = torn
  // read / hard error / server stopping.
  int ReadFully(int fd, uint8_t* buf, size_t n);

  ShardSet* shards_;
  ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = true;  // under stop_mu_

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> frames_ok_{0};
  std::atomic<uint64_t> frames_rejected_{0};  // any error reply or close-on-garbage
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace edna::server

#endif  // SRC_SERVER_SERVER_H_
