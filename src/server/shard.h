// ShardSet: N durable disguise engines behind one dispatch surface — the
// storage/execution half of the disguise-as-a-service daemon (DESIGN.md
// "Disguise-as-a-service").
//
// Partitioning: every shard is a self-contained DurableEngine (own data
// directory `shard-<i>/`, own WAL, vault, journal). Users are routed by
// uid hash — the SAME hash the BatchExecutor uses for its per-user FIFO
// queues — so one user's operations always land on one shard AND one worker
// queue inside it, preserving the §5 per-user composition order end to end
// with zero cross-shard coordination on the per-user path.
//
// Global disguises (null uid) touch every shard. They run through a
// two-phase barrier that generalizes the executor's shared/exclusive gate:
//   phase 1 (prepare): acquire every shard executor's exclusive gate, in
//     shard order (two concurrent globals cannot deadlock; per-user tasks
//     queue behind the gates);
//   phase 2 (commit): with the whole service quiesced, run the disguise on
//     each shard in turn, then release every gate.
// The barrier provides cross-shard ISOLATION, not atomicity: each shard's
// application commits independently (crash-consistent via its own WAL +
// journal), so a failure mid-phase-2 leaves the global disguise applied on
// a prefix of shards. The error reply names that prefix; every shard still
// audits clean on its own, and the operator resolves by re-applying or
// revealing per shard (the failure model section in DESIGN.md).
//
// Crash discipline matches BatchExecutor: a simulated crash anywhere
// freezes the whole set — all further dispatches fail, nothing flushes or
// compensates — so tests can drop the daemon mid-flight and assert that
// reopening every shard directory recovers audit-clean.
#ifndef SRC_SERVER_SHARD_H_
#define SRC_SERVER_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/batch.h"
#include "src/core/durable_engine.h"
#include "src/disguise/spec.h"
#include "src/sql/value.h"

namespace edna::server {

struct ShardSetOptions {
  // Fixed at directory-creation time and recorded in a manifest; reopening
  // with a different count is refused (uid routing would silently change).
  int num_shards = 1;
  // Worker threads per shard executor. 1 = inline execution.
  int threads_per_shard = 2;
  core::EngineOptions engine;
  db::DurableOptions durable;
  // Retry/backpressure tuning for the per-shard executors; num_threads and
  // drain_flush are overridden per shard.
  core::BatchOptions batch;
  // Injected for tests/benches (bit-identical replay); nullptr = SystemClock
  // owned per shard engine.
  const Clock* clock = nullptr;
  // Registered on every shard before serving starts.
  std::vector<disguise::DisguiseSpec> specs;
};

// Aggregate of one audit pass over every shard.
struct ShardAuditReport {
  size_t shards = 0;
  size_t violations = 0;
  std::string summary;  // "shard N: <violation>" lines; empty when clean

  bool ok() const { return violations == 0; }
};

class ShardSet {
 public:
  // Opens (creating if needed) `root_dir/shard-<i>` for every shard and runs
  // each through the full DurableEngine recovery pipeline. Writes/validates
  // the shard-count manifest.
  static StatusOr<std::unique_ptr<ShardSet>> Open(const std::string& root_dir,
                                                  ShardSetOptions options);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  size_t num_shards() const { return shards_.size(); }
  // uid-hash routing; uid must be non-null (globals take the barrier path).
  size_t ShardFor(const sql::Value& uid) const;
  core::DurableEngine* engine(size_t shard) { return shards_[shard].engine.get(); }
  core::BatchExecutor* executor(size_t shard) { return shards_[shard].executor.get(); }

  // Executes one task to completion: per-user tasks ride the owning shard's
  // executor (per-user FIFO, conflict retries), global tasks the two-phase
  // barrier. Blocks the calling thread; connection handlers each own a
  // thread, so the wait is the natural backpressure.
  core::BatchTaskResult Dispatch(core::BatchTask task);

  // Consistency audit across every shard (engine AuditConsistency + db
  // CheckIntegrity).
  StatusOr<ShardAuditReport> Audit();

  // Checkpoints / group-flushes every shard. Refused while frozen: frozen
  // state must stay exactly as the simulated crash left it.
  Status Checkpoint();
  Status Flush();

  // Named service counters: aggregated DbStats over all shards plus
  // dispatch-level counters. Extending the list is a wire-compatible change
  // (stats travel as name/value pairs).
  std::vector<std::pair<std::string, uint64_t>> Stats() const;

  bool frozen() const { return frozen_.load(); }

 private:
  struct Shard {
    std::unique_ptr<core::DurableEngine> engine;
    std::unique_ptr<core::BatchExecutor> executor;
  };

  ShardSet() = default;

  core::BatchTaskResult DispatchGlobal(core::BatchTask task);
  void Freeze() { frozen_.store(true); }

  std::vector<Shard> shards_;

  // Serializes global disguises; held across both barrier phases.
  std::mutex global_mu_;
  std::atomic<bool> frozen_{false};

  // Dispatch-level counters (shard_* names in Stats()).
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> dispatch_errors_{0};
  std::atomic<uint64_t> applies_{0};
  std::atomic<uint64_t> reveals_{0};
  std::atomic<uint64_t> globals_{0};
  std::atomic<uint64_t> conflict_retries_{0};
};

}  // namespace edna::server

#endif  // SRC_SERVER_SHARD_H_
