// Shamir secret sharing over GF(256), as proposed in the paper's footnote:
// a vault key can be threshold-shared between the user, the web application,
// and a trusted third party so that any `threshold` of them can reconstruct
// it (protecting against lost user keys without giving any single party
// unilateral access).
#ifndef SRC_CRYPTO_SECRET_SHARE_H_
#define SRC_CRYPTO_SECRET_SHARE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace edna::crypto {

struct SecretShare {
  uint8_t x = 0;  // share index (1..255); 0 is the secret itself, never issued
  std::vector<uint8_t> y;  // one byte per secret byte
};

// Splits `secret` into `num_shares` shares, any `threshold` of which
// reconstruct it. Coefficient randomness comes from `rng` (callers that care
// about real secrecy should seed it from a secure source; tests use fixed
// seeds). Requires 1 <= threshold <= num_shares <= 255.
StatusOr<std::vector<SecretShare>> SplitSecret(const std::vector<uint8_t>& secret,
                                               int threshold, int num_shares, Rng* rng);

// Reconstructs the secret from >= threshold distinct shares via Lagrange
// interpolation at x = 0. With fewer than threshold shares the result is
// garbage by design; callers verify by key fingerprint.
StatusOr<std::vector<uint8_t>> CombineShares(const std::vector<SecretShare>& shares);

// GF(256) arithmetic (AES polynomial x^8+x^4+x^3+x+1), exposed for tests.
uint8_t Gf256Mul(uint8_t a, uint8_t b);
uint8_t Gf256Inv(uint8_t a);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_SECRET_SHARE_H_
