// HMAC-SHA-256 (RFC 2104) and HKDF-style key derivation, used to
// authenticate encrypted vault entries and derive per-purpose subkeys from a
// user's master vault key.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/crypto/sha256.h"

namespace edna::crypto {

// HMAC-SHA-256 of `data` under `key` (any key length).
Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const uint8_t* data, size_t len);
Sha256Digest HmacSha256(const std::vector<uint8_t>& key, std::string_view data);
Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const std::vector<uint8_t>& data);

// Constant-time digest comparison (avoids MAC-check timing leaks).
bool DigestEqualConstantTime(const Sha256Digest& a, const Sha256Digest& b);

// Simple HKDF-Expand-style derivation: out_len bytes derived from `key` and
// a context `label` (counter-mode HMAC chain, RFC 5869 expand step).
std::vector<uint8_t> DeriveKey(const std::vector<uint8_t>& key, std::string_view label,
                               size_t out_len);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_HMAC_H_
