#include "src/crypto/chacha20.h"

#include <algorithm>
#include <cstring>

namespace edna::crypto {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t state[16], int a, int b, int c, int d) {
  state[a] += state[b];
  state[d] = Rotl(state[d] ^ state[a], 16);
  state[c] += state[d];
  state[b] = Rotl(state[b] ^ state[c], 12);
  state[a] += state[b];
  state[d] = Rotl(state[d] ^ state[a], 8);
  state[c] += state[d];
  state[b] = Rotl(state[b] ^ state[c], 7);
}

uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void Store32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

// The (key, nonce) half of the ChaCha state, loaded once per message rather
// than once per 64-byte block; only word 12 (the counter) varies across
// blocks of the same message.
struct ChaChaState {
  uint32_t words[16];

  ChaChaState(const ChaChaKey& key, const ChaChaNonce& nonce) {
    static const uint8_t kSigma[16] = {'e', 'x', 'p', 'a', 'n', 'd', ' ', '3',
                                       '2', '-', 'b', 'y', 't', 'e', ' ', 'k'};
    words[0] = Load32Le(kSigma);
    words[1] = Load32Le(kSigma + 4);
    words[2] = Load32Le(kSigma + 8);
    words[3] = Load32Le(kSigma + 12);
    for (int i = 0; i < 8; ++i) {
      words[4 + i] = Load32Le(key.data() + 4 * i);
    }
    words[12] = 0;
    words[13] = Load32Le(nonce.data());
    words[14] = Load32Le(nonce.data() + 4);
    words[15] = Load32Le(nonce.data() + 8);
  }

  // One 64-byte keystream block at `counter`.
  void Block(uint32_t counter, uint8_t out[64]) {
    words[12] = counter;
    uint32_t working[16];
    std::memcpy(working, words, sizeof(working));
    for (int round = 0; round < 10; ++round) {
      QuarterRound(working, 0, 4, 8, 12);
      QuarterRound(working, 1, 5, 9, 13);
      QuarterRound(working, 2, 6, 10, 14);
      QuarterRound(working, 3, 7, 11, 15);
      QuarterRound(working, 0, 5, 10, 15);
      QuarterRound(working, 1, 6, 11, 12);
      QuarterRound(working, 2, 7, 8, 13);
      QuarterRound(working, 3, 4, 9, 14);
    }
    for (int i = 0; i < 16; ++i) {
      Store32Le(out + 4 * i, working[i] + words[i]);
    }
  }
};

// XORs `len` bytes of `stream` into `data` word-wise: 8 bytes per op through
// the bulk, a byte tail for the remainder. memcpy keeps it alignment-safe and
// compiles to plain 64-bit loads/stores on every target we build for.
void XorWords(uint8_t* data, const uint8_t* stream, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t d;
    uint64_t s;
    std::memcpy(&d, data + i, 8);
    std::memcpy(&s, stream + i, 8);
    d ^= s;
    std::memcpy(data + i, &d, 8);
  }
  for (; i < len; ++i) {
    data[i] ^= stream[i];
  }
}

}  // namespace

void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t* data, size_t len) {
  ChaChaState state(key, nonce);
  uint8_t stream[kChaChaBatchBlocks * 64];
  size_t offset = 0;
  while (offset < len) {
    // Generate a multi-block run of keystream, then XOR it in one word-wise
    // sweep instead of interleaving per-byte XORs with block generation.
    size_t want = len - offset;
    size_t blocks = std::min<size_t>(kChaChaBatchBlocks, (want + 63) / 64);
    for (size_t b = 0; b < blocks; ++b) {
      state.Block(counter++, stream + 64 * b);
    }
    size_t take = std::min(want, blocks * 64);
    XorWords(data + offset, stream, take);
    offset += take;
  }
}

void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 std::vector<uint8_t>* data) {
  ChaCha20Xor(key, nonce, counter, data->data(), data->size());
}

std::vector<uint8_t> ChaCha20Keystream(const ChaChaKey& key, const ChaChaNonce& nonce,
                                       uint32_t counter, size_t len) {
  std::vector<uint8_t> out(len, 0);
  ChaCha20Xor(key, nonce, counter, &out);
  return out;
}

}  // namespace edna::crypto
