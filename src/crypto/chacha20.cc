#include "src/crypto/chacha20.h"

#include <cstring>

namespace edna::crypto {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t state[16], int a, int b, int c, int d) {
  state[a] += state[b];
  state[d] = Rotl(state[d] ^ state[a], 16);
  state[c] += state[d];
  state[b] = Rotl(state[b] ^ state[c], 12);
  state[a] += state[b];
  state[d] = Rotl(state[d] ^ state[a], 8);
  state[c] += state[d];
  state[b] = Rotl(state[b] ^ state[c], 7);
}

uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void Store32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

// One 64-byte keystream block.
void ChaChaBlock(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t out[64]) {
  static const uint8_t kSigma[16] = {'e', 'x', 'p', 'a', 'n', 'd', ' ', '3',
                                     '2', '-', 'b', 'y', 't', 'e', ' ', 'k'};
  uint32_t state[16];
  state[0] = Load32Le(kSigma);
  state[1] = Load32Le(kSigma + 4);
  state[2] = Load32Le(kSigma + 8);
  state[3] = Load32Le(kSigma + 12);
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = Load32Le(key.data() + 4 * i);
  }
  state[12] = counter;
  state[13] = Load32Le(nonce.data());
  state[14] = Load32Le(nonce.data() + 4);
  state[15] = Load32Le(nonce.data() + 8);

  uint32_t working[16];
  std::memcpy(working, state, sizeof(working));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working, 0, 4, 8, 12);
    QuarterRound(working, 1, 5, 9, 13);
    QuarterRound(working, 2, 6, 10, 14);
    QuarterRound(working, 3, 7, 11, 15);
    QuarterRound(working, 0, 5, 10, 15);
    QuarterRound(working, 1, 6, 11, 12);
    QuarterRound(working, 2, 7, 8, 13);
    QuarterRound(working, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    Store32Le(out + 4 * i, working[i] + state[i]);
  }
}

}  // namespace

void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 std::vector<uint8_t>* data) {
  uint8_t block[64];
  size_t offset = 0;
  while (offset < data->size()) {
    ChaChaBlock(key, nonce, counter++, block);
    size_t take = std::min<size_t>(64, data->size() - offset);
    for (size_t i = 0; i < take; ++i) {
      (*data)[offset + i] ^= block[i];
    }
    offset += take;
  }
}

std::vector<uint8_t> ChaCha20Keystream(const ChaChaKey& key, const ChaChaNonce& nonce,
                                       uint32_t counter, size_t len) {
  std::vector<uint8_t> out(len, 0);
  ChaCha20Xor(key, nonce, counter, &out);
  return out;
}

}  // namespace edna::crypto
