#include "src/crypto/hmac.h"

#include <cstring>

namespace edna::crypto {

Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const uint8_t* data, size_t len) {
  uint8_t block_key[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(block_key, kd.data(), kd.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  uint8_t ipad[kSha256BlockSize];
  uint8_t opad[kSha256BlockSize];
  for (size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kSha256BlockSize);
  inner.Update(data, len);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kSha256BlockSize);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

Sha256Digest HmacSha256(const std::vector<uint8_t>& key, std::string_view data) {
  return HmacSha256(key, reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const std::vector<uint8_t>& data) {
  return HmacSha256(key, data.data(), data.size());
}

bool DigestEqualConstantTime(const Sha256Digest& a, const Sha256Digest& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

std::vector<uint8_t> DeriveKey(const std::vector<uint8_t>& key, std::string_view label,
                               size_t out_len) {
  std::vector<uint8_t> out;
  out.reserve(out_len);
  Sha256Digest prev{};
  uint8_t counter = 1;
  bool first = true;
  while (out.size() < out_len) {
    std::vector<uint8_t> input;
    if (!first) {
      input.insert(input.end(), prev.begin(), prev.end());
    }
    input.insert(input.end(), label.begin(), label.end());
    input.push_back(counter);
    prev = HmacSha256(key, input);
    size_t take = std::min(prev.size(), out_len - out.size());
    out.insert(out.end(), prev.begin(), prev.begin() + static_cast<long>(take));
    ++counter;
    first = false;
  }
  return out;
}

}  // namespace edna::crypto
