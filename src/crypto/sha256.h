// SHA-256 (FIPS 180-4), implemented from scratch for the vault subsystem:
// key fingerprints, HMAC (authenticated vault entries), and deterministic
// pseudonym derivation in disguise generators.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edna::crypto {

constexpr size_t kSha256DigestSize = 32;
constexpr size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

// Incremental hasher.
class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(std::string_view data);
  void Update(const std::vector<uint8_t>& data);

  // Finalizes and returns the digest; the hasher must not be reused after.
  Sha256Digest Finish();

  // One-shot helpers.
  static Sha256Digest Hash(const uint8_t* data, size_t len);
  static Sha256Digest Hash(std::string_view data);
  static Sha256Digest Hash(const std::vector<uint8_t>& data);

 private:
  void ProcessBlock(const uint8_t block[kSha256BlockSize]);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[kSha256BlockSize];
  size_t buffer_len_ = 0;
  bool finished_ = false;
};

// Lowercase hex of a digest.
std::string DigestToHex(const Sha256Digest& digest);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_SHA256_H_
