#include "src/crypto/key.h"

namespace edna::crypto {

VaultKey GenerateVaultKey(Rng* rng) {
  VaultKey vk;
  vk.key = rng->NextBytes(kVaultKeySize);
  vk.fingerprint = KeyFingerprint(vk.key);
  return vk;
}

std::string KeyFingerprint(const std::vector<uint8_t>& key) {
  return DigestToHex(Sha256::Hash(key));
}

StatusOr<EscrowedKey> EscrowKey(const VaultKey& key, Rng* rng) {
  ASSIGN_OR_RETURN(std::vector<SecretShare> shares, SplitSecret(key.key, 2, 3, rng));
  EscrowedKey out;
  out.user_share = std::move(shares[0]);
  out.app_share = std::move(shares[1]);
  out.escrow_share = std::move(shares[2]);
  out.fingerprint = key.fingerprint;
  return out;
}

StatusOr<VaultKey> RecoverKey(const SecretShare& a, const SecretShare& b,
                              const std::string& expected_fingerprint) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> key, CombineShares({a, b}));
  std::string fp = KeyFingerprint(key);
  if (fp != expected_fingerprint) {
    return PermissionDenied("recovered key fingerprint mismatch");
  }
  VaultKey vk;
  vk.key = std::move(key);
  vk.fingerprint = std::move(fp);
  return vk;
}

}  // namespace edna::crypto
