// Authenticated encryption for vault entries: ChaCha20 encrypt-then-MAC with
// HMAC-SHA-256 over (nonce || aad_len || aad || ciphertext). Keys are split
// from a 32-byte master key via DeriveKey so the cipher and MAC never share
// key material.
#ifndef SRC_CRYPTO_AEAD_H_
#define SRC_CRYPTO_AEAD_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/sha256.h"

namespace edna::crypto {

struct SealedBox {
  ChaChaNonce nonce{};
  std::vector<uint8_t> ciphertext;
  Sha256Digest mac{};

  // Flat wire form: nonce || mac || ciphertext.
  std::vector<uint8_t> Serialize() const;
  static StatusOr<SealedBox> Deserialize(const std::vector<uint8_t>& wire);
};

// Encrypts `plaintext` under `master_key` (32 bytes) with the given nonce.
// `aad` is authenticated but not encrypted (vault entry metadata).
SealedBox Seal(const std::vector<uint8_t>& master_key, const ChaChaNonce& nonce,
               const std::vector<uint8_t>& plaintext, std::string_view aad);

// Verifies and decrypts; kPermissionDenied on MAC failure (wrong key or
// tampered entry).
StatusOr<std::vector<uint8_t>> Open(const std::vector<uint8_t>& master_key,
                                    const SealedBox& box, std::string_view aad);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_AEAD_H_
