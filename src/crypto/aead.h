// Authenticated encryption for vault entries: ChaCha20 encrypt-then-MAC with
// HMAC-SHA-256 over (nonce || aad_len || aad || ciphertext). Keys are split
// from a 32-byte master key via DeriveKey so the cipher and MAC never share
// key material.
#ifndef SRC_CRYPTO_AEAD_H_
#define SRC_CRYPTO_AEAD_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/sha256.h"

namespace edna::crypto {

struct SealedBox {
  ChaChaNonce nonce{};
  std::vector<uint8_t> ciphertext;
  Sha256Digest mac{};

  // Flat wire form: nonce || mac || ciphertext.
  std::vector<uint8_t> Serialize() const;
  static StatusOr<SealedBox> Deserialize(const std::vector<uint8_t>& wire);
};

// The enc/MAC subkey pair split from one master key. Deriving it costs two
// HMAC chains; callers sealing or opening N entries under the same master key
// derive once and use the *With forms below instead of paying the derivation
// per entry.
struct SealKeys {
  ChaChaKey enc{};
  std::vector<uint8_t> mac;
};

SealKeys DeriveSealKeys(const std::vector<uint8_t>& master_key);

// Encrypts `plaintext` under `master_key` (32 bytes) with the given nonce.
// `aad` is authenticated but not encrypted (vault entry metadata).
SealedBox Seal(const std::vector<uint8_t>& master_key, const ChaChaNonce& nonce,
               const std::vector<uint8_t>& plaintext, std::string_view aad);

// Verifies and decrypts; kPermissionDenied on MAC failure (wrong key or
// tampered entry).
StatusOr<std::vector<uint8_t>> Open(const std::vector<uint8_t>& master_key,
                                    const SealedBox& box, std::string_view aad);

// Pre-derived-key forms: byte-identical to Seal/Open for the same master key.
SealedBox SealWith(const SealKeys& keys, const ChaChaNonce& nonce,
                   const std::vector<uint8_t>& plaintext, std::string_view aad);
StatusOr<std::vector<uint8_t>> OpenWith(const SealKeys& keys, const SealedBox& box,
                                        std::string_view aad);

// One entry of a batched seal: plaintext/aad in, nonce chosen by the caller
// (each entry MUST get a distinct nonce under a given key).
struct SealItem {
  ChaChaNonce nonce{};
  const std::vector<uint8_t>* plaintext = nullptr;
  std::string_view aad;
};

// Seals N entries under one key pair, deriving subkeys once and reusing the
// MAC scratch buffer across entries. Output order matches input order, and
// entry i is byte-identical to Seal(master, items[i].nonce, ...).
std::vector<SealedBox> SealBatch(const SealKeys& keys, const std::vector<SealItem>& items);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_AEAD_H_
