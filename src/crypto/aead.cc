#include "src/crypto/aead.h"

#include <cstring>

#include "src/crypto/hmac.h"

namespace edna::crypto {

namespace {

ChaChaKey EncKey(const std::vector<uint8_t>& master) {
  std::vector<uint8_t> k = DeriveKey(master, "edna-vault-enc", kChaChaKeySize);
  ChaChaKey out{};
  std::memcpy(out.data(), k.data(), out.size());
  return out;
}

std::vector<uint8_t> MacKey(const std::vector<uint8_t>& master) {
  return DeriveKey(master, "edna-vault-mac", 32);
}

Sha256Digest ComputeMac(const std::vector<uint8_t>& mac_key, const ChaChaNonce& nonce,
                        std::string_view aad, const std::vector<uint8_t>& ciphertext) {
  std::vector<uint8_t> buf;
  buf.reserve(nonce.size() + 8 + aad.size() + ciphertext.size());
  buf.insert(buf.end(), nonce.begin(), nonce.end());
  uint64_t aad_len = aad.size();
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<uint8_t>(aad_len >> (8 * i)));
  }
  buf.insert(buf.end(), aad.begin(), aad.end());
  buf.insert(buf.end(), ciphertext.begin(), ciphertext.end());
  return HmacSha256(mac_key, buf);
}

}  // namespace

std::vector<uint8_t> SealedBox::Serialize() const {
  std::vector<uint8_t> wire;
  wire.reserve(nonce.size() + mac.size() + ciphertext.size());
  wire.insert(wire.end(), nonce.begin(), nonce.end());
  wire.insert(wire.end(), mac.begin(), mac.end());
  wire.insert(wire.end(), ciphertext.begin(), ciphertext.end());
  return wire;
}

StatusOr<SealedBox> SealedBox::Deserialize(const std::vector<uint8_t>& wire) {
  if (wire.size() < kChaChaNonceSize + kSha256DigestSize) {
    return InvalidArgument("sealed box too short");
  }
  SealedBox box;
  std::memcpy(box.nonce.data(), wire.data(), kChaChaNonceSize);
  std::memcpy(box.mac.data(), wire.data() + kChaChaNonceSize, kSha256DigestSize);
  box.ciphertext.assign(wire.begin() + kChaChaNonceSize + kSha256DigestSize, wire.end());
  return box;
}

SealedBox Seal(const std::vector<uint8_t>& master_key, const ChaChaNonce& nonce,
               const std::vector<uint8_t>& plaintext, std::string_view aad) {
  SealedBox box;
  box.nonce = nonce;
  box.ciphertext = plaintext;
  ChaChaKey ek = EncKey(master_key);
  ChaCha20Xor(ek, nonce, 1, &box.ciphertext);
  box.mac = ComputeMac(MacKey(master_key), nonce, aad, box.ciphertext);
  return box;
}

StatusOr<std::vector<uint8_t>> Open(const std::vector<uint8_t>& master_key,
                                    const SealedBox& box, std::string_view aad) {
  Sha256Digest expect = ComputeMac(MacKey(master_key), box.nonce, aad, box.ciphertext);
  if (!DigestEqualConstantTime(expect, box.mac)) {
    return PermissionDenied("vault entry MAC check failed (wrong key or tampered data)");
  }
  std::vector<uint8_t> plaintext = box.ciphertext;
  ChaChaKey ek = EncKey(master_key);
  ChaCha20Xor(ek, box.nonce, 1, &plaintext);
  return plaintext;
}

}  // namespace edna::crypto
