#include "src/crypto/aead.h"

#include <cstring>

#include "src/crypto/hmac.h"

namespace edna::crypto {

namespace {

// Serializes the MAC input (nonce || aad_len || aad || ciphertext) into
// `buf`, which is reused across entries of a batch to avoid reallocating.
Sha256Digest ComputeMac(const std::vector<uint8_t>& mac_key, const ChaChaNonce& nonce,
                        std::string_view aad, const std::vector<uint8_t>& ciphertext,
                        std::vector<uint8_t>* buf) {
  buf->clear();
  buf->reserve(nonce.size() + 8 + aad.size() + ciphertext.size());
  buf->insert(buf->end(), nonce.begin(), nonce.end());
  uint64_t aad_len = aad.size();
  for (int i = 0; i < 8; ++i) {
    buf->push_back(static_cast<uint8_t>(aad_len >> (8 * i)));
  }
  buf->insert(buf->end(), aad.begin(), aad.end());
  buf->insert(buf->end(), ciphertext.begin(), ciphertext.end());
  return HmacSha256(mac_key, *buf);
}

}  // namespace

SealKeys DeriveSealKeys(const std::vector<uint8_t>& master_key) {
  SealKeys keys;
  std::vector<uint8_t> ek = DeriveKey(master_key, "edna-vault-enc", kChaChaKeySize);
  std::memcpy(keys.enc.data(), ek.data(), keys.enc.size());
  keys.mac = DeriveKey(master_key, "edna-vault-mac", 32);
  return keys;
}

std::vector<uint8_t> SealedBox::Serialize() const {
  std::vector<uint8_t> wire;
  wire.reserve(nonce.size() + mac.size() + ciphertext.size());
  wire.insert(wire.end(), nonce.begin(), nonce.end());
  wire.insert(wire.end(), mac.begin(), mac.end());
  wire.insert(wire.end(), ciphertext.begin(), ciphertext.end());
  return wire;
}

StatusOr<SealedBox> SealedBox::Deserialize(const std::vector<uint8_t>& wire) {
  if (wire.size() < kChaChaNonceSize + kSha256DigestSize) {
    return InvalidArgument("sealed box too short");
  }
  SealedBox box;
  std::memcpy(box.nonce.data(), wire.data(), kChaChaNonceSize);
  std::memcpy(box.mac.data(), wire.data() + kChaChaNonceSize, kSha256DigestSize);
  box.ciphertext.assign(wire.begin() + kChaChaNonceSize + kSha256DigestSize, wire.end());
  return box;
}

SealedBox SealWith(const SealKeys& keys, const ChaChaNonce& nonce,
                   const std::vector<uint8_t>& plaintext, std::string_view aad) {
  SealedBox box;
  box.nonce = nonce;
  box.ciphertext = plaintext;
  ChaCha20Xor(keys.enc, nonce, 1, &box.ciphertext);
  std::vector<uint8_t> scratch;
  box.mac = ComputeMac(keys.mac, nonce, aad, box.ciphertext, &scratch);
  return box;
}

StatusOr<std::vector<uint8_t>> OpenWith(const SealKeys& keys, const SealedBox& box,
                                        std::string_view aad) {
  std::vector<uint8_t> scratch;
  Sha256Digest expect = ComputeMac(keys.mac, box.nonce, aad, box.ciphertext, &scratch);
  if (!DigestEqualConstantTime(expect, box.mac)) {
    return PermissionDenied("vault entry MAC check failed (wrong key or tampered data)");
  }
  std::vector<uint8_t> plaintext = box.ciphertext;
  ChaCha20Xor(keys.enc, box.nonce, 1, &plaintext);
  return plaintext;
}

SealedBox Seal(const std::vector<uint8_t>& master_key, const ChaChaNonce& nonce,
               const std::vector<uint8_t>& plaintext, std::string_view aad) {
  return SealWith(DeriveSealKeys(master_key), nonce, plaintext, aad);
}

StatusOr<std::vector<uint8_t>> Open(const std::vector<uint8_t>& master_key,
                                    const SealedBox& box, std::string_view aad) {
  return OpenWith(DeriveSealKeys(master_key), box, aad);
}

std::vector<SealedBox> SealBatch(const SealKeys& keys, const std::vector<SealItem>& items) {
  std::vector<SealedBox> out;
  out.reserve(items.size());
  std::vector<uint8_t> scratch;
  for (const SealItem& item : items) {
    SealedBox box;
    box.nonce = item.nonce;
    box.ciphertext = *item.plaintext;
    ChaCha20Xor(keys.enc, item.nonce, 1, &box.ciphertext);
    box.mac = ComputeMac(keys.mac, item.nonce, item.aad, box.ciphertext, &scratch);
    out.push_back(std::move(box));
  }
  return out;
}

}  // namespace edna::crypto
