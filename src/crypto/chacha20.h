// ChaCha20 stream cipher (RFC 8439), from scratch. Combined with
// HMAC-SHA-256 in aead.h it provides the encrypted-vault deployment model
// of §4.2: vault contents encrypted under a user-held key.
#ifndef SRC_CRYPTO_CHACHA20_H_
#define SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace edna::crypto {

constexpr size_t kChaChaKeySize = 32;
constexpr size_t kChaChaNonceSize = 12;

// Keystream blocks generated per inner batch: the cipher fills this many
// 64-byte blocks into a contiguous buffer, then XORs them into the message
// word-wise, instead of interleaving per-byte XORs with block generation.
constexpr size_t kChaChaBatchBlocks = 16;

using ChaChaKey = std::array<uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<uint8_t, kChaChaNonceSize>;

// XORs `data` with the ChaCha20 keystream for (key, nonce) starting at block
// `counter`. Encryption and decryption are the same operation.
void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 std::vector<uint8_t>* data);

// Raw-buffer form for callers that encrypt in place inside larger frames.
void ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t counter,
                 uint8_t* data, size_t len);

// Produces `len` keystream bytes (used by tests against RFC 8439 vectors).
std::vector<uint8_t> ChaCha20Keystream(const ChaChaKey& key, const ChaChaNonce& nonce,
                                       uint32_t counter, size_t len);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_CHACHA20_H_
