// Vault key management: generation, fingerprints, and the three-party
// threshold escrow described in the paper's footnote (user + application +
// trusted third party, any two of which can reconstruct).
#ifndef SRC_CRYPTO_KEY_H_
#define SRC_CRYPTO_KEY_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/secret_share.h"
#include "src/crypto/sha256.h"

namespace edna::crypto {

constexpr size_t kVaultKeySize = 32;

// A user's master vault key plus its public fingerprint.
struct VaultKey {
  std::vector<uint8_t> key;     // kVaultKeySize bytes
  std::string fingerprint;      // hex SHA-256 of the key (safe to store)
};

// Generates a fresh key from `rng`.
VaultKey GenerateVaultKey(Rng* rng);

// Fingerprint of raw key bytes.
std::string KeyFingerprint(const std::vector<uint8_t>& key);

// Three shares (user, application, escrow/third party), threshold 2.
struct EscrowedKey {
  SecretShare user_share;
  SecretShare app_share;
  SecretShare escrow_share;
  std::string fingerprint;  // of the original key, for recovery verification
};

StatusOr<EscrowedKey> EscrowKey(const VaultKey& key, Rng* rng);

// Recovers the key from any two escrow shares; verifies the fingerprint and
// fails with kPermissionDenied on mismatch.
StatusOr<VaultKey> RecoverKey(const SecretShare& a, const SecretShare& b,
                              const std::string& expected_fingerprint);

}  // namespace edna::crypto

#endif  // SRC_CRYPTO_KEY_H_
