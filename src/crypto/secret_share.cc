#include "src/crypto/secret_share.h"

#include <set>

namespace edna::crypto {

uint8_t Gf256Mul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  while (b != 0) {
    if (b & 1) {
      p ^= a;
    }
    bool hi = (a & 0x80) != 0;
    a <<= 1;
    if (hi) {
      a ^= 0x1b;  // reduce by x^8 + x^4 + x^3 + x + 1
    }
    b >>= 1;
  }
  return p;
}

uint8_t Gf256Inv(uint8_t a) {
  // a^254 by square-and-multiply (Fermat in GF(2^8)); Inv(0) is defined as 0
  // but never used on a valid code path.
  uint8_t result = 1;
  uint8_t base = a;
  int exp = 254;
  while (exp > 0) {
    if (exp & 1) {
      result = Gf256Mul(result, base);
    }
    base = Gf256Mul(base, base);
    exp >>= 1;
  }
  return result;
}

StatusOr<std::vector<SecretShare>> SplitSecret(const std::vector<uint8_t>& secret,
                                               int threshold, int num_shares, Rng* rng) {
  if (threshold < 1 || num_shares < threshold || num_shares > 255) {
    return InvalidArgument("require 1 <= threshold <= num_shares <= 255");
  }
  if (secret.empty()) {
    return InvalidArgument("cannot share an empty secret");
  }
  std::vector<SecretShare> shares(static_cast<size_t>(num_shares));
  for (int i = 0; i < num_shares; ++i) {
    shares[static_cast<size_t>(i)].x = static_cast<uint8_t>(i + 1);
    shares[static_cast<size_t>(i)].y.resize(secret.size());
  }
  // Independent random polynomial of degree threshold-1 per secret byte,
  // with the constant term equal to the secret byte.
  std::vector<uint8_t> coeffs(static_cast<size_t>(threshold));
  for (size_t byte = 0; byte < secret.size(); ++byte) {
    coeffs[0] = secret[byte];
    for (int d = 1; d < threshold; ++d) {
      coeffs[static_cast<size_t>(d)] = static_cast<uint8_t>(rng->NextBounded(256));
    }
    for (int i = 0; i < num_shares; ++i) {
      uint8_t x = shares[static_cast<size_t>(i)].x;
      // Horner evaluation.
      uint8_t y = 0;
      for (int d = threshold - 1; d >= 0; --d) {
        y = static_cast<uint8_t>(Gf256Mul(y, x) ^ coeffs[static_cast<size_t>(d)]);
      }
      shares[static_cast<size_t>(i)].y[byte] = y;
    }
  }
  return shares;
}

StatusOr<std::vector<uint8_t>> CombineShares(const std::vector<SecretShare>& shares) {
  if (shares.empty()) {
    return InvalidArgument("no shares supplied");
  }
  size_t len = shares[0].y.size();
  std::set<uint8_t> xs;
  for (const SecretShare& s : shares) {
    if (s.x == 0) {
      return InvalidArgument("share index 0 is invalid");
    }
    if (s.y.size() != len) {
      return InvalidArgument("shares have inconsistent lengths");
    }
    if (!xs.insert(s.x).second) {
      return InvalidArgument("duplicate share index");
    }
  }
  std::vector<uint8_t> secret(len, 0);
  // Lagrange interpolation at x = 0:
  //   f(0) = sum_i y_i * prod_{j!=i} x_j / (x_j ^ x_i)
  for (size_t i = 0; i < shares.size(); ++i) {
    uint8_t num = 1;
    uint8_t den = 1;
    for (size_t j = 0; j < shares.size(); ++j) {
      if (i == j) {
        continue;
      }
      num = Gf256Mul(num, shares[j].x);
      den = Gf256Mul(den, static_cast<uint8_t>(shares[i].x ^ shares[j].x));
    }
    uint8_t basis = Gf256Mul(num, Gf256Inv(den));
    for (size_t b = 0; b < len; ++b) {
      secret[b] ^= Gf256Mul(shares[i].y[b], basis);
    }
  }
  return secret;
}

}  // namespace edna::crypto
