// Value generators: the vocabulary used in disguise specifications for
// placeholder columns ("generate_placeholder" in Figure 3) and Modify
// transformations. Edna uses Rust closures here; we provide a declarative,
// serializable subset with equivalent power for the paper's disguises, plus
// an escape hatch into arbitrary SQL expressions over the original row.
#ifndef SRC_DISGUISE_GENERATOR_H_
#define SRC_DISGUISE_GENERATOR_H_

#include <optional>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sql/ast.h"
#include "src/sql/eval.h"

namespace edna::disguise {

// Evaluation context for one generated value.
struct GenContext {
  Rng* rng = nullptr;
  // Original value of the column being modified (Modify only; null for
  // placeholder generation where there is no original).
  const sql::Value* original = nullptr;
  // Resolver over the original row (Modify) — lets Expr generators read
  // other columns of the row being transformed.
  sql::ColumnResolver row;
  const sql::ParamMap* params = nullptr;
};

class Generator {
 public:
  enum class Kind {
    kRandomName,    // Random            : pseudoword identity ("Axolotl")
    kRandomString,  // RandomString(n)   : n random alphanumerics
    kRandomInt,     // RandomInt(lo, hi) : uniform integer
    kConst,         // Const(lit) / Default(lit): fixed literal (incl. NULL)
    kHash,          // Hash              : hex SHA-256 prefix of the original
    kRedact,        // Redact            : the string "[redacted]"
    kKeep,          // Keep              : original value unchanged
    kExpr,          // Expr(sql)         : SQL expression over the row
  };

  Generator() : kind_(Kind::kKeep) {}

  static Generator RandomName();
  static Generator RandomString(int64_t length);
  static Generator RandomInt(int64_t lo, int64_t hi);
  static Generator Const(sql::Value value);
  static Generator Hash();
  static Generator Redact();
  static Generator Keep();
  static Generator Expr(sql::ExprPtr expr);

  // Generators appear in spec containers; Expr holds a unique_ptr so copies
  // clone the AST.
  Generator(const Generator& other);
  Generator& operator=(const Generator& other);
  Generator(Generator&&) = default;
  Generator& operator=(Generator&&) = default;

  Kind kind() const { return kind_; }

  StatusOr<sql::Value> Generate(const GenContext& ctx) const;

  // Spec-text rendering, parseable by Parse: "Random", "Const(NULL)",
  // "RandomInt(1, 10)", "Expr(LOWER(\"name\"))", ...
  std::string ToText() const;

  // Parses a generator term from spec text.
  static StatusOr<Generator> Parse(std::string_view text);

 private:
  Kind kind_;
  sql::Value const_value_;
  int64_t int_a_ = 0;  // RandomString length / RandomInt lo
  int64_t int_b_ = 0;  // RandomInt hi
  sql::ExprPtr expr_;
};

}  // namespace edna::disguise

#endif  // SRC_DISGUISE_GENERATOR_H_
