// Disguise-spec linter: the "data analysis tools and heuristics [that] can
// help developers improve or catch errors in disguise specifications" the
// paper's §7 calls for. Validate() (spec.h) rejects specs that cannot run;
// the linter flags specs that run but likely fail their privacy goal or
// fail at apply time.
//
// Findings (by code):
//   kBlockedRemoval    (error)   — the spec removes rows of a table that is
//       referenced through an ON DELETE RESTRICT foreign key by a table the
//       spec leaves untouched: Apply will abort with an integrity error.
//   kCoverageGap       (warning) — the spec removes a user's identity row
//       but a table referencing that identity is not transformed; the FK's
//       SET NULL / CASCADE action will fire implicitly, which may be
//       unintended (silent data loss or silent retention).
//   kGlobalRemoveAll   (warning) — a per-user spec contains a Remove whose
//       predicate does not mention $UID: it deletes those rows for EVERY
//       user, not just the disguising one.
//   kUnusedPlaceholder (warning) — a placeholder recipe no Decorrelate ever
//       targets.
//   kPlaceholderEnabled(warning) — a placeholder recipe for a table with a
//       disabled/deleted-style flag column that is not set TRUE; §3 says
//       placeholder users "should be disabled, ensuring they ... cannot
//       log in".
//   kNoAssertions      (info)    — the spec declares no end-state
//       assertions; §7 recommends them.
//   kNoopModify        (warning) — a Modify whose generator is Keep.
//   kIrreversible      (info)    — the spec is irreversible; users cannot
//       return (§2 argues for reversibility).
#ifndef SRC_DISGUISE_LINT_H_
#define SRC_DISGUISE_LINT_H_

#include <string>
#include <vector>

#include "src/db/schema.h"
#include "src/disguise/spec.h"

namespace edna::disguise {

enum class LintSeverity { kInfo, kWarning, kError };

enum class LintCode {
  kBlockedRemoval,
  kCoverageGap,
  kGlobalRemoveAll,
  kUnusedPlaceholder,
  kPlaceholderEnabled,
  kNoAssertions,
  kNoopModify,
  kIrreversible,
};

const char* LintCodeName(LintCode code);
const char* LintSeverityName(LintSeverity severity);

struct LintFinding {
  LintSeverity severity = LintSeverity::kInfo;
  LintCode code = LintCode::kNoAssertions;
  std::string table;  // primary table involved (may be empty)
  std::string message;

  std::string ToString() const;
};

// Analyzes `spec` against `schema`. The spec must already Validate().
// Findings are ordered errors first, then warnings, then infos.
std::vector<LintFinding> LintSpec(const DisguiseSpec& spec, const db::Schema& schema);

// True if any finding is an error.
bool HasLintErrors(const std::vector<LintFinding>& findings);

}  // namespace edna::disguise

#endif  // SRC_DISGUISE_LINT_H_
