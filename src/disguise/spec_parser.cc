#include "src/disguise/spec_parser.h"

#include <cstring>

#include "src/common/strings.h"
#include "src/sql/parser.h"

namespace edna::disguise {

StatusOr<std::vector<std::string>> SplitTopLevel(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  char quote = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (quote != 0) {
      current.push_back(c);
      if (c == quote) {
        // SQL doubles quotes to escape; treat '' / "" as staying quoted.
        if (i + 1 < s.size() && s[i + 1] == quote) {
          current.push_back(s[++i]);
        } else {
          quote = 0;
        }
      }
      continue;
    }
    if (c == '\'' || c == '"' || c == '`') {
      quote = c;
      current.push_back(c);
      continue;
    }
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth < 0) {
        return InvalidArgument("unbalanced ')' in: " + std::string(s));
      }
    } else if (c == sep && depth == 0) {
      out.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (depth != 0 || quote != 0) {
    return InvalidArgument("unbalanced parentheses or quotes in: " + std::string(s));
  }
  out.push_back(current);
  return out;
}

namespace {

// Strips a trailing inline comment that begins with " #" or " --" outside
// quotes. Leading-# lines are handled by the caller.
std::string StripInlineComment(std::string_view line) {
  char quote = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      }
      continue;
    }
    if (c == '\'' || c == '"' || c == '`') {
      quote = c;
      continue;
    }
    if (c == '#') {
      return std::string(line.substr(0, i));
    }
    if (c == '-' && i + 1 < line.size() && line[i + 1] == '-') {
      return std::string(line.substr(0, i));
    }
  }
  return std::string(line);
}

// Unquotes "name" or 'name' or `name` (collapsing doubled quote escapes);
// bare names pass through.
std::string Unquote(std::string_view s) {
  std::string_view t = StrTrim(s);
  if (t.size() >= 2 && (t.front() == '"' || t.front() == '\'' || t.front() == '`') &&
      t.back() == t.front()) {
    char quote = t.front();
    std::string_view body = t.substr(1, t.size() - 2);
    std::string out;
    out.reserve(body.size());
    for (size_t i = 0; i < body.size(); ++i) {
      out.push_back(body[i]);
      if (body[i] == quote && i + 1 < body.size() && body[i + 1] == quote) {
        ++i;  // collapse the doubled escape
      }
    }
    return out;
  }
  return std::string(t);
}

// Parses `key: value` returning the trimmed pair.
StatusOr<std::pair<std::string, std::string>> ParseKeyValue(std::string_view s) {
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return InvalidArgument("expected 'key: value' in: " + std::string(s));
  }
  return std::make_pair(std::string(StrTrim(s.substr(0, colon))),
                        std::string(StrTrim(s.substr(colon + 1))));
}

// Parses the body of a transformation call into a keyword map.
StatusOr<std::map<std::string, std::string>> ParseCallArgs(std::string_view args) {
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitTopLevel(args, ','));
  std::map<std::string, std::string> out;
  for (const std::string& part : parts) {
    if (StrTrim(part).empty()) {
      continue;
    }
    ASSIGN_OR_RETURN(auto kv, ParseKeyValue(part));
    if (!out.emplace(kv.first, kv.second).second) {
      return InvalidArgument("duplicate argument \"" + kv.first + "\"");
    }
  }
  return out;
}

StatusOr<Transformation> ParseTransformation(std::string_view line, size_t line_no) {
  std::string_view t = StrTrim(line);
  size_t open = t.find('(');
  if (open == std::string_view::npos || t.back() != ')') {
    return InvalidArgument(
        StrFormat("line %zu: expected Kind(...) transformation", line_no));
  }
  std::string kind(StrTrim(t.substr(0, open)));
  std::string_view body = t.substr(open + 1, t.size() - open - 2);
  ASSIGN_OR_RETURN(auto args, ParseCallArgs(body));

  auto take = [&](const char* key) -> StatusOr<std::string> {
    auto it = args.find(key);
    if (it == args.end()) {
      return InvalidArgument(StrFormat("line %zu: %s requires '%s:'", line_no, kind.c_str(),
                                       key));
    }
    std::string v = it->second;
    args.erase(it);
    return v;
  };
  auto no_extras = [&]() -> Status {
    if (!args.empty()) {
      return InvalidArgument(StrFormat("line %zu: unexpected argument '%s'", line_no,
                                       args.begin()->first.c_str()));
    }
    return OkStatus();
  };

  if (EqualsIgnoreCase(kind, "Remove")) {
    ASSIGN_OR_RETURN(std::string pred, take("pred"));
    RETURN_IF_ERROR(no_extras());
    ASSIGN_OR_RETURN(sql::ExprPtr e, sql::ParseExpression(pred));
    return Transformation::Remove(std::move(e));
  }
  if (EqualsIgnoreCase(kind, "Modify")) {
    ASSIGN_OR_RETURN(std::string pred, take("pred"));
    ASSIGN_OR_RETURN(std::string column, take("column"));
    ASSIGN_OR_RETURN(std::string value, take("value"));
    RETURN_IF_ERROR(no_extras());
    ASSIGN_OR_RETURN(sql::ExprPtr e, sql::ParseExpression(pred));
    ASSIGN_OR_RETURN(Generator gen, Generator::Parse(value));
    return Transformation::Modify(std::move(e), Unquote(column), std::move(gen));
  }
  if (EqualsIgnoreCase(kind, "Decorrelate")) {
    ASSIGN_OR_RETURN(std::string pred, take("pred"));
    ASSIGN_OR_RETURN(std::string fk_text, take("foreign_key"));
    RETURN_IF_ERROR(no_extras());
    ASSIGN_OR_RETURN(sql::ExprPtr e, sql::ParseExpression(pred));
    std::string_view fk = StrTrim(fk_text);
    if (fk.size() < 2 || fk.front() != '(' || fk.back() != ')') {
      return InvalidArgument(
          StrFormat("line %zu: foreign_key expects (\"column\", Table)", line_no));
    }
    ASSIGN_OR_RETURN(std::vector<std::string> fk_parts,
                     SplitTopLevel(fk.substr(1, fk.size() - 2), ','));
    if (fk_parts.size() != 2) {
      return InvalidArgument(
          StrFormat("line %zu: foreign_key expects (\"column\", Table)", line_no));
    }
    ForeignKeyRef ref;
    ref.column = Unquote(fk_parts[0]);
    ref.parent_table = Unquote(fk_parts[1]);
    return Transformation::Decorrelate(std::move(e), std::move(ref));
  }
  return InvalidArgument(StrFormat("line %zu: unknown transformation '%s'", line_no,
                                   kind.c_str()));
}

}  // namespace

StatusOr<DisguiseSpec> ParseDisguiseSpec(std::string_view text) {
  DisguiseSpec spec;
  spec.set_source_text(std::string(text));
  spec.set_per_user(false);  // flipped when user_to_disguise appears

  enum class Section { kNone, kPlaceholder, kTransformations };
  TableDisguise* current_table = nullptr;
  Section section = Section::kNone;
  bool saw_name = false;

  std::vector<std::string> lines = StrSplit(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    size_t line_no = i + 1;
    std::string stripped = StripInlineComment(lines[i]);
    std::string_view line = StrTrim(stripped);
    if (line.empty()) {
      continue;
    }

    // Top-level headers.
    if (StartsWith(line, "disguise_name")) {
      ASSIGN_OR_RETURN(auto kv, ParseKeyValue(line));
      spec.set_name(Unquote(kv.second));
      saw_name = true;
      continue;
    }
    if (StartsWith(line, "user_to_disguise")) {
      ASSIGN_OR_RETURN(auto kv, ParseKeyValue(line));
      if (StrTrim(kv.second) != "$UID") {
        return InvalidArgument(
            StrFormat("line %zu: user_to_disguise must be $UID", line_no));
      }
      spec.set_per_user(true);
      continue;
    }
    if (StartsWith(line, "reversible")) {
      ASSIGN_OR_RETURN(auto kv, ParseKeyValue(line));
      if (EqualsIgnoreCase(kv.second, "true")) {
        spec.set_reversible(true);
      } else if (EqualsIgnoreCase(kv.second, "false")) {
        spec.set_reversible(false);
      } else {
        return InvalidArgument(StrFormat("line %zu: reversible must be true/false", line_no));
      }
      continue;
    }
    if (StartsWith(line, "assert_empty")) {
      std::string_view rest = StrTrim(line.substr(strlen("assert_empty")));
      size_t colon = rest.find(':');
      if (colon == std::string_view::npos) {
        return InvalidArgument(
            StrFormat("line %zu: expected 'assert_empty Table: predicate'", line_no));
      }
      std::string table = Unquote(rest.substr(0, colon));
      ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression(rest.substr(colon + 1)));
      spec.assertions().emplace_back(std::move(table), std::move(pred));
      continue;
    }
    if (StartsWith(line, "table ")) {
      std::string_view rest = StrTrim(line.substr(strlen("table ")));
      if (rest.empty() || rest.back() != ':') {
        return InvalidArgument(StrFormat("line %zu: expected 'table Name:'", line_no));
      }
      TableDisguise td;
      td.table = Unquote(rest.substr(0, rest.size() - 1));
      if (spec.FindTable(td.table) != nullptr) {
        return InvalidArgument(
            StrFormat("line %zu: table \"%s\" already declared", line_no, td.table.c_str()));
      }
      spec.tables().push_back(std::move(td));
      current_table = &spec.tables().back();
      section = Section::kNone;
      continue;
    }
    if (StartsWith(line, "generate_placeholder")) {
      if (current_table == nullptr) {
        return InvalidArgument(
            StrFormat("line %zu: generate_placeholder outside a table block", line_no));
      }
      section = Section::kPlaceholder;
      continue;
    }
    if (StartsWith(line, "transformations")) {
      if (current_table == nullptr) {
        return InvalidArgument(
            StrFormat("line %zu: transformations outside a table block", line_no));
      }
      section = Section::kTransformations;
      continue;
    }

    // Section content.
    switch (section) {
      case Section::kPlaceholder: {
        size_t arrow = line.find("<-");
        if (arrow == std::string_view::npos) {
          return InvalidArgument(
              StrFormat("line %zu: expected '\"column\" <- Generator'", line_no));
        }
        PlaceholderColumn pc;
        pc.column = Unquote(line.substr(0, arrow));
        ASSIGN_OR_RETURN(pc.generator, Generator::Parse(line.substr(arrow + 2)));
        current_table->placeholder.push_back(std::move(pc));
        break;
      }
      case Section::kTransformations: {
        ASSIGN_OR_RETURN(Transformation tr, ParseTransformation(line, line_no));
        current_table->transformations.push_back(std::move(tr));
        break;
      }
      case Section::kNone:
        return InvalidArgument(
            StrFormat("line %zu: unexpected content '%s'", line_no,
                      std::string(line).c_str()));
    }
  }

  if (!saw_name) {
    return InvalidArgument("spec is missing disguise_name");
  }
  return spec;
}

}  // namespace edna::disguise
