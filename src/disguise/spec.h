// Disguise specifications: the structured privacy transformations of §4.1.
//
// A DisguiseSpec associates tables with predicated transformation operations
// (the paper's three fundamentals: Remove, Modify, Decorrelate), declares how
// to generate placeholder identities for decorrelation targets, and may carry
// end-state assertions (§7's proposal) that the engine checks after applying.
#ifndef SRC_DISGUISE_SPEC_H_
#define SRC_DISGUISE_SPEC_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/schema.h"
#include "src/disguise/generator.h"
#include "src/sql/ast.h"

namespace edna::disguise {

// The parameter name conventionally bound to the disguising user's id.
inline constexpr char kUidParam[] = "UID";

enum class TransformKind {
  kRemove,       // delete matching rows
  kModify,       // rewrite one column of matching rows
  kDecorrelate,  // repoint a foreign key of matching rows to a placeholder
};

const char* TransformKindName(TransformKind k);

// A foreign key selector for Decorrelate: which column to repoint and which
// table the placeholder identities live in.
struct ForeignKeyRef {
  std::string column;
  std::string parent_table;
};

class Transformation {
 public:
  static Transformation Remove(sql::ExprPtr predicate);
  static Transformation Modify(sql::ExprPtr predicate, std::string column, Generator gen);
  static Transformation Decorrelate(sql::ExprPtr predicate, ForeignKeyRef fk);

  Transformation(const Transformation& other);
  Transformation& operator=(const Transformation& other);
  Transformation(Transformation&&) = default;
  Transformation& operator=(Transformation&&) = default;

  TransformKind kind() const { return kind_; }
  const sql::Expr* predicate() const { return predicate_.get(); }
  const std::string& column() const { return column_; }
  const Generator& generator() const { return generator_; }
  const ForeignKeyRef& foreign_key() const { return fk_; }

  // Spec-text rendering, e.g. Remove(pred: "contactId" = $UID).
  std::string ToText() const;

 private:
  Transformation() = default;

  TransformKind kind_ = TransformKind::kRemove;
  sql::ExprPtr predicate_;
  std::string column_;   // kModify
  Generator generator_;  // kModify
  ForeignKeyRef fk_;     // kDecorrelate
};

// Placeholder recipe for one column of a placeholder row.
struct PlaceholderColumn {
  std::string column;
  Generator generator;
};

// All disguise operations targeting one table.
struct TableDisguise {
  std::string table;
  // Non-empty iff this table hosts identities that decorrelation may target:
  // recipes for synthesizing a fresh placeholder row.
  std::vector<PlaceholderColumn> placeholder;
  std::vector<Transformation> transformations;
};

// End-state assertion: after applying the disguise, `predicate` must match
// zero rows of `table` (e.g. "user no longer has any reviews").
struct Assertion {
  std::string table;
  sql::ExprPtr predicate;

  Assertion() = default;
  Assertion(std::string t, sql::ExprPtr p) : table(std::move(t)), predicate(std::move(p)) {}
  Assertion(const Assertion& other)
      : table(other.table),
        predicate(other.predicate ? other.predicate->Clone() : nullptr) {}
  Assertion& operator=(const Assertion& other) {
    if (this != &other) {
      table = other.table;
      predicate = other.predicate ? other.predicate->Clone() : nullptr;
    }
    return *this;
  }
  Assertion(Assertion&&) = default;
  Assertion& operator=(Assertion&&) = default;
};

class DisguiseSpec {
 public:
  DisguiseSpec() = default;
  explicit DisguiseSpec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Reversible disguises write reveal records to vaults when applied.
  bool reversible() const { return reversible_; }
  void set_reversible(bool r) { reversible_ = r; }

  // Per-user disguises bind $UID; global disguises (ConfAnon, decay) do not.
  bool per_user() const { return per_user_; }
  void set_per_user(bool p) { per_user_ = p; }

  std::vector<TableDisguise>& tables() { return tables_; }
  const std::vector<TableDisguise>& tables() const { return tables_; }
  TableDisguise* FindTable(const std::string& name);
  const TableDisguise* FindTable(const std::string& name) const;

  std::vector<Assertion>& assertions() { return assertions_; }
  const std::vector<Assertion>& assertions() const { return assertions_; }

  // Source text, if this spec came from the parser (used for Figure 4 LoC).
  const std::string& source_text() const { return source_text_; }
  void set_source_text(std::string text) { source_text_ = std::move(text); }

  // Validates the spec against an application schema:
  //  * every table exists, every referenced column exists,
  //  * Decorrelate foreign keys match a declared schema FK,
  //  * placeholder recipes exist for every decorrelation target table and
  //    cover all NOT NULL, non-auto-increment columns of it,
  //  * per-user specs actually reference $UID somewhere.
  Status Validate(const db::Schema& schema) const;

  // Canonical spec-text rendering (parseable by ParseDisguiseSpec).
  std::string ToText() const;

  // The paper's "Disguise LoC" metric: effective lines of the source text
  // (or of the canonical rendering when built programmatically).
  size_t SpecLoc() const;

  // Number of distinct tables the spec touches (transformations or
  // placeholder recipes).
  size_t NumObjectTypes() const { return tables_.size(); }

 private:
  std::string name_;
  bool reversible_ = true;
  bool per_user_ = true;
  std::vector<TableDisguise> tables_;
  std::vector<Assertion> assertions_;
  std::string source_text_;
};

}  // namespace edna::disguise

#endif  // SRC_DISGUISE_SPEC_H_
