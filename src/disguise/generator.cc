#include "src/disguise/generator.h"

#include "src/common/strings.h"
#include "src/crypto/sha256.h"
#include "src/sql/parser.h"

namespace edna::disguise {

Generator Generator::RandomName() {
  Generator g;
  g.kind_ = Kind::kRandomName;
  return g;
}

Generator Generator::RandomString(int64_t length) {
  Generator g;
  g.kind_ = Kind::kRandomString;
  g.int_a_ = length;
  return g;
}

Generator Generator::RandomInt(int64_t lo, int64_t hi) {
  Generator g;
  g.kind_ = Kind::kRandomInt;
  g.int_a_ = lo;
  g.int_b_ = hi;
  return g;
}

Generator Generator::Const(sql::Value value) {
  Generator g;
  g.kind_ = Kind::kConst;
  g.const_value_ = std::move(value);
  return g;
}

Generator Generator::Hash() {
  Generator g;
  g.kind_ = Kind::kHash;
  return g;
}

Generator Generator::Redact() {
  Generator g;
  g.kind_ = Kind::kRedact;
  return g;
}

Generator Generator::Keep() { return Generator(); }

Generator Generator::Expr(sql::ExprPtr expr) {
  Generator g;
  g.kind_ = Kind::kExpr;
  g.expr_ = std::move(expr);
  return g;
}

Generator::Generator(const Generator& other)
    : kind_(other.kind_),
      const_value_(other.const_value_),
      int_a_(other.int_a_),
      int_b_(other.int_b_),
      expr_(other.expr_ ? other.expr_->Clone() : nullptr) {}

Generator& Generator::operator=(const Generator& other) {
  if (this != &other) {
    kind_ = other.kind_;
    const_value_ = other.const_value_;
    int_a_ = other.int_a_;
    int_b_ = other.int_b_;
    expr_ = other.expr_ ? other.expr_->Clone() : nullptr;
  }
  return *this;
}

StatusOr<sql::Value> Generator::Generate(const GenContext& ctx) const {
  switch (kind_) {
    case Kind::kRandomName: {
      if (ctx.rng == nullptr) {
        return InvalidArgument("Random generator requires an RNG");
      }
      return sql::Value::String(ctx.rng->NextPseudoword(5, 9));
    }
    case Kind::kRandomString: {
      if (ctx.rng == nullptr) {
        return InvalidArgument("RandomString generator requires an RNG");
      }
      if (int_a_ <= 0) {
        return InvalidArgument("RandomString length must be positive");
      }
      return sql::Value::String(ctx.rng->NextAlnumString(static_cast<size_t>(int_a_)));
    }
    case Kind::kRandomInt: {
      if (ctx.rng == nullptr) {
        return InvalidArgument("RandomInt generator requires an RNG");
      }
      if (int_a_ > int_b_) {
        return InvalidArgument("RandomInt bounds are inverted");
      }
      return sql::Value::Int(ctx.rng->NextInt(int_a_, int_b_));
    }
    case Kind::kConst:
      return const_value_;
    case Kind::kHash: {
      if (ctx.original == nullptr) {
        return InvalidArgument("Hash generator requires an original value (Modify only)");
      }
      std::string rendering = ctx.original->ToSqlString();
      crypto::Sha256Digest d = crypto::Sha256::Hash(rendering);
      // 16-hex-char pseudonym: collision-safe at application scale, short
      // enough to fit name/email columns.
      return sql::Value::String(crypto::DigestToHex(d).substr(0, 16));
    }
    case Kind::kRedact:
      return sql::Value::String("[redacted]");
    case Kind::kKeep: {
      if (ctx.original == nullptr) {
        return InvalidArgument("Keep generator requires an original value (Modify only)");
      }
      return *ctx.original;
    }
    case Kind::kExpr: {
      static const sql::ParamMap kEmpty;
      return sql::Evaluate(*expr_, ctx.row, ctx.params ? *ctx.params : kEmpty);
    }
  }
  return Internal("bad generator kind");
}

std::string Generator::ToText() const {
  switch (kind_) {
    case Kind::kRandomName:
      return "Random";
    case Kind::kRandomString:
      return StrFormat("RandomString(%lld)", static_cast<long long>(int_a_));
    case Kind::kRandomInt:
      return StrFormat("RandomInt(%lld, %lld)", static_cast<long long>(int_a_),
                       static_cast<long long>(int_b_));
    case Kind::kConst:
      return "Const(" + const_value_.ToSqlString() + ")";
    case Kind::kHash:
      return "Hash";
    case Kind::kRedact:
      return "Redact";
    case Kind::kKeep:
      return "Keep";
    case Kind::kExpr:
      return "Expr(" + expr_->ToString() + ")";
  }
  return "?";
}

namespace {

// Splits "Name(args)" into name and raw args; name-only terms get empty args.
Status SplitCall(std::string_view text, std::string* name, std::string* args) {
  std::string_view t = StrTrim(text);
  size_t open = t.find('(');
  if (open == std::string_view::npos) {
    *name = std::string(t);
    args->clear();
    return OkStatus();
  }
  if (t.back() != ')') {
    return InvalidArgument("unbalanced parentheses in generator: " + std::string(text));
  }
  *name = std::string(StrTrim(t.substr(0, open)));
  *args = std::string(StrTrim(t.substr(open + 1, t.size() - open - 2)));
  return OkStatus();
}

}  // namespace

StatusOr<Generator> Generator::Parse(std::string_view text) {
  std::string name;
  std::string args;
  RETURN_IF_ERROR(SplitCall(text, &name, &args));

  if (EqualsIgnoreCase(name, "Random") || EqualsIgnoreCase(name, "RandomName")) {
    return Generator::RandomName();
  }
  if (EqualsIgnoreCase(name, "Hash")) {
    return Generator::Hash();
  }
  if (EqualsIgnoreCase(name, "Redact")) {
    return Generator::Redact();
  }
  if (EqualsIgnoreCase(name, "Keep")) {
    return Generator::Keep();
  }
  if (EqualsIgnoreCase(name, "RandomString")) {
    ASSIGN_OR_RETURN(sql::ExprPtr e, sql::ParseExpression(args));
    ASSIGN_OR_RETURN(sql::Value v, sql::EvaluateConstant(*e, {}));
    if (!v.is_int() || v.AsInt() <= 0) {
      return InvalidArgument("RandomString expects a positive integer length");
    }
    return Generator::RandomString(v.AsInt());
  }
  if (EqualsIgnoreCase(name, "RandomInt")) {
    std::vector<std::string> parts = StrSplitTrimmed(args, ',');
    if (parts.size() != 2) {
      return InvalidArgument("RandomInt expects two arguments");
    }
    ASSIGN_OR_RETURN(sql::ExprPtr lo_e, sql::ParseExpression(parts[0]));
    ASSIGN_OR_RETURN(sql::ExprPtr hi_e, sql::ParseExpression(parts[1]));
    ASSIGN_OR_RETURN(sql::Value lo, sql::EvaluateConstant(*lo_e, {}));
    ASSIGN_OR_RETURN(sql::Value hi, sql::EvaluateConstant(*hi_e, {}));
    if (!lo.is_int() || !hi.is_int() || lo.AsInt() > hi.AsInt()) {
      return InvalidArgument("RandomInt expects integer lo <= hi");
    }
    return Generator::RandomInt(lo.AsInt(), hi.AsInt());
  }
  if (EqualsIgnoreCase(name, "Const") || EqualsIgnoreCase(name, "Default")) {
    ASSIGN_OR_RETURN(sql::ExprPtr e, sql::ParseExpression(args));
    ASSIGN_OR_RETURN(sql::Value v, sql::EvaluateConstant(*e, {}));
    return Generator::Const(std::move(v));
  }
  if (EqualsIgnoreCase(name, "Expr")) {
    ASSIGN_OR_RETURN(sql::ExprPtr e, sql::ParseExpression(args));
    return Generator::Expr(std::move(e));
  }
  return InvalidArgument("unknown generator: " + name);
}

}  // namespace edna::disguise
