// Parser for the disguise specification text format (the concrete syntax of
// the paper's Figure 3). Grammar, line-oriented:
//
//   disguise_name: "Name"
//   user_to_disguise: $UID          (presence marks the spec per-user)
//   reversible: true|false
//
//   table <TableName>:
//     generate_placeholder:
//       "<column>" <- <Generator>
//     transformations:
//       Remove(pred: <sql-predicate>)
//       Modify(pred: <p>, column: "<col>", value: <Generator>)
//       Decorrelate(pred: <p>, foreign_key: ("<col>", <ParentTable>))
//
//   assert_empty <TableName>: <sql-predicate>
//
// '#' and '--' start comments; indentation is not significant.
#ifndef SRC_DISGUISE_SPEC_PARSER_H_
#define SRC_DISGUISE_SPEC_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/disguise/spec.h"

namespace edna::disguise {

// Parses a complete spec. The original text is retained in the returned
// spec's source_text() for the Figure-4 LoC metric.
StatusOr<DisguiseSpec> ParseDisguiseSpec(std::string_view text);

// Splits `s` on `sep` at nesting depth zero (parentheses), honoring single-
// and double-quoted regions. Exposed for tests.
StatusOr<std::vector<std::string>> SplitTopLevel(std::string_view s, char sep);

}  // namespace edna::disguise

#endif  // SRC_DISGUISE_SPEC_PARSER_H_
