#include "src/disguise/spec.h"

#include <set>

#include "src/common/strings.h"

namespace edna::disguise {

namespace {
std::string QuoteIdent(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  out.push_back('"');
  for (char ch : name) {
    if (ch == '"') {
      out.push_back('"');
    }
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

const char* TransformKindName(TransformKind k) {
  switch (k) {
    case TransformKind::kRemove:
      return "Remove";
    case TransformKind::kModify:
      return "Modify";
    case TransformKind::kDecorrelate:
      return "Decorrelate";
  }
  return "?";
}

Transformation Transformation::Remove(sql::ExprPtr predicate) {
  Transformation t;
  t.kind_ = TransformKind::kRemove;
  t.predicate_ = std::move(predicate);
  return t;
}

Transformation Transformation::Modify(sql::ExprPtr predicate, std::string column,
                                      Generator gen) {
  Transformation t;
  t.kind_ = TransformKind::kModify;
  t.predicate_ = std::move(predicate);
  t.column_ = std::move(column);
  t.generator_ = std::move(gen);
  return t;
}

Transformation Transformation::Decorrelate(sql::ExprPtr predicate, ForeignKeyRef fk) {
  Transformation t;
  t.kind_ = TransformKind::kDecorrelate;
  t.predicate_ = std::move(predicate);
  t.fk_ = std::move(fk);
  return t;
}

Transformation::Transformation(const Transformation& other)
    : kind_(other.kind_),
      predicate_(other.predicate_ ? other.predicate_->Clone() : nullptr),
      column_(other.column_),
      generator_(other.generator_),
      fk_(other.fk_) {}

Transformation& Transformation::operator=(const Transformation& other) {
  if (this != &other) {
    kind_ = other.kind_;
    predicate_ = other.predicate_ ? other.predicate_->Clone() : nullptr;
    column_ = other.column_;
    generator_ = other.generator_;
    fk_ = other.fk_;
  }
  return *this;
}

std::string Transformation::ToText() const {
  std::string pred = predicate_ ? predicate_->ToString() : "TRUE";
  switch (kind_) {
    case TransformKind::kRemove:
      return "Remove(pred: " + pred + ")";
    case TransformKind::kModify:
      return "Modify(pred: " + pred + ", column: " + QuoteIdent(column_) +
             ", value: " + generator_.ToText() + ")";
    case TransformKind::kDecorrelate:
      return "Decorrelate(pred: " + pred + ", foreign_key: (" + QuoteIdent(fk_.column) +
             ", " + QuoteIdent(fk_.parent_table) + "))";
  }
  return "?";
}

TableDisguise* DisguiseSpec::FindTable(const std::string& name) {
  for (TableDisguise& t : tables_) {
    if (t.table == name) {
      return &t;
    }
  }
  return nullptr;
}

const TableDisguise* DisguiseSpec::FindTable(const std::string& name) const {
  for (const TableDisguise& t : tables_) {
    if (t.table == name) {
      return &t;
    }
  }
  return nullptr;
}

Status DisguiseSpec::Validate(const db::Schema& schema) const {
  if (name_.empty()) {
    return InvalidArgument("disguise has no name");
  }
  if (tables_.empty()) {
    return InvalidArgument("disguise \"" + name_ + "\" transforms no tables");
  }

  bool uses_uid = false;
  std::set<std::string> seen_tables;
  for (const TableDisguise& td : tables_) {
    const db::TableSchema* ts = schema.FindTable(td.table);
    if (ts == nullptr) {
      return InvalidArgument("disguise \"" + name_ + "\" references unknown table \"" +
                             td.table + "\"");
    }
    if (!seen_tables.insert(td.table).second) {
      return InvalidArgument("disguise \"" + name_ + "\" lists table \"" + td.table +
                             "\" twice");
    }

    std::set<std::string> ph_cols;
    for (const PlaceholderColumn& pc : td.placeholder) {
      if (!ts->HasColumn(pc.column)) {
        return InvalidArgument("placeholder column \"" + td.table + "." + pc.column +
                               "\" does not exist");
      }
      if (!ph_cols.insert(pc.column).second) {
        return InvalidArgument("placeholder column \"" + td.table + "." + pc.column +
                               "\" specified twice");
      }
    }

    for (const Transformation& tr : td.transformations) {
      if (tr.predicate() == nullptr) {
        return InvalidArgument("transformation without predicate in \"" + td.table + "\"");
      }
      if (tr.predicate()->ReferencesParam(kUidParam)) {
        uses_uid = true;
      }
      std::vector<std::string> cols;
      tr.predicate()->CollectColumns(&cols);
      for (const std::string& c : cols) {
        if (!ts->HasColumn(c)) {
          return InvalidArgument("predicate references unknown column \"" + td.table + "." +
                                 c + "\" in disguise \"" + name_ + "\"");
        }
      }
      switch (tr.kind()) {
        case TransformKind::kRemove:
          break;
        case TransformKind::kModify: {
          if (!ts->HasColumn(tr.column())) {
            return InvalidArgument("Modify references unknown column \"" + td.table + "." +
                                   tr.column() + "\"");
          }
          if (ts->IsPrimaryKeyColumn(tr.column())) {
            return InvalidArgument("Modify may not rewrite primary key column \"" + td.table +
                                   "." + tr.column() + "\"");
          }
          break;
        }
        case TransformKind::kDecorrelate: {
          const db::ForeignKeyDef* fk = ts->FindForeignKey(tr.foreign_key().column);
          if (fk == nullptr) {
            return InvalidArgument("Decorrelate on \"" + td.table + "." +
                                   tr.foreign_key().column +
                                   "\" does not match a schema foreign key");
          }
          if (fk->parent_table != tr.foreign_key().parent_table) {
            return InvalidArgument(
                "Decorrelate foreign key on \"" + td.table + "." + tr.foreign_key().column +
                "\" targets \"" + tr.foreign_key().parent_table +
                "\" but the schema declares \"" + fk->parent_table + "\"");
          }
          // Placeholder recipe must exist for the parent table.
          const TableDisguise* parent_td = FindTable(fk->parent_table);
          if (parent_td == nullptr || parent_td->placeholder.empty()) {
            return InvalidArgument("Decorrelate targets \"" + fk->parent_table +
                                   "\" but the disguise has no generate_placeholder for it");
          }
          break;
        }
      }
    }
  }

  // Placeholder recipes must be able to produce a valid row: every NOT NULL
  // column without a default or auto-increment needs a generator.
  for (const TableDisguise& td : tables_) {
    if (td.placeholder.empty()) {
      continue;
    }
    const db::TableSchema* ts = schema.FindTable(td.table);
    for (const db::ColumnDef& col : ts->columns()) {
      if (col.nullable || col.auto_increment || col.default_value.has_value()) {
        continue;
      }
      bool covered = false;
      for (const PlaceholderColumn& pc : td.placeholder) {
        if (pc.column == col.name) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return InvalidArgument("placeholder recipe for \"" + td.table +
                               "\" misses NOT NULL column \"" + col.name + "\"");
      }
    }
  }

  for (const Assertion& a : assertions_) {
    const db::TableSchema* ts = schema.FindTable(a.table);
    if (ts == nullptr) {
      return InvalidArgument("assertion references unknown table \"" + a.table + "\"");
    }
    if (a.predicate == nullptr) {
      return InvalidArgument("assertion without predicate on \"" + a.table + "\"");
    }
    std::vector<std::string> cols;
    a.predicate->CollectColumns(&cols);
    for (const std::string& c : cols) {
      if (!ts->HasColumn(c)) {
        return InvalidArgument("assertion references unknown column \"" + a.table + "." + c +
                               "\"");
      }
    }
  }

  if (per_user_ && !uses_uid) {
    return InvalidArgument("per-user disguise \"" + name_ +
                           "\" never references $UID; mark it per_user: false");
  }
  return OkStatus();
}

std::string DisguiseSpec::ToText() const {
  std::string out;
  out += "disguise_name: \"" + name_ + "\"\n";
  if (per_user_) {
    out += "user_to_disguise: $UID\n";
  }
  out += StrFormat("reversible: %s\n", reversible_ ? "true" : "false");
  for (const TableDisguise& td : tables_) {
    out += "\ntable " + QuoteIdent(td.table) + ":\n";
    if (!td.placeholder.empty()) {
      out += "  generate_placeholder:\n";
      for (const PlaceholderColumn& pc : td.placeholder) {
        out += "    " + QuoteIdent(pc.column) + " <- " + pc.generator.ToText() + "\n";
      }
    }
    if (!td.transformations.empty()) {
      out += "  transformations:\n";
      for (const Transformation& tr : td.transformations) {
        out += "    " + tr.ToText() + "\n";
      }
    }
  }
  for (const Assertion& a : assertions_) {
    out += "\nassert_empty " + QuoteIdent(a.table) + ": " + a.predicate->ToString() + "\n";
  }
  return out;
}

size_t DisguiseSpec::SpecLoc() const {
  if (!source_text_.empty()) {
    return CountEffectiveLines(source_text_);
  }
  return CountEffectiveLines(ToText());
}

}  // namespace edna::disguise
