// DisguiseEngine: the disguising tool of Figure 1. Applications register
// disguise specifications once, then invoke Apply/Reveal through this API;
// the engine computes and executes the physical database changes, preserving
// referential integrity, and manages vaults, the disguise log, composition,
// and end-state assertions.
//
// Semantics implemented (paper section in parentheses):
//  * Apply (§4.1): phase-ordered execution — Decorrelate, then Modify, then
//    Remove in child-before-parent FK order — so a spec like Figure 3 never
//    has to hand-order its operations around foreign keys. One transaction.
//  * Reversibility (§4.2): reversible disguises emit a RevealRecord (the
//    reveal function) into the configured vault.
//  * Composition (§4.2, §6): before a per-user disguise runs, the engine
//    consults prior active reversible disguises' reveal records, temporarily
//    recorrelates rows that used to belong to the user, applies the new
//    disguise, and re-disguises what remains. With the decorrelation-reuse
//    optimization (§6's "manual optimization", here automated) rows the new
//    disguise would merely re-decorrelate keep their existing placeholders.
//  * Reveal (§4.2): restores vault state in reverse op order, filtering the
//    revealed data through every active disguise applied in the interim so
//    reversal never reintroduces data a later disguise hides.
//  * Assertions (§7): after applying, declared end-state predicates must
//    match zero rows, or the whole application rolls back.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/disguise_log.h"
#include "src/core/explain.h"
#include "src/core/recovery.h"
#include "src/db/database.h"
#include "src/disguise/spec.h"
#include "src/vault/vault.h"

namespace edna::core {

struct ApplyResult {
  uint64_t disguise_id = 0;
  size_t rows_removed = 0;
  size_t rows_modified = 0;
  size_t rows_decorrelated = 0;
  size_t placeholders_created = 0;
  // Composition machinery:
  bool composed = false;            // prior disguises had to be consulted
  size_t rows_recorrelated = 0;     // temporarily recorrelated via reveal fns
  size_t decorrelations_reused = 0; // placeholders kept by the optimization
  size_t vault_records_scanned = 0;
  // Database statement count attributable to this application.
  uint64_t queries = 0;
};

struct RevealResult {
  uint64_t disguise_id = 0;
  size_t rows_restored = 0;
  size_t columns_restored = 0;
  size_t placeholders_dropped = 0;
  // Interim-disguise filtering:
  size_t rows_suppressed = 0;   // stayed hidden because a later Remove covers them
  size_t values_redisguised = 0;  // restored through a later Modify/Decorrelate
  uint64_t queries = 0;
};

struct EngineOptions {
  // §6's optimization: reuse decorrelations already performed by a prior
  // disguise instead of recorrelating and re-decorrelating.
  bool reuse_decorrelation = false;
  // Shard global disguises' reveal records per affected user (Edna's
  // per-user vault tables). Off = one monolithic record per application,
  // forcing composition to scan every user's reveal functions (ablation E).
  bool shard_global_reveal_records = true;
  // §7's "prohibit updates to disguised data": while a reversible disguise
  // is active, application writes (updates and deletes) to the rows it
  // transformed — and to its placeholder rows — are rejected with
  // kFailedPrecondition. The engine's own apply/reveal operations are
  // exempt. Reveal the disguise first, then modify.
  bool protect_disguised_data = false;
  // Batch row mutations through multi-row statements where possible
  // (ablation B). Off = one statement per row, as Edna issues them.
  bool batch_operations = false;
  // Derive each Apply/Reveal's randomness (generated values, placeholder
  // primary keys) purely from (seed, spec, uid, per-pair invocation count)
  // instead of a shared stream. Makes an operation's effect independent of
  // how concurrent operations interleave, so a parallel batch run can be
  // checked against a serial replay oracle (tests/core_batch_test.cc).
  bool deterministic_rng = false;
  uint64_t rng_seed = 0x5eed;
  // When set, forces the database's residual execution mode (row-at-a-time
  // vs vectorized chunks; db::ExecMode) at engine construction. Unset leaves
  // the database's own mode alone (its constructor honors EDNA_EXEC_MODE).
  // Threaded through DurableEngineOptions and ShardSetOptions, so the
  // daemon's shards inherit it too.
  std::optional<db::ExecMode> exec_mode;
};

// Installed by the durable engine (src/core/durable_engine.h) so every
// commit-journal mutation is mirrored into the database's write-ahead log.
// Begin / SetDisguiseId / Advance / Complete ride standalone sidecar WAL
// records; the kCommitted advance that must be atomic with the operation's
// database commit is staged to travel inside that commit's WAL record.
class JournalDurability {
 public:
  virtual ~JournalDurability() = default;
  // Appends one journal delta (recovery.h, CommitJournal::ApplyDelta wire
  // form) as a standalone WAL record.
  virtual Status AppendJournalDelta(std::vector<uint8_t> delta) = 0;
  // Stages a delta that the calling thread's next committed database
  // transaction carries atomically inside its commit record.
  virtual void StageJournalDelta(std::vector<uint8_t> delta) = 0;
};

class DisguiseEngine {
 public:
  // `db`, `vault`, and `clock` must outlive the engine.
  DisguiseEngine(db::Database* db, vault::Vault* vault, const Clock* clock,
                 EngineOptions options = {});

  // Registers a spec after validating it against the database schema.
  Status RegisterSpec(disguise::DisguiseSpec spec);
  const disguise::DisguiseSpec* FindSpec(const std::string& name) const;
  std::vector<std::string> SpecNames() const;
  // The whole registry, for registry-wide analyses (the lifecycle verifier
  // and PII coverage run over every registered spec at once). Pointers stay
  // valid as long as the engine lives.
  std::vector<const disguise::DisguiseSpec*> Specs() const;

  // Applies a registered disguise. Per-user specs require params["UID"].
  StatusOr<ApplyResult> Apply(const std::string& spec_name, const sql::ParamMap& params);

  // Convenience: binds $UID and applies.
  StatusOr<ApplyResult> ApplyForUser(const std::string& spec_name, sql::Value uid);

  // Permanently reverses a previously applied disguise (§4.2).
  StatusOr<RevealResult> Reveal(uint64_t disguise_id);

  // Read-only dry run: reports what applying the disguise would do to the
  // current database contents (row counts per transformation, FK closure,
  // placeholders, composition involvement). Mutates nothing.
  StatusOr<ExplainReport> Explain(const std::string& spec_name, const sql::ParamMap& params);

  // --- Crash consistency (see src/core/recovery.h) -------------------------

  // Repairs the database / vault / log / journal after a crash (simulated or
  // real): rolls back any open transaction, rolls half-applied operations
  // back or forward per their journal phase, drops orphan vault records,
  // demotes reversible log entries whose vault data is gone, and rebuilds
  // the strict-mode protected-row map. Idempotent; call at startup and
  // after any Apply/Reveal that returned a simulated-crash status.
  StatusOr<RecoveryReport> Recover();

  // Standalone invariant check across all four stores. Repairs nothing.
  // After Recover(), reports zero violations. (Non-const only because vault
  // fetches update access statistics.)
  StatusOr<ConsistencyReport> AuditConsistency();

  // Rebuilds the in-memory disguise log from its DB mirror table; call once
  // after constructing an engine over a loaded database image so the audit
  // and recovery see the persisted disguise history.
  Status LoadLogFromMirror() { return log_.LoadFromMirror(); }

  // Creates the disguise log's DB mirror table if it is missing. Table
  // creation is DDL, which is not safe against concurrent applies reading
  // the schema; BatchExecutor calls this before starting its workers so
  // no apply ever triggers the on-demand creation mid-batch.
  Status EnsureLogMirror() { return log_.EnsureMirror(); }

  // Attaches the journal-durability hooks (nullptr detaches). Must be called
  // before concurrent operations start; `hooks` must outlive the engine or
  // be detached first. When attached, every journal mutation is persisted
  // through it, and a persistence failure fails the surrounding operation.
  void SetJournalDurability(JournalDurability* hooks) { journal_wal_ = hooks; }

  const DisguiseLog& log() const { return log_; }
  const CommitJournal& journal() const { return journal_; }
  CommitJournal& journal() { return journal_; }
  db::Database* database() { return db_; }
  vault::Vault* vault() { return vault_; }

  EngineOptions& options() { return options_; }

 private:
  struct ApplyContext;

  // --- Journal durability ----------------------------------------------------
  // Mirrors one journal mutation into the WAL via the attached hooks. No-op
  // without hooks (in-memory engines) or for an empty delta. Runs the
  // journal.persist fail point, so a simulated crash here freezes state with
  // the in-memory mutation applied but the delta unlogged — exactly what a
  // process death between the two would leave.
  Status PersistJournalDelta(std::vector<uint8_t> delta);

  // Stages the kCommitted advance to ride the next db commit on this thread.
  void StageCommittedAdvance(uint64_t journal_id);

  // Retires a journal entry durably: persists the complete delta FIRST, and
  // only erases the in-memory entry once the delta is logged, so memory
  // never runs ahead of disk. On failure the entry stays pending (in both)
  // for Recover() to finish. Returns the persistence status.
  Status RetireJournalEntry(uint64_t journal_id);

  // Maps row-level kNotFound / kIntegrityViolation — races with concurrently
  // COMMITTED transactions that write intents cannot catch — to kAborted, so
  // batch executors retry and the retry reproduces the serial-schedule
  // outcome. Applied at every per-row site of the apply and reveal paths.
  static Status RaceToAborted(const Status& s);

  // --- Apply phases ---------------------------------------------------------
  // Clean-abort compensation: drops stored vault shards, the log entry, and
  // row protection for a failed apply, rolls the transaction back, completes
  // the journal entry, and returns `cause` annotated with any secondary
  // failures (double faults are logged and surfaced, never swallowed). If a
  // compensation step reports a simulated crash, returns immediately with
  // the journal entry left pending for Recover().
  Status UnwindFailedApply(uint64_t journal_id, uint64_t disguise_id, Status cause);

  Status RunDecorrelates(ApplyContext* ctx);
  Status RunModifies(ApplyContext* ctx);
  Status RunRemoves(ApplyContext* ctx);
  Status FlushBatches(ApplyContext* ctx);
  Status CheckAssertions(const disguise::DisguiseSpec& spec, const sql::ParamMap& params);

  // Creates one placeholder row per the table's recipe; returns its PK
  // value. `owner` tags the reveal op with the identity being detached (so
  // global disguises can shard their reveal records per user).
  StatusOr<sql::Value> CreatePlaceholder(ApplyContext* ctx, const std::string& table,
                                         const sql::Value& owner);

  // Removes one row plus its FK closure (children first), recording reveal
  // ops for every removed row / nulled child reference.
  Status RemoveWithClosure(ApplyContext* ctx, const std::string& table, db::RowId id,
                           int depth);

  // Tables of the spec's Removes in child-before-parent order.
  StatusOr<std::vector<std::string>> RemoveOrder(const disguise::DisguiseSpec& spec) const;

  // --- Composition ----------------------------------------------------------
  // Scans prior active reversible disguises for rows formerly associated
  // with ctx->uid, recorrelates them, and populates ctx->recorrelated.
  Status RecorrelateForUser(ApplyContext* ctx);
  // Re-disguises recorrelated rows the new disguise did not consume.
  Status RedisguiseLeftovers(ApplyContext* ctx);
  // Composition fallback when the identity row itself was removed by a prior
  // disguise: act on the hypothetical recorrelated row without writing it.
  Status VirtualRecorrelate(ApplyContext* ctx, const std::string& table, db::RowId row_id,
                            const std::string& column);

  // --- Reveal helpers ---------------------------------------------------------
  struct InterimTransform;
  std::vector<InterimTransform> CollectInterimTransforms(uint64_t disguise_id) const;

  // --- Per-operation randomness ----------------------------------------------
  // Every Apply/Reveal draws from its own Rng. Legacy mode forks it off the
  // shared stream (under rng_mu_); deterministic mode derives it from
  // (rng_seed, kind, spec, uid, success count) — retries of an aborted
  // operation reuse the same stream because the count only advances on
  // success (CommitOpSeq).
  Rng OpRng(char kind, const std::string& spec_name, const sql::Value& uid);
  void CommitOpSeq(char kind, const std::string& spec_name, const sql::Value& uid);

  // InsertValues wrapper for placeholder rows: in deterministic mode, draws
  // the row's auto-increment PK from `rng` (sparse 2^40+ range, redrawn on
  // collision) so placeholder identity does not depend on the global
  // auto-increment counter's interleaving.
  StatusOr<db::RowId> InsertPlaceholderRow(const std::string& table,
                                           std::map<std::string, sql::Value> values,
                                           Rng* rng);

  // --- Strict mode (§7) -------------------------------------------------------
  // Rows owned by active reversible disguises; the installed WriteGuard
  // rejects application writes to them unless the calling thread is inside
  // an engine operation.
  void ProtectRows(uint64_t disguise_id, const vault::RevealRecord& record);
  void UnprotectRows(uint64_t disguise_id);
  void EnsureGuardInstalled();

  // Per-thread engine-operation depth (the guard exemption must not leak to
  // other threads' application writes running concurrently with an apply).
  void EnterEngineOp();
  void ExitEngineOp();
  bool InEngineOp() const;

  class EngineOpScope;  // RAII: marks engine-internal mutations guard-exempt

  db::Database* db_;
  vault::Vault* vault_;
  const Clock* clock_;
  EngineOptions options_;

  // Lock hierarchy inside the engine: guard_mu_ -> (db catalog, via
  // SetWriteGuard); any db stripe -> prot_mu_ (the write guard takes it);
  // rng_mu_ and seq_mu_ are leaves. None is ever held across an engine phase.
  mutable std::mutex rng_mu_;
  Rng rng_;             // legacy shared stream; forked per op under rng_mu_
  uint64_t rng_stream_ = 0;

  mutable std::mutex seq_mu_;
  std::map<std::string, uint64_t> op_seq_;  // "kind:spec:uid" -> successes

  DisguiseLog log_;
  CommitJournal journal_;
  JournalDurability* journal_wal_ = nullptr;
  std::map<std::string, disguise::DisguiseSpec> specs_;  // frozen before batching

  std::mutex guard_mu_;
  bool guard_installed_ = false;

  mutable std::mutex prot_mu_;  // leaf: guards the two maps below
  std::map<std::pair<std::string, db::RowId>, int> protected_rows_;  // refcount
  std::map<uint64_t, std::vector<std::pair<std::string, db::RowId>>> protected_by_disguise_;
};

}  // namespace edna::core

#endif  // SRC_CORE_ENGINE_H_
