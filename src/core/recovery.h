// Commit journal + crash recovery for the apply/reveal protocol.
//
// The paper's reversibility guarantee (§4.2) only holds if the database
// mutation, the vault's reveal records, and the disguise-log entry commit or
// abort *together* — but they live in three different stores (the database
// transaction, a possibly-external vault, and the log with its in-database
// mirror). The engine therefore write-ahead journals every Apply/Reveal:
//
//   Apply:   intent ──(log appended, vault stored)──► vault-stored
//                   ──(db commit)──► committed ──► entry removed
//   Reveal:  intent ──(db commit)──► committed
//                   ──(log marked, vault dropped)──► entry removed
//
// A journal entry still present at startup marks an operation interrupted by
// a crash. DisguiseEngine::Recover() consults the phase marker to pick the
// repair direction:
//
//   * apply interrupted before commit   → roll BACK: rollback the open
//     transaction, drop orphan vault shards, drop the log entry;
//   * apply interrupted after commit    → roll FORWARD: the disguise is
//     fully durable, only the journal completion was lost;
//   * reveal interrupted before commit  → roll BACK: rollback the open
//     transaction, the disguise stays applied and revealable;
//   * reveal interrupted after commit   → roll FORWARD: finish marking the
//     log entry revealed and drop the now-dead vault records.
//
// AuditConsistency() checks the cross-store invariants standalone (no
// repairs); Recover() leaves the system in a state where the audit reports
// zero violations. Fault-injection tests sweep every fail point in
// src/common/failpoint.h and assert exactly that.
//
// The journal is deliberately NOT stored in the application database: its
// records must survive a transaction rollback. It models a sidecar journal
// file; Serialize()/Deserialize() give it the same little-endian wire form
// the vault and database images use (documented in docs/FORMATS.md).
#ifndef SRC_CORE_RECOVERY_H_
#define SRC_CORE_RECOVERY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/sql/eval.h"
#include "src/sql/value.h"

namespace edna::core {

enum class JournalOp : uint8_t { kApply = 1, kReveal = 2 };
enum class JournalPhase : uint8_t {
  kIntent = 1,       // journaled, mutations may be in flight
  kVaultStored = 2,  // apply only: log appended and reveal records persisted
  kCommitted = 3,    // database transaction committed
};

const char* JournalOpName(JournalOp op);
const char* JournalPhaseName(JournalPhase phase);

struct JournalEntry {
  uint64_t journal_id = 0;
  JournalOp op = JournalOp::kApply;
  std::string spec_name;
  sql::ParamMap params;      // bindings the operation ran with ($UID etc.)
  sql::Value user_id;        // Null for global disguises
  uint64_t disguise_id = 0;  // 0 until the log assigns one (apply intent)
  JournalPhase phase = JournalPhase::kIntent;
  TimePoint created = 0;
};

// Write-ahead intent journal. In-memory with a defined wire form: the
// process model of this library keeps all stores in memory, so "durable"
// means "survives a simulated crash", which freezes (rather than destroys)
// process state. See DESIGN.md, "Crash consistency".
class CommitJournal {
 public:
  CommitJournal() = default;

  // Moves are for the serial restore path (Deserialize hands the journal
  // over by value); they are not themselves thread-safe.
  CommitJournal(CommitJournal&& o) noexcept
      : pending_(std::move(o.pending_)), next_id_(o.next_id_) {}
  CommitJournal& operator=(CommitJournal&& o) noexcept {
    pending_ = std::move(o.pending_);
    next_id_ = o.next_id_;
    return *this;
  }

  // Journals the intent to run `op`; returns the journal id.
  uint64_t Begin(JournalOp op, std::string spec_name, sql::ParamMap params,
                 sql::Value user_id, uint64_t disguise_id, TimePoint now);

  // Records the disguise id once the log assigns it (apply path).
  void SetDisguiseId(uint64_t journal_id, uint64_t disguise_id);

  // Advances the phase marker. Phases only move forward.
  void Advance(uint64_t journal_id, JournalPhase phase);

  // Removes the entry: the operation finished (or was cleanly aborted with
  // all compensation applied).
  void Complete(uint64_t journal_id);

  // Single-threaded accessors; pointers/references are invalidated by a
  // concurrent Begin/Complete. Concurrent callers use PendingCopy().
  const JournalEntry* Find(uint64_t journal_id) const;
  const std::vector<JournalEntry>& pending() const { return pending_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

  // Concurrency-safe snapshot of the pending entries.
  std::vector<JournalEntry> PendingCopy() const;

  std::vector<uint8_t> Serialize() const;
  static StatusOr<CommitJournal> Deserialize(const std::vector<uint8_t>& wire);

  // --- Durability deltas ------------------------------------------------------
  // One blob per journal mutation, carried in the durable database's WAL
  // (src/core/durable_engine.h): Begin / SetDisguiseId / Advance ride
  // kSidecar records; the kCommitted advance that must be atomic with a
  // database commit rides that commit record as a staged attachment.
  //
  // ApplyDelta replay is idempotent and monotone — begin upserts the full
  // entry (and raises next_id past it), set-disguise-id and advance update an
  // existing entry (advance forward-only) and ignore a missing one, complete
  // erases if present — so replaying WAL deltas that a newer journal image
  // already reflects converges on the same journal state.

  // Encodes the pending entry's full image as a begin delta; call directly
  // after Begin(). Returns an empty blob if the entry is already gone.
  std::vector<uint8_t> EncodeBegin(uint64_t journal_id) const;
  static std::vector<uint8_t> EncodeSetDisguiseId(uint64_t journal_id, uint64_t disguise_id);
  static std::vector<uint8_t> EncodeAdvance(uint64_t journal_id, JournalPhase phase);
  static std::vector<uint8_t> EncodeComplete(uint64_t journal_id);

  // Replays one delta blob. Malformed blobs are kInvalidArgument; deltas for
  // unknown journal ids are fine (already superseded) and return OK.
  Status ApplyDelta(const std::vector<uint8_t>& delta);

 private:
  mutable std::mutex mu_;
  std::vector<JournalEntry> pending_;  // operations not yet completed
  uint64_t next_id_ = 1;
};

// What Recover() did, per repair class.
struct RecoveryReport {
  size_t transactions_rolled_back = 0;  // open txn found and rolled back
  size_t applies_rolled_back = 0;       // half-applied disguises undone
  size_t applies_rolled_forward = 0;    // committed applies finalized
  size_t reveals_rolled_back = 0;       // half-done reveals undone
  size_t reveals_rolled_forward = 0;    // committed reveals finalized
  size_t orphan_vault_disguises_dropped = 0;  // vault records without log entry
  size_t log_entries_dropped = 0;             // log entries of undone applies
  size_t entries_marked_irreversible = 0;     // reversible entries w/o vault data
  size_t protected_rows_rebuilt = 0;          // strict-mode map reconstruction

  size_t TotalRepairs() const;
  std::string ToString() const;
};

// Result of the standalone invariant check. `violations` is empty iff the
// database / vault / log / journal quadruple is mutually consistent.
struct ConsistencyReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

}  // namespace edna::core

#endif  // SRC_CORE_RECOVERY_H_
