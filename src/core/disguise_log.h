// Persistent disguise log (§4.2): "the tool keeps a persistent log of all
// disguises the application applied, and re-applies disguises from the
// relevant log interval to the revealed data." Entries record which spec ran,
// with which parameters, when, and whether it is still active (not yet
// reverted). The log is mirrored into a reserved table of the application
// database, matching Edna's "disguise history table".
#ifndef SRC_CORE_DISGUISE_LOG_H_
#define SRC_CORE_DISGUISE_LOG_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/db/database.h"
#include "src/sql/eval.h"

namespace edna::core {

inline constexpr char kDisguiseLogTableName[] = "__edna_disguise_log";

struct LogEntry {
  uint64_t id = 0;
  std::string spec_name;
  sql::ParamMap params;     // bindings used at apply time ($UID etc.)
  sql::Value user_id;       // Null for global disguises
  TimePoint applied_at = 0;
  bool reversible = false;
  bool active = true;       // false once permanently revealed
};

// Thread-safe: an internal mutex guards the entry list, held across the DB
// mirror write so log order and mirror order agree (lock order: log mutex
// before any db lock; the Database never calls back into the log).
//
// The pointer-returning accessors (Find, entries, ActiveAfter/Before) are
// for single-threaded use: returned pointers are invalidated by a concurrent
// Append. Concurrent callers (the batch executor) use the *Copy accessors.
class DisguiseLog {
 public:
  // Mirrors entries into `db` (reserved table created on demand); `db` may
  // be nullptr for a purely in-memory log.
  explicit DisguiseLog(db::Database* db);

  StatusOr<uint64_t> Append(std::string spec_name, sql::ParamMap params, sql::Value user_id,
                            TimePoint applied_at, bool reversible);

  Status MarkRevealed(uint64_t id);

  // Removes the most recent entry iff it has this id. Used to unwind a
  // failed apply after the in-memory append (the DB mirror row is unwound by
  // the enclosing transaction's rollback).
  Status Unappend(uint64_t id);

  // Recovery-path removal: erases the entry wherever it sits and deletes its
  // DB mirror row if one survived (the transaction rollback usually already
  // unwound it). Unlike Unappend, never leaves the mirror out of sync.
  Status DropEntry(uint64_t id);

  // Recovery-path demotion: clears the reversible flag of an entry whose
  // vault records are gone (expired or dropped by crash recovery), so the
  // consistency audit no longer expects reveal records for it.
  Status MarkIrreversible(uint64_t id);

  // Rebuilds the in-memory log from the DB mirror table, for processes that
  // load a previously saved database image. Apply-time parameter bindings are
  // not mirrored and come back empty; everything the consistency audit and
  // recovery need (ids, spec names, flags) round-trips. No-op without a
  // mirror table. Fails if the log already has in-memory entries.
  Status LoadFromMirror();

  // Creates the mirror table now if it does not exist. Appends normally
  // create it on demand, but that is DDL — a schema mutation concurrent
  // apply paths would race with — so parallel executors call this from a
  // single-threaded point before any worker starts.
  Status EnsureMirror();

  const LogEntry* Find(uint64_t id) const;
  const std::vector<LogEntry>& entries() const { return entries_; }

  // Active entries with id > `after_id`, in apply order: the "relevant log
  // interval" re-applied to revealed data.
  std::vector<const LogEntry*> ActiveAfter(uint64_t after_id) const;

  // Active entries with id < `before_id`, in apply order: the prior
  // disguises a new application may need to compose with.
  std::vector<const LogEntry*> ActiveBefore(uint64_t before_id) const;

  // Concurrency-safe copies of the above.
  std::optional<LogEntry> FindCopy(uint64_t id) const;
  std::vector<LogEntry> ActiveAfterCopy(uint64_t after_id) const;

  // Most recent ACTIVE entry for (spec, uid), if any. Lets a batch reveal
  // task name a disguise by what it means ("the GDPR disguise of user 7")
  // instead of by an id assigned concurrently.
  std::optional<LogEntry> LatestActiveFor(const std::string& spec_name,
                                          const sql::Value& uid) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  Status MirrorAppend(const LogEntry& e);
  Status MirrorMarkRevealed(uint64_t id);

  db::Database* db_;
  mutable std::mutex mu_;
  std::vector<LogEntry> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace edna::core

#endif  // SRC_CORE_DISGUISE_LOG_H_
