// DurableEngine: a DisguiseEngine bound to an on-disk data directory.
//
// Composes the durable database (src/db/durable.h) with the engine's
// crash-consistency machinery (src/core/recovery.h) so that BOTH recovery
// stories survive a real process death, not just a simulated freeze:
//
//  * every database commit is WAL-logged by the DurableDatabase;
//  * every commit-journal mutation is mirrored into the SAME WAL — Begin /
//    SetDisguiseId / Advance / Complete as standalone kSidecar deltas, and
//    the kCommitted advance inside the very commit record it must be atomic
//    with (a staged attachment, so the phase marker and the data commit
//    become durable together and Recover() always picks the right repair
//    direction);
//  * checkpoints store the serialized journal beside the snapshot, so
//    reopening = snapshot + journal image + WAL replay (rows AND deltas).
//
// Open() is the whole recovery pipeline: recover the database, rebuild the
// vault handle and the engine, restore the journal (image, then deltas in
// LSN order), reload the disguise log from its mirror table, and run
// DisguiseEngine::Recover() to repair any operation the crash interrupted.
// After Open() succeeds, AuditConsistency() reports zero violations.
#ifndef SRC_CORE_DURABLE_ENGINE_H_
#define SRC_CORE_DURABLE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/engine.h"
#include "src/core/recovery.h"
#include "src/db/durable.h"
#include "src/vault/table_vault.h"

namespace edna::core {

struct DurableEngineOptions {
  db::DurableOptions durable;
  EngineOptions engine;
  // Timestamp source for the engine (journal / log entries). Defaults to an
  // owned SystemClock; tests inject a ManualClock so a crashed-and-reopened
  // run stays bit-identical to its never-crashed reference.
  const Clock* clock = nullptr;
};

// What Open() recovered, layer by layer.
struct DurableEngineReport {
  db::DurableOpenReport db;                 // snapshot + WAL scan + replay
  bool journal_restored_from_image = false; // journal-<L>.ednj was present
  size_t journal_deltas_applied = 0;        // WAL deltas replayed on top
  RecoveryReport recovery;                  // DisguiseEngine::Recover()
};

class DurableEngine : public JournalDurability {
 public:
  // Opens (creating if needed) the data directory and runs end-to-end
  // recovery. `options.clock`, when set, must outlive the engine.
  static StatusOr<std::unique_ptr<DurableEngine>> Open(
      const std::string& dir, const DurableEngineOptions& options,
      DurableEngineReport* report = nullptr);

  ~DurableEngine() override;

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  DisguiseEngine* engine() { return engine_.get(); }
  db::Database* db() { return durable_->db(); }
  db::DurableDatabase* durable() { return durable_.get(); }
  vault::Vault* vault() { return vault_.get(); }

  // Compaction and durability passthroughs (src/db/durable.h).
  Status Checkpoint() { return durable_->Checkpoint(); }
  Status MaybeCheckpoint() { return durable_->MaybeCheckpoint(); }
  Status Flush() { return durable_->Flush(); }

  // --- JournalDurability (called by the DisguiseEngine) ----------------------
  Status AppendJournalDelta(std::vector<uint8_t> delta) override;
  void StageJournalDelta(std::vector<uint8_t> delta) override;

 private:
  DurableEngine(std::unique_ptr<db::DurableDatabase> durable,
                std::unique_ptr<vault::TableVault> vault,
                std::unique_ptr<DisguiseEngine> engine);

  std::unique_ptr<db::DurableDatabase> durable_;
  std::unique_ptr<vault::TableVault> vault_;
  std::unique_ptr<DisguiseEngine> engine_;
};

}  // namespace edna::core

#endif  // SRC_CORE_DURABLE_ENGINE_H_
