// DisguiseEngine::Apply and the disguise-composition machinery (§4.2, §6).
#include <algorithm>
#include <utility>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/engine_internal.h"

namespace edna::core {

using disguise::DisguiseSpec;
using disguise::TransformKind;
using disguise::Transformation;
using vault::RevealOp;
using vault::RevealRecord;

namespace {

// True if `spec` contains a Decorrelate transformation on (table, column)
// whose predicate involves $UID — the signature of a per-user decorrelation
// the reuse optimization can satisfy with an existing placeholder.
bool SpecRedecorrelates(const DisguiseSpec& spec, const std::string& table,
                        const std::string& column) {
  const disguise::TableDisguise* td = spec.FindTable(table);
  if (td == nullptr) {
    return false;
  }
  for (const Transformation& tr : td->transformations) {
    if (tr.kind() == TransformKind::kDecorrelate && tr.foreign_key().column == column) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<ApplyResult> DisguiseEngine::ApplyForUser(const std::string& spec_name,
                                                   sql::Value uid) {
  sql::ParamMap params;
  params.emplace(disguise::kUidParam, std::move(uid));
  return Apply(spec_name, params);
}

Status DisguiseEngine::RecorrelateForUser(ApplyContext* ctx) {
  // Pull the reveal records holding transformations of this user's data.
  // Because global disguises shard their reveal functions per affected user
  // (see ShardRecordByOwner), ONE user's vault suffices — the engine never
  // scans every user's reveal functions to compose, mirroring Edna's
  // per-user vault tables. Vault entries exist only for *active* disguises
  // (Reveal removes them), so no staleness filtering is needed.
  ASSIGN_OR_RETURN(std::vector<RevealRecord> records, vault_->FetchForUser(ctx->uid));
  if (!options_.shard_global_reveal_records) {
    // Unsharded mode: global disguises left one monolithic record each; the
    // user's ops hide inside them, so every global record must be scanned.
    ASSIGN_OR_RETURN(std::vector<RevealRecord> global_records, vault_->FetchGlobal());
    for (RevealRecord& r : global_records) {
      records.push_back(std::move(r));
    }
  }
  ctx->result.vault_records_scanned = records.size();

  for (const RevealRecord& rec : records) {
    for (const RevealOp& op : rec.ops) {
      // A prior disguise rewrote a reference that used to point at this
      // user: op.old_value == uid on some column. (Removed rows of the user
      // need no recorrelation — they are already at least as private as any
      // new disguise would make them.)
      if (op.kind != RevealOp::Kind::kRestoreColumn || !op.old_value.SqlEquals(ctx->uid) ||
          op.old_value.is_null()) {
        continue;
      }
      if (!db_->RowExists(op.table, op.row_id)) {
        continue;  // row has since been removed
      }
      ASSIGN_OR_RETURN(sql::Value current, db_->GetColumn(op.table, op.row_id, op.column));
      if (!current.SqlEquals(op.new_value)) {
        continue;  // value changed again since; that op no longer owns it
      }
      if (options_.reuse_decorrelation &&
          SpecRedecorrelates(*ctx->spec, op.table, op.column)) {
        // §6's optimization: the new disguise would only re-decorrelate this
        // reference, and it already points at a placeholder. Keep it.
        ++ctx->result.decorrelations_reused;
        continue;
      }
      // If the original identity row no longer exists (a prior disguise
      // removed the account itself), physical recorrelation would dangle the
      // foreign key. Fall back to *virtual* recorrelation: evaluate the new
      // spec against the hypothetical recorrelated row and act directly.
      bool parent_alive = true;
      const db::TableSchema* ts = db_->schema().FindTable(op.table);
      if (const db::ForeignKeyDef* fk = ts->FindForeignKey(op.column); fk != nullptr) {
        db::PkKey key;
        key.values.push_back(ctx->uid);
        parent_alive = db_->LookupPk(fk->parent_table, key).ok();
      }
      if (!parent_alive) {
        RETURN_IF_ERROR(VirtualRecorrelate(ctx, op.table, op.row_id, op.column));
        continue;
      }
      // Temporary recorrelation: restore the original reference so the new
      // disguise's predicates see the pre-disguise world.
      RETURN_IF_ERROR(db_->SetColumn(op.table, op.row_id, op.column, ctx->uid));
      ctx->recorrelated.push_back(ApplyContext::Recorrelated{
          op.table, op.row_id, op.column, current});
      ++ctx->result.rows_recorrelated;
    }
  }
  ctx->result.composed =
      ctx->result.rows_recorrelated > 0 || ctx->result.decorrelations_reused > 0;
  return OkStatus();
}

Status DisguiseEngine::VirtualRecorrelate(ApplyContext* ctx, const std::string& table,
                                          db::RowId row_id, const std::string& column) {
  const disguise::TableDisguise* td = ctx->spec->FindTable(table);
  if (td == nullptr) {
    return OkStatus();  // the new disguise does not touch this table
  }
  ASSIGN_OR_RETURN(db::Row hypothetical, db_->GetRow(table, row_id));
  const db::TableSchema* ts = db_->schema().FindTable(table);
  int col_idx = ts->ColumnIndex(column);
  hypothetical[static_cast<size_t>(col_idx)] = ctx->uid;
  sql::ColumnResolver resolver = db::MakeRowResolver(*ts, hypothetical);

  ++ctx->result.rows_recorrelated;  // counted: we did consult/act on it
  for (const Transformation& tr : td->transformations) {
    ASSIGN_OR_RETURN(bool match,
                     sql::EvaluatePredicate(*tr.predicate(), resolver, ctx->params));
    if (!match) {
      continue;
    }
    switch (tr.kind()) {
      case TransformKind::kRemove:
        // The new disguise would remove this formerly-owned row: do it.
        return RemoveWithClosure(ctx, table, row_id, 0);
      case TransformKind::kDecorrelate:
        if (tr.foreign_key().column == column) {
          // Already decorrelated by the prior disguise; nothing to add.
          ++ctx->result.decorrelations_reused;
          return OkStatus();
        }
        break;
      case TransformKind::kModify:
        // The reference is already hidden behind a placeholder; modifying
        // the disguised row here could leak less, never more. Skip.
        break;
    }
  }
  return OkStatus();
}

Status DisguiseEngine::RedisguiseLeftovers(ApplyContext* ctx) {
  // Any temporarily recorrelated reference the new disguise did not consume
  // (remove, re-decorrelate, or modify) must go back to its disguised state:
  // revealing it permanently would violate the prior disguise's goal.
  for (const ApplyContext::Recorrelated& r : ctx->recorrelated) {
    if (!db_->RowExists(r.table, r.row_id)) {
      continue;  // the new disguise removed the row
    }
    ASSIGN_OR_RETURN(sql::Value current, db_->GetColumn(r.table, r.row_id, r.column));
    if (!current.SqlEquals(ctx->uid)) {
      continue;  // the new disguise rewrote it (e.g. fresh placeholder)
    }
    RETURN_IF_ERROR(db_->SetColumn(r.table, r.row_id, r.column, r.placeholder_value));
  }
  return OkStatus();
}

StatusOr<ApplyResult> DisguiseEngine::Apply(const std::string& spec_name,
                                            const sql::ParamMap& params) {
  const DisguiseSpec* spec = FindSpec(spec_name);
  if (spec == nullptr) {
    return NotFound("no registered disguise \"" + spec_name + "\"");
  }

  ApplyContext ctx;
  ctx.spec = spec;
  ctx.params = params;
  if (spec->per_user()) {
    auto it = params.find(disguise::kUidParam);
    if (it == params.end() || it->second.is_null()) {
      return InvalidArgument("per-user disguise \"" + spec_name + "\" requires $UID");
    }
    ctx.uid = it->second;
  } else {
    ctx.uid = sql::Value::Null();
  }
  ctx.record.disguise_name = spec->name();
  ctx.record.user_id = ctx.uid;
  ctx.record.created = clock_->Now();
  ctx.rng = OpRng('A', spec->name(), ctx.uid);

  // Per-thread statement counter: under a concurrent batch, the global
  // stats().queries counts everyone's statements.
  uint64_t queries_before = db::Database::ThreadStatements();

  // Engine-internal mutations are exempt from the strict-mode write guard.
  EngineOpScope engine_scope(this);

  // Crash consistency (recovery.h): journal the intent before any store
  // mutates. A simulated crash anywhere below returns immediately WITHOUT
  // compensation — state freezes as a process death would leave it, and
  // Recover() repairs from the journal's phase marker.
  uint64_t journal_id = journal_.Begin(JournalOp::kApply, spec->name(), ctx.params,
                                       ctx.uid, /*disguise_id=*/0, ctx.record.created);
  Status journaled = PersistJournalDelta(journal_.EncodeBegin(journal_id));
  if (!journaled.ok()) {
    if (!FailPoints::IsSimulatedCrash(journaled)) {
      journal_.Complete(journal_id);  // intent never durable; nothing mutated
    }
    return journaled;
  }

  Status begun = db_->Begin();
  if (!begun.ok()) {
    if (!FailPoints::IsSimulatedCrash(begun)) {
      // Nothing mutated; clean abort. A persistence failure here leaves the
      // intent entry on disk for Recover() to no-op over.
      Status retired = RetireJournalEntry(journal_id);
      if (FailPoints::IsSimulatedCrash(retired)) {
        return retired;
      }
      begun = FoldStatus(std::move(begun), retired, "journal retire");
    }
    return begun;
  }
  Status status = [&]() -> Status {
    // Composition pre-pass: only meaningful for per-user disguises layered
    // on earlier disguises (§4.2).
    if (spec->per_user() && vault_->NumRecords() > 0) {
      RETURN_IF_ERROR(RecorrelateForUser(&ctx));
    }
    // Phase order guarantees referential integrity: references move to
    // placeholders before identity rows can be removed.
    RETURN_IF_ERROR(RunDecorrelates(&ctx));
    RETURN_IF_ERROR(RunModifies(&ctx));
    RETURN_IF_ERROR(RunRemoves(&ctx));
    RETURN_IF_ERROR(RedisguiseLeftovers(&ctx));
    RETURN_IF_ERROR(CheckAssertions(*spec, ctx.params));
    return OkStatus();
  }();
  if (!status.ok()) {
    if (FailPoints::IsSimulatedCrash(status)) {
      return status;
    }
    return UnwindFailedApply(journal_id, /*disguise_id=*/0, std::move(status));
  }

  // Log, then persist the reveal function, then commit. A failure in either
  // unwinds everything (vault table writes live in the same transaction for
  // the in-database vault model; external vaults see a Remove on failure).
  StatusOr<uint64_t> appended =
      log_.Append(spec->name(), ctx.params, ctx.uid, ctx.record.created,
                  spec->reversible());
  if (!appended.ok()) {
    if (FailPoints::IsSimulatedCrash(appended.status())) {
      return appended.status();
    }
    return UnwindFailedApply(journal_id, /*disguise_id=*/0, appended.status());
  }
  uint64_t disguise_id = *appended;
  ctx.result.disguise_id = disguise_id;
  journal_.SetDisguiseId(journal_id, disguise_id);
  {
    Status persisted = PersistJournalDelta(
        CommitJournal::EncodeSetDisguiseId(journal_id, disguise_id));
    if (!persisted.ok()) {
      if (FailPoints::IsSimulatedCrash(persisted)) {
        return persisted;
      }
      return UnwindFailedApply(journal_id, disguise_id, std::move(persisted));
    }
  }
  if (spec->reversible()) {
    ctx.record.disguise_id = disguise_id;
    if (options_.protect_disguised_data) {
      // Capture before sharding moves the ops out of ctx.record.
      ProtectRows(disguise_id, ctx.record);
    }
    Status stored = [&]() -> Status {
      if (spec->per_user() || !options_.shard_global_reveal_records) {
        return vault_->Store(ctx.record);
      }
      // Global disguise: shard reveal ops by owner into per-user records so
      // later per-user disguises compose by reading one user's vault. The
      // unattributed remainder (content modifications, log removals) stays
      // in a single ownerless record, stored last so reversal (which walks
      // records in reverse) undoes it first — preserving strict LIFO for
      // the ops recorded after the decorrelation phase.
      std::vector<sql::Value> owner_order;
      std::map<std::string, RevealRecord> shards;
      RevealRecord global;
      global.disguise_id = ctx.record.disguise_id;
      global.disguise_name = ctx.record.disguise_name;
      global.user_id = sql::Value::Null();
      global.created = ctx.record.created;
      for (RevealOp& op : ctx.record.ops) {
        if (op.owner.is_null()) {
          global.ops.push_back(std::move(op));
          continue;
        }
        std::string key = op.owner.ToSqlString();
        auto it = shards.find(key);
        if (it == shards.end()) {
          RevealRecord shard;
          shard.disguise_id = ctx.record.disguise_id;
          shard.disguise_name = ctx.record.disguise_name;
          shard.user_id = op.owner;
          shard.created = ctx.record.created;
          it = shards.emplace(key, std::move(shard)).first;
          owner_order.push_back(op.owner);
        }
        it->second.ops.push_back(std::move(op));
      }
      // One batched store: owner shards in discovery order, global last.
      // Vault::StoreBatch preserves Store-loop semantics record by record
      // (fail points, nonce draws, first-failure stop) while letting
      // encrypted backends amortize key derivation across the batch.
      std::vector<RevealRecord> batch;
      batch.reserve(owner_order.size() + 1);
      for (const sql::Value& owner : owner_order) {
        batch.push_back(std::move(shards.at(owner.ToSqlString())));
      }
      batch.push_back(std::move(global));
      return vault_->StoreBatch(batch);
    }();
    if (!stored.ok()) {
      if (FailPoints::IsSimulatedCrash(stored)) {
        return stored;
      }
      return UnwindFailedApply(journal_id, disguise_id, std::move(stored));
    }
  }
  journal_.Advance(journal_id, JournalPhase::kVaultStored);
  {
    Status persisted = PersistJournalDelta(
        CommitJournal::EncodeAdvance(journal_id, JournalPhase::kVaultStored));
    if (!persisted.ok()) {
      if (FailPoints::IsSimulatedCrash(persisted)) {
        return persisted;
      }
      return UnwindFailedApply(journal_id, disguise_id, std::move(persisted));
    }
  }

  {
    Status pre = FailPoints::Instance().Check(failpoints::kApplyBeforeCommit);
    if (!pre.ok()) {
      if (FailPoints::IsSimulatedCrash(pre)) {
        return pre;
      }
      return UnwindFailedApply(journal_id, disguise_id, std::move(pre));
    }
  }

  // The kCommitted advance must be atomic with the commit itself (else a
  // crash between them makes Recover() pick the wrong repair direction), so
  // it rides inside the commit's own WAL record.
  StageCommittedAdvance(journal_id);
  Status committed = db_->Commit();
  if (!committed.ok()) {
    if (FailPoints::IsSimulatedCrash(committed)) {
      return committed;
    }
    // Commit refused: the transaction is still open, so compensation must
    // roll it back rather than strand it (which would poison the next op).
    return UnwindFailedApply(journal_id, disguise_id, std::move(committed));
  }
  journal_.Advance(journal_id, JournalPhase::kCommitted);

  {
    // Past this point the disguise is durable; a crash here leaves a
    // committed journal entry that Recover() simply rolls forward.
    Status post = FailPoints::Instance().Check(failpoints::kApplyAfterCommit);
    if (!post.ok()) {
      return post;
    }
  }
  {
    Status retired = RetireJournalEntry(journal_id);
    if (!retired.ok()) {
      // The disguise is fully durable; only its journal retirement is not.
      // Pending at kCommitted, Recover() rolls it forward.
      EDNA_LOG(kError) << "apply committed but retiring journal entry failed: " << retired;
      return retired;
    }
  }
  CommitOpSeq('A', spec->name(), ctx.uid);

  ctx.result.queries = db::Database::ThreadStatements() - queries_before;
  return ctx.result;
}

Status DisguiseEngine::UnwindFailedApply(uint64_t journal_id, uint64_t disguise_id,
                                         Status cause) {
  // Compensation order matters: the rollback must run first so that
  // in-transaction state (log mirror rows, table-vault rows) unwinds before
  // we repair the stores that live outside the transaction. A simulated
  // crash during compensation aborts it mid-way — the journal entry stays
  // pending and Recover() finishes the job.
  bool compensated = true;
  if (disguise_id != 0) {
    UnprotectRows(disguise_id);
  }
  Status rb = db_->Rollback();
  if (!rb.ok()) {
    if (FailPoints::IsSimulatedCrash(rb)) {
      return rb;
    }
    EDNA_LOG(kError) << "rollback while unwinding failed apply also failed: " << rb;
    cause = FoldStatus(std::move(cause), rb, "rollback");
    compensated = false;
  }
  if (disguise_id != 0) {
    Status removed = vault_->Remove(disguise_id);  // drop any shards already stored
    if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
      if (FailPoints::IsSimulatedCrash(removed)) {
        return removed;
      }
      EDNA_LOG(kError) << "vault remove while unwinding failed apply failed: "
                       << removed;
      cause = FoldStatus(std::move(cause), removed, "vault remove");
      compensated = false;
    }
    Status dropped = log_.DropEntry(disguise_id);
    if (!dropped.ok() && dropped.code() != StatusCode::kNotFound) {
      if (FailPoints::IsSimulatedCrash(dropped)) {
        return dropped;
      }
      EDNA_LOG(kError) << "log drop while unwinding failed apply failed: " << dropped;
      cause = FoldStatus(std::move(cause), dropped, "log drop");
      compensated = false;
    }
  }
  // Only a fully compensated abort retires the journal entry; a double
  // fault leaves it pending so Recover() can finish the repair.
  if (compensated) {
    Status retired = RetireJournalEntry(journal_id);
    if (!retired.ok()) {
      if (FailPoints::IsSimulatedCrash(retired)) {
        return retired;
      }
      EDNA_LOG(kError) << "journal retire while unwinding failed apply failed: " << retired;
      cause = FoldStatus(std::move(cause), retired, "journal retire");
    }
  }
  return cause;
}

}  // namespace edna::core
