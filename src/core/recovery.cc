// Commit journal, crash recovery (DisguiseEngine::Recover), and the
// standalone cross-store consistency audit. See recovery.h for the protocol.
#include "src/core/recovery.h"

#include <algorithm>
#include <mutex>
#include <set>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/engine_internal.h"
#include "src/sql/codec.h"

namespace edna::core {

using vault::RevealRecord;

const char* JournalOpName(JournalOp op) {
  switch (op) {
    case JournalOp::kApply:
      return "apply";
    case JournalOp::kReveal:
      return "reveal";
  }
  return "?";
}

const char* JournalPhaseName(JournalPhase phase) {
  switch (phase) {
    case JournalPhase::kIntent:
      return "intent";
    case JournalPhase::kVaultStored:
      return "vault-stored";
    case JournalPhase::kCommitted:
      return "committed";
  }
  return "?";
}

// --- CommitJournal -----------------------------------------------------------

uint64_t CommitJournal::Begin(JournalOp op, std::string spec_name, sql::ParamMap params,
                              sql::Value user_id, uint64_t disguise_id, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEntry e;
  e.journal_id = next_id_++;
  e.op = op;
  e.spec_name = std::move(spec_name);
  e.params = std::move(params);
  e.user_id = std::move(user_id);
  e.disguise_id = disguise_id;
  e.phase = JournalPhase::kIntent;
  e.created = now;
  pending_.push_back(std::move(e));
  return pending_.back().journal_id;
}

void CommitJournal::SetDisguiseId(uint64_t journal_id, uint64_t disguise_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (JournalEntry& e : pending_) {
    if (e.journal_id == journal_id) {
      e.disguise_id = disguise_id;
      return;
    }
  }
}

void CommitJournal::Advance(uint64_t journal_id, JournalPhase phase) {
  std::lock_guard<std::mutex> lock(mu_);
  for (JournalEntry& e : pending_) {
    if (e.journal_id == journal_id) {
      if (static_cast<uint8_t>(phase) > static_cast<uint8_t>(e.phase)) {
        e.phase = phase;
      }
      return;
    }
  }
}

void CommitJournal::Complete(uint64_t journal_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(pending_,
                [&](const JournalEntry& e) { return e.journal_id == journal_id; });
}

const JournalEntry* CommitJournal::Find(uint64_t journal_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JournalEntry& e : pending_) {
    if (e.journal_id == journal_id) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<JournalEntry> CommitJournal::PendingCopy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

namespace {

// Journal wire format (documented in docs/FORMATS.md):
//   "EDNJ" magic, u8 version, u64 next_id, u32 entry count, then per entry:
//   u64 journal_id, u8 op, u8 phase, string spec_name, value user_id,
//   u64 disguise_id, i64 created, u32 param count, (string, value) pairs.
constexpr char kJournalMagic[] = "EDNJ";
constexpr uint8_t kJournalVersion = 1;

// Durability-delta wire form: u8 delta kind, then the body (no magic or
// version of its own — deltas travel inside CRC-framed, versioned WAL
// records; see docs/FORMATS.md, "Journal deltas").
enum : uint8_t {
  kDeltaBegin = 1,          // full entry image (per-entry layout above)
  kDeltaSetDisguiseId = 2,  // u64 journal_id, u64 disguise_id
  kDeltaAdvance = 3,        // u64 journal_id, u8 phase
  kDeltaComplete = 4,       // u64 journal_id
};

void WriteEntry(sql::ByteWriter& w, const JournalEntry& e) {
  w.U64(e.journal_id);
  w.U8(static_cast<uint8_t>(e.op));
  w.U8(static_cast<uint8_t>(e.phase));
  w.String(e.spec_name);
  w.Value(e.user_id);
  w.U64(e.disguise_id);
  w.I64(e.created);
  w.U32(static_cast<uint32_t>(e.params.size()));
  for (const auto& [name, value] : e.params) {
    w.String(name);
    w.Value(value);
  }
}

StatusOr<JournalEntry> ReadEntry(sql::ByteReader& r) {
  JournalEntry e;
  ASSIGN_OR_RETURN(e.journal_id, r.U64());
  ASSIGN_OR_RETURN(uint8_t op, r.U8());
  if (op != static_cast<uint8_t>(JournalOp::kApply) &&
      op != static_cast<uint8_t>(JournalOp::kReveal)) {
    return InvalidArgument("bad journal op " + std::to_string(op));
  }
  e.op = static_cast<JournalOp>(op);
  ASSIGN_OR_RETURN(uint8_t phase, r.U8());
  if (phase < static_cast<uint8_t>(JournalPhase::kIntent) ||
      phase > static_cast<uint8_t>(JournalPhase::kCommitted)) {
    return InvalidArgument("bad journal phase " + std::to_string(phase));
  }
  e.phase = static_cast<JournalPhase>(phase);
  ASSIGN_OR_RETURN(e.spec_name, r.String());
  ASSIGN_OR_RETURN(e.user_id, r.Value());
  ASSIGN_OR_RETURN(e.disguise_id, r.U64());
  ASSIGN_OR_RETURN(e.created, r.I64());
  ASSIGN_OR_RETURN(uint32_t nparams, r.U32());
  for (uint32_t p = 0; p < nparams; ++p) {
    ASSIGN_OR_RETURN(std::string name, r.String());
    ASSIGN_OR_RETURN(sql::Value value, r.Value());
    e.params.emplace(std::move(name), std::move(value));
  }
  return e;
}

}  // namespace

std::vector<uint8_t> CommitJournal::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  sql::ByteWriter w;
  w.Bytes(reinterpret_cast<const uint8_t*>(kJournalMagic), 4);
  w.U8(kJournalVersion);
  w.U64(next_id_);
  w.U32(static_cast<uint32_t>(pending_.size()));
  for (const JournalEntry& e : pending_) {
    WriteEntry(w, e);
  }
  return w.Take();
}

StatusOr<CommitJournal> CommitJournal::Deserialize(const std::vector<uint8_t>& wire) {
  sql::ByteReader r(wire);
  if (wire.size() < 4 || std::string(wire.begin(), wire.begin() + 4) != kJournalMagic) {
    return InvalidArgument("not a commit journal image (bad magic)");
  }
  for (int i = 0; i < 4; ++i) {
    RETURN_IF_ERROR(r.U8().status());
  }
  ASSIGN_OR_RETURN(uint8_t version, r.U8());
  if (version != kJournalVersion) {
    return InvalidArgument("unsupported journal version " + std::to_string(version));
  }
  CommitJournal journal;
  ASSIGN_OR_RETURN(journal.next_id_, r.U64());
  ASSIGN_OR_RETURN(uint32_t count, r.U32());
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(JournalEntry e, ReadEntry(r));
    journal.pending_.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    return InvalidArgument("trailing bytes in commit journal image");
  }
  return journal;
}

// --- Durability deltas -------------------------------------------------------

std::vector<uint8_t> CommitJournal::EncodeBegin(uint64_t journal_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JournalEntry& e : pending_) {
    if (e.journal_id == journal_id) {
      sql::ByteWriter w;
      w.U8(kDeltaBegin);
      WriteEntry(w, e);
      return w.Take();
    }
  }
  return {};
}

std::vector<uint8_t> CommitJournal::EncodeSetDisguiseId(uint64_t journal_id,
                                                        uint64_t disguise_id) {
  sql::ByteWriter w;
  w.U8(kDeltaSetDisguiseId);
  w.U64(journal_id);
  w.U64(disguise_id);
  return w.Take();
}

std::vector<uint8_t> CommitJournal::EncodeAdvance(uint64_t journal_id, JournalPhase phase) {
  sql::ByteWriter w;
  w.U8(kDeltaAdvance);
  w.U64(journal_id);
  w.U8(static_cast<uint8_t>(phase));
  return w.Take();
}

std::vector<uint8_t> CommitJournal::EncodeComplete(uint64_t journal_id) {
  sql::ByteWriter w;
  w.U8(kDeltaComplete);
  w.U64(journal_id);
  return w.Take();
}

Status CommitJournal::ApplyDelta(const std::vector<uint8_t>& delta) {
  sql::ByteReader r(delta);
  ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  std::lock_guard<std::mutex> lock(mu_);
  switch (kind) {
    case kDeltaBegin: {
      ASSIGN_OR_RETURN(JournalEntry e, ReadEntry(r));
      if (!r.AtEnd()) {
        return InvalidArgument("trailing bytes in journal begin delta");
      }
      if (e.journal_id >= next_id_) {
        next_id_ = e.journal_id + 1;
      }
      for (JournalEntry& existing : pending_) {
        if (existing.journal_id == e.journal_id) {
          existing = std::move(e);
          return OkStatus();
        }
      }
      pending_.push_back(std::move(e));
      return OkStatus();
    }
    case kDeltaSetDisguiseId: {
      ASSIGN_OR_RETURN(uint64_t journal_id, r.U64());
      ASSIGN_OR_RETURN(uint64_t disguise_id, r.U64());
      if (!r.AtEnd()) {
        return InvalidArgument("trailing bytes in journal set-disguise-id delta");
      }
      for (JournalEntry& e : pending_) {
        if (e.journal_id == journal_id) {
          e.disguise_id = disguise_id;
          break;
        }
      }
      return OkStatus();
    }
    case kDeltaAdvance: {
      ASSIGN_OR_RETURN(uint64_t journal_id, r.U64());
      ASSIGN_OR_RETURN(uint8_t phase, r.U8());
      if (phase < static_cast<uint8_t>(JournalPhase::kIntent) ||
          phase > static_cast<uint8_t>(JournalPhase::kCommitted)) {
        return InvalidArgument("bad phase in journal advance delta");
      }
      if (!r.AtEnd()) {
        return InvalidArgument("trailing bytes in journal advance delta");
      }
      for (JournalEntry& e : pending_) {
        if (e.journal_id == journal_id) {
          if (phase > static_cast<uint8_t>(e.phase)) {
            e.phase = static_cast<JournalPhase>(phase);
          }
          break;
        }
      }
      return OkStatus();
    }
    case kDeltaComplete: {
      ASSIGN_OR_RETURN(uint64_t journal_id, r.U64());
      if (!r.AtEnd()) {
        return InvalidArgument("trailing bytes in journal complete delta");
      }
      std::erase_if(pending_,
                    [&](const JournalEntry& e) { return e.journal_id == journal_id; });
      return OkStatus();
    }
    default:
      return InvalidArgument("unknown journal delta kind " + std::to_string(kind));
  }
}

// --- Reports -----------------------------------------------------------------

size_t RecoveryReport::TotalRepairs() const {
  return transactions_rolled_back + applies_rolled_back + applies_rolled_forward +
         reveals_rolled_back + reveals_rolled_forward + orphan_vault_disguises_dropped +
         entries_marked_irreversible;
}

std::string RecoveryReport::ToString() const {
  return StrFormat(
      "recovery: txn_rollbacks=%zu applies_back=%zu applies_fwd=%zu reveals_back=%zu "
      "reveals_fwd=%zu orphan_vault_dropped=%zu log_dropped=%zu irreversible=%zu "
      "protected_rebuilt=%zu\n",
      transactions_rolled_back, applies_rolled_back, applies_rolled_forward,
      reveals_rolled_back, reveals_rolled_forward, orphan_vault_disguises_dropped,
      log_entries_dropped, entries_marked_irreversible, protected_rows_rebuilt);
}

std::string ConsistencyReport::ToString() const {
  if (ok()) {
    return "consistent: no violations\n";
  }
  std::string out = StrFormat("INCONSISTENT: %zu violation(s)\n", violations.size());
  for (const std::string& v : violations) {
    out += "  - " + v + "\n";
  }
  return out;
}

// --- DisguiseEngine::Recover -------------------------------------------------

StatusOr<RecoveryReport> DisguiseEngine::Recover() {
  RecoveryReport report;
  // Recovery writes are engine-internal: exempt from the strict-mode guard.
  EngineOpScope engine_scope(this);

  // 1. An open transaction means the crash hit mid-mutation; the undo log
  //    still holds the inverses of everything uncommitted (including the
  //    log's mirror row and, for the in-database vault model, vault rows).
  //    Under parallel batching the crash may have frozen several workers
  //    mid-transaction, so roll back every thread's open transaction, not
  //    just the calling thread's.
  if (db_->AnyTransactionActive()) {
    RETURN_IF_ERROR(db_->RollbackAll());
    ++report.transactions_rolled_back;
  }

  // 2. Unwind pending journal entries, newest first (LIFO, like the apply
  //    stack they model).
  std::vector<JournalEntry> pending = journal_.PendingCopy();
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    const JournalEntry& e = *it;
    if (e.op == JournalOp::kApply) {
      if (e.phase == JournalPhase::kCommitted) {
        // Everything durable; only the journal completion was lost.
        ++report.applies_rolled_forward;
      } else {
        // Not committed: the transaction rollback above undid the database
        // side; drop whatever reached the other two stores.
        if (e.disguise_id != 0) {
          RETURN_IF_ERROR(vault_->Remove(e.disguise_id));
          if (log_.Find(e.disguise_id) != nullptr) {
            RETURN_IF_ERROR(log_.DropEntry(e.disguise_id));
            ++report.log_entries_dropped;
          }
          UnprotectRows(e.disguise_id);
        }
        ++report.applies_rolled_back;
      }
    } else {
      if (e.phase == JournalPhase::kCommitted) {
        // The restore is durable; finish the bookkeeping it crashed before:
        // deactivate the log entry and drop the consumed reveal records.
        const LogEntry* entry = log_.Find(e.disguise_id);
        if (entry != nullptr && entry->active) {
          RETURN_IF_ERROR(log_.MarkRevealed(e.disguise_id));
        }
        RETURN_IF_ERROR(vault_->Remove(e.disguise_id));
        UnprotectRows(e.disguise_id);
        ++report.reveals_rolled_forward;
      } else {
        // Rollback already restored the disguised state; the disguise stays
        // applied and revealable.
        ++report.reveals_rolled_back;
      }
    }
    // Durable retirement: the complete delta is logged before the in-memory
    // erase, so a crash mid-recovery re-runs at most this entry's repairs
    // (all idempotent) on the next Recover().
    RETURN_IF_ERROR(RetireJournalEntry(e.journal_id));
  }

  // 3. Orphan vault records: a disguise id the log does not know (or knows
  //    as revealed) can never be revealed through the API; its records are
  //    dead weight that also violates the audit invariants.
  ASSIGN_OR_RETURN(std::vector<uint64_t> vault_ids, vault_->ListDisguiseIds());
  std::set<uint64_t> vaulted(vault_ids.begin(), vault_ids.end());
  for (uint64_t id : vault_ids) {
    const LogEntry* entry = log_.Find(id);
    if (entry == nullptr || !entry->active) {
      RETURN_IF_ERROR(vault_->Remove(id));
      vaulted.erase(id);
      ++report.orphan_vault_disguises_dropped;
      EDNA_LOG(kWarning) << "recovery dropped orphan vault records of disguise " << id;
    }
  }

  // 4. Active reversible entries whose vault records are gone (expiry, or a
  //    crash that destroyed external storage): demote to irreversible so the
  //    log stops promising a reveal that cannot happen.
  std::vector<uint64_t> demote;
  for (const LogEntry& entry : log_.entries()) {
    if (entry.active && entry.reversible && vaulted.count(entry.id) == 0) {
      demote.push_back(entry.id);
    }
  }
  for (uint64_t id : demote) {
    RETURN_IF_ERROR(log_.MarkIrreversible(id));
    ++report.entries_marked_irreversible;
    EDNA_LOG(kWarning) << "recovery marked disguise " << id
                       << " irreversible (no vault records)";
  }

  // 5. Strict mode: the protected-row map is process state; rebuild it from
  //    the surviving vault records so the write guard matches reality.
  {
    std::lock_guard<std::mutex> prot_lock(prot_mu_);
    protected_rows_.clear();
    protected_by_disguise_.clear();
  }
  if (options_.protect_disguised_data) {
    for (const LogEntry& entry : log_.entries()) {
      if (!entry.active || !entry.reversible) {
        continue;
      }
      auto records = vault_->FetchForDisguise(entry.id);
      if (!records.ok()) {
        // Encrypted vaults may refuse to open records without the user's
        // key; protection for that disguise cannot be reconstructed.
        EDNA_LOG(kWarning) << "cannot rebuild write protection for disguise " << entry.id
                           << ": " << records.status();
        continue;
      }
      for (const RevealRecord& rec : *records) {
        ProtectRows(entry.id, rec);
      }
      std::lock_guard<std::mutex> prot_lock(prot_mu_);
      report.protected_rows_rebuilt += protected_by_disguise_[entry.id].size();
    }
  }
  return report;
}

// --- DisguiseEngine::AuditConsistency ----------------------------------------

StatusOr<ConsistencyReport> DisguiseEngine::AuditConsistency() {
  ConsistencyReport report;
  auto violation = [&](std::string msg) { report.violations.push_back(std::move(msg)); };

  // 1. No transaction may be open between API calls, on any thread.
  if (db_->AnyTransactionActive()) {
    violation("a database transaction is open outside any engine operation");
  }

  // 2. The journal must be empty: a pending entry is an interrupted
  //    operation nobody recovered.
  for (const JournalEntry& e : journal_.PendingCopy()) {
    violation(StrFormat("journal entry %llu (%s \"%s\", phase %s) was never completed",
                        static_cast<unsigned long long>(e.journal_id), JournalOpName(e.op),
                        e.spec_name.c_str(), JournalPhaseName(e.phase)));
  }

  // 3. Referential integrity and index health of the database itself.
  if (Status integrity = db_->CheckIntegrity(); !integrity.ok()) {
    violation("database integrity: " + integrity.ToString());
  }

  // 4. Every vault record belongs to an active reversible log entry.
  ASSIGN_OR_RETURN(std::vector<uint64_t> vault_ids, vault_->ListDisguiseIds());
  std::set<uint64_t> vaulted(vault_ids.begin(), vault_ids.end());
  for (uint64_t id : vault_ids) {
    const LogEntry* entry = log_.Find(id);
    if (entry == nullptr) {
      violation(StrFormat("vault holds records for disguise %llu, which the log "
                          "does not know",
                          static_cast<unsigned long long>(id)));
    } else if (!entry->active) {
      violation(StrFormat("vault holds records for disguise %llu, which was "
                          "already revealed",
                          static_cast<unsigned long long>(id)));
    } else if (!entry->reversible) {
      violation(StrFormat("vault holds records for disguise %llu, which the log "
                          "lists as irreversible",
                          static_cast<unsigned long long>(id)));
    }
  }

  // 5. Every active reversible log entry has vault records (the §4.2
  //    guarantee: a reversible disguise can actually be reversed).
  for (const LogEntry& entry : log_.entries()) {
    if (entry.active && entry.reversible && vaulted.count(entry.id) == 0) {
      violation(StrFormat("active reversible disguise %llu (\"%s\") has no vault "
                          "records; it cannot be revealed",
                          static_cast<unsigned long long>(entry.id),
                          entry.spec_name.c_str()));
    }
  }

  // 6. The in-memory log and its database mirror agree.
  if (db_->HasTable(kDisguiseLogTableName)) {
    struct MirrorRow {
      bool reversible;
      bool active;
    };
    std::map<uint64_t, MirrorRow> mirror;
    db_->FindTable(kDisguiseLogTableName)
        ->Scan([&](db::RowId, const db::Row& row) {
          mirror[static_cast<uint64_t>(row[0].AsInt())] =
              MirrorRow{row[4].AsBool(), row[5].AsBool()};
        });
    for (const LogEntry& entry : log_.entries()) {
      auto it = mirror.find(entry.id);
      if (it == mirror.end()) {
        violation(StrFormat("log entry %llu has no mirror row in %s",
                            static_cast<unsigned long long>(entry.id),
                            kDisguiseLogTableName));
        continue;
      }
      if (it->second.active != entry.active || it->second.reversible != entry.reversible) {
        violation(StrFormat("log entry %llu disagrees with its mirror row "
                            "(memory: active=%d reversible=%d, mirror: active=%d "
                            "reversible=%d)",
                            static_cast<unsigned long long>(entry.id), entry.active ? 1 : 0,
                            entry.reversible ? 1 : 0, it->second.active ? 1 : 0,
                            it->second.reversible ? 1 : 0));
      }
      mirror.erase(it);
    }
    for (const auto& [id, row] : mirror) {
      violation(StrFormat("%s row %llu has no in-memory log entry", kDisguiseLogTableName,
                          static_cast<unsigned long long>(id)));
    }
  } else if (!log_.entries().empty()) {
    violation("log has entries but no mirror table exists");
  }

  // 7. Strict mode: the protected-row map names exactly the active
  //    reversible disguises (no stale protection, no unprotected disguise).
  //    Snapshot the ids first: querying the log while holding prot_mu_ would
  //    invert the log-mutex -> db-stripe -> prot_mu_ order the write guard
  //    establishes.
  std::set<uint64_t> protected_ids;
  {
    std::lock_guard<std::mutex> prot_lock(prot_mu_);
    for (const auto& [disguise_id, rows] : protected_by_disguise_) {
      protected_ids.insert(disguise_id);
    }
  }
  for (uint64_t disguise_id : protected_ids) {
    const LogEntry* entry = log_.Find(disguise_id);
    if (entry == nullptr || !entry->active) {
      violation(StrFormat("write protection still installed for %s disguise %llu",
                          entry == nullptr ? "unknown" : "revealed",
                          static_cast<unsigned long long>(disguise_id)));
    }
  }
  if (options_.protect_disguised_data) {
    for (const LogEntry& entry : log_.entries()) {
      if (entry.active && entry.reversible && protected_ids.count(entry.id) == 0) {
        violation(StrFormat("strict mode is on but active reversible disguise %llu has "
                            "no write protection",
                            static_cast<unsigned long long>(entry.id)));
      }
    }
  }

  return report;
}

}  // namespace edna::core
