#include "src/core/batch.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>

#include "src/common/failpoint.h"
#include "src/common/strings.h"

namespace edna::core {

std::string BatchReport::ToString() const {
  return StrFormat(
      "batch: submitted=%zu succeeded=%zu failed=%zu conflict_retries=%zu "
      "queries=%llu wall=%.3fs%s\n",
      submitted, succeeded, failed, conflict_retries,
      static_cast<unsigned long long>(queries), wall_seconds,
      halted ? " HALTED" : "");
}

BatchExecutor::BatchExecutor(DisguiseEngine* engine, BatchOptions options)
    : engine_(engine), options_(options) {
  // The log's mirror table is normally created on demand by the first
  // apply — DDL that would race with the other workers' schema reads.
  // Create it here, while this thread is still the only one touching the
  // engine. AlreadyExists (a prior batch or serial apply made it) is fine.
  Status mirror = engine_->EnsureLogMirror();
  if (!mirror.ok() && mirror.code() != StatusCode::kAlreadyExists) {
    std::fprintf(stderr, "batch: cannot create log mirror table: %s\n",
                 mirror.ToString().c_str());
    std::abort();
  }
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.max_attempts = std::max(1, options_.max_attempts);
  // Single-threaded batches skip the pool entirely: Submit() runs the task
  // inline, so a serial caller pays no queue hand-off or thread wakeup.
  inline_ = options_.num_threads <= 1;
  if (inline_) {
    return;
  }
  int n = options_.num_threads;
  workers_.reserve(static_cast<size_t>(n));
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(workers_[static_cast<size_t>(i)].get()); });
  }
}

BatchExecutor::~BatchExecutor() {
  shutdown_.store(true);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->not_empty.notify_all();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
}

void BatchExecutor::Submit(BatchTask task) { Submit(std::move(task), nullptr); }

void BatchExecutor::Submit(BatchTask task, BatchTaskCallback done) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!timing_started_) {
      timing_started_ = true;
      batch_start_ = std::chrono::steady_clock::now();
    }
    index = submitted_++;
  }
  if (inline_) {
    Execute(Item{std::move(task), index, std::move(done)});
    return;
  }
  // Per-user FIFO: every task of one uid routes to one worker, whose queue
  // preserves submission order. Global tasks all route to worker 0.
  size_t wi = task.uid.is_null()
                  ? 0
                  : std::hash<std::string>{}(task.uid.ToSqlString()) % workers_.size();
  Worker& w = *workers_[wi];
  std::unique_lock<std::mutex> lock(w.mu);
  w.not_full.wait(lock, [&] { return w.queue.size() < options_.queue_capacity; });
  w.queue.push_back(Item{std::move(task), index, std::move(done)});
  w.not_empty.notify_one();
}

std::unique_lock<std::shared_mutex> BatchExecutor::AcquireExclusive() {
  return std::unique_lock<std::shared_mutex>(exec_gate_);
}

void BatchExecutor::RunInline(const BatchTask& task, BatchTaskResult* result) {
  result->task = task;
  result->attempts = 1;
  if (halted_.load()) {
    result->status =
        Aborted("batch halted by a simulated crash; recover, then resubmit");
    return;
  }
  result->status = RunOnce(task, result);
  if (FailPoints::IsSimulatedCrash(result->status)) {
    halted_.store(true);
  }
}

BatchReport BatchExecutor::Drain() {
  std::unique_lock<std::mutex> lock(state_mu_);
  all_done_.wait(lock, [&] { return completed_ == submitted_; });

  BatchReport report;
  report.submitted = submitted_;
  report.conflict_retries = conflict_retries_;
  report.halted = halted_.load();
  report.results = std::move(results_);
  std::sort(report.results.begin(), report.results.end(),
            [](const BatchTaskResult& a, const BatchTaskResult& b) {
              return a.index < b.index;
            });
  for (const BatchTaskResult& r : report.results) {
    if (r.status.ok()) {
      ++report.succeeded;
      report.queries += r.queries;
    } else {
      ++report.failed;
    }
  }
  if (timing_started_) {
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - batch_start_)
            .count();
  }
  if (options_.drain_flush) {
    // One group-durability point for the whole batch (options docs). Skipped
    // when a crash halted the batch: frozen state must stay frozen.
    if (!report.halted) {
      report.flush_status = options_.drain_flush();
    }
  }

  // Reset for the next batch. A halted executor stays usable after the
  // caller runs Recover() on the engine.
  submitted_ = 0;
  completed_ = 0;
  conflict_retries_ = 0;
  results_.clear();
  timing_started_ = false;
  halted_.store(false);
  return report;
}

void BatchExecutor::WorkerLoop(Worker* worker) {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->not_empty.wait(
          lock, [&] { return shutdown_.load() || !worker->queue.empty(); });
      if (worker->queue.empty()) {
        return;  // shutdown with nothing left to do
      }
      item = std::move(worker->queue.front());
      worker->queue.pop_front();
      worker->not_full.notify_one();
    }
    Execute(std::move(item));
  }
}

Status BatchExecutor::RunOnce(const BatchTask& task, BatchTaskResult* result) {
  switch (task.kind) {
    case BatchTask::Kind::kApply: {
      StatusOr<ApplyResult> applied =
          task.uid.is_null() ? engine_->Apply(task.spec_name, {})
                             : engine_->ApplyForUser(task.spec_name, task.uid);
      if (!applied.ok()) {
        return applied.status();
      }
      result->disguise_id = applied->disguise_id;
      result->queries = applied->queries;
      result->rows_touched = applied->rows_removed + applied->rows_modified +
                             applied->rows_decorrelated + applied->placeholders_created;
      return OkStatus();
    }
    case BatchTask::Kind::kReveal: {
      uint64_t id = task.disguise_id;
      if (id == 0) {
        std::optional<LogEntry> entry =
            engine_->log().LatestActiveFor(task.spec_name, task.uid);
        if (!entry.has_value()) {
          return NotFound("no active disguise \"" + task.spec_name + "\" for " +
                          task.uid.ToSqlString());
        }
        id = entry->id;
      }
      StatusOr<RevealResult> revealed = engine_->Reveal(id);
      if (!revealed.ok()) {
        return revealed.status();
      }
      result->disguise_id = id;
      result->queries = revealed->queries;
      result->rows_touched = revealed->rows_restored + revealed->columns_restored +
                             revealed->placeholders_dropped;
      return OkStatus();
    }
  }
  return Internal("unknown batch task kind");
}

void BatchExecutor::Execute(Item item) {
  BatchTaskResult result;
  result.index = item.index;
  result.task = item.task;
  size_t retries = 0;

  if (halted_.load()) {
    result.status = Aborted("batch halted by a simulated crash; recover, then resubmit");
  } else {
    const bool global = item.task.uid.is_null();
    for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
      result.attempts = attempt;
      Status status;
      if (global) {
        std::unique_lock<std::shared_mutex> gate(exec_gate_);
        status = RunOnce(item.task, &result);
      } else {
        std::shared_lock<std::shared_mutex> gate(exec_gate_);
        status = RunOnce(item.task, &result);
      }
      result.status = status;
      if (status.ok()) {
        break;
      }
      if (FailPoints::IsSimulatedCrash(status)) {
        // Process death: freeze the whole batch. Nothing may compensate; the
        // caller repairs with DisguiseEngine::Recover().
        halted_.store(true);
        break;
      }
      if (status.code() != StatusCode::kAborted || halted_.load() ||
          attempt == options_.max_attempts) {
        break;  // permanent failure, or out of retry budget
      }
      // First-writer-wins conflict: back off (capped exponential) and retry.
      // Deterministic rng mode reuses the attempt's seed, so the retried
      // operation produces the same disguise it would have the first time.
      ++retries;
      int64_t delay_us = static_cast<int64_t>(options_.backoff_base_us)
                         << std::min(attempt - 1, 20);
      delay_us = std::min<int64_t>(delay_us, options_.backoff_max_us);
      if (delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
    }
  }

  // Callback tasks deliver their result directly (outside state_mu_: the
  // callback may block on a waiting client) and are not accumulated — a
  // daemon submitting forever must not grow results_ without bound.
  if (item.done) {
    item.done(result);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!item.done) {
    results_.push_back(std::move(result));
  }
  conflict_retries_ += retries;
  ++completed_;
  if (completed_ == submitted_) {
    all_done_.notify_all();
  }
}

}  // namespace edna::core
