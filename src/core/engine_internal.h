// Implementation-shared state for the DisguiseEngine translation units.
// Not part of the public API.
#ifndef SRC_CORE_ENGINE_INTERNAL_H_
#define SRC_CORE_ENGINE_INTERNAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/vault/reveal_record.h"

namespace edna::core {

// Working state of one Apply() invocation.
struct DisguiseEngine::ApplyContext {
  const disguise::DisguiseSpec* spec = nullptr;
  sql::ParamMap params;
  sql::Value uid;  // Null for global disguises
  Rng rng{0};      // this operation's private random stream (see OpRng)

  ApplyResult result;
  vault::RevealRecord record;  // accumulated reveal function (if reversible)

  // Composition: rows temporarily recorrelated from prior disguises.
  struct Recorrelated {
    std::string table;
    db::RowId row_id = db::kInvalidRowId;
    std::string column;
    sql::Value placeholder_value;  // value the prior disguise had written
  };
  std::vector<Recorrelated> recorrelated;

  // Pending batched writes (flushed per transformation when batching is on).
  std::map<std::string, std::vector<db::Database::BatchUpdate>> pending_batches;
};

// One transformation of a later active disguise, used by Reveal to filter
// revealed data (§4.2).
// Deep copies (params, spec_name) rather than pointers into log entries:
// a concurrent Append can reallocate the log's entry storage while a reveal
// filters against this snapshot. `transform` stays a pointer — it points into
// a registered spec, which is frozen once operations start.
struct DisguiseEngine::InterimTransform {
  uint64_t disguise_id = 0;
  std::string table;
  const disguise::Transformation* transform = nullptr;
  sql::ParamMap params;
  std::string spec_name;
};

// RAII scope marking engine-internal mutations as exempt from the
// disguised-data write guard. Depth is tracked per (engine, thread): a batch
// worker inside Apply() is exempt, but a concurrent application write on
// another thread still trips the guard.
class DisguiseEngine::EngineOpScope {
 public:
  explicit EngineOpScope(DisguiseEngine* engine) : engine_(engine) {
    engine_->EnterEngineOp();
  }
  ~EngineOpScope() { engine_->ExitEngineOp(); }

 private:
  DisguiseEngine* engine_;
};

// `"col" = <literal>` predicate built programmatically.
sql::ExprPtr MakeEqExpr(const std::string& column, const sql::Value& value);

// Folds a secondary (compensation) failure into `primary`'s message, so
// double-fault situations reach the caller instead of being discarded.
Status FoldStatus(Status primary, const Status& secondary, const char* what);

}  // namespace edna::core

#endif  // SRC_CORE_ENGINE_INTERNAL_H_
