// Implementation-shared state for the DisguiseEngine translation units.
// Not part of the public API.
#ifndef SRC_CORE_ENGINE_INTERNAL_H_
#define SRC_CORE_ENGINE_INTERNAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/vault/reveal_record.h"

namespace edna::core {

// Working state of one Apply() invocation.
struct DisguiseEngine::ApplyContext {
  const disguise::DisguiseSpec* spec = nullptr;
  sql::ParamMap params;
  sql::Value uid;  // Null for global disguises

  ApplyResult result;
  vault::RevealRecord record;  // accumulated reveal function (if reversible)

  // Composition: rows temporarily recorrelated from prior disguises.
  struct Recorrelated {
    std::string table;
    db::RowId row_id = db::kInvalidRowId;
    std::string column;
    sql::Value placeholder_value;  // value the prior disguise had written
  };
  std::vector<Recorrelated> recorrelated;

  // Pending batched writes (flushed per transformation when batching is on).
  std::map<std::string, std::vector<db::Database::BatchUpdate>> pending_batches;
};

// One transformation of a later active disguise, used by Reveal to filter
// revealed data (§4.2).
struct DisguiseEngine::InterimTransform {
  uint64_t disguise_id = 0;
  std::string table;
  const disguise::Transformation* transform = nullptr;
  const sql::ParamMap* params = nullptr;
};

// RAII scope marking engine-internal mutations as exempt from the
// disguised-data write guard.
class DisguiseEngine::EngineOpScope {
 public:
  explicit EngineOpScope(DisguiseEngine* engine) : engine_(engine) {
    ++engine_->engine_ops_depth_;
  }
  ~EngineOpScope() { --engine_->engine_ops_depth_; }

 private:
  DisguiseEngine* engine_;
};

// `"col" = <literal>` predicate built programmatically.
sql::ExprPtr MakeEqExpr(const std::string& column, const sql::Value& value);

// Folds a secondary (compensation) failure into `primary`'s message, so
// double-fault situations reach the caller instead of being discarded.
Status FoldStatus(Status primary, const Status& secondary, const char* what);

}  // namespace edna::core

#endif  // SRC_CORE_ENGINE_INTERNAL_H_
