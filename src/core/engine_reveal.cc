// DisguiseEngine::Reveal: permanent reversal of a disguise (§4.2), filtering
// all revealed data through disguises applied in the interim so that reversal
// never reintroduces data a later active disguise hides. ("Reversal of GDPR
// must avoid reintroducing identifiable reviews if ConfAnon has occurred
// since GDPR was applied.")
#include <algorithm>
#include <utility>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/engine_internal.h"

namespace edna::core {

using disguise::DisguiseSpec;
using disguise::TransformKind;
using disguise::Transformation;
using vault::RevealOp;
using vault::RevealRecord;

std::vector<DisguiseEngine::InterimTransform> DisguiseEngine::CollectInterimTransforms(
    uint64_t disguise_id) const {
  // Snapshot semantics: ActiveAfterCopy pins the set of interim disguises at
  // this instant; params/spec names are copied because a concurrent Append
  // may reallocate the log's storage. The transform pointers stay valid —
  // they point into registered specs, which are frozen before operations run.
  std::vector<InterimTransform> out;
  for (const LogEntry& entry : log_.ActiveAfterCopy(disguise_id)) {
    const DisguiseSpec* spec = FindSpec(entry.spec_name);
    if (spec == nullptr) {
      EDNA_LOG(kWarning) << "log references unregistered spec \"" << entry.spec_name
                         << "\"; its transformations cannot be re-applied";
      continue;
    }
    for (const disguise::TableDisguise& td : spec->tables()) {
      for (const Transformation& tr : td.transformations) {
        out.push_back(InterimTransform{entry.id, td.table, &tr, entry.params,
                                       entry.spec_name});
      }
    }
  }
  return out;
}

namespace {

// Evaluates an interim transformation's predicate against a hypothetical
// (restored) row image.
StatusOr<bool> PredicateMatches(const Transformation& tr, const db::TableSchema& schema,
                                const db::Row& row, const sql::ParamMap& params) {
  sql::ColumnResolver resolver = db::MakeRowResolver(schema, row);
  return sql::EvaluatePredicate(*tr.predicate(), resolver, params);
}

}  // namespace

StatusOr<RevealResult> DisguiseEngine::Reveal(uint64_t disguise_id) {
  std::optional<LogEntry> entry = log_.FindCopy(disguise_id);
  if (!entry.has_value()) {
    return NotFound("no disguise with id " + std::to_string(disguise_id));
  }
  if (!entry->active) {
    return FailedPrecondition("disguise " + std::to_string(disguise_id) +
                              " was already revealed");
  }
  ASSIGN_OR_RETURN(std::vector<RevealRecord> records, vault_->FetchForDisguise(disguise_id));
  if (records.empty()) {
    return FailedPrecondition(
        "no reveal records for disguise " + std::to_string(disguise_id) +
        " (vault entry expired or inaccessible); the disguise is irreversible");
  }

  std::vector<InterimTransform> interim = CollectInterimTransforms(disguise_id);

  RevealResult result;
  result.disguise_id = disguise_id;
  Rng op_rng = OpRng('R', entry->spec_name, entry->user_id);
  uint64_t queries_before = db::Database::ThreadStatements();

  // Engine-internal mutations are exempt from the strict-mode write guard.
  EngineOpScope engine_scope(this);

  // Crash consistency (recovery.h): journal the intent before touching any
  // store. For reveals the commit point is the database transaction; the
  // log/vault bookkeeping after it rolls FORWARD on recovery, everything
  // before it rolls BACK.
  uint64_t journal_id = journal_.Begin(JournalOp::kReveal, entry->spec_name,
                                       entry->params, entry->user_id, disguise_id,
                                       clock_->Now());
  Status journaled = PersistJournalDelta(journal_.EncodeBegin(journal_id));
  if (!journaled.ok()) {
    if (!FailPoints::IsSimulatedCrash(journaled)) {
      journal_.Complete(journal_id);  // intent never durable; nothing mutated
    }
    return journaled;
  }

  Status begun = db_->Begin();
  if (!begun.ok()) {
    if (!FailPoints::IsSimulatedCrash(begun)) {
      // Nothing mutated; clean abort (a pending intent left on disk is
      // harmless — Recover() rolls a kIntent reveal back without repairs).
      Status retired = RetireJournalEntry(journal_id);
      if (FailPoints::IsSimulatedCrash(retired)) {
        return retired;
      }
      begun = FoldStatus(std::move(begun), retired, "journal retire");
    }
    return begun;
  }
  Status status = [&]() -> Status {
    // Records in reverse store order, ops in reverse apply order: the exact
    // inverse of the original application.
    for (auto rec_it = records.rbegin(); rec_it != records.rend(); ++rec_it) {
      const RevealRecord& rec = *rec_it;
      for (auto op_it = rec.ops.rbegin(); op_it != rec.ops.rend(); ++op_it) {
        const RevealOp& op = *op_it;
        const db::TableSchema* schema = db_->schema().FindTable(op.table);
        if (schema == nullptr) {
          return Internal("reveal record references missing table \"" + op.table + "\"");
        }
        switch (op.kind) {
          case RevealOp::Kind::kRestoreColumn: {
            if (!db_->RowExists(op.table, op.row_id)) {
              ++result.rows_suppressed;  // row removed since; nothing to restore
              break;
            }
            auto current_or = db_->GetColumn(op.table, op.row_id, op.column);
            if (!current_or.ok()) {
              return RaceToAborted(current_or.status());
            }
            sql::Value current = *std::move(current_or);
            if (!current.SqlEquals(op.new_value) ||
                current.is_null() != op.new_value.is_null()) {
              // A later disguise (or the application) rewrote this value; it
              // owns the cell now. Restoring would clobber its state.
              ++result.rows_suppressed;
              break;
            }
            // Build the hypothetical restored row and filter it through
            // interim transformations.
            auto candidate_row_or = db_->GetRow(op.table, op.row_id);
            if (!candidate_row_or.ok()) {
              return RaceToAborted(candidate_row_or.status());
            }
            db::Row candidate_row = *std::move(candidate_row_or);
            int col_idx = schema->ColumnIndex(op.column);
            candidate_row[static_cast<size_t>(col_idx)] = op.old_value;
            sql::Value candidate = op.old_value;
            bool suppress = false;
            for (const InterimTransform& it : interim) {
              if (it.table != op.table) {
                continue;
              }
              ASSIGN_OR_RETURN(bool match, PredicateMatches(*it.transform, *schema,
                                                            candidate_row, it.params));
              if (!match) {
                continue;
              }
              switch (it.transform->kind()) {
                case TransformKind::kRemove:
                  // A later disguise removes rows like the restored one;
                  // keep the current (disguised) value rather than reveal.
                  suppress = true;
                  break;
                case TransformKind::kModify:
                  if (it.transform->column() == op.column) {
                    disguise::GenContext gen_ctx;
                    gen_ctx.rng = &op_rng;
                    gen_ctx.original = &candidate;
                    gen_ctx.row = db::MakeRowResolver(*schema, candidate_row);
                    gen_ctx.params = &it.params;
                    ASSIGN_OR_RETURN(sql::Value next,
                                     it.transform->generator().Generate(gen_ctx));
                    candidate = next;
                    candidate_row[static_cast<size_t>(col_idx)] = next;
                    ++result.values_redisguised;
                  }
                  break;
                case TransformKind::kDecorrelate:
                  if (it.transform->foreign_key().column == op.column) {
                    // The later disguise wants this reference decorrelated;
                    // the current value already points at a placeholder.
                    suppress = true;
                    ++result.values_redisguised;
                  }
                  break;
              }
              if (suppress) {
                break;
              }
            }
            // If the restored value is a reference whose target has since
            // been removed (by a later disguise or the application), the
            // reveal must not resurrect the link.
            if (!suppress && !candidate.is_null()) {
              if (const db::ForeignKeyDef* fk = schema->FindForeignKey(op.column);
                  fk != nullptr) {
                db::PkKey key;
                key.values.push_back(candidate);
                if (!db_->LookupPk(fk->parent_table, key).ok()) {
                  suppress = true;
                }
              }
            }
            if (suppress) {
              ++result.rows_suppressed;
              break;
            }
            RETURN_IF_ERROR(RaceToAborted(
                db_->SetColumn(op.table, op.row_id, op.column, candidate)));
            ++result.columns_restored;
            break;
          }
          case RevealOp::Kind::kRestoreRow: {
            if (db_->RowExists(op.table, op.row_id)) {
              break;  // already present (should not happen)
            }
            db::Row candidate = op.row;
            // Schema evolution (§7): the record may predate columns appended
            // via AddColumnToTable. Pad with their declared defaults so
            // pre-evolution disguises stay reversible.
            while (candidate.size() < schema->num_columns()) {
              const db::ColumnDef& added = schema->columns()[candidate.size()];
              candidate.push_back(added.default_value.has_value() ? *added.default_value
                                                                  : sql::Value::Null());
            }
            if (candidate.size() > schema->num_columns()) {
              return FailedPrecondition(
                  "reveal record for \"" + op.table +
                  "\" is wider than the current schema; column drops are not supported");
            }
            bool suppress = false;
            for (const InterimTransform& it : interim) {
              if (it.table != op.table) {
                continue;
              }
              ASSIGN_OR_RETURN(bool match, PredicateMatches(*it.transform, *schema,
                                                            candidate, it.params));
              if (!match) {
                continue;
              }
              switch (it.transform->kind()) {
                case TransformKind::kRemove:
                  suppress = true;  // stays deleted: later disguise removes it
                  break;
                case TransformKind::kModify: {
                  int col_idx = schema->ColumnIndex(it.transform->column());
                  sql::Value original = candidate[static_cast<size_t>(col_idx)];
                  disguise::GenContext gen_ctx;
                  gen_ctx.rng = &op_rng;
                  gen_ctx.original = &original;
                  gen_ctx.row = db::MakeRowResolver(*schema, candidate);
                  gen_ctx.params = &it.params;
                  ASSIGN_OR_RETURN(sql::Value next,
                                   it.transform->generator().Generate(gen_ctx));
                  candidate[static_cast<size_t>(col_idx)] = next;
                  ++result.values_redisguised;
                  break;
                }
                case TransformKind::kDecorrelate: {
                  // Point the restored row's FK at a fresh placeholder made
                  // from the *later* disguise's recipe.
                  const DisguiseSpec* later = FindSpec(it.spec_name);
                  const disguise::TableDisguise* parent_td =
                      later->FindTable(it.transform->foreign_key().parent_table);
                  if (parent_td == nullptr || parent_td->placeholder.empty()) {
                    return Internal("interim decorrelate lacks placeholder recipe");
                  }
                  std::map<std::string, sql::Value> values;
                  disguise::GenContext gen_ctx;
                  gen_ctx.rng = &op_rng;
                  gen_ctx.params = &it.params;
                  for (const disguise::PlaceholderColumn& pc : parent_td->placeholder) {
                    ASSIGN_OR_RETURN(sql::Value v, pc.generator.Generate(gen_ctx));
                    values.emplace(pc.column, std::move(v));
                  }
                  const std::string& parent = it.transform->foreign_key().parent_table;
                  ASSIGN_OR_RETURN(db::RowId pid,
                                   InsertPlaceholderRow(parent, std::move(values), &op_rng));
                  const db::TableSchema* pts = db_->schema().FindTable(parent);
                  ASSIGN_OR_RETURN(sql::Value ppk,
                                   db_->GetColumn(parent, pid, pts->primary_key()[0]));
                  int col_idx =
                      schema->ColumnIndex(it.transform->foreign_key().column);
                  candidate[static_cast<size_t>(col_idx)] = ppk;
                  ++result.values_redisguised;
                  break;
                }
              }
              if (suppress) {
                break;
              }
            }
            // Re-apply FK delete actions to the revealed row: referenced
            // rows may have been removed since this row was vaulted (e.g. a
            // later GDPR deleted the account this log entry points at). A
            // SET NULL reference is nulled, exactly as the later delete
            // would have done; a RESTRICT/CASCADE reference whose parent is
            // gone means the row itself would not have survived — suppress.
            if (!suppress) {
              for (const db::ForeignKeyDef& fk : schema->foreign_keys()) {
                int fk_idx = schema->ColumnIndex(fk.column);
                sql::Value& ref = candidate[static_cast<size_t>(fk_idx)];
                if (ref.is_null()) {
                  continue;
                }
                db::PkKey key;
                key.values.push_back(ref);
                if (db_->LookupPk(fk.parent_table, key).ok()) {
                  continue;
                }
                if (fk.on_delete == db::FkAction::kSetNull) {
                  ref = sql::Value::Null();
                  ++result.values_redisguised;
                } else {
                  suppress = true;
                  break;
                }
              }
            }
            if (suppress) {
              ++result.rows_suppressed;
              break;
            }
            RETURN_IF_ERROR(RaceToAborted(db_->RestoreRow(op.table, op.row_id, candidate)));
            ++result.rows_restored;
            break;
          }
          case RevealOp::Kind::kDropPlaceholder: {
            if (!db_->RowExists(op.table, op.row_id)) {
              break;
            }
            Status dropped = db_->DeleteRow(op.table, op.row_id);
            if (dropped.ok()) {
              ++result.placeholders_dropped;
            } else if (dropped.code() == StatusCode::kIntegrityViolation) {
              // Something still references the placeholder (e.g. a later
              // disguise reused it, or the restore above was suppressed).
              // Keeping an orphan placeholder is harmless; removing it would
              // break integrity.
              EDNA_DLOG << "keeping referenced placeholder " << op.table << "/"
                        << op.row_id;
            } else {
              return dropped;
            }
            break;
          }
        }
      }
    }
    return OkStatus();
  }();
  if (status.ok()) {
    status = FailPoints::Instance().Check(failpoints::kRevealBeforeCommit);
  }
  if (!status.ok()) {
    if (FailPoints::IsSimulatedCrash(status)) {
      return status;  // journal stays pending; Recover() rolls the reveal back
    }
    Status rb = db_->Rollback();
    if (!rb.ok()) {
      EDNA_LOG(kError) << "rollback after failed reveal also failed: " << rb;
      status = FoldStatus(std::move(status), rb, "rollback");
    }
    Status retired = RetireJournalEntry(journal_id);
    if (FailPoints::IsSimulatedCrash(retired)) {
      return retired;
    }
    status = FoldStatus(std::move(status), retired, "journal retire");
    return status;
  }

  // Commit the database restoration FIRST. The old order (log/vault
  // bookkeeping before commit) let a refused commit strand vault mutations
  // that the rollback could not undo for external vaults. With commit first,
  // any post-commit failure leaves the journal entry pending at kCommitted
  // and Recover() rolls the bookkeeping forward.
  // The kCommitted advance rides inside the commit's WAL record so the phase
  // marker and the restore become durable atomically.
  StageCommittedAdvance(journal_id);
  Status committed = db_->Commit();
  if (!committed.ok()) {
    if (FailPoints::IsSimulatedCrash(committed)) {
      return committed;
    }
    Status rb = db_->Rollback();
    if (!rb.ok()) {
      EDNA_LOG(kError) << "rollback after failed reveal commit also failed: " << rb;
      committed = FoldStatus(std::move(committed), rb, "rollback");
    }
    Status retired = RetireJournalEntry(journal_id);
    if (FailPoints::IsSimulatedCrash(retired)) {
      return retired;
    }
    committed = FoldStatus(std::move(committed), retired, "journal retire");
    return committed;
  }
  journal_.Advance(journal_id, JournalPhase::kCommitted);

  {
    Status post = FailPoints::Instance().Check(failpoints::kRevealAfterCommit);
    if (!post.ok()) {
      return post;  // pending at kCommitted; Recover() finishes the bookkeeping
    }
  }
  Status marked = log_.MarkRevealed(disguise_id);
  if (!marked.ok()) {
    EDNA_LOG(kError) << "reveal committed but marking the log entry failed: "
                     << marked;
    return marked;  // journal pending; Recover() retries the bookkeeping
  }
  Status removed = vault_->Remove(disguise_id);
  if (!removed.ok()) {
    EDNA_LOG(kError) << "reveal committed but dropping vault records failed: "
                     << removed;
    return removed;  // journal pending; Recover() retries the bookkeeping
  }
  UnprotectRows(disguise_id);
  {
    Status retired = RetireJournalEntry(journal_id);
    if (!retired.ok()) {
      // Restore and bookkeeping are durable; pending at kCommitted, so
      // Recover() re-runs the (idempotent) bookkeeping and retires it.
      EDNA_LOG(kError) << "reveal finished but retiring journal entry failed: " << retired;
      return retired;
    }
  }
  CommitOpSeq('R', entry->spec_name, entry->user_id);
  result.queries = db::Database::ThreadStatements() - queries_before;
  return result;
}

}  // namespace edna::core
