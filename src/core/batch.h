// BatchExecutor: parallel application/reversal of many independent disguise
// invocations (HotCRP-style mass deletion, GDPR backlogs) over one engine.
//
// Execution model:
//  * A fixed pool of worker threads, each with its own bounded FIFO queue.
//    Submit() routes a task by hash of its user id, so all tasks of one user
//    land on one worker and run in submission order — preserving the per-user
//    apply/reveal composition ordering of §5 without any global serialization.
//    Submit() blocks while the target queue is full (backpressure).
//  * Tasks of DIFFERENT users run concurrently; the thread-safe Database
//    detects write-write conflicts (first-writer-wins) and aborts the loser
//    with kAborted. The executor retries aborted tasks with capped
//    exponential backoff, up to BatchOptions::max_attempts.
//  * Global disguises (null uid) take the executor's shared/exclusive gate
//    exclusively: they touch every user's rows, so running them alongside
//    per-user tasks would mostly generate conflict livelock.
//  * A simulated crash (fail-point) anywhere halts the whole batch — state
//    freezes exactly as a process death would leave it. Remaining tasks
//    complete with kAborted; run DisguiseEngine::Recover() before the
//    next batch.
//
// Drain() waits for everything submitted so far and returns an aggregated
// BatchReport; the executor is reusable afterwards.
#ifndef SRC_CORE_BATCH_H_
#define SRC_CORE_BATCH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/core/engine.h"
#include "src/sql/value.h"

namespace edna::core {

struct BatchTask {
  enum class Kind { kApply, kReveal };
  Kind kind = Kind::kApply;
  std::string spec_name;
  sql::Value uid = sql::Value::Null();  // Null = global disguise
  // Reveal only: 0 means "the latest active disguise of (spec_name, uid)",
  // resolved at execution time — batch scripts cannot know ids assigned
  // concurrently.
  uint64_t disguise_id = 0;

  static BatchTask Apply(std::string spec_name, sql::Value uid) {
    return {Kind::kApply, std::move(spec_name), std::move(uid), 0};
  }
  static BatchTask Reveal(std::string spec_name, sql::Value uid, uint64_t disguise_id = 0) {
    return {Kind::kReveal, std::move(spec_name), std::move(uid), disguise_id};
  }
};

struct BatchTaskResult {
  size_t index = 0;  // submission order
  BatchTask task;
  Status status = OkStatus();
  uint64_t disguise_id = 0;  // id applied or revealed (when known)
  int attempts = 0;          // 1 = no conflict retries
  uint64_t queries = 0;      // statements issued by the final attempt
  // Rows the final attempt touched: removed+modified+decorrelated+
  // placeholders for an apply, restored rows+columns+dropped placeholders
  // for a reveal. The service wire protocol reports this per request.
  uint64_t rows_touched = 0;
};

// Per-task completion hook (the Submit overload below). Runs on the worker
// thread that finished the task — keep it cheap and never call back into
// the executor from inside it.
using BatchTaskCallback = std::function<void(const BatchTaskResult&)>;

struct BatchOptions {
  // <= 1 selects the inline fast path: Submit() executes the task on the
  // calling thread — no workers, queues, or wakeups. Semantics (FIFO per
  // batch, retries, crash halt, Drain report) are identical.
  int num_threads = 4;
  size_t queue_capacity = 64;  // per worker; Submit blocks when full
  int max_attempts = 5;        // total tries for a task aborted by conflicts
  int backoff_base_us = 50;    // first retry delay; doubles per attempt
  int backoff_max_us = 5000;
  // Called once at the end of Drain(), after every task completed — e.g.
  // DurableEngine::Flush, so a batch run under WalOptions::SyncMode::kNone
  // becomes fsync-durable in one final group instead of per commit. Its
  // result lands in BatchReport::flush_status.
  std::function<Status()> drain_flush;
};

struct BatchReport {
  size_t submitted = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  size_t conflict_retries = 0;  // extra attempts caused by kAborted
  uint64_t queries = 0;         // statements across all successful attempts
  double wall_seconds = 0;      // first Submit to last completion
  bool halted = false;          // a simulated crash froze the batch
  Status flush_status = OkStatus();      // BatchOptions::drain_flush outcome
  std::vector<BatchTaskResult> results;  // in submission order

  std::string ToString() const;
};

class BatchExecutor {
 public:
  // `engine` must outlive the executor and have all specs registered before
  // the first Submit (spec registration is not thread-safe).
  explicit BatchExecutor(DisguiseEngine* engine, BatchOptions options = {});
  ~BatchExecutor();  // finishes queued work and joins the pool

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  // Enqueues a task on its user's worker; blocks while that queue is full.
  void Submit(BatchTask task);

  // Service variant: the result is delivered through `done` (on the worker
  // thread) instead of being accumulated for Drain(). Counters (submitted,
  // completed, conflict retries) still aggregate, so a long-running daemon
  // does not grow an unbounded results vector.
  void Submit(BatchTask task, BatchTaskCallback done);

  // Blocks until every task submitted so far completed, then returns the
  // aggregated report and resets the executor for the next batch.
  BatchReport Drain();

  // --- Two-phase barrier surface (src/server/shard.h) ------------------------
  // Phase one of a cross-shard global disguise: blocks until every in-flight
  // task on this executor has finished and returns the held exclusive gate.
  // Queued and newly submitted per-user tasks stall behind it until the
  // lease is released. The coordinator acquires every shard's gate (in shard
  // order, so two concurrent globals cannot deadlock) before phase two runs
  // any engine work.
  std::unique_lock<std::shared_mutex> AcquireExclusive();

  // Runs one task on the calling thread with no queueing, gate, or retries —
  // phase two of the barrier, where the coordinator already holds every
  // gate exclusively and conflicts are impossible.
  void RunInline(const BatchTask& task, BatchTaskResult* result);

  // True once a simulated crash froze this executor; tasks complete with
  // kAborted until the engine is recovered.
  bool halted() const { return halted_.load(); }

 private:
  struct Item {
    BatchTask task;
    size_t index = 0;
    BatchTaskCallback done;  // non-null: deliver result here, skip results_
  };
  struct Worker {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Item> queue;
  };

  void WorkerLoop(Worker* worker);
  void Execute(Item item);
  // One engine call; no retry logic. Fills disguise_id/queries on success.
  Status RunOnce(const BatchTask& task, BatchTaskResult* result);

  DisguiseEngine* engine_;
  BatchOptions options_;
  bool inline_ = false;  // num_threads <= 1: run tasks on the Submit thread

  // Per-user tasks hold this shared; global tasks hold it exclusively.
  std::shared_mutex exec_gate_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex state_mu_;
  std::condition_variable all_done_;
  size_t submitted_ = 0;   // under state_mu_
  size_t completed_ = 0;   // under state_mu_
  size_t conflict_retries_ = 0;
  std::vector<BatchTaskResult> results_;
  std::chrono::steady_clock::time_point batch_start_;
  bool timing_started_ = false;

  std::atomic<bool> halted_{false};
  std::atomic<bool> shutdown_{false};
};

}  // namespace edna::core

#endif  // SRC_CORE_BATCH_H_
