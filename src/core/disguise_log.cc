#include "src/core/disguise_log.h"

#include <algorithm>

#include "src/common/failpoint.h"
#include "src/sql/parser.h"

namespace edna::core {

namespace {

db::TableSchema LogSchema() {
  db::TableSchema t(kDisguiseLogTableName);
  t.AddColumn({.name = "id", .type = db::ColumnType::kInt, .nullable = false})
      .AddColumn({.name = "specName", .type = db::ColumnType::kString, .nullable = false})
      .AddColumn({.name = "userId", .type = db::ColumnType::kString, .nullable = true})
      .AddColumn({.name = "appliedAt", .type = db::ColumnType::kInt, .nullable = false})
      .AddColumn({.name = "reversible", .type = db::ColumnType::kBool, .nullable = false})
      .AddColumn({.name = "active", .type = db::ColumnType::kBool, .nullable = false})
      .SetPrimaryKey({"id"});
  return t;
}

}  // namespace

DisguiseLog::DisguiseLog(db::Database* db) : db_(db) {}

Status DisguiseLog::MirrorAppend(const LogEntry& e) {
  if (db_ == nullptr) {
    return OkStatus();
  }
  if (!db_->HasTable(kDisguiseLogTableName)) {
    RETURN_IF_ERROR(db_->CreateTable(LogSchema()));
  }
  db::Row row;
  row.push_back(sql::Value::Int(static_cast<int64_t>(e.id)));
  row.push_back(sql::Value::String(e.spec_name));
  row.push_back(e.user_id.is_null() ? sql::Value::Null()
                                    : sql::Value::String(e.user_id.ToSqlString()));
  row.push_back(sql::Value::Int(e.applied_at));
  row.push_back(sql::Value::Bool(e.reversible));
  row.push_back(sql::Value::Bool(e.active));
  return db_->Insert(kDisguiseLogTableName, std::move(row)).status();
}

Status DisguiseLog::MirrorMarkRevealed(uint64_t id) {
  if (db_ == nullptr || !db_->HasTable(kDisguiseLogTableName)) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression("\"id\" = $ID"));
  sql::ParamMap params;
  params.emplace("ID", sql::Value::Int(static_cast<int64_t>(id)));
  std::vector<db::Assignment> assigns;
  assigns.push_back({.column = "active",
                     .expr = sql::Expr::Literal(sql::Value::Bool(false))});
  return db_->Update(kDisguiseLogTableName, pred.get(), params, assigns).status();
}

StatusOr<uint64_t> DisguiseLog::Append(std::string spec_name, sql::ParamMap params,
                                       sql::Value user_id, TimePoint applied_at,
                                       bool reversible) {
  EDNA_FAIL_POINT(failpoints::kLogAppend);
  // Held across the mirror write: id assignment, in-memory order, and DB
  // mirror order stay mutually consistent under concurrent appends.
  std::lock_guard<std::mutex> lock(mu_);
  LogEntry e;
  e.id = next_id_++;
  e.spec_name = std::move(spec_name);
  e.params = std::move(params);
  e.user_id = std::move(user_id);
  e.applied_at = applied_at;
  e.reversible = reversible;
  e.active = true;
  RETURN_IF_ERROR(MirrorAppend(e));
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

Status DisguiseLog::MarkRevealed(uint64_t id) {
  EDNA_FAIL_POINT(failpoints::kLogMarkRevealed);
  std::lock_guard<std::mutex> lock(mu_);
  for (LogEntry& e : entries_) {
    if (e.id == id) {
      if (!e.active) {
        return FailedPrecondition("disguise already revealed");
      }
      e.active = false;
      return MirrorMarkRevealed(id);
    }
  }
  return NotFound("no disguise log entry with id " + std::to_string(id));
}

Status DisguiseLog::Unappend(uint64_t id) {
  EDNA_FAIL_POINT(failpoints::kLogUnappend);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty() || entries_.back().id != id) {
    return FailedPrecondition("Unappend: id is not the most recent entry");
  }
  entries_.pop_back();
  next_id_ = id;
  return OkStatus();
}

Status DisguiseLog::DropEntry(uint64_t id) {
  EDNA_FAIL_POINT(failpoints::kLogUnappend);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const LogEntry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return NotFound("no disguise log entry with id " + std::to_string(id));
  }
  bool was_last = &*it == &entries_.back();
  entries_.erase(it);
  if (was_last) {
    next_id_ = id;  // keep ids dense for the common unwind-the-tail case
  }
  if (db_ != nullptr && db_->HasTable(kDisguiseLogTableName)) {
    ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression("\"id\" = $ID"));
    sql::ParamMap params;
    params.emplace("ID", sql::Value::Int(static_cast<int64_t>(id)));
    RETURN_IF_ERROR(db_->Delete(kDisguiseLogTableName, pred.get(), params).status());
  }
  return OkStatus();
}

Status DisguiseLog::MarkIrreversible(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const LogEntry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return NotFound("no disguise log entry with id " + std::to_string(id));
  }
  it->reversible = false;
  if (db_ == nullptr || !db_->HasTable(kDisguiseLogTableName)) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression("\"id\" = $ID"));
  sql::ParamMap params;
  params.emplace("ID", sql::Value::Int(static_cast<int64_t>(id)));
  std::vector<db::Assignment> assigns;
  assigns.push_back({.column = "reversible",
                     .expr = sql::Expr::Literal(sql::Value::Bool(false))});
  return db_->Update(kDisguiseLogTableName, pred.get(), params, assigns).status();
}

Status DisguiseLog::EnsureMirror() {
  std::lock_guard<std::mutex> lock(mu_);
  if (db_ == nullptr || db_->HasTable(kDisguiseLogTableName)) {
    return OkStatus();
  }
  return db_->CreateTable(LogSchema());
}

Status DisguiseLog::LoadFromMirror() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.empty()) {
    return FailedPrecondition("LoadFromMirror: log already has in-memory entries");
  }
  if (db_ == nullptr || !db_->HasTable(kDisguiseLogTableName)) {
    return OkStatus();
  }
  const db::Table* t = db_->FindTable(kDisguiseLogTableName);
  Status parse_status = OkStatus();
  t->Scan([&](db::RowId, const db::Row& row) {
    LogEntry e;
    e.id = static_cast<uint64_t>(row[0].AsInt());
    e.spec_name = row[1].AsString();
    if (row[2].is_null()) {
      e.user_id = sql::Value::Null();
    } else {
      // userId is mirrored as a SQL literal; parse it back to a value.
      auto parsed = sql::ParseExpression(row[2].AsString());
      if (!parsed.ok()) {
        parse_status = parsed.status();
        return;
      }
      auto value = sql::EvaluateConstant(**parsed, {});
      if (!value.ok()) {
        parse_status = value.status();
        return;
      }
      e.user_id = *std::move(value);
    }
    e.applied_at = row[3].AsInt();
    e.reversible = row[4].AsBool();
    e.active = row[5].AsBool();
    entries_.push_back(std::move(e));
  });
  RETURN_IF_ERROR(parse_status);
  std::sort(entries_.begin(), entries_.end(),
            [](const LogEntry& a, const LogEntry& b) { return a.id < b.id; });
  next_id_ = entries_.empty() ? 1 : entries_.back().id + 1;
  return OkStatus();
}

const LogEntry* DisguiseLog::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const LogEntry& e : entries_) {
    if (e.id == id) {
      return &e;
    }
  }
  return nullptr;
}

std::optional<LogEntry> DisguiseLog::FindCopy(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const LogEntry& e : entries_) {
    if (e.id == id) {
      return e;
    }
  }
  return std::nullopt;
}

std::vector<LogEntry> DisguiseLog::ActiveAfterCopy(uint64_t after_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEntry> out;
  for (const LogEntry& e : entries_) {
    if (e.id > after_id && e.active) {
      out.push_back(e);
    }
  }
  return out;
}

std::optional<LogEntry> DisguiseLog::LatestActiveFor(const std::string& spec_name,
                                                     const sql::Value& uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<LogEntry> latest;
  for (const LogEntry& e : entries_) {
    if (!e.active || e.spec_name != spec_name) {
      continue;
    }
    bool owner_matches = uid.is_null() ? e.user_id.is_null()
                                       : (!e.user_id.is_null() && e.user_id.SqlEquals(uid));
    if (owner_matches) {
      latest = e;  // entries_ is in apply order; the last match wins
    }
  }
  return latest;
}

std::vector<const LogEntry*> DisguiseLog::ActiveAfter(uint64_t after_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const LogEntry*> out;
  for (const LogEntry& e : entries_) {
    if (e.id > after_id && e.active) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<const LogEntry*> DisguiseLog::ActiveBefore(uint64_t before_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const LogEntry*> out;
  for (const LogEntry& e : entries_) {
    if (e.id < before_id && e.active) {
      out.push_back(&e);
    }
  }
  return out;
}

}  // namespace edna::core
