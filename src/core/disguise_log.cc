#include "src/core/disguise_log.h"

#include "src/sql/parser.h"

namespace edna::core {

namespace {

db::TableSchema LogSchema() {
  db::TableSchema t(kDisguiseLogTableName);
  t.AddColumn({.name = "id", .type = db::ColumnType::kInt, .nullable = false})
      .AddColumn({.name = "specName", .type = db::ColumnType::kString, .nullable = false})
      .AddColumn({.name = "userId", .type = db::ColumnType::kString, .nullable = true})
      .AddColumn({.name = "appliedAt", .type = db::ColumnType::kInt, .nullable = false})
      .AddColumn({.name = "reversible", .type = db::ColumnType::kBool, .nullable = false})
      .AddColumn({.name = "active", .type = db::ColumnType::kBool, .nullable = false})
      .SetPrimaryKey({"id"});
  return t;
}

}  // namespace

DisguiseLog::DisguiseLog(db::Database* db) : db_(db) {}

Status DisguiseLog::MirrorAppend(const LogEntry& e) {
  if (db_ == nullptr) {
    return OkStatus();
  }
  if (!db_->HasTable(kDisguiseLogTableName)) {
    RETURN_IF_ERROR(db_->CreateTable(LogSchema()));
  }
  db::Row row;
  row.push_back(sql::Value::Int(static_cast<int64_t>(e.id)));
  row.push_back(sql::Value::String(e.spec_name));
  row.push_back(e.user_id.is_null() ? sql::Value::Null()
                                    : sql::Value::String(e.user_id.ToSqlString()));
  row.push_back(sql::Value::Int(e.applied_at));
  row.push_back(sql::Value::Bool(e.reversible));
  row.push_back(sql::Value::Bool(e.active));
  return db_->Insert(kDisguiseLogTableName, std::move(row)).status();
}

Status DisguiseLog::MirrorMarkRevealed(uint64_t id) {
  if (db_ == nullptr || !db_->HasTable(kDisguiseLogTableName)) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(sql::ExprPtr pred, sql::ParseExpression("\"id\" = $ID"));
  sql::ParamMap params;
  params.emplace("ID", sql::Value::Int(static_cast<int64_t>(id)));
  std::vector<db::Assignment> assigns;
  assigns.push_back({.column = "active",
                     .expr = sql::Expr::Literal(sql::Value::Bool(false))});
  return db_->Update(kDisguiseLogTableName, pred.get(), params, assigns).status();
}

StatusOr<uint64_t> DisguiseLog::Append(std::string spec_name, sql::ParamMap params,
                                       sql::Value user_id, TimePoint applied_at,
                                       bool reversible) {
  LogEntry e;
  e.id = next_id_++;
  e.spec_name = std::move(spec_name);
  e.params = std::move(params);
  e.user_id = std::move(user_id);
  e.applied_at = applied_at;
  e.reversible = reversible;
  e.active = true;
  RETURN_IF_ERROR(MirrorAppend(e));
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

Status DisguiseLog::MarkRevealed(uint64_t id) {
  for (LogEntry& e : entries_) {
    if (e.id == id) {
      if (!e.active) {
        return FailedPrecondition("disguise already revealed");
      }
      e.active = false;
      return MirrorMarkRevealed(id);
    }
  }
  return NotFound("no disguise log entry with id " + std::to_string(id));
}

Status DisguiseLog::Unappend(uint64_t id) {
  if (entries_.empty() || entries_.back().id != id) {
    return FailedPrecondition("Unappend: id is not the most recent entry");
  }
  entries_.pop_back();
  next_id_ = id;
  return OkStatus();
}

const LogEntry* DisguiseLog::Find(uint64_t id) const {
  for (const LogEntry& e : entries_) {
    if (e.id == id) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<const LogEntry*> DisguiseLog::ActiveAfter(uint64_t after_id) const {
  std::vector<const LogEntry*> out;
  for (const LogEntry& e : entries_) {
    if (e.id > after_id && e.active) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<const LogEntry*> DisguiseLog::ActiveBefore(uint64_t before_id) const {
  std::vector<const LogEntry*> out;
  for (const LogEntry& e : entries_) {
    if (e.id < before_id && e.active) {
      out.push_back(&e);
    }
  }
  return out;
}

}  // namespace edna::core
