// PolicyScheduler: automatic privacy transformations over time (§2).
//
//  * Expiration — "data expiration policies could proactively anonymize or
//    sanitize user contributions for long-inactive users": a per-user
//    disguise applied once a user has been inactive for a threshold.
//    Reversible by default so a returning user can be restored.
//  * Data decay — "gradual data decay policies could apply increasingly
//    strict privacy transformations over time": an ordered chain of stages,
//    each a disguise applied when data (here: the user's account) reaches a
//    given age.
//
// The scheduler is driven by explicit Tick() calls against a Clock, so tests
// and benches control time. Activity information comes from a callback the
// application provides (e.g. a query over a lastLogin column).
#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/core/engine.h"

namespace edna::core {

// (user id, timestamp) pairs from the application.
struct UserTime {
  sql::Value uid;
  TimePoint when = 0;
};
using UserTimeSource = std::function<StatusOr<std::vector<UserTime>>()>;

struct ExpirationPolicy {
  std::string name;
  std::string spec_name;      // per-user disguise to apply
  Duration inactivity = 0;    // threshold since last activity
  UserTimeSource last_active; // per-user last-activity timestamps
};

struct DecayStage {
  Duration age = 0;           // account age at which the stage fires
  std::string spec_name;      // per-user disguise for this stage
};

struct DecayPolicy {
  std::string name;
  std::vector<DecayStage> stages;  // must be sorted by increasing age
  UserTimeSource created_at;       // per-user account-creation timestamps
};

struct TickResult {
  size_t expirations_applied = 0;
  size_t decay_stages_applied = 0;
  std::vector<uint64_t> disguise_ids;
};

class PolicyScheduler {
 public:
  PolicyScheduler(DisguiseEngine* engine, const Clock* clock)
      : engine_(engine), clock_(clock) {}

  Status AddExpirationPolicy(ExpirationPolicy policy);
  Status AddDecayPolicy(DecayPolicy policy);

  // Applies every policy that is due at clock->Now(). Idempotent per
  // (policy, stage, user): each fires at most once unless reset.
  //
  // Thread-safe, with a strict lock discipline: Ticks serialize against each
  // other on tick_mu_, but the state mutex mu_ (shared with ResetUser/Add*)
  // is only ever held for map reads/writes — NEVER across an engine call or
  // an application callback. A callback or engine operation may therefore
  // call back into ResetUser (a returning user revealing mid-tick) without
  // deadlocking. A ResetUser that lands between a policy firing and its
  // bookkeeping wins: the fired marker is not recorded, so the policy can
  // re-arm (tracked with per-user reset generations).
  StatusOr<TickResult> Tick();

  // Forgets that policies fired for `uid` (call when a user returns and
  // reveals, so that expiration can re-arm).
  void ResetUser(const sql::Value& uid);

 private:
  static std::string UserKey(const sql::Value& uid) { return uid.ToSqlString(); }

  std::mutex tick_mu_;  // serializes whole Ticks; never held by ResetUser/Add*
  std::mutex mu_;       // guards the maps below; leaf — no engine/callback under it
  DisguiseEngine* engine_;
  const Clock* clock_;
  std::vector<ExpirationPolicy> expirations_;
  std::vector<DecayPolicy> decays_;
  // policy name -> set of fired user keys (expiration) or
  // user key -> highest fired stage index + 1 (decay).
  std::map<std::string, std::set<std::string>> fired_expirations_;
  std::map<std::string, std::map<std::string, size_t>> fired_decay_stages_;
  // Bumped by ResetUser; lets Tick detect a reset that raced its engine call.
  std::map<std::string, uint64_t> reset_gen_;
};

}  // namespace edna::core

#endif  // SRC_CORE_SCHEDULER_H_
