#include "src/core/engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/engine_internal.h"
#include "src/vault/reveal_record.h"

namespace edna::core {

using disguise::DisguiseSpec;
using disguise::TableDisguise;
using disguise::TransformKind;
using disguise::Transformation;
using vault::RevealOp;
using vault::RevealRecord;

sql::ExprPtr MakeEqExpr(const std::string& column, const sql::Value& value) {
  return sql::Expr::Binary(sql::BinaryOp::kEq, sql::Expr::ColumnRef("", column),
                           sql::Expr::Literal(value));
}

Status FoldStatus(Status primary, const Status& secondary, const char* what) {
  if (secondary.ok()) {
    return primary;
  }
  return Status(primary.code(), primary.message() + " (additionally, " + what +
                                    " failed: " + secondary.ToString() + ")");
}

namespace {

// Engine-op depth per (engine, thread). A plain member would exempt every
// thread from the write guard while any one thread runs an engine operation.
thread_local std::unordered_map<const void*, int> tls_engine_op_depth;

// FNV-1a, fixing the operation identity into a 64-bit seed component.
uint64_t HashOpKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string OpKey(char kind, const std::string& spec_name, const sql::Value& uid) {
  return std::string(1, kind) + ":" + spec_name + ":" + uid.ToSqlString();
}

}  // namespace

// A row this operation selected but that is NotFound by the time we touch
// it was removed by a concurrently COMMITTED transaction (row intents
// already turn conflicts with LIVE transactions into kAborted); likewise a
// row-level IntegrityViolation means a committed neighbor changed the FK
// neighborhood after this operation's relevant stage ran (e.g. a reveal
// re-inserted a RESTRICT child of a row this apply is deleting). Surface
// both races as kAborted so a batch executor retries: the retry observes
// the committed state from the start and proceeds — the same outcome as a
// serial schedule where the other transaction ran first. A persistent
// integrity violation (a genuinely broken spec) exhausts the retry budget
// and is reported with the original message preserved below.
Status DisguiseEngine::RaceToAborted(const Status& s) {
  if (s.code() == StatusCode::kNotFound) {
    return Aborted("row removed by a concurrent transaction: " + s.message());
  }
  if (s.code() == StatusCode::kIntegrityViolation) {
    return Aborted("FK neighborhood changed by a concurrent transaction: " +
                   s.message());
  }
  return s;
}

void DisguiseEngine::EnterEngineOp() { ++tls_engine_op_depth[this]; }

void DisguiseEngine::ExitEngineOp() {
  auto it = tls_engine_op_depth.find(this);
  if (it != tls_engine_op_depth.end() && --it->second <= 0) {
    tls_engine_op_depth.erase(it);
  }
}

bool DisguiseEngine::InEngineOp() const {
  auto it = tls_engine_op_depth.find(this);
  return it != tls_engine_op_depth.end() && it->second > 0;
}

Rng DisguiseEngine::OpRng(char kind, const std::string& spec_name, const sql::Value& uid) {
  if (options_.deterministic_rng) {
    std::string key = OpKey(kind, spec_name, uid);
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(seq_mu_);
      seq = op_seq_[key];  // peek only: a retried (aborted) op reuses its seed
    }
    return Rng(options_.rng_seed ^ HashOpKey(key) ^ (seq * 0x9e3779b97f4a7c15ull));
  }
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.Fork(++rng_stream_);
}

void DisguiseEngine::CommitOpSeq(char kind, const std::string& spec_name,
                                 const sql::Value& uid) {
  if (!options_.deterministic_rng) {
    return;
  }
  std::lock_guard<std::mutex> lock(seq_mu_);
  ++op_seq_[OpKey(kind, spec_name, uid)];
}

StatusOr<db::RowId> DisguiseEngine::InsertPlaceholderRow(
    const std::string& table, std::map<std::string, sql::Value> values, Rng* rng) {
  const db::TableSchema* ts = db_->schema().FindTable(table);
  bool pk_drawable = false;
  if (options_.deterministic_rng && ts != nullptr && ts->primary_key().size() == 1) {
    const db::ColumnDef* pk = ts->FindColumn(ts->primary_key()[0]);
    pk_drawable = pk != nullptr && pk->type == db::ColumnType::kInt &&
                  pk->auto_increment && values.count(pk->name) == 0;
  }
  if (!pk_drawable) {
    return db_->InsertValues(table, values);
  }
  // Deterministic placeholder identity: draw the PK from the operation's own
  // stream, in a sparse band far above the dense application id range, so it
  // does not depend on how concurrent operations interleave on the shared
  // auto-increment counter. Collisions are vanishingly rare; redraw on one.
  const std::string& pk_col = ts->primary_key()[0];
  constexpr uint64_t kBand = 1ull << 40;
  for (int attempt = 0; attempt < 16; ++attempt) {
    values[pk_col] = sql::Value::Int(static_cast<int64_t>(kBand + rng->NextBounded(kBand)));
    StatusOr<db::RowId> id = db_->InsertValues(table, values);
    if (id.ok() || id.status().code() != StatusCode::kAlreadyExists) {
      return id;
    }
  }
  return Internal("could not draw a fresh placeholder key for \"" + table + "\"");
}

DisguiseEngine::DisguiseEngine(db::Database* db, vault::Vault* vault, const Clock* clock,
                               EngineOptions options)
    : db_(db), vault_(vault), clock_(clock), options_(options), rng_(options.rng_seed),
      log_(db) {
  if (options_.exec_mode.has_value()) {
    db_->SetExecMode(*options_.exec_mode);
  }
}

Status DisguiseEngine::PersistJournalDelta(std::vector<uint8_t> delta) {
  if (journal_wal_ == nullptr || delta.empty()) {
    return OkStatus();
  }
  EDNA_FAIL_POINT(failpoints::kJournalPersist);
  return journal_wal_->AppendJournalDelta(std::move(delta));
}

void DisguiseEngine::StageCommittedAdvance(uint64_t journal_id) {
  if (journal_wal_ == nullptr) {
    return;
  }
  journal_wal_->StageJournalDelta(
      CommitJournal::EncodeAdvance(journal_id, JournalPhase::kCommitted));
}

Status DisguiseEngine::RetireJournalEntry(uint64_t journal_id) {
  Status persisted = PersistJournalDelta(CommitJournal::EncodeComplete(journal_id));
  if (!persisted.ok()) {
    // Entry stays pending in memory AND on disk: a reopen (or Recover())
    // sees the same picture either way, and finishes the retirement.
    return persisted;
  }
  journal_.Complete(journal_id);
  return OkStatus();
}

Status DisguiseEngine::RegisterSpec(DisguiseSpec spec) {
  RETURN_IF_ERROR(spec.Validate(db_->schema()));
  // Reserved tables are off-limits to application specs.
  for (const TableDisguise& td : spec.tables()) {
    if (StartsWith(td.table, "__edna")) {
      return InvalidArgument("spec \"" + spec.name() + "\" touches reserved table \"" +
                             td.table + "\"");
    }
  }
  std::string name = spec.name();
  if (specs_.count(name) > 0) {
    return AlreadyExists("spec \"" + name + "\" already registered");
  }
  specs_.emplace(std::move(name), std::move(spec));
  return OkStatus();
}

const DisguiseSpec* DisguiseEngine::FindSpec(const std::string& name) const {
  auto it = specs_.find(name);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<std::string> DisguiseEngine::SpecNames() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) {
    out.push_back(name);
  }
  return out;
}

std::vector<const DisguiseSpec*> DisguiseEngine::Specs() const {
  std::vector<const DisguiseSpec*> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) {
    out.push_back(&spec);
  }
  return out;
}

StatusOr<sql::Value> DisguiseEngine::CreatePlaceholder(ApplyContext* ctx,
                                                       const std::string& table,
                                                       const sql::Value& owner) {
  const TableDisguise* td = ctx->spec->FindTable(table);
  if (td == nullptr || td->placeholder.empty()) {
    return Internal("no placeholder recipe for table \"" + table + "\" (spec validated?)");
  }
  std::map<std::string, sql::Value> values;
  disguise::GenContext gen_ctx;
  gen_ctx.rng = &ctx->rng;
  gen_ctx.params = &ctx->params;
  for (const disguise::PlaceholderColumn& pc : td->placeholder) {
    ASSIGN_OR_RETURN(sql::Value v, pc.generator.Generate(gen_ctx));
    values.emplace(pc.column, std::move(v));
  }
  ASSIGN_OR_RETURN(db::RowId id, InsertPlaceholderRow(table, std::move(values), &ctx->rng));
  ++ctx->result.placeholders_created;
  if (ctx->spec->reversible()) {
    RevealOp op = RevealOp::DropPlaceholder(table, id);
    op.owner = owner;
    ctx->record.ops.push_back(std::move(op));
  }
  // Single-column PK guaranteed for decorrelation targets by schema
  // validation of the FK.
  const db::TableSchema* ts = db_->schema().FindTable(table);
  return db_->GetColumn(table, id, ts->primary_key()[0]);
}

Status DisguiseEngine::RunDecorrelates(ApplyContext* ctx) {
  for (const TableDisguise& td : ctx->spec->tables()) {
    for (const Transformation& tr : td.transformations) {
      if (tr.kind() != TransformKind::kDecorrelate) {
        continue;
      }
      const std::string& fk_col = tr.foreign_key().column;
      // SelectRowsWithIds (not Select): the placeholder inserts below run
      // their own statements, whose boundary eviction may spill the selected
      // pages — RowRef pointers would read cleared payloads.
      ASSIGN_OR_RETURN(auto rows,
                       db_->SelectRowsWithIds(td.table, tr.predicate(), ctx->params));
      // Materialize (id, old value) pairs before mutating.
      std::vector<std::pair<db::RowId, sql::Value>> targets;
      const db::TableSchema* ts = db_->schema().FindTable(td.table);
      int fk_idx = ts->ColumnIndex(fk_col);
      targets.reserve(rows.size());
      for (const auto& [id, row] : rows) {
        const sql::Value& old = row[static_cast<size_t>(fk_idx)];
        if (old.is_null()) {
          continue;  // nothing to decorrelate
        }
        targets.emplace_back(id, old);
      }
      for (const auto& [id, old] : targets) {
        // One fresh placeholder per row: "making it seem as if a different
        // user entered each of Bea's reviews" (§4.1).
        ASSIGN_OR_RETURN(sql::Value placeholder_pk,
                         CreatePlaceholder(ctx, tr.foreign_key().parent_table, old));
        if (ctx->spec->reversible()) {
          RevealOp op = RevealOp::RestoreColumn(td.table, id, fk_col, old, placeholder_pk);
          op.owner = old;
          ctx->record.ops.push_back(std::move(op));
        }
        if (options_.batch_operations) {
          ctx->pending_batches[td.table].push_back({id, fk_col, placeholder_pk});
        } else {
          RETURN_IF_ERROR(RaceToAborted(db_->SetColumn(td.table, id, fk_col, placeholder_pk)));
        }
        ++ctx->result.rows_decorrelated;
      }
      RETURN_IF_ERROR(FlushBatches(ctx));
    }
  }
  return OkStatus();
}

Status DisguiseEngine::RunModifies(ApplyContext* ctx) {
  for (const TableDisguise& td : ctx->spec->tables()) {
    const db::TableSchema* ts = db_->schema().FindTable(td.table);
    for (const Transformation& tr : td.transformations) {
      if (tr.kind() != TransformKind::kModify) {
        continue;
      }
      ASSIGN_OR_RETURN(std::vector<db::RowRef> rows,
                       db_->Select(td.table, tr.predicate(), ctx->params));
      std::vector<db::RowId> ids;
      ids.reserve(rows.size());
      for (const db::RowRef& ref : rows) {
        ids.push_back(ref.id);
      }
      int col_idx = ts->ColumnIndex(tr.column());
      for (db::RowId id : ids) {
        auto row_or = db_->GetRow(td.table, id);
        if (!row_or.ok()) {
          return RaceToAborted(row_or.status());
        }
        db::Row row = *std::move(row_or);
        sql::Value old = row[static_cast<size_t>(col_idx)];
        disguise::GenContext gen_ctx;
        gen_ctx.rng = &ctx->rng;
        gen_ctx.original = &old;
        gen_ctx.row = db::MakeRowResolver(*ts, row);
        gen_ctx.params = &ctx->params;
        ASSIGN_OR_RETURN(sql::Value next, tr.generator().Generate(gen_ctx));
        if (next == old) {
          continue;  // no-op modify: no reveal record, no write
        }
        if (ctx->spec->reversible()) {
          ctx->record.ops.push_back(
              RevealOp::RestoreColumn(td.table, id, tr.column(), old, next));
        }
        if (options_.batch_operations) {
          ctx->pending_batches[td.table].push_back({id, tr.column(), next});
        } else {
          RETURN_IF_ERROR(RaceToAborted(db_->SetColumn(td.table, id, tr.column(), next)));
        }
        ++ctx->result.rows_modified;
      }
      RETURN_IF_ERROR(FlushBatches(ctx));
    }
  }
  return OkStatus();
}

StatusOr<std::vector<std::string>> DisguiseEngine::RemoveOrder(
    const DisguiseSpec& spec) const {
  // Tables with Remove transformations, ordered child-before-parent so that
  // FK RESTRICT constraints never block a spec that removes both sides.
  std::vector<std::string> tables;
  for (const TableDisguise& td : spec.tables()) {
    for (const Transformation& tr : td.transformations) {
      if (tr.kind() == TransformKind::kRemove) {
        tables.push_back(td.table);
        break;
      }
    }
  }
  // Edge X -> Y when X has an FK referencing Y (X must be processed first).
  std::map<std::string, std::set<std::string>> refs;
  for (const std::string& t : tables) {
    const db::TableSchema* ts = db_->schema().FindTable(t);
    for (const db::ForeignKeyDef& fk : ts->foreign_keys()) {
      if (std::find(tables.begin(), tables.end(), fk.parent_table) != tables.end() &&
          fk.parent_table != t) {
        refs[t].insert(fk.parent_table);
      }
    }
  }
  // Kahn's algorithm: emit tables whose referenced parents are all emitted
  // LAST; i.e. emit children first. We emit a table when no *unemitted*
  // table references it... simpler: repeatedly emit a table none of whose
  // FK parents have been emitted yet? Invert: emit X only after every table
  // that references X. Compute in-degree = number of unemitted referencers.
  std::vector<std::string> order;
  std::set<std::string> emitted;
  while (order.size() < tables.size()) {
    bool progress = false;
    for (const std::string& t : tables) {
      if (emitted.count(t) > 0) {
        continue;
      }
      bool blocked = false;
      for (const std::string& other : tables) {
        if (other == t || emitted.count(other) > 0) {
          continue;
        }
        if (refs[other].count(t) > 0) {
          blocked = true;  // `other` references t and is not yet removed
          break;
        }
      }
      if (!blocked) {
        order.push_back(t);
        emitted.insert(t);
        progress = true;
      }
    }
    if (!progress) {
      // FK cycle among removed tables; fall back to spec order.
      EDNA_LOG(kWarning) << "FK cycle among Remove targets of \"" << spec.name()
                         << "\"; using spec order";
      return tables;
    }
  }
  return order;
}

Status DisguiseEngine::RemoveWithClosure(ApplyContext* ctx, const std::string& table,
                                         db::RowId id, int depth) {
  if (depth > 32) {
    return IntegrityViolation("remove closure too deep (FK cycle?)");
  }
  auto row_or = db_->GetRow(table, id);
  if (!row_or.ok()) {
    return RaceToAborted(row_or.status());
  }
  db::Row row = *std::move(row_or);
  const db::TableSchema* ts = db_->schema().FindTable(table);

  // Children referencing this row, by declared FK delete action.
  if (ts->primary_key().size() == 1) {
    const std::string& pk_col = ts->primary_key()[0];
    sql::Value pk_value = row[static_cast<size_t>(ts->ColumnIndex(pk_col))];
    for (const db::TableSchema& child : db_->schema().tables()) {
      for (const db::ForeignKeyDef& fk : child.foreign_keys()) {
        if (fk.parent_table != table) {
          continue;
        }
        sql::ExprPtr pred = MakeEqExpr(fk.column, pk_value);
        ASSIGN_OR_RETURN(std::vector<db::RowRef> kids,
                         db_->Select(child.name(), pred.get(), ctx->params));
        if (kids.empty()) {
          continue;
        }
        switch (fk.on_delete) {
          case db::FkAction::kRestrict:
            // The spec must have decorrelated or removed these first. A
            // violation is either a spec bug (persistent: survives the
            // batch retry budget and is reported) or a concurrent reveal
            // re-inserting a child after this apply's stage for the child
            // table ran (transient: RaceToAborted makes the retry see it).
            return RaceToAborted(IntegrityViolation(
                "removing \"" + table + "\" row " + pk_value.ToSqlString() +
                " would orphan " + std::to_string(kids.size()) + " row(s) of \"" +
                child.name() + "\" (RESTRICT)"));
          case db::FkAction::kCascade: {
            std::vector<db::RowId> kid_ids;
            kid_ids.reserve(kids.size());
            for (const db::RowRef& k : kids) {
              kid_ids.push_back(k.id);
            }
            for (db::RowId kid : kid_ids) {
              if (db_->RowExists(child.name(), kid)) {
                RETURN_IF_ERROR(RemoveWithClosure(ctx, child.name(), kid, depth + 1));
              }
            }
            break;
          }
          case db::FkAction::kSetNull: {
            std::vector<db::RowId> kid_ids;
            for (const db::RowRef& k : kids) {
              kid_ids.push_back(k.id);
            }
            for (db::RowId kid : kid_ids) {
              if (ctx->spec->reversible()) {
                ctx->record.ops.push_back(RevealOp::RestoreColumn(
                    child.name(), kid, fk.column, pk_value, sql::Value::Null()));
              }
              RETURN_IF_ERROR(RaceToAborted(
                  db_->SetColumn(child.name(), kid, fk.column, sql::Value::Null())));
            }
            break;
          }
        }
      }
    }
  }

  // Children handled: record the row (AFTER child ops, so reverse-order
  // reveal restores this parent before its children) and delete it.
  if (ctx->spec->reversible()) {
    ctx->record.ops.push_back(RevealOp::RestoreRow(table, id, row));
  }
  RETURN_IF_ERROR(RaceToAborted(db_->DeleteRow(table, id)));
  ++ctx->result.rows_removed;
  return OkStatus();
}

Status DisguiseEngine::RunRemoves(ApplyContext* ctx) {
  ASSIGN_OR_RETURN(std::vector<std::string> order, RemoveOrder(*ctx->spec));
  for (const std::string& table : order) {
    const TableDisguise* td = ctx->spec->FindTable(table);
    for (const Transformation& tr : td->transformations) {
      if (tr.kind() != TransformKind::kRemove) {
        continue;
      }
      ASSIGN_OR_RETURN(std::vector<db::RowRef> rows,
                       db_->Select(table, tr.predicate(), ctx->params));
      std::vector<db::RowId> ids;
      ids.reserve(rows.size());
      for (const db::RowRef& ref : rows) {
        ids.push_back(ref.id);
      }
      for (db::RowId id : ids) {
        if (!db_->RowExists(table, id)) {
          continue;  // removed by an earlier closure walk
        }
        RETURN_IF_ERROR(RemoveWithClosure(ctx, table, id, 0));
      }
    }
  }
  return OkStatus();
}

Status DisguiseEngine::CheckAssertions(const DisguiseSpec& spec,
                                       const sql::ParamMap& params) {
  for (const disguise::Assertion& a : spec.assertions()) {
    ASSIGN_OR_RETURN(size_t n, db_->Count(a.table, a.predicate.get(), params));
    if (n != 0) {
      return IntegrityViolation(StrFormat(
          "disguise \"%s\" failed end-state assertion on \"%s\": %zu row(s) still match %s",
          spec.name().c_str(), a.table.c_str(), n, a.predicate->ToString().c_str()));
    }
  }
  return OkStatus();
}

void DisguiseEngine::EnsureGuardInstalled() {
  // guard_mu_ -> db catalog (SetWriteGuard). The guard lambda itself runs
  // under a db stripe lock and takes prot_mu_, which is why ProtectRows must
  // install the guard BEFORE taking prot_mu_: holding prot_mu_ across
  // SetWriteGuard would invert stripe->prot_mu_ with prot_mu_->catalog.
  std::lock_guard<std::mutex> lock(guard_mu_);
  if (guard_installed_) {
    return;
  }
  guard_installed_ = true;
  db_->SetWriteGuard([this](const std::string& table, db::RowId id,
                            const std::string& column) -> Status {
    if (InEngineOp()) {
      return OkStatus();
    }
    {
      std::lock_guard<std::mutex> prot_lock(prot_mu_);
      if (protected_rows_.count({table, id}) == 0) {
        return OkStatus();
      }
    }
    return FailedPrecondition(
        "row " + std::to_string(id) + " of \"" + table +
        "\" is under an active disguise" +
        (column.empty() ? std::string() : " (column \"" + column + "\")") +
        "; reveal the disguise before modifying it");
  });
}

void DisguiseEngine::ProtectRows(uint64_t disguise_id, const vault::RevealRecord& record) {
  EnsureGuardInstalled();
  std::lock_guard<std::mutex> lock(prot_mu_);
  std::vector<std::pair<std::string, db::RowId>>& owned =
      protected_by_disguise_[disguise_id];
  for (const RevealOp& op : record.ops) {
    if (op.kind == RevealOp::Kind::kRestoreRow) {
      continue;  // the row is gone; nothing to protect
    }
    std::pair<std::string, db::RowId> key{op.table, op.row_id};
    ++protected_rows_[key];
    owned.push_back(std::move(key));
  }
}

void DisguiseEngine::UnprotectRows(uint64_t disguise_id) {
  std::lock_guard<std::mutex> lock(prot_mu_);
  auto it = protected_by_disguise_.find(disguise_id);
  if (it == protected_by_disguise_.end()) {
    return;
  }
  for (const auto& key : it->second) {
    auto entry = protected_rows_.find(key);
    if (entry != protected_rows_.end() && --entry->second <= 0) {
      protected_rows_.erase(entry);
    }
  }
  protected_by_disguise_.erase(it);
}

Status DisguiseEngine::FlushBatches(ApplyContext* ctx) {
  for (auto& [table, updates] : ctx->pending_batches) {
    if (!updates.empty()) {
      RETURN_IF_ERROR(RaceToAborted(db_->BatchSetColumns(table, updates).status()));
      updates.clear();
    }
  }
  return OkStatus();
}

}  // namespace edna::core
