#include "src/core/scheduler.h"

#include "src/common/logging.h"

namespace edna::core {

Status PolicyScheduler::AddExpirationPolicy(ExpirationPolicy policy) {
  if (engine_->FindSpec(policy.spec_name) == nullptr) {
    return NotFound("expiration policy \"" + policy.name + "\" references unregistered spec \"" +
                    policy.spec_name + "\"");
  }
  if (!policy.last_active) {
    return InvalidArgument("expiration policy \"" + policy.name + "\" has no activity source");
  }
  if (policy.inactivity <= 0) {
    return InvalidArgument("expiration policy \"" + policy.name +
                           "\" needs a positive inactivity threshold");
  }
  std::lock_guard<std::mutex> lock(mu_);
  expirations_.push_back(std::move(policy));
  return OkStatus();
}

Status PolicyScheduler::AddDecayPolicy(DecayPolicy policy) {
  if (policy.stages.empty()) {
    return InvalidArgument("decay policy \"" + policy.name + "\" has no stages");
  }
  Duration prev = -1;
  for (const DecayStage& stage : policy.stages) {
    if (engine_->FindSpec(stage.spec_name) == nullptr) {
      return NotFound("decay policy \"" + policy.name + "\" references unregistered spec \"" +
                      stage.spec_name + "\"");
    }
    if (stage.age <= prev) {
      return InvalidArgument("decay policy \"" + policy.name +
                             "\" stages must have strictly increasing ages");
    }
    prev = stage.age;
  }
  if (!policy.created_at) {
    return InvalidArgument("decay policy \"" + policy.name + "\" has no creation-time source");
  }
  std::lock_guard<std::mutex> lock(mu_);
  decays_.push_back(std::move(policy));
  return OkStatus();
}

StatusOr<TickResult> PolicyScheduler::Tick() {
  // Lock discipline: tick_mu_ makes concurrent Ticks take turns (so a
  // (policy, user) cannot fire twice from two racing Ticks), while mu_ is
  // only held for map accesses. The engine and the application's time-source
  // callbacks run with NO scheduler mutex that ResetUser needs — either may
  // call back into ResetUser without deadlocking.
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  TickResult result;
  TimePoint now = clock_->Now();

  std::vector<ExpirationPolicy> expirations;
  std::vector<DecayPolicy> decays;
  {
    std::lock_guard<std::mutex> lock(mu_);
    expirations = expirations_;
    decays = decays_;
  }

  for (const ExpirationPolicy& policy : expirations) {
    ASSIGN_OR_RETURN(std::vector<UserTime> activity, policy.last_active());
    for (const UserTime& ut : activity) {
      if (now - ut.when < policy.inactivity) {
        continue;
      }
      std::string key = UserKey(ut.uid);
      uint64_t gen;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (fired_expirations_[policy.name].count(key) > 0) {
          continue;
        }
        gen = reset_gen_[key];
      }
      auto applied = engine_->ApplyForUser(policy.spec_name, ut.uid);
      if (!applied.ok()) {
        EDNA_LOG(kWarning) << "expiration policy \"" << policy.name << "\" failed for "
                           << key << ": " << applied.status();
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        // A ResetUser racing the apply wins: leave the policy re-armed.
        if (reset_gen_[key] == gen) {
          fired_expirations_[policy.name].insert(key);
        }
      }
      ++result.expirations_applied;
      result.disguise_ids.push_back(applied->disguise_id);
    }
  }

  for (const DecayPolicy& policy : decays) {
    ASSIGN_OR_RETURN(std::vector<UserTime> created, policy.created_at());
    for (const UserTime& ut : created) {
      std::string key = UserKey(ut.uid);
      for (;;) {
        size_t next_stage;
        uint64_t gen;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto& fired = fired_decay_stages_[policy.name];
          auto it = fired.find(key);
          next_stage = it == fired.end() ? 0 : it->second;
          gen = reset_gen_[key];
        }
        if (next_stage >= policy.stages.size() ||
            now - ut.when < policy.stages[next_stage].age) {
          break;
        }
        auto applied = engine_->ApplyForUser(policy.stages[next_stage].spec_name, ut.uid);
        if (!applied.ok()) {
          EDNA_LOG(kWarning) << "decay policy \"" << policy.name << "\" stage " << next_stage
                             << " failed for " << key << ": " << applied.status();
          break;
        }
        ++result.decay_stages_applied;
        result.disguise_ids.push_back(applied->disguise_id);
        bool was_reset;
        {
          std::lock_guard<std::mutex> lock(mu_);
          was_reset = reset_gen_[key] != gen;
          if (!was_reset) {
            fired_decay_stages_[policy.name][key] = next_stage + 1;
          }
        }
        if (was_reset) {
          break;  // the user's decay chain restarted under us; stop advancing
        }
      }
    }
  }

  return result;
}

void PolicyScheduler::ResetUser(const sql::Value& uid) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = UserKey(uid);
  for (auto& [name, fired] : fired_expirations_) {
    fired.erase(key);
  }
  for (auto& [name, fired] : fired_decay_stages_) {
    fired.erase(key);
  }
  ++reset_gen_[key];
}

}  // namespace edna::core
