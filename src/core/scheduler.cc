#include "src/core/scheduler.h"

#include "src/common/logging.h"

namespace edna::core {

Status PolicyScheduler::AddExpirationPolicy(ExpirationPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_->FindSpec(policy.spec_name) == nullptr) {
    return NotFound("expiration policy \"" + policy.name + "\" references unregistered spec \"" +
                    policy.spec_name + "\"");
  }
  if (!policy.last_active) {
    return InvalidArgument("expiration policy \"" + policy.name + "\" has no activity source");
  }
  if (policy.inactivity <= 0) {
    return InvalidArgument("expiration policy \"" + policy.name +
                           "\" needs a positive inactivity threshold");
  }
  expirations_.push_back(std::move(policy));
  return OkStatus();
}

Status PolicyScheduler::AddDecayPolicy(DecayPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (policy.stages.empty()) {
    return InvalidArgument("decay policy \"" + policy.name + "\" has no stages");
  }
  Duration prev = -1;
  for (const DecayStage& stage : policy.stages) {
    if (engine_->FindSpec(stage.spec_name) == nullptr) {
      return NotFound("decay policy \"" + policy.name + "\" references unregistered spec \"" +
                      stage.spec_name + "\"");
    }
    if (stage.age <= prev) {
      return InvalidArgument("decay policy \"" + policy.name +
                             "\" stages must have strictly increasing ages");
    }
    prev = stage.age;
  }
  if (!policy.created_at) {
    return InvalidArgument("decay policy \"" + policy.name + "\" has no creation-time source");
  }
  decays_.push_back(std::move(policy));
  return OkStatus();
}

StatusOr<TickResult> PolicyScheduler::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  TickResult result;
  TimePoint now = clock_->Now();

  for (const ExpirationPolicy& policy : expirations_) {
    ASSIGN_OR_RETURN(std::vector<UserTime> activity, policy.last_active());
    std::set<std::string>& fired = fired_expirations_[policy.name];
    for (const UserTime& ut : activity) {
      if (now - ut.when < policy.inactivity) {
        continue;
      }
      std::string key = UserKey(ut.uid);
      if (fired.count(key) > 0) {
        continue;
      }
      auto applied = engine_->ApplyForUser(policy.spec_name, ut.uid);
      if (!applied.ok()) {
        EDNA_LOG(kWarning) << "expiration policy \"" << policy.name << "\" failed for "
                           << key << ": " << applied.status();
        continue;
      }
      fired.insert(key);
      ++result.expirations_applied;
      result.disguise_ids.push_back(applied->disguise_id);
    }
  }

  for (const DecayPolicy& policy : decays_) {
    ASSIGN_OR_RETURN(std::vector<UserTime> created, policy.created_at());
    std::map<std::string, size_t>& fired = fired_decay_stages_[policy.name];
    for (const UserTime& ut : created) {
      std::string key = UserKey(ut.uid);
      size_t next_stage = fired.count(key) > 0 ? fired[key] : 0;
      while (next_stage < policy.stages.size() &&
             now - ut.when >= policy.stages[next_stage].age) {
        auto applied = engine_->ApplyForUser(policy.stages[next_stage].spec_name, ut.uid);
        if (!applied.ok()) {
          EDNA_LOG(kWarning) << "decay policy \"" << policy.name << "\" stage " << next_stage
                             << " failed for " << key << ": " << applied.status();
          break;
        }
        ++next_stage;
        ++result.decay_stages_applied;
        result.disguise_ids.push_back(applied->disguise_id);
      }
      fired[key] = next_stage;
    }
  }

  return result;
}

void PolicyScheduler::ResetUser(const sql::Value& uid) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = UserKey(uid);
  for (auto& [name, fired] : fired_expirations_) {
    fired.erase(key);
  }
  for (auto& [name, fired] : fired_decay_stages_) {
    fired.erase(key);
  }
}

}  // namespace edna::core
