// DisguiseEngine::Explain — read-only consequence analysis of a disguise.
#include "src/common/strings.h"
#include "src/core/engine_internal.h"
#include "src/core/explain.h"
#include "src/sql/compile.h"
#include "src/sql/verify.h"

namespace edna::core {

using disguise::DisguiseSpec;
using disguise::TableDisguise;
using disguise::TransformKind;
using disguise::Transformation;

std::string ExplainReport::ToString() const {
  std::string out = "disguise \"" + spec_name + "\" would:\n";
  for (const ExplainEntry& e : entries) {
    out += StrFormat("  %-12s %-24s %6zu row(s)", TransformKindName(e.kind),
                     e.table.c_str(), e.matching_rows);
    if (!e.detail.empty()) {
      out += "  [" + e.detail + "]";
    }
    if (e.cascaded_rows > 0) {
      out += StrFormat("  +%zu cascaded", e.cascaded_rows);
    }
    if (e.nulled_references > 0) {
      out += StrFormat("  +%zu nulled ref(s)", e.nulled_references);
    }
    if (!e.plan.empty()) {
      out += "  via " + e.plan;
    }
    if (e.program_instructions > 0) {
      out += StrFormat("  program(%zu insn, %zu reg, %s)", e.program_instructions,
                       e.program_registers, e.program_verified ? "ok" : "UNCHECKED");
    }
    out += "\n";
  }
  out += StrFormat("  total: %zu row(s) affected, %zu placeholder(s) created\n",
                   total_rows_affected, placeholders_to_create);
  if (would_compose) {
    out += StrFormat(
        "  composition: %zu prior reveal record(s) hold this user's data and "
        "would be consulted\n",
        prior_records_involved);
  }
  return out;
}

namespace {

// Counts the FK closure a delete of the rows in (table, ids) would touch,
// without mutating anything. Depth-limited like the real walk.
Status CountClosure(const db::Database& db, const std::string& table,
                    const std::vector<db::RowId>& ids, int depth, size_t* cascaded,
                    size_t* nulled) {
  if (depth > 32 || ids.empty()) {
    return OkStatus();
  }
  const db::TableSchema* ts = db.schema().FindTable(table);
  if (ts->primary_key().size() != 1) {
    return OkStatus();
  }
  const db::Table* t = db.FindTable(table);
  int pk_idx = ts->ColumnIndex(ts->primary_key()[0]);
  for (db::RowId id : ids) {
    const db::Row* row = t->Find(id);
    if (row == nullptr) {
      continue;
    }
    const sql::Value& pk = (*row)[static_cast<size_t>(pk_idx)];
    for (const db::TableSchema& child : db.schema().tables()) {
      for (const db::ForeignKeyDef& fk : child.foreign_keys()) {
        if (fk.parent_table != table) {
          continue;
        }
        const db::Table* ct = db.FindTable(child.name());
        std::vector<db::RowId> kids;
        ct->IndexLookup(fk.column, pk, &kids);
        if (kids.empty()) {
          continue;
        }
        switch (fk.on_delete) {
          case db::FkAction::kCascade:
            *cascaded += kids.size();
            RETURN_IF_ERROR(
                CountClosure(db, child.name(), kids, depth + 1, cascaded, nulled));
            break;
          case db::FkAction::kSetNull:
            *nulled += kids.size();
            break;
          case db::FkAction::kRestrict:
            // The real apply may still succeed if the spec removes these
            // first; Explain just reports them as part of the closure.
            *cascaded += 0;
            break;
        }
      }
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<ExplainReport> DisguiseEngine::Explain(const std::string& spec_name,
                                                const sql::ParamMap& params) {
  const DisguiseSpec* spec = FindSpec(spec_name);
  if (spec == nullptr) {
    return NotFound("no registered disguise \"" + spec_name + "\"");
  }
  sql::Value uid = sql::Value::Null();
  if (spec->per_user()) {
    auto it = params.find(disguise::kUidParam);
    if (it == params.end() || it->second.is_null()) {
      return InvalidArgument("per-user disguise \"" + spec_name + "\" requires $UID");
    }
    uid = it->second;
  }

  ExplainReport report;
  report.spec_name = spec->name();

  for (const TableDisguise& td : spec->tables()) {
    for (const Transformation& tr : td.transformations) {
      ExplainEntry entry;
      entry.table = td.table;
      entry.kind = tr.kind();
      // SelectRowsWithIds (not Select): explain holds the result across
      // further statements (DescribePlan, CountClosure), whose boundary
      // eviction may clear payloads RowRef pointers would still reference.
      ASSIGN_OR_RETURN(auto rows,
                       db_->SelectRowsWithIds(td.table, tr.predicate(), params));
      entry.matching_rows = rows.size();
      if (tr.predicate() != nullptr) {
        ASSIGN_OR_RETURN(entry.plan, db_->DescribePlan(td.table, *tr.predicate()));
        // Surface the compiled hot-path form of the rule and run the static
        // program checker over it, so `explain` doubles as a verification
        // report for the plan the engine will execute.
        const db::TableSchema* ts = db_->schema().FindTable(td.table);
        if (ts != nullptr) {
          sql::ColumnBinder binder = [ts](const std::string& tbl,
                                          const std::string& column) -> StatusOr<size_t> {
            if (!tbl.empty() && tbl != ts->name()) {
              return NotFound("unknown table \"" + tbl + "\"");
            }
            int idx = ts->ColumnIndex(column);
            if (idx < 0) {
              return NotFound("unknown column \"" + column + "\"");
            }
            return static_cast<size_t>(idx);
          };
          StatusOr<sql::CompiledPredicate> program =
              sql::CompiledPredicate::Compile(*tr.predicate(), binder);
          if (program.ok()) {
            entry.program_instructions = program->num_instructions();
            entry.program_registers = program->num_registers();
            sql::ProgramCheckOptions check;
            check.row_width = static_cast<int>(ts->num_columns());
            entry.program_verified = sql::VerifyProgram(*program, check).ok();
          }
        }
      } else {
        entry.plan = "all rows";
      }
      switch (tr.kind()) {
        case TransformKind::kRemove: {
          std::vector<db::RowId> ids;
          ids.reserve(rows.size());
          for (const auto& [id, row] : rows) {
            ids.push_back(id);
          }
          RETURN_IF_ERROR(CountClosure(*db_, td.table, ids, 0, &entry.cascaded_rows,
                                       &entry.nulled_references));
          break;
        }
        case TransformKind::kModify:
          entry.detail = "column \"" + tr.column() + "\" <- " + tr.generator().ToText();
          break;
        case TransformKind::kDecorrelate: {
          entry.detail = "\"" + tr.foreign_key().column + "\" -> fresh " +
                         tr.foreign_key().parent_table + " placeholder per row";
          // Placeholders are created only for rows whose FK is non-null.
          const db::TableSchema* ts = db_->schema().FindTable(td.table);
          int fk_idx = ts->ColumnIndex(tr.foreign_key().column);
          size_t non_null = 0;
          for (const auto& [id, row] : rows) {
            if (!row[static_cast<size_t>(fk_idx)].is_null()) {
              ++non_null;
            }
          }
          entry.matching_rows = non_null;
          report.placeholders_to_create += non_null;
          break;
        }
      }
      report.total_rows_affected +=
          entry.matching_rows + entry.cascaded_rows + entry.nulled_references;
      report.entries.push_back(std::move(entry));
    }
  }

  // Composition estimate: how many prior reveal records hold this user's
  // data (per-user vault shards make this exact and cheap).
  if (spec->per_user() && vault_->NumRecords() > 0) {
    ASSIGN_OR_RETURN(std::vector<vault::RevealRecord> records, vault_->FetchForUser(uid));
    report.prior_records_involved = records.size();
    report.would_compose = !records.empty();
  }
  return report;
}

}  // namespace edna::core
