// DurableEngine: end-to-end durable open/recovery for the disguise engine.
// See durable_engine.h for the layering.
#include "src/core/durable_engine.h"

#include <utility>

#include "src/common/logging.h"

namespace edna::core {

namespace {

// Stateless process-wide default; outlives every engine.
const Clock* DefaultClock() {
  static SystemClock clock;
  return &clock;
}

}  // namespace

DurableEngine::DurableEngine(std::unique_ptr<db::DurableDatabase> durable,
                             std::unique_ptr<vault::TableVault> vault,
                             std::unique_ptr<DisguiseEngine> engine)
    : durable_(std::move(durable)), vault_(std::move(vault)), engine_(std::move(engine)) {}

DurableEngine::~DurableEngine() {
  // Detach both directions before members start dying: the engine must stop
  // persisting deltas, and checkpoints must stop asking the engine for its
  // journal image.
  engine_->SetJournalDurability(nullptr);
  durable_->SetSidecarSnapshotProvider(nullptr);
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& dir, const DurableEngineOptions& options,
    DurableEngineReport* report) {
  DurableEngineReport local_report;
  if (report == nullptr) {
    report = &local_report;
  }

  // 1. Database: snapshot + WAL replay + torn-tail repair (src/db/durable.h).
  ASSIGN_OR_RETURN(std::unique_ptr<db::DurableDatabase> durable,
                   db::DurableDatabase::Open(dir, options.durable, &report->db));

  // 2. Vault handle. Creates the reserved table on first open; on a reopen
  //    the replayed catalog already has it. Either way the mutation (if any)
  //    flows through the WAL like any other DDL.
  ASSIGN_OR_RETURN(std::unique_ptr<vault::TableVault> vault,
                   vault::TableVault::Create(durable->db()));

  const Clock* clock = options.clock != nullptr ? options.clock : DefaultClock();
  auto engine = std::make_unique<DisguiseEngine>(durable->db(), vault.get(), clock,
                                                 options.engine);

  // 3. Commit journal: newest checkpointed image first, then the WAL deltas
  //    that postdate it, in LSN order. ApplyDelta is idempotent and monotone,
  //    so deltas the image already reflects converge to the same state.
  if (!report->db.journal_image.empty()) {
    StatusOr<CommitJournal> restored = CommitJournal::Deserialize(report->db.journal_image);
    if (!restored.ok()) {
      return Status(restored.status().code(),
                    "restoring checkpointed commit journal: " + restored.status().message());
    }
    engine->journal() = std::move(restored).value();
    report->journal_restored_from_image = true;
  }
  for (const auto& [lsn, delta] : report->db.journal_deltas) {
    Status applied = engine->journal().ApplyDelta(delta);
    if (!applied.ok()) {
      return Status(applied.code(), "replaying journal delta at lsn " +
                                        std::to_string(lsn) + ": " + applied.message());
    }
    ++report->journal_deltas_applied;
  }

  auto out = std::unique_ptr<DurableEngine>(
      new DurableEngine(std::move(durable), std::move(vault), std::move(engine)));

  // 4. Attach durability BEFORE Recover(): the repairs Recover makes (and the
  //    journal entries it retires) must themselves be logged, or a crash
  //    during recovery would resurrect already-repaired work.
  out->engine_->SetJournalDurability(out.get());
  out->durable_->SetSidecarSnapshotProvider(
      [eng = out->engine_.get()] { return eng->journal().Serialize(); });

  // 5. Disguise log: mirror table first (DDL, unsafe mid-batch), then the
  //    in-memory rebuild recovery and audits read from.
  RETURN_IF_ERROR(out->engine_->EnsureLogMirror());
  RETURN_IF_ERROR(out->engine_->LoadLogFromMirror());

  // 6. Engine-level repair of whatever operation the crash interrupted.
  ASSIGN_OR_RETURN(report->recovery, out->engine_->Recover());
  if (report->recovery.TotalRepairs() > 0) {
    EDNA_LOG(kInfo) << "durable open repaired interrupted work: "
                    << report->recovery.ToString();
  }
  return out;
}

Status DurableEngine::AppendJournalDelta(std::vector<uint8_t> delta) {
  return durable_->AppendSidecar(std::move(delta)).status();
}

void DurableEngine::StageJournalDelta(std::vector<uint8_t> delta) {
  durable_->StageAttachment(std::move(delta));
}

}  // namespace edna::core
