// Explain: a read-only dry run that reports the consequences of applying a
// disguise — §1's "static analysis and other techniques may be required to
// explain the consequences of a disguise", realized dynamically against the
// current database contents. Nothing is mutated; no log entry or vault
// record is produced.
#ifndef SRC_CORE_EXPLAIN_H_
#define SRC_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/disguise/spec.h"
#include "src/sql/eval.h"

namespace edna::core {

class DisguiseEngine;

// What one transformation would do.
struct ExplainEntry {
  std::string table;
  disguise::TransformKind kind = disguise::TransformKind::kRemove;
  std::string detail;       // column / foreign key description
  size_t matching_rows = 0; // rows the predicate selects right now
  // kRemove only: rows in other tables that the FK closure would also
  // delete (CASCADE) or null out (SET NULL).
  size_t cascaded_rows = 0;
  size_t nulled_references = 0;
  // How the database would find the matching rows ("probe(eq(contactId =
  // $UID))", "scan(Paper)", ...); from Database::DescribePlan.
  std::string plan;
  // The compiled form of the predicate on the hot path: instruction and
  // register counts, and whether the static program checker (sql/verify.h)
  // accepted it.
  size_t program_instructions = 0;
  size_t program_registers = 0;
  bool program_verified = false;
};

struct ExplainReport {
  std::string spec_name;
  std::vector<ExplainEntry> entries;
  size_t total_rows_affected = 0;
  size_t placeholders_to_create = 0;
  // Composition: reveal records of prior active disguises that hold this
  // user's data and would have to be consulted (per-user specs only).
  size_t prior_records_involved = 0;
  bool would_compose = false;

  // Human-readable multi-line rendering.
  std::string ToString() const;
};

}  // namespace edna::core

#endif  // SRC_CORE_EXPLAIN_H_
