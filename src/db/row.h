// Row representation. A Row is a flat vector of Values positionally aligned
// with its table's column list. RowId is a table-local, never-reused handle.
#ifndef SRC_DB_ROW_H_
#define SRC_DB_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sql/value.h"

namespace edna::db {

using Row = std::vector<sql::Value>;
using RowId = uint64_t;

constexpr RowId kInvalidRowId = 0;  // RowIds start at 1

// Non-owning view of a stored row.
struct RowRef {
  RowId id = kInvalidRowId;
  const Row* row = nullptr;
};

// Renders a row as a compact tuple string for logs/tests.
std::string RowToString(const Row& row);

}  // namespace edna::db

#endif  // SRC_DB_ROW_H_
