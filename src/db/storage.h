// Whole-database serialization: schema, rows (with stable row ids), and
// auto-increment counters, in the same little-endian wire format the vault
// uses. Lets tools snapshot a database to a file and reload it, and gives
// benches/CLI a way to ship prepared datasets.
//
// Loading validates referential integrity once after all rows are in (rows
// arrive in table order, which need not be FK order — self-referencing
// tables like lobsters' users.invited_by_user_id make per-row checking
// impossible), so a corrupted image cannot produce a silently broken
// database.
#ifndef SRC_DB_STORAGE_H_
#define SRC_DB_STORAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"

namespace edna::db {

// Serializes the full database state.
std::vector<uint8_t> SerializeDatabase(const Database& db);

// Reconstructs a database from `wire`. Fails (without partial state) on any
// corruption, schema violation, or integrity violation.
StatusOr<std::unique_ptr<Database>> DeserializeDatabase(const std::vector<uint8_t>& wire);

// File convenience wrappers.
Status SaveDatabaseToFile(const Database& db, const std::string& path);
StatusOr<std::unique_ptr<Database>> LoadDatabaseFromFile(const std::string& path);

}  // namespace edna::db

#endif  // SRC_DB_STORAGE_H_
