// Whole-database serialization: schema, rows (with stable row ids), and
// auto-increment counters, in the same little-endian wire format the vault
// uses. Lets tools snapshot a database to a file and reload it, and gives
// benches/CLI a way to ship prepared datasets. The durable layer
// (src/db/durable.h) reuses it for checkpoint snapshots.
//
// Loading validates referential integrity once after all rows are in (rows
// arrive in table order, which need not be FK order — self-referencing
// tables like lobsters' users.invited_by_user_id make per-row checking
// impossible), so a corrupted image cannot produce a silently broken
// database. Since image v3 the body additionally carries a CRC32, so
// corruption is detected up front rather than through downstream FK
// validation alone.
#ifndef SRC_DB_STORAGE_H_
#define SRC_DB_STORAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/sql/codec.h"

namespace edna::db {

// Serializes the full database state (current format: v3, CRC32-framed).
std::vector<uint8_t> SerializeDatabase(const Database& db);

// Reconstructs a database from `wire`. Fails (without partial state) on any
// corruption, schema violation, or integrity violation. Accepts v3 (CRC32
// verified) and legacy v2 (no checksum) images.
StatusOr<std::unique_ptr<Database>> DeserializeDatabase(const std::vector<uint8_t>& wire);

// File convenience wrappers.
Status SaveDatabaseToFile(const Database& db, const std::string& path);

// Loads an image file. The status code distinguishes the failure classes a
// recovery path must treat differently:
//   * kNotFound        — the file does not exist ("no snapshot yet");
//   * kInternal        — the file exists but could not be read fully
//                        (I/O error / short read);
//   * kInvalidArgument — the bytes were read but are not a valid image
//                        (bad magic/version, CRC mismatch, truncated or
//                        corrupt body — "snapshot destroyed").
StatusOr<std::unique_ptr<Database>> LoadDatabaseFromFile(const std::string& path);

// Single-table schema wire form, shared with the WAL's DDL records
// (src/db/wal.h) so a table created after the last snapshot replays with an
// identical schema.
void SerializeTableSchema(sql::ByteWriter* w, const TableSchema& ts);
StatusOr<TableSchema> DeserializeTableSchema(sql::ByteReader* r);

// Single-column wire form (WAL add-column records).
void SerializeColumnDef(sql::ByteWriter* w, const ColumnDef& col);
StatusOr<ColumnDef> DeserializeColumnDef(sql::ByteReader* r);

}  // namespace edna::db

#endif  // SRC_DB_STORAGE_H_
