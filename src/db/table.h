// Physical table storage: row heap plus primary-key and secondary indexes.
//
// Table enforces intra-table constraints (types, nullability, PK uniqueness,
// auto-increment assignment). Cross-table (foreign key) integrity is the
// Database's job. Mutations return enough information for the transaction
// undo log to reverse them exactly.
#ifndef SRC_DB_TABLE_H_
#define SRC_DB_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/db/column_store.h"
#include "src/db/row.h"
#include "src/db/schema.h"

namespace edna::db {

class PageCache;

// Composite primary-key value with lexicographic ordering.
struct PkKey {
  std::vector<sql::Value> values;
  bool operator<(const PkKey& other) const;
  bool operator==(const PkKey& other) const;
  std::string ToString() const;
};

class Table {
 public:
  explicit Table(TableSchema schema);

  // Tables own index structures; moving would invalidate nothing but copying
  // must be explicit (see Clone) to avoid accidental deep copies.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  Table Clone() const;

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  // Inserts a full-width row (values positionally aligned with the schema).
  // NULL in an auto-increment column is replaced by the next counter value.
  // Missing constraints => kInvalidArgument / kAlreadyExists (duplicate PK).
  StatusOr<RowId> Insert(Row row);

  // Inserts with an explicit RowId (transaction rollback path); the id must
  // not be live.
  Status InsertWithId(RowId id, Row row);

  // Row access. With a pager attached, Find faults the row's page in; a
  // fault failure returns nullptr and records a sticky error on the cache
  // (the Database surfaces it at the statement boundary). Contains is
  // payload-free on purpose: existence checks must never fault.
  const Row* Find(RowId id) const;
  bool Contains(RowId id) const { return rows_.count(id) > 0; }

  // Primary key lookup.
  StatusOr<RowId> LookupPk(const PkKey& key) const;
  PkKey ExtractPk(const Row& row) const;

  // Removes a row; returns the removed contents for undo logging.
  StatusOr<Row> Erase(RowId id);

  // Replaces column `col_idx` of row `id`; returns the previous value.
  // Enforces type/nullability and PK uniqueness if the column is in the PK.
  StatusOr<sql::Value> UpdateColumn(RowId id, size_t col_idx, sql::Value value);

  // Full-row replace (used by restore paths); same constraint checks.
  Status UpdateRow(RowId id, Row row);

  // Equality scan through the secondary or PK index on `column` if one
  // exists; falls back to nullptr (caller must scan) when not indexed.
  // The out parameter receives matching row ids.
  bool IndexLookup(const std::string& column, const sql::Value& value,
                   std::vector<RowId>* out) const;

  // True if `column` has an exact-match index (secondary, or the whole
  // single-column primary key).
  bool HasIndexOn(const std::string& column) const;

  // Ordered range probe over `column`: row ids whose value lies in
  // [lo, hi] (either bound may be nullptr = open; inclusivity per flag).
  // NULL column values never match; a NULL bound matches nothing (any
  // comparison with it is UNKNOWN). Returns false when the column has no
  // ordered index (declared secondary, or single-column PK).
  bool RangeLookup(const std::string& column, const sql::Value* lo, bool lo_inclusive,
                   const sql::Value* hi, bool hi_inclusive, std::vector<RowId>* out) const;

  // True if `column` supports RangeLookup.
  bool HasOrderedIndexOn(const std::string& column) const;

  // Row ids whose `column` IS NULL, via the secondary index's null set.
  // Returns false when the column has no secondary index (the PK fast path
  // does not apply: PK columns are NOT NULL).
  bool NullLookup(const std::string& column, std::vector<RowId>* out) const;

  // True if `column` supports NullLookup.
  bool HasNullTrackingOn(const std::string& column) const;

  // Iterates all rows in RowId order; callback may not mutate the table.
  void Scan(const std::function<void(RowId, const Row&)>& fn) const;

  // Stable list of all live row ids (ascending).
  std::vector<RowId> AllRowIds() const;

  // The next value the auto-increment counter would produce (for tests).
  int64_t PeekAutoIncrement() const { return auto_counter_ + 1; }

  // Raises the auto-increment counter to at least `v` (image-load path; the
  // highest-valued row may have been deleted before the snapshot).
  void EnsureAutoCounterAtLeast(int64_t v) { auto_counter_ = std::max(auto_counter_, v); }

  // Schema evolution: appends a column, filling existing rows with `fill`
  // (type- and nullability-checked). New columns carry no secondary index
  // until BuildIndex is called.
  Status AddColumn(ColumnDef col, const sql::Value& fill);

  // Builds (and backfills) a secondary hash index on `column`.
  Status BuildIndex(const std::string& column);

  // Validates every internal index entry against the row heap (test hook).
  // With a pager attached this faults every page in first (the audit reads
  // all payloads); callers should evict afterwards.
  Status CheckIndexConsistency() const;

  // ---- Page cache integration (src/db/pagecache.h) ----
  //
  // With a pager attached, row ids and all indexes stay fully resident while
  // row PAYLOADS spill at page granularity: a spilled row keeps its map node
  // with an empty payload vector, and every payload-touching method faults
  // the page in via the pager first. A page is entirely resident or entirely
  // spilled, and mutators fault before mutating, so a spilled page's extent
  // frame is always an exact image of its live rows.

  // Attaches the pager (once, before concurrent use; Database attach path).
  void SetPager(PageCache* pager, uint32_t table_id, uint32_t rows_per_page);
  bool has_pager() const { return pager_ != nullptr; }
  uint64_t PageOf(RowId id) const { return (id - 1) / rows_per_page_; }

  // Faults the row's page / every spilled page back in.
  Status EnsureRowResident(RowId id) const;
  Status EnsureAllResident() const;

  // Page-granular payload plumbing, called back by PageCache under its
  // mutex (eviction holds the stripe exclusively; faults hold at least a
  // shared stripe — the cache mutex serializes concurrent installers).
  void CollectPageRows(uint64_t page,
                       std::vector<std::pair<RowId, const Row*>>* out) const;
  void DropPageRows(uint64_t page);
  Status InstallPageRows(uint64_t page, std::vector<std::pair<RowId, Row>>* rows);
  const std::map<RowId, Row>& RawRows() const { return rows_; }

  // ---- Column-major sidecar (src/db/column_store.h) ----
  //
  // Transposed slab copies of kChunkLanes-row ranges, built lazily for
  // vectorized full scans and invalidated by every mutation of their range
  // (and by page eviction). Callers hold at least a shared stripe lock; the
  // returned slab stays valid for the rest of the statement.

  // Slab count covering every RowId ever assigned (trailing slabs may be
  // entirely empty after mass deletions; their `present` bitmap is zero).
  size_t NumColumnSlabs() const;

  // The slab at `index`, rebuilt if stale. With a pager attached the rebuild
  // faults the covered pages in; a fault failure propagates (unlike Find,
  // there is a status channel here — nothing goes sticky).
  StatusOr<const ColumnSlab*> GetColumnSlab(size_t index) const;

  // Rebuild counter passthrough (coherence tests).
  uint64_t ColumnSlabRebuilds() const { return col_store_->rebuilds(); }

 private:
  Status ValidateRowShape(const Row& row) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);
  Status BuildColumnSlab(size_t index, ColumnSlab* out) const;

  TableSchema schema_;
  std::map<RowId, Row> rows_;  // ordered so scans are deterministic
  RowId next_row_id_ = 1;
  int64_t auto_counter_ = 0;

  // Sidecar behind a pointer: ColumnStore holds a mutex, and Table must stay
  // movable. Never null after construction; Clone() starts the copy with a
  // fresh (all-stale) store.
  std::unique_ptr<ColumnStore> col_store_ = std::make_unique<ColumnStore>();

  // Page cache attachment (null = fully resident, the default).
  PageCache* pager_ = nullptr;
  uint32_t table_id_ = 0;
  uint32_t rows_per_page_ = 1;

  std::map<PkKey, RowId> pk_index_;
  // value -> row ids (non-NULL values only).
  using HashIndex =
      std::unordered_map<sql::Value, std::unordered_set<RowId>, sql::ValueHash,
                         sql::ValueSqlEq>;
  // Value::Compare total order; used for range probes.
  using OrderedIndex = std::map<sql::Value, std::set<RowId>>;

  // One secondary index: equality buckets plus the rows whose value IS NULL
  // (so `col IS NULL` plans as a probe). Declared indexes (IndexDef /
  // CreateIndex) additionally maintain an ordered mirror for range/BETWEEN;
  // implicit FK indexes stay hash-only — FK probes are equality-only and the
  // FK columns sit on the engine's hottest write path.
  struct SecondaryIndex {
    HashIndex eq;
    std::set<RowId> nulls;
    bool ordered = false;
    OrderedIndex sorted;
  };
  std::unordered_map<std::string, SecondaryIndex> secondary_;
};

}  // namespace edna::db

#endif  // SRC_DB_TABLE_H_
