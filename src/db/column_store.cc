#include "src/db/column_store.h"

#include <algorithm>

namespace edna::db {

void ColumnStore::Invalidate(RowId id) { InvalidateRange(id, id); }

void ColumnStore::InvalidateRange(RowId first, RowId last) {
  if (first == kInvalidRowId || last < first || slabs_.empty()) {
    return;
  }
  const size_t lo = SlabIndexOf(first);
  const size_t hi = std::min(SlabIndexOf(last), slabs_.size() - 1);
  for (size_t i = lo; i <= hi && i < slabs_.size(); ++i) {
    if (slabs_[i] != nullptr && slabs_[i]->valid) {
      slabs_[i]->valid = false;
      slabs_[i]->slab = ColumnSlab{};  // release column memory now
    }
  }
}

void ColumnStore::InvalidateAll() {
  for (auto& entry : slabs_) {
    if (entry != nullptr && entry->valid) {
      entry->valid = false;
      entry->slab = ColumnSlab{};
    }
  }
}

const ColumnSlab* ColumnStore::Acquire(size_t index,
                                       const std::function<Status(ColumnSlab*)>& build,
                                       Status* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slabs_.size()) {
    slabs_.resize(index + 1);
  }
  if (slabs_[index] == nullptr) {
    slabs_[index] = std::make_unique<Entry>();
  }
  Entry& entry = *slabs_[index];
  if (!entry.valid) {
    entry.slab = ColumnSlab{};
    Status built = build(&entry.slab);
    if (!built.ok()) {
      entry.slab = ColumnSlab{};
      *error = built;
      return nullptr;
    }
    entry.valid = true;
    ++rebuilds_;
  }
  return &entry.slab;
}

}  // namespace edna::db
