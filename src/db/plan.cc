#include "src/db/plan.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/strings.h"
#include "src/sql/eval.h"

namespace edna::db {

namespace {

void FlattenAnd(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e->kind() == sql::ExprKind::kBinary && e->binary_op() == sql::BinaryOp::kAnd) {
    FlattenAnd(e->children()[0].get(), out);
    FlattenAnd(e->children()[1].get(), out);
    return;
  }
  out->push_back(e);
}

void FlattenOr(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e->kind() == sql::ExprKind::kBinary && e->binary_op() == sql::BinaryOp::kOr) {
    FlattenOr(e->children()[0].get(), out);
    FlattenOr(e->children()[1].get(), out);
    return;
  }
  out->push_back(e);
}

// A column reference the probe machinery can use: unqualified, or qualified
// with the planned table's own name.
bool IsOwnColumn(const sql::Expr& e, const Table& table) {
  return e.kind() == sql::ExprKind::kColumnRef &&
         (e.table().empty() || e.table() == table.schema().name());
}

// Mirror a comparison across `=`: 5 < col  ==  col > 5.
sql::BinaryOp FlipComparison(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kLt:
      return sql::BinaryOp::kGt;
    case sql::BinaryOp::kLe:
      return sql::BinaryOp::kGe;
    case sql::BinaryOp::kGt:
      return sql::BinaryOp::kLt;
    case sql::BinaryOp::kGe:
      return sql::BinaryOp::kLe;
    default:
      return op;
  }
}

// Classifies one AND conjunct as an index probe, or nullopt if no index
// supports it (it then rides along in the residual filter only).
std::optional<IndexProbe> ClassifyConjunct(const Table& table, const sql::Expr& e) {
  switch (e.kind()) {
    case sql::ExprKind::kBinary: {
      sql::BinaryOp op = e.binary_op();
      if (op != sql::BinaryOp::kEq && op != sql::BinaryOp::kLt &&
          op != sql::BinaryOp::kLe && op != sql::BinaryOp::kGt &&
          op != sql::BinaryOp::kGe) {
        return std::nullopt;
      }
      const sql::Expr* lhs = e.children()[0].get();
      const sql::Expr* rhs = e.children()[1].get();
      if (!IsOwnColumn(*lhs, table)) {
        std::swap(lhs, rhs);
        op = FlipComparison(op);
      }
      if (!IsOwnColumn(*lhs, table) || !sql::IsConstantExpression(*rhs)) {
        return std::nullopt;
      }
      IndexProbe probe;
      probe.column = lhs->column();
      if (op == sql::BinaryOp::kEq) {
        if (!table.HasIndexOn(probe.column)) {
          return std::nullopt;
        }
        probe.kind = IndexProbe::Kind::kEq;
        probe.eq_value = rhs->Clone();
        return probe;
      }
      if (!table.HasOrderedIndexOn(probe.column)) {
        return std::nullopt;
      }
      probe.kind = IndexProbe::Kind::kRange;
      if (op == sql::BinaryOp::kGt || op == sql::BinaryOp::kGe) {
        probe.lo = rhs->Clone();
        probe.lo_inclusive = op == sql::BinaryOp::kGe;
      } else {
        probe.hi = rhs->Clone();
        probe.hi_inclusive = op == sql::BinaryOp::kLe;
      }
      return probe;
    }
    case sql::ExprKind::kIn: {
      // NOT IN cannot narrow (its matches are everything OUTSIDE the list).
      if (e.negated() || !IsOwnColumn(*e.children()[0], table) ||
          !table.HasIndexOn(e.children()[0]->column())) {
        return std::nullopt;
      }
      for (size_t i = 1; i < e.children().size(); ++i) {
        if (!sql::IsConstantExpression(*e.children()[i])) {
          return std::nullopt;
        }
      }
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kIn;
      probe.column = e.children()[0]->column();
      for (size_t i = 1; i < e.children().size(); ++i) {
        probe.in_items.push_back(e.children()[i]->Clone());
      }
      return probe;
    }
    case sql::ExprKind::kBetween: {
      if (e.negated() || !IsOwnColumn(*e.children()[0], table) ||
          !table.HasOrderedIndexOn(e.children()[0]->column()) ||
          !sql::IsConstantExpression(*e.children()[1]) ||
          !sql::IsConstantExpression(*e.children()[2])) {
        return std::nullopt;
      }
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kRange;
      probe.column = e.children()[0]->column();
      probe.lo = e.children()[1]->Clone();
      probe.hi = e.children()[2]->Clone();
      return probe;
    }
    case sql::ExprKind::kIsNull: {
      // IS NOT NULL matches nearly everything; probing it would not narrow.
      if (e.negated() || !IsOwnColumn(*e.children()[0], table) ||
          !table.HasNullTrackingOn(e.children()[0]->column())) {
        return std::nullopt;
      }
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kIsNull;
      probe.column = e.children()[0]->column();
      return probe;
    }
    default:
      return std::nullopt;
  }
}

// Rank for intersection seeding: equality-style probes first (smallest
// expected row sets), ranges last. Stable across runs for determinism.
int ProbeRank(const IndexProbe& p) {
  switch (p.kind) {
    case IndexProbe::Kind::kEq:
      return 0;
    case IndexProbe::Kind::kIsNull:
      return 1;
    case IndexProbe::Kind::kIn:
      return 2;
    case IndexProbe::Kind::kRange:
      return 3;
  }
  return 4;
}

std::string DescribeProbes(const std::vector<IndexProbe>& probes, const char* sep) {
  std::vector<std::string> parts;
  parts.reserve(probes.size());
  for (const IndexProbe& p : probes) {
    parts.push_back(p.Describe());
  }
  return StrJoin(parts, sep);
}

}  // namespace

std::string IndexProbe::Describe() const {
  switch (kind) {
    case Kind::kEq:
      return "eq(" + column + " = " + eq_value->ToString() + ")";
    case Kind::kIn:
      return StrFormat("in(%s, %zu items)", column.c_str(), in_items.size());
    case Kind::kRange: {
      std::string s = "range(";
      if (lo != nullptr) {
        s += lo->ToString() + (lo_inclusive ? " <= " : " < ");
      }
      s += column;
      if (hi != nullptr) {
        s += (hi_inclusive ? " <= " : " < ") + hi->ToString();
      }
      return s + ")";
    }
    case Kind::kIsNull:
      return "null(" + column + ")";
  }
  return "?";
}

StatusOr<std::shared_ptr<const TablePlan>> PlanPredicate(const Table& table,
                                                         const sql::Expr& pred) {
  auto plan = std::make_shared<TablePlan>();

  if (sql::IsConstantExpression(pred)) {
    plan->access = TablePlan::Access::kConstant;
    plan->constant = pred.Clone();
    plan->description = "constant(" + pred.ToString() + ")";
    return std::shared_ptr<const TablePlan>(std::move(plan));
  }

  // Non-constant plans filter candidates through the full compiled
  // predicate — unless the probes alone are exact. Unknown columns become
  // deferred errors (lazy, like the interpreter), so binding failures never
  // fail planning. Compiled lazily below: the engine's hot path emits many
  // one-shot literal predicates whose plans are exact, and compiling a
  // residual for each would cost more than it ever saves.
  const TableSchema& schema = table.schema();
  auto compile_residual = [&]() -> Status {
    sql::ColumnBinder binder = [&schema](const std::string& tbl,
                                         const std::string& column) -> StatusOr<size_t> {
      if (!tbl.empty() && tbl != schema.name()) {
        return NotFound("unknown table qualifier \"" + tbl + "\" (row is from \"" +
                        schema.name() + "\")");
      }
      int idx = schema.ColumnIndex(column);
      if (idx < 0) {
        return NotFound("unknown column \"" + column + "\" in table \"" + schema.name() +
                        "\"");
      }
      return static_cast<size_t>(idx);
    };
    ASSIGN_OR_RETURN(sql::CompiledPredicate compiled,
                     sql::CompiledPredicate::Compile(pred, binder));
    plan->residual.emplace(std::move(compiled));
    return OkStatus();
  };

  // AND of conjuncts: collect every indexable conjunct; the executor
  // intersects their row sets, seeding from the smallest.
  std::vector<const sql::Expr*> conjuncts;
  FlattenAnd(&pred, &conjuncts);
  for (const sql::Expr* c : conjuncts) {
    if (auto probe = ClassifyConjunct(table, *c)) {
      plan->probes.push_back(std::move(*probe));
    }
  }
  if (!plan->probes.empty()) {
    std::stable_sort(plan->probes.begin(), plan->probes.end(),
                     [](const IndexProbe& a, const IndexProbe& b) {
                       return ProbeRank(a) < ProbeRank(b);
                     });
    plan->access = TablePlan::Access::kProbe;
    // One conjunct that IS the probe: the probe decides, no residual.
    plan->exact = conjuncts.size() == 1 && plan->probes.size() == 1;
    if (!plan->exact) {
      RETURN_IF_ERROR(compile_residual());
    }
    plan->description = "probe(" + DescribeProbes(plan->probes, " & ") + ")";
    return std::shared_ptr<const TablePlan>(std::move(plan));
  }

  // OR whose every arm contains an indexable conjunct: the union of one
  // probe per arm is a superset of the OR's matches (each arm's probe
  // covers at least that arm).
  if (pred.kind() == sql::ExprKind::kBinary &&
      pred.binary_op() == sql::BinaryOp::kOr) {
    std::vector<const sql::Expr*> arms;
    FlattenOr(&pred, &arms);
    std::vector<IndexProbe> union_arms;
    bool all_indexable = true;
    bool all_exact = true;
    for (const sql::Expr* arm : arms) {
      std::vector<const sql::Expr*> arm_conjuncts;
      FlattenAnd(arm, &arm_conjuncts);
      std::optional<IndexProbe> best;
      for (const sql::Expr* c : arm_conjuncts) {
        auto probe = ClassifyConjunct(table, *c);
        if (probe && (!best || ProbeRank(*probe) < ProbeRank(*best))) {
          best = std::move(probe);
        }
      }
      if (!best) {
        all_indexable = false;
        break;
      }
      all_exact = all_exact && arm_conjuncts.size() == 1;
      union_arms.push_back(std::move(*best));
    }
    if (all_indexable) {
      plan->access = TablePlan::Access::kUnion;
      plan->union_arms = std::move(union_arms);
      // Every arm IS its probe: the deduplicated union decides outright.
      plan->exact = all_exact;
      if (!plan->exact) {
        RETURN_IF_ERROR(compile_residual());
      }
      plan->description = "union(" + DescribeProbes(plan->union_arms, " | ") + ")";
      return std::shared_ptr<const TablePlan>(std::move(plan));
    }
  }

  plan->access = TablePlan::Access::kFullScan;
  plan->description = "scan(" + schema.name() + ")";
  RETURN_IF_ERROR(compile_residual());
  return std::shared_ptr<const TablePlan>(std::move(plan));
}

}  // namespace edna::db
