// Write-ahead log: the append-only redo stream under the durable database
// (src/db/durable.h).
//
// File layout (little-endian, docs/FORMATS.md "Write-ahead log"):
//
//   header:  u32 magic "EDNW", u32 version, u64 base_lsn
//   frames:  u32 payload_len | u32 crc32(payload) | payload
//   payload: u64 lsn | u8 kind | body
//
// LSNs are assigned densely at append time, starting at the header's
// base_lsn; truncation (after a checkpoint) rewrites the header with the
// next LSN, so LSNs stay monotonic across the log's whole lifetime and a
// snapshot named by LSN L dominates exactly the records with lsn <= L.
//
// Records carry *physical redo*: a commit record holds the net row images
// the transaction left behind (full-row put / erase), not the statements
// that produced them. Replay is therefore idempotent — a record may be
// re-applied after a crash mid-checkpoint without changing the outcome.
//
// Torn-tail semantics: Open() scans the file, keeps the longest valid
// prefix (length sane, CRC matches, LSN in sequence), and truncates the
// rest. A crash can only lose a suffix of un-fsynced records, never corrupt
// the recovered prefix, and never produces a half-applied record.
//
// Group commit: Sync(lsn) in kGroup mode elects the first waiter as leader;
// the leader optionally lingers for group_window_us to gather more commits,
// then issues one fsync covering every record appended so far. Real fsync
// failures are sticky (the log refuses further syncs), because the kernel
// may have dropped dirty pages — retrying would report durability that
// never happened.
#ifndef SRC_DB_WAL_H_
#define SRC_DB_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/db/row.h"
#include "src/db/schema.h"
#include "src/sql/value.h"

namespace edna::db {

// One net row change of a committed transaction. `erase` drops the row if
// present; otherwise `row` is the full post-commit image (insert-or-replace
// on replay).
struct WalChange {
  bool erase = false;
  std::string table;
  RowId id = kInvalidRowId;
  Row row;
};

// Body of a commit record.
struct WalCommit {
  std::vector<WalChange> changes;
  // Post-commit auto-increment values of touched tables (last assigned id),
  // so replayed databases hand out the same ids the original would have.
  std::vector<std::pair<std::string, int64_t>> counters;
  // Opaque upper-layer payloads that ride the commit atomically (the engine
  // stages commit-journal phase advances here; see src/core/durable_engine.h).
  std::vector<std::vector<uint8_t>> attachments;
};

struct WalRecord {
  enum class Kind : uint8_t {
    kCommit = 1,       // WalCommit
    kCreateTable = 2,  // schema
    kAddColumn = 3,    // table, column def, fill value
    kCreateIndex = 4,  // table, column name
    kSidecar = 5,      // opaque upper-layer record (journal deltas)
  };

  Kind kind = Kind::kCommit;
  uint64_t lsn = 0;  // assigned by Append

  WalCommit commit;                  // kCommit
  std::optional<TableSchema> schema; // kCreateTable
  std::string table;                 // kAddColumn / kCreateIndex
  ColumnDef column;                  // kAddColumn
  sql::Value fill;                   // kAddColumn
  std::string index_column;          // kCreateIndex
  std::vector<uint8_t> sidecar;      // kSidecar
};

// Outcome of the Open() scan, for recovery reporting.
struct WalScanStats {
  size_t records_recovered = 0;
  size_t torn_bytes_dropped = 0;  // invalid tail truncated from the file
  std::string torn_reason;        // empty if the file ended cleanly
};

struct WalOptions {
  enum class SyncMode : uint8_t {
    kNone,       // never fsync (bench baseline; durability = page cache)
    kPerCommit,  // fsync inside every Sync() call
    kGroup,      // leader-follower batched fsync (default)
  };
  SyncMode sync_mode = SyncMode::kGroup;
  // kGroup: how long the elected leader lingers before fsyncing, letting
  // concurrent committers join the same flush. 0 still merges every waiter
  // present at flush time.
  int group_window_us = 100;
};

class WriteAheadLog {
 public:
  // Opens (creating if absent) the log at `path`, scans it, truncates any
  // torn tail, and returns the decoded records in LSN order via `replay`.
  // A file whose *header* is unreadable or corrupt fails loudly with
  // kInvalidArgument — silently starting an empty log would discard
  // committed history.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const WalOptions& options,
      std::vector<WalRecord>* replay, WalScanStats* stats);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one record (assigning its LSN) to the OS file; durability
  // requires a subsequent Sync covering the returned LSN. Serialized
  // internally; callers may append concurrently. Write errors are sticky.
  StatusOr<uint64_t> Append(const WalRecord& record);

  // Blocks until every record with lsn' <= lsn is durable (per sync_mode).
  Status Sync(uint64_t lsn);

  // Syncs everything appended so far.
  Status Flush();

  // Checkpoint hook: if no record newer than `lsn` has been appended,
  // atomically resets the log to empty with base_lsn = lsn + 1 (flushing
  // first) and returns true. Returns false — without touching the file —
  // if concurrent appends moved past `lsn`; the snapshot that covers `lsn`
  // stays valid either way, replay just skips the prefix.
  StatusOr<bool> TruncateIfCovered(uint64_t lsn);

  uint64_t appended_lsn() const;  // last LSN handed out (0 = none yet)
  uint64_t durable_lsn() const;   // last LSN known fsync-covered
  uint64_t SizeBytes() const;     // current file size

  const WalOptions& options() const { return options_; }

 private:
  WriteAheadLog(std::string path, int fd, const WalOptions& options,
                uint64_t next_lsn, uint64_t size_bytes);

  // fsyncs the fd; wraps the result in the sticky error state.
  Status FsyncLocked();

  const std::string path_;
  const WalOptions options_;

  mutable std::mutex append_mu_;  // serializes writes + header rewrites
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t size_bytes_ = 0;
  Status write_error_;  // sticky: first failed append poisons the log

  mutable std::mutex sync_mu_;  // leaf; never held with append_mu_ held
  std::condition_variable sync_cv_;
  bool sync_in_progress_ = false;
  uint64_t durable_lsn_ = 0;
  Status sync_error_;  // sticky: a real failed fsync poisons durability

  std::atomic<uint64_t> appended_lsn_{0};
};

// Record body codec, exposed for tests and the durable layer.
std::vector<uint8_t> EncodeWalPayload(const WalRecord& record);
StatusOr<WalRecord> DecodeWalPayload(const std::vector<uint8_t>& payload);

}  // namespace edna::db

#endif  // SRC_DB_WAL_H_
