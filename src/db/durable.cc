#include "src/db/durable.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/db/storage.h"

namespace edna::db {

namespace {

constexpr char kWalFileName[] = "wal.edw";
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".edb";
constexpr char kJournalPrefix[] = "journal-";
constexpr char kJournalSuffix[] = ".ednj";

// The calling thread's staged commit attachment per instance (see
// StageAttachment). Keyed by pointer; Open() clears the current thread's
// slot for a fresh instance so a recycled address cannot inherit a payload
// staged before a simulated crash.
thread_local std::unordered_map<const DurableDatabase*, std::vector<uint8_t>>
    tls_staged;

Status WriteFully(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Internal(std::string("write failed: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return OkStatus();
}

// fsyncs the directory so a just-renamed entry survives a crash.
Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Internal("cannot open directory \"" + dir + "\" for fsync");
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Internal("fsync of directory \"" + dir + "\" failed");
  }
  return OkStatus();
}

// Atomic file install: write <final>.tmp, fsync it, rename over <final>,
// fsync the directory. `rename_failpoint` (optional) is evaluated between
// the temp write and the rename — the crash window where the new file is
// complete but invisible.
Status WriteFileDurably(const std::string& dir, const std::string& final_name,
                        const std::vector<uint8_t>& bytes,
                        const char* rename_failpoint) {
  const std::string tmp = dir + "/" + final_name + ".tmp";
  const std::string final_path = dir + "/" + final_name;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Internal("cannot create \"" + tmp + "\": " + std::strerror(errno));
  }
  Status written = WriteFully(fd, bytes.data(), bytes.size());
  if (written.ok() && ::fsync(fd) != 0) {
    written = Internal("fsync of \"" + tmp + "\" failed");
  }
  ::close(fd);
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (rename_failpoint != nullptr) {
    EDNA_FAIL_POINT(rename_failpoint);
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Internal("cannot install \"" + final_path + "\": " + std::strerror(errno));
  }
  return SyncDirectory(dir);
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return NotFound("no file at \"" + path + "\"");
    }
    return Internal("cannot open \"" + path + "\": " + std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return Internal("read of \"" + path + "\" failed: " + std::strerror(errno));
    }
    if (n == 0) {
      break;
    }
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

// Files named <prefix><decimal lsn><suffix> in `dir`, newest (highest LSN)
// first.
std::vector<std::pair<uint64_t, std::string>> ListByLsn(const std::string& dir,
                                                        const std::string& prefix,
                                                        const std::string& suffix) {
  std::vector<std::pair<uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), std::move(name));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

DurableDatabase::DurableDatabase(std::string dir, DurableOptions options,
                                 std::unique_ptr<Database> db,
                                 std::unique_ptr<WriteAheadLog> wal)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      db_(std::move(db)),
      wal_(std::move(wal)) {}

DurableDatabase::~DurableDatabase() {
  if (db_ != nullptr) {
    db_->SetWalSink(nullptr);
  }
  tls_staged.erase(this);
}

std::string DurableDatabase::SnapshotPath(uint64_t lsn) const {
  return dir_ + "/" + kSnapshotPrefix +
         std::to_string(static_cast<unsigned long long>(lsn)) + kSnapshotSuffix;
}

std::string DurableDatabase::JournalPath(uint64_t lsn) const {
  return dir_ + "/" + kJournalPrefix +
         std::to_string(static_cast<unsigned long long>(lsn)) + kJournalSuffix;
}

StatusOr<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, const DurableOptions& options,
    DurableOpenReport* report) {
  DurableOpenReport local;
  DurableOpenReport* rep = report != nullptr ? report : &local;
  *rep = DurableOpenReport{};

  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return FailedPrecondition("cannot create data directory \"" + dir +
                              "\": " + std::strerror(errno));
  }

  // The WAL first: its scan (and torn-tail truncation) is independent of
  // which snapshot we start from, and its first replayable LSN decides how
  // far back a snapshot fallback may reach.
  std::vector<WalRecord> replay;
  std::unique_ptr<WriteAheadLog> wal;
  ASSIGN_OR_RETURN(wal, WriteAheadLog::Open(dir + "/" + kWalFileName, options.wal,
                                            &replay, &rep->wal));
  const uint64_t wal_first =
      replay.empty() ? wal->appended_lsn() + 1 : replay.front().lsn;

  // Newest readable snapshot whose gap the WAL still covers. A corrupt
  // snapshot is skipped (falling back to an older one, or to full replay)
  // ONLY when the WAL reaches back far enough; otherwise recovery fails
  // loudly rather than load a state with silent holes.
  std::unique_ptr<Database> db;
  bool have_snapshot = false;
  uint64_t snapshot_lsn = 0;
  for (auto& [lsn, name] : ListByLsn(dir, kSnapshotPrefix, kSnapshotSuffix)) {
    StatusOr<std::unique_ptr<Database>> loaded =
        LoadDatabaseFromFile(dir + "/" + name);
    if (loaded.ok()) {
      if (wal_first > lsn + 1) {
        return Internal(StrFormat(
            "recovery gap: \"%s\" covers lsn <= %llu but the WAL starts at "
            "%llu; a newer snapshot this WAL was truncated against is missing "
            "or corrupt",
            name.c_str(), static_cast<unsigned long long>(lsn),
            static_cast<unsigned long long>(wal_first)));
      }
      db = std::move(*loaded);
      have_snapshot = true;
      snapshot_lsn = lsn;
      break;
    }
    if (loaded.status().code() == StatusCode::kInvalidArgument) {
      rep->notes.push_back("skipped " + name + ": " + loaded.status().message());
      continue;
    }
    return loaded.status();  // I/O error: refuse to guess
  }
  if (!have_snapshot) {
    if (wal_first > 1) {
      return Internal(StrFormat(
          "recovery gap: no readable snapshot, and the WAL starts at lsn %llu "
          "(history before it was compacted into a snapshot that is now "
          "unreadable)",
          static_cast<unsigned long long>(wal_first)));
    }
    db = std::make_unique<Database>();
    if (!rep->notes.empty()) {
      rep->notes.push_back("recovering from an empty database via full WAL replay");
    }
  }

  // Attach the page cache before replay so recovery itself runs under the
  // memory budget. The EDNA_CACHE_MB environment variable is the test/CI
  // hook for forcing a budget without threading options everywhere.
  CacheOptions cache = options.cache;
  if (cache.max_resident_bytes == 0) {
    if (const char* env = std::getenv("EDNA_CACHE_MB"); env != nullptr) {
      // Strict parse: a typo'd budget must fail the open, not silently run
      // unbounded (strtoull("garbage") == 0 used to mean "no cache").
      uint64_t mb = 0;
      if (!ParseUint64(env, &mb)) {
        return InvalidArgument(StrFormat(
            "EDNA_CACHE_MB=\"%s\" is not an unsigned integer (megabytes)", env));
      }
      cache.max_resident_bytes = mb << 20;
    }
  }
  if (cache.max_resident_bytes > 0) {
    RETURN_IF_ERROR(db->AttachPageCache(cache, dir + "/extents"));
  }

  // Replay everything newer than the snapshot. Commit records are physical
  // redo (idempotent); DDL records are strict — a DDL that cannot re-apply
  // means the log and snapshot disagree, which must fail loudly.
  size_t replayed_since_evict = 0;
  for (const WalRecord& rec : replay) {
    if (rec.lsn <= snapshot_lsn) {
      continue;  // already folded into the snapshot (journal deltas too)
    }
    EDNA_FAIL_POINT(failpoints::kWalReplay);
    switch (rec.kind) {
      case WalRecord::Kind::kCommit: {
        for (const WalChange& ch : rec.commit.changes) {
          RETURN_IF_ERROR(db->ApplyWalChange(ch));
        }
        for (const auto& [table, counter] : rec.commit.counters) {
          RETURN_IF_ERROR(db->EnsureAutoCounterAtLeast(table, counter));
        }
        for (const std::vector<uint8_t>& blob : rec.commit.attachments) {
          rep->journal_deltas.emplace_back(rec.lsn, blob);
        }
        break;
      }
      case WalRecord::Kind::kCreateTable: {
        if (!rec.schema.has_value()) {
          return Internal("create-table WAL record without a schema");
        }
        RETURN_IF_ERROR(db->CreateTable(*rec.schema));
        break;
      }
      case WalRecord::Kind::kAddColumn: {
        RETURN_IF_ERROR(db->AddColumnToTable(rec.table, rec.column, rec.fill));
        break;
      }
      case WalRecord::Kind::kCreateIndex: {
        RETURN_IF_ERROR(db->CreateIndex(rec.table, rec.index_column));
        break;
      }
      case WalRecord::Kind::kSidecar: {
        rep->journal_deltas.emplace_back(rec.lsn, rec.sidecar);
        break;
      }
    }
    ++rep->records_replayed;
    // Replay applies rows below the statement-boundary eviction hooks;
    // sweep periodically so a long replay stays within the budget.
    if (++replayed_since_evict >= 64) {
      replayed_since_evict = 0;
      RETURN_IF_ERROR(db->MaybeEvictPages());
    }
  }
  // Replay applied rows without per-row FK checks (records may arrive in
  // any FK order within a commit); audit once, like the image loader does.
  // With a page cache the audit faults every page in (transiently exceeding
  // the budget); its trailing eviction pass restores the bound.
  RETURN_IF_ERROR(db->CheckIntegrity());
  rep->snapshot_lsn = snapshot_lsn;

  // The engine's journal image that matches the chosen snapshot.
  if (have_snapshot) {
    StatusOr<std::vector<uint8_t>> journal = ReadFileBytes(
        dir + "/" + kJournalPrefix +
        std::to_string(static_cast<unsigned long long>(snapshot_lsn)) +
        kJournalSuffix);
    if (journal.ok()) {
      rep->journal_image = std::move(*journal);
    } else if (journal.status().code() != StatusCode::kNotFound) {
      return journal.status();
    }
  }

  auto dd = std::unique_ptr<DurableDatabase>(new DurableDatabase(
      dir, options, std::move(db), std::move(wal)));
  tls_staged.erase(dd.get());
  // Attach the sink only now: nothing in recovery re-logs.
  dd->db_->SetWalSink(dd.get());
  return dd;
}

Status DurableDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  uint64_t mark = 0;
  std::unique_ptr<Database> copy;
  ASSIGN_OR_RETURN(copy, db_->SnapshotForCheckpoint(&mark));
  EDNA_FAIL_POINT(failpoints::kSnapshotWrite);

  // Journal image first: if we crash before the snapshot rename below, the
  // stray journal-<mark> file is invisible (recovery keys the journal off
  // the newest installed snapshot) and the next checkpoint collects it.
  if (sidecar_provider_) {
    EDNA_FAIL_POINT(failpoints::kJournalPersist);
    RETURN_IF_ERROR(WriteFileDurably(
        dir_,
        kJournalPrefix + std::to_string(static_cast<unsigned long long>(mark)) +
            kJournalSuffix,
        sidecar_provider_(), nullptr));
  }

  std::vector<uint8_t> wire = SerializeDatabase(*copy);
  copy.reset();
  RETURN_IF_ERROR(WriteFileDurably(
      dir_,
      kSnapshotPrefix + std::to_string(static_cast<unsigned long long>(mark)) +
          kSnapshotSuffix,
      wire, failpoints::kSnapshotRename));

  // Only now is it safe to drop the log prefix the snapshot covers. If
  // commits raced past `mark`, the log stays; replay just skips lsn <= mark.
  ASSIGN_OR_RETURN(bool truncated, wal_->TruncateIfCovered(mark));
  if (!truncated) {
    EDNA_LOG(kInfo) << "checkpoint at lsn " << mark
                    << ": WAL advanced concurrently, left untruncated";
  }
  GarbageCollect(mark);
  return OkStatus();
}

Status DurableDatabase::MaybeCheckpoint() {
  if (options_.checkpoint_threshold_bytes == 0 ||
      wal_->SizeBytes() <= options_.checkpoint_threshold_bytes) {
    return OkStatus();
  }
  return Checkpoint();
}

Status DurableDatabase::Flush() { return wal_->Flush(); }

void DurableDatabase::GarbageCollect(uint64_t keep_lsn) {
  for (auto& [lsn, name] : ListByLsn(dir_, kSnapshotPrefix, kSnapshotSuffix)) {
    if (lsn != keep_lsn) {
      ::unlink((dir_ + "/" + name).c_str());
    }
  }
  for (auto& [lsn, name] : ListByLsn(dir_, kJournalPrefix, kJournalSuffix)) {
    if (lsn != keep_lsn) {
      ::unlink((dir_ + "/" + name).c_str());
    }
  }
}

StatusOr<uint64_t> DurableDatabase::AppendSidecar(std::vector<uint8_t> blob) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kSidecar;
  rec.sidecar = std::move(blob);
  return wal_->Append(rec);
}

void DurableDatabase::StageAttachment(std::vector<uint8_t> blob) {
  tls_staged[this] = std::move(blob);
}

void DurableDatabase::SetSidecarSnapshotProvider(
    std::function<std::vector<uint8_t>()> provider) {
  sidecar_provider_ = std::move(provider);
}

StatusOr<uint64_t> DurableDatabase::AppendCommit(WalCommit commit) {
  // A staged payload rides this commit. It is consumed by the ATTEMPT, not
  // the outcome: a simulated crash in the append must lose it the same way
  // a real process death would.
  if (auto it = tls_staged.find(this); it != tls_staged.end()) {
    commit.attachments.push_back(std::move(it->second));
    tls_staged.erase(it);
  }
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCommit;
  rec.commit = std::move(commit);
  return wal_->Append(rec);
}

StatusOr<uint64_t> DurableDatabase::AppendDdl(const WalRecord& record) {
  return wal_->Append(record);
}

Status DurableDatabase::SyncCommit(uint64_t lsn) { return wal_->Sync(lsn); }

uint64_t DurableDatabase::AppendedLsn() const { return wal_->appended_lsn(); }

void DurableDatabase::OnRollback() { tls_staged.erase(this); }

}  // namespace edna::db
