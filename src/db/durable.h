// Durable database: a Database bound to an on-disk data directory through a
// write-ahead log and periodic compacted snapshots.
//
// Data-directory layout (docs/FORMATS.md, "Durable data directory"):
//
//   wal.edw              the write-ahead log (src/db/wal.h)
//   snapshot-<L>.edb     compacted database image covering LSNs <= L
//                        (db/storage.cc v3 format; L in decimal)
//   journal-<L>.ednj     the engine's commit-journal image matching
//                        snapshot-<L> (written by the checkpoint's sidecar
//                        provider; absent when no engine is attached)
//
// Open() = recovery: load the newest readable snapshot (falling back past
// corrupt ones only when the WAL still covers the gap — otherwise it fails
// loudly rather than load a state with silent holes), replay WAL records
// with lsn > snapshot LSN, truncate any torn tail, audit integrity, and only
// then attach the durability sink so replay itself never re-logs.
//
// Checkpoint() = compaction: deep-copy the database under shared locks (the
// copy's WAL high-water mark L names the snapshot), serialize and install
// the image via write-temp + fsync + rename + directory fsync, then truncate
// the WAL iff nothing newer than L was appended meanwhile. Every step is
// crash-interruptible: a snapshot is either fully installed or invisible,
// and the WAL is only emptied after the covering snapshot is on disk.
//
// The upper layer (src/core/durable_engine.h) persists its commit journal
// THROUGH the same WAL: standalone deltas ride kSidecar records, and the
// phase advance that must be atomic with a database commit is staged as a
// commit-record attachment (StageAttachment) on the committing thread.
#ifndef SRC_DB_DURABLE_H_
#define SRC_DB_DURABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/db/wal.h"

namespace edna::db {

struct DurableOptions {
  WalOptions wal;
  // MaybeCheckpoint() compacts once the WAL grows past this many bytes;
  // 0 disables automatic compaction (explicit Checkpoint() only).
  uint64_t checkpoint_threshold_bytes = 0;
  // Page cache budget (src/db/pagecache.h). max_resident_bytes == 0 leaves
  // the database fully resident unless the EDNA_CACHE_MB environment
  // variable supplies a budget (test/CI hook).
  CacheOptions cache;
};

// What recovery found, for callers that must compose further recovery on
// top (the engine replays journal_image + journal_deltas into its commit
// journal before running its own Recover()).
struct DurableOpenReport {
  uint64_t snapshot_lsn = 0;    // 0 = started from an empty database
  WalScanStats wal;             // torn-tail diagnosis from the WAL scan
  size_t records_replayed = 0;  // WAL records applied (lsn > snapshot_lsn)
  // journal-<snapshot_lsn>.ednj contents; empty when absent.
  std::vector<uint8_t> journal_image;
  // Journal deltas recovered from the WAL in LSN order (kSidecar records
  // plus commit-record attachments), all with lsn > snapshot_lsn.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> journal_deltas;
  std::vector<std::string> notes;  // e.g. corrupt snapshots skipped over
};

class DurableDatabase : public WalSink {
 public:
  // Opens (creating if needed) the data directory and recovers the database
  // from snapshot + WAL. On success the returned instance is attached as the
  // database's durability sink.
  static StatusOr<std::unique_ptr<DurableDatabase>> Open(
      const std::string& dir, const DurableOptions& options,
      DurableOpenReport* report);

  ~DurableDatabase() override;

  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  Database* db() { return db_.get(); }
  const std::string& dir() const { return dir_; }
  WriteAheadLog* wal() { return wal_.get(); }

  // Compacts: snapshot at the current WAL high-water mark, then truncates
  // the log if still covered, then garbage-collects superseded snapshots.
  // Requires transaction quiescence (kFailedPrecondition otherwise).
  Status Checkpoint();

  // Checkpoint() iff the WAL has outgrown checkpoint_threshold_bytes.
  Status MaybeCheckpoint();

  // Blocks until everything appended so far is fsync-covered.
  Status Flush();

  // --- Upper-layer durability surface ---------------------------------------

  // Appends an opaque sidecar record (engine journal delta). Durability
  // follows from WAL prefix ordering: the delta is fsync-covered by the next
  // synced commit, which is exactly when it starts to matter.
  StatusOr<uint64_t> AppendSidecar(std::vector<uint8_t> blob);

  // Stages a payload that the CALLING THREAD's next committed transaction
  // carries atomically inside its commit record (consumed by that commit,
  // whether the append succeeds or simulates a crash; replaced by a later
  // StageAttachment; dropped on rollback).
  void StageAttachment(std::vector<uint8_t> blob);

  // Registers the provider whose serialized state checkpoints store beside
  // the snapshot (the engine's commit-journal image). Called during
  // Checkpoint() after the database copy is taken.
  void SetSidecarSnapshotProvider(std::function<std::vector<uint8_t>()> provider);

  // --- WalSink (called by the Database) --------------------------------------

  StatusOr<uint64_t> AppendCommit(WalCommit commit) override;
  StatusOr<uint64_t> AppendDdl(const WalRecord& record) override;
  Status SyncCommit(uint64_t lsn) override;
  uint64_t AppendedLsn() const override;
  void OnRollback() override;

 private:
  DurableDatabase(std::string dir, DurableOptions options,
                  std::unique_ptr<Database> db,
                  std::unique_ptr<WriteAheadLog> wal);

  std::string SnapshotPath(uint64_t lsn) const;
  std::string JournalPath(uint64_t lsn) const;

  // Deletes snapshot-*/journal-* files whose LSN differs from `keep_lsn`.
  void GarbageCollect(uint64_t keep_lsn);

  const std::string dir_;
  const DurableOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<WriteAheadLog> wal_;

  std::mutex checkpoint_mu_;  // one checkpoint at a time
  std::function<std::vector<uint8_t>()> sidecar_provider_;
};

}  // namespace edna::db

#endif  // SRC_DB_DURABLE_H_
