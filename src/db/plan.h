// Query planning for predicate-driven DML.
//
// PlanPredicate inspects a WHERE clause once and produces an immutable
// TablePlan: which index probes narrow the candidate set (equality,
// IN-list, range/BETWEEN, IS NULL), how multiple probes combine
// (intersection for AND conjuncts, union for OR arms), and the compiled
// residual predicate that every candidate is still filtered through.
// Probes only ever NARROW — they must yield a superset of the matching
// rows — so planning can be conservative: anything unrecognized simply
// stays in the residual, and a predicate with no indexable part degrades
// to a full scan plus compiled filter.
//
// Plans are immutable after construction and shared across threads via
// shared_ptr (Database keeps a cache keyed by table + predicate
// fingerprint). All per-invocation state — bound parameter values, the
// evaluation register file — lives with the caller, so one plan can serve
// concurrent statements without synchronization.
#ifndef SRC_DB_PLAN_H_
#define SRC_DB_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/table.h"
#include "src/sql/ast.h"
#include "src/sql/compile.h"

namespace edna::db {

// One index access. Value expressions are column-free clones taken from the
// predicate; they may reference $params, so they are evaluated per statement
// (EvaluateConstant) and the results probed against the index.
struct IndexProbe {
  enum class Kind {
    kEq,      // hash/PK equality bucket
    kIn,      // one equality probe per IN-list item
    kRange,   // ordered-index range, from </<=/>/>= or BETWEEN
    kIsNull,  // the index's NULL row set
  };
  Kind kind = Kind::kEq;
  std::string column;

  sql::ExprPtr eq_value;               // kEq
  std::vector<sql::ExprPtr> in_items;  // kIn
  sql::ExprPtr lo, hi;                 // kRange; either may be null = open
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  std::string Describe() const;
};

// Access plan for one (table, predicate) pair.
struct TablePlan {
  enum class Access {
    kConstant,  // no column refs: evaluate once per statement, not per row
    kProbe,     // intersect the probes' row sets, then filter by residual
    kUnion,     // union the arms' row sets, then filter by residual
    kFullScan,  // no usable index: scan every row, filter by residual
  };
  Access access = Access::kFullScan;
  std::vector<IndexProbe> probes;      // kProbe
  std::vector<IndexProbe> union_arms;  // kUnion
  sql::ExprPtr constant;               // kConstant: clone of the predicate

  // The FULL predicate, compiled. Probes narrow, they never decide: every
  // candidate row still runs through this filter. Unset for kConstant and
  // for exact plans (below).
  std::optional<sql::CompiledPredicate> residual;

  // Exact plan: the probe set IS the predicate — a single conjunct that
  // classified as a probe, or an OR whose every arm is such a conjunct.
  // Probe semantics match SQL row-by-row evaluation for these shapes (NULL
  // needles/bounds/items all yield "no match", as UNKNOWN does), so the
  // residual filter is skipped entirely. This is what keeps one-shot
  // literal predicates (`"id" = 42` statements generated per row by the
  // engine) from paying a predicate compilation per statement.
  bool exact = false;

  // Human-readable plan line for EXPLAIN surfaces.
  std::string description;
};

// Plans `pred` against `table`'s indexes. Unknown columns do NOT fail
// planning — they lower to deferred errors inside the compiled residual,
// matching the interpreter's lazy binding under short-circuit. Only
// internal inconsistencies return an error.
StatusOr<std::shared_ptr<const TablePlan>> PlanPredicate(const Table& table,
                                                         const sql::Expr& pred);

}  // namespace edna::db

#endif  // SRC_DB_PLAN_H_
