#include "src/db/schema.h"

#include <algorithm>
#include <set>

#include "src/common/strings.h"

namespace edna::db {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kBool:
      return "BOOL";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kBlob:
      return "BLOB";
  }
  return "?";
}

bool ValueMatchesType(const sql::Value& v, ColumnType t) {
  if (v.is_null()) {
    return true;
  }
  switch (t) {
    case ColumnType::kInt:
      return v.is_int();
    case ColumnType::kDouble:
      return v.is_double() || v.is_int();  // int widens silently
    case ColumnType::kBool:
      return v.is_bool();
    case ColumnType::kString:
      return v.is_string();
    case ColumnType::kBlob:
      return v.is_blob();
  }
  return false;
}

const char* SensitivityName(Sensitivity s) {
  switch (s) {
    case Sensitivity::kPublic:
      return "public";
    case Sensitivity::kQuasi:
      return "quasi";
    case Sensitivity::kPii:
      return "pii";
  }
  return "?";
}

bool ParseSensitivity(std::string_view name, Sensitivity* out) {
  if (EqualsIgnoreCase(name, "public")) {
    *out = Sensitivity::kPublic;
  } else if (EqualsIgnoreCase(name, "quasi")) {
    *out = Sensitivity::kQuasi;
  } else if (EqualsIgnoreCase(name, "pii")) {
    *out = Sensitivity::kPii;
  } else {
    return false;
  }
  return true;
}

const char* FkActionName(FkAction a) {
  switch (a) {
    case FkAction::kRestrict:
      return "RESTRICT";
    case FkAction::kCascade:
      return "CASCADE";
    case FkAction::kSetNull:
      return "SET NULL";
  }
  return "?";
}

std::string ColumnDef::ToSql() const {
  std::string out = "\"" + name + "\" " + ColumnTypeName(type);
  out += nullable ? " NULL" : " NOT NULL";
  if (auto_increment) {
    out += " AUTO_INCREMENT";
  }
  if (default_value.has_value()) {
    out += " DEFAULT " + default_value->ToSqlString();
  }
  if (sensitivity != Sensitivity::kPublic) {
    out += std::string(" /* ") + SensitivityName(sensitivity) + " */";
  }
  return out;
}

TableSchema& TableSchema::AddColumn(ColumnDef col) {
  columns_.push_back(std::move(col));
  return *this;
}

TableSchema& TableSchema::SetPrimaryKey(std::vector<std::string> columns) {
  primary_key_ = std::move(columns);
  return *this;
}

TableSchema& TableSchema::AddForeignKey(ForeignKeyDef fk) {
  foreign_keys_.push_back(std::move(fk));
  return *this;
}

TableSchema& TableSchema::AddIndex(std::string column) {
  indexes_.push_back(IndexDef{std::move(column)});
  return *this;
}

int TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const ColumnDef* TableSchema::FindColumn(const std::string& name) const {
  int i = ColumnIndex(name);
  return i >= 0 ? &columns_[static_cast<size_t>(i)] : nullptr;
}

ColumnDef* TableSchema::FindMutableColumn(const std::string& name) {
  int i = ColumnIndex(name);
  return i >= 0 ? &columns_[static_cast<size_t>(i)] : nullptr;
}

const ForeignKeyDef* TableSchema::FindForeignKey(const std::string& column) const {
  for (const ForeignKeyDef& fk : foreign_keys_) {
    if (fk.column == column) {
      return &fk;
    }
  }
  return nullptr;
}

bool TableSchema::IsPrimaryKeyColumn(const std::string& column) const {
  return std::find(primary_key_.begin(), primary_key_.end(), column) != primary_key_.end();
}

Status TableSchema::Validate() const {
  if (name_.empty()) {
    return InvalidArgument("table has no name");
  }
  if (columns_.empty()) {
    return InvalidArgument("table \"" + name_ + "\" has no columns");
  }
  std::set<std::string> seen;
  for (const ColumnDef& col : columns_) {
    if (col.name.empty()) {
      return InvalidArgument("table \"" + name_ + "\" has an unnamed column");
    }
    if (!seen.insert(col.name).second) {
      return InvalidArgument("table \"" + name_ + "\" duplicates column \"" + col.name + "\"");
    }
    if (col.auto_increment && col.type != ColumnType::kInt) {
      return InvalidArgument("auto_increment column \"" + col.name + "\" in \"" + name_ +
                             "\" must be INT");
    }
    if (col.default_value.has_value() && !ValueMatchesType(*col.default_value, col.type)) {
      return InvalidArgument("default for column \"" + col.name + "\" in \"" + name_ +
                             "\" does not match type " + ColumnTypeName(col.type));
    }
    if (col.default_value.has_value() && col.default_value->is_null() && !col.nullable) {
      return InvalidArgument("NULL default on NOT NULL column \"" + col.name + "\" in \"" +
                             name_ + "\"");
    }
  }
  if (primary_key_.empty()) {
    return InvalidArgument("table \"" + name_ + "\" has no primary key");
  }
  std::set<std::string> pk_seen;
  for (const std::string& pk : primary_key_) {
    const ColumnDef* col = FindColumn(pk);
    if (col == nullptr) {
      return InvalidArgument("primary key column \"" + pk + "\" missing in \"" + name_ + "\"");
    }
    if (col->nullable) {
      return InvalidArgument("primary key column \"" + pk + "\" in \"" + name_ +
                             "\" must be NOT NULL");
    }
    if (!pk_seen.insert(pk).second) {
      return InvalidArgument("duplicate primary key column \"" + pk + "\" in \"" + name_ + "\"");
    }
  }
  for (const ForeignKeyDef& fk : foreign_keys_) {
    if (FindColumn(fk.column) == nullptr) {
      return InvalidArgument("foreign key column \"" + fk.column + "\" missing in \"" + name_ +
                             "\"");
    }
  }
  for (const IndexDef& idx : indexes_) {
    if (FindColumn(idx.column) == nullptr) {
      return InvalidArgument("index column \"" + idx.column + "\" missing in \"" + name_ + "\"");
    }
  }
  return OkStatus();
}

std::string TableSchema::ToCreateSql() const {
  std::vector<std::string> lines;
  for (const ColumnDef& col : columns_) {
    lines.push_back("  " + col.ToSql());
  }
  {
    std::vector<std::string> pk;
    for (const std::string& c : primary_key_) {
      pk.push_back("\"" + c + "\"");
    }
    lines.push_back("  PRIMARY KEY (" + StrJoin(pk, ", ") + ")");
  }
  for (const ForeignKeyDef& fk : foreign_keys_) {
    lines.push_back("  FOREIGN KEY (\"" + fk.column + "\") REFERENCES \"" + fk.parent_table +
                    "\" (\"" + fk.parent_column + "\") ON DELETE " +
                    FkActionName(fk.on_delete));
  }
  for (const IndexDef& idx : indexes_) {
    lines.push_back("  INDEX (\"" + idx.column + "\")");
  }
  std::string out = "CREATE TABLE \"" + name_ + "\" (\n";
  out += StrJoin(lines, ",\n");
  out += "\n);";
  return out;
}

Status Schema::AddTable(TableSchema table) {
  RETURN_IF_ERROR(table.Validate());
  if (FindTable(table.name()) != nullptr) {
    return AlreadyExists("table \"" + table.name() + "\" already in schema");
  }
  tables_.push_back(std::move(table));
  return OkStatus();
}

const TableSchema* Schema::FindTable(const std::string& name) const {
  for (const TableSchema& t : tables_) {
    if (t.name() == name) {
      return &t;
    }
  }
  return nullptr;
}

TableSchema* Schema::FindMutableTable(const std::string& name) {
  for (TableSchema& t : tables_) {
    if (t.name() == name) {
      return &t;
    }
  }
  return nullptr;
}

Status Schema::Validate() const {
  for (const TableSchema& t : tables_) {
    RETURN_IF_ERROR(t.Validate());
    for (const ForeignKeyDef& fk : t.foreign_keys()) {
      const TableSchema* parent = FindTable(fk.parent_table);
      if (parent == nullptr) {
        return InvalidArgument("table \"" + t.name() + "\" references missing table \"" +
                               fk.parent_table + "\"");
      }
      const ColumnDef* pcol = parent->FindColumn(fk.parent_column);
      if (pcol == nullptr) {
        return InvalidArgument("table \"" + t.name() + "\" references missing column \"" +
                               fk.parent_table + "." + fk.parent_column + "\"");
      }
      if (parent->primary_key().size() != 1 || parent->primary_key()[0] != fk.parent_column) {
        return InvalidArgument("foreign key \"" + t.name() + "." + fk.column +
                               "\" must reference the single-column primary key of \"" +
                               fk.parent_table + "\"");
      }
      const ColumnDef* ccol = t.FindColumn(fk.column);
      if (ccol->type != pcol->type) {
        return InvalidArgument("foreign key type mismatch on \"" + t.name() + "." + fk.column +
                               "\"");
      }
      if (fk.on_delete == FkAction::kSetNull && !ccol->nullable) {
        return InvalidArgument("SET NULL foreign key on NOT NULL column \"" + t.name() + "." +
                               fk.column + "\"");
      }
    }
  }
  return OkStatus();
}

std::string Schema::ToSql() const {
  std::string out;
  for (const TableSchema& t : tables_) {
    out += t.ToCreateSql();
    out += "\n\n";
  }
  return out;
}

size_t Schema::SchemaLoc() const { return CountEffectiveLines(ToSql()); }

}  // namespace edna::db
