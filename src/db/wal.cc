#include "src/db/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/crc32.h"
#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/db/storage.h"
#include "src/sql/codec.h"

namespace edna::db {

namespace {

constexpr uint32_t kWalMagic = 0x45444E57;  // "EDNW"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = 16;  // magic + version + base_lsn
constexpr size_t kFrameHeaderSize = 8;  // payload_len + crc
// Upper bound on one frame's payload; anything larger during the scan is
// treated as a torn length field, not an allocation request.
constexpr uint32_t kMaxPayload = 1u << 30;

Status WriteFully(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Internal(StrFormat("WAL write failed: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return OkStatus();
}

std::vector<uint8_t> EncodeHeader(uint64_t base_lsn) {
  sql::ByteWriter w;
  w.U32(kWalMagic);
  w.U32(kWalVersion);
  w.U64(base_lsn);
  return w.Take();
}

}  // namespace

std::vector<uint8_t> EncodeWalPayload(const WalRecord& record) {
  sql::ByteWriter w;
  w.U64(record.lsn);
  w.U8(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case WalRecord::Kind::kCommit: {
      const WalCommit& c = record.commit;
      w.U32(static_cast<uint32_t>(c.changes.size()));
      for (const WalChange& ch : c.changes) {
        w.U8(ch.erase ? 1 : 0);
        w.String(ch.table);
        w.U64(ch.id);
        if (!ch.erase) {
          w.U32(static_cast<uint32_t>(ch.row.size()));
          for (const sql::Value& v : ch.row) {
            w.Value(v);
          }
        }
      }
      w.U32(static_cast<uint32_t>(c.counters.size()));
      for (const auto& [table, counter] : c.counters) {
        w.String(table);
        w.I64(counter);
      }
      w.U32(static_cast<uint32_t>(c.attachments.size()));
      for (const std::vector<uint8_t>& a : c.attachments) {
        w.U32(static_cast<uint32_t>(a.size()));
        w.Bytes(a.data(), a.size());
      }
      break;
    }
    case WalRecord::Kind::kCreateTable:
      SerializeTableSchema(&w, *record.schema);
      break;
    case WalRecord::Kind::kAddColumn:
      w.String(record.table);
      SerializeColumnDef(&w, record.column);
      w.Value(record.fill);
      break;
    case WalRecord::Kind::kCreateIndex:
      w.String(record.table);
      w.String(record.index_column);
      break;
    case WalRecord::Kind::kSidecar:
      w.U32(static_cast<uint32_t>(record.sidecar.size()));
      w.Bytes(record.sidecar.data(), record.sidecar.size());
      break;
  }
  return w.Take();
}

StatusOr<WalRecord> DecodeWalPayload(const std::vector<uint8_t>& payload) {
  sql::ByteReader r(payload);
  WalRecord rec;
  ASSIGN_OR_RETURN(rec.lsn, r.U64());
  ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind < static_cast<uint8_t>(WalRecord::Kind::kCommit) ||
      kind > static_cast<uint8_t>(WalRecord::Kind::kSidecar)) {
    return InvalidArgument("bad WAL record kind " + std::to_string(kind));
  }
  rec.kind = static_cast<WalRecord::Kind>(kind);
  auto read_blob = [&r](std::vector<uint8_t>* out) -> Status {
    ASSIGN_OR_RETURN(uint32_t len, r.U32());
    if (len > r.remaining()) {
      return InvalidArgument("WAL blob length exceeds payload");
    }
    out->resize(len);
    for (uint32_t i = 0; i < len; ++i) {
      ASSIGN_OR_RETURN((*out)[i], r.U8());
    }
    return OkStatus();
  };
  switch (rec.kind) {
    case WalRecord::Kind::kCommit: {
      ASSIGN_OR_RETURN(uint32_t nchanges, r.U32());
      rec.commit.changes.reserve(nchanges);
      for (uint32_t i = 0; i < nchanges; ++i) {
        WalChange ch;
        ASSIGN_OR_RETURN(uint8_t erase, r.U8());
        ch.erase = erase != 0;
        ASSIGN_OR_RETURN(ch.table, r.String());
        ASSIGN_OR_RETURN(ch.id, r.U64());
        if (!ch.erase) {
          ASSIGN_OR_RETURN(uint32_t width, r.U32());
          ch.row.reserve(width);
          for (uint32_t c = 0; c < width; ++c) {
            ASSIGN_OR_RETURN(sql::Value v, r.Value());
            ch.row.push_back(std::move(v));
          }
        }
        rec.commit.changes.push_back(std::move(ch));
      }
      ASSIGN_OR_RETURN(uint32_t ncounters, r.U32());
      for (uint32_t i = 0; i < ncounters; ++i) {
        std::string table;
        ASSIGN_OR_RETURN(table, r.String());
        ASSIGN_OR_RETURN(int64_t counter, r.I64());
        rec.commit.counters.emplace_back(std::move(table), counter);
      }
      ASSIGN_OR_RETURN(uint32_t nattach, r.U32());
      for (uint32_t i = 0; i < nattach; ++i) {
        std::vector<uint8_t> blob;
        RETURN_IF_ERROR(read_blob(&blob));
        rec.commit.attachments.push_back(std::move(blob));
      }
      break;
    }
    case WalRecord::Kind::kCreateTable: {
      ASSIGN_OR_RETURN(TableSchema ts, DeserializeTableSchema(&r));
      rec.schema = std::move(ts);
      break;
    }
    case WalRecord::Kind::kAddColumn: {
      ASSIGN_OR_RETURN(rec.table, r.String());
      ASSIGN_OR_RETURN(rec.column, DeserializeColumnDef(&r));
      ASSIGN_OR_RETURN(rec.fill, r.Value());
      break;
    }
    case WalRecord::Kind::kCreateIndex: {
      ASSIGN_OR_RETURN(rec.table, r.String());
      ASSIGN_OR_RETURN(rec.index_column, r.String());
      break;
    }
    case WalRecord::Kind::kSidecar: {
      RETURN_IF_ERROR(read_blob(&rec.sidecar));
      break;
    }
  }
  if (!r.AtEnd()) {
    return InvalidArgument("trailing bytes in WAL record payload");
  }
  return rec;
}

// --- Open / scan -------------------------------------------------------------

WriteAheadLog::WriteAheadLog(std::string path, int fd, const WalOptions& options,
                             uint64_t next_lsn, uint64_t size_bytes)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      next_lsn_(next_lsn),
      size_bytes_(size_bytes) {
  appended_lsn_.store(next_lsn_ - 1, std::memory_order_relaxed);
  durable_lsn_ = next_lsn_ - 1;  // everything recovered from disk is durable
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const WalOptions& options,
    std::vector<WalRecord>* replay, WalScanStats* stats) {
  replay->clear();
  *stats = WalScanStats{};

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Internal(StrFormat("cannot open WAL \"%s\": %s", path.c_str(),
                              std::strerror(errno)));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Internal("cannot stat WAL \"" + path + "\"");
  }

  if (end == 0) {
    // Fresh log: write the header before handing the log out, so a crash
    // right after creation still leaves a well-formed (empty) file.
    std::vector<uint8_t> header = EncodeHeader(/*base_lsn=*/1);
    Status written = WriteFully(fd, header.data(), header.size());
    if (written.ok() && ::fsync(fd) != 0) {
      written = Internal(StrFormat("fsync of new WAL failed: %s", std::strerror(errno)));
    }
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    return std::unique_ptr<WriteAheadLog>(
        new WriteAheadLog(path, fd, options, /*next_lsn=*/1, header.size()));
  }

  // Existing log: read it fully and scan.
  std::vector<uint8_t> file(static_cast<size_t>(end));
  size_t off = 0;
  while (off < file.size()) {
    ssize_t n = ::pread(fd, file.data() + off, file.size() - off, static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      ::close(fd);
      return Internal("cannot read WAL \"" + path + "\"");
    }
    off += static_cast<size_t>(n);
  }

  // Header. A file too short to hold one, or with the wrong magic/version,
  // is not "an empty log" — refuse rather than silently discard history.
  if (file.size() < kHeaderSize) {
    ::close(fd);
    return InvalidArgument("WAL \"" + path + "\" is shorter than its header");
  }
  sql::ByteReader hdr(file);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t base_lsn = 0;
  {
    auto m = hdr.U32();
    auto v = hdr.U32();
    auto b = hdr.U64();
    if (!m.ok() || !v.ok() || !b.ok()) {
      ::close(fd);
      return InvalidArgument("WAL \"" + path + "\" header is unreadable");
    }
    magic = *m;
    version = *v;
    base_lsn = *b;
  }
  if (magic != kWalMagic) {
    ::close(fd);
    return InvalidArgument("\"" + path + "\" is not a WAL file (bad magic)");
  }
  if (version != kWalVersion) {
    ::close(fd);
    return InvalidArgument(StrFormat("unsupported WAL version %u", version));
  }
  if (base_lsn == 0) {
    ::close(fd);
    return InvalidArgument("WAL header carries invalid base LSN 0");
  }

  // Frame scan: keep the longest valid prefix.
  size_t pos = kHeaderSize;
  uint64_t expected_lsn = base_lsn;
  auto torn = [&](const std::string& why) { stats->torn_reason = why; };
  while (pos < file.size()) {
    if (file.size() - pos < kFrameHeaderSize) {
      torn("partial frame header");
      break;
    }
    uint32_t payload_len = static_cast<uint32_t>(file[pos]) |
                           static_cast<uint32_t>(file[pos + 1]) << 8 |
                           static_cast<uint32_t>(file[pos + 2]) << 16 |
                           static_cast<uint32_t>(file[pos + 3]) << 24;
    uint32_t expected_crc = static_cast<uint32_t>(file[pos + 4]) |
                            static_cast<uint32_t>(file[pos + 5]) << 8 |
                            static_cast<uint32_t>(file[pos + 6]) << 16 |
                            static_cast<uint32_t>(file[pos + 7]) << 24;
    if (payload_len > kMaxPayload || payload_len > file.size() - pos - kFrameHeaderSize) {
      torn("frame length exceeds file");
      break;
    }
    std::vector<uint8_t> payload(file.begin() + pos + kFrameHeaderSize,
                                 file.begin() + pos + kFrameHeaderSize + payload_len);
    if (Crc32(payload) != expected_crc) {
      torn("frame checksum mismatch");
      break;
    }
    StatusOr<WalRecord> rec = DecodeWalPayload(payload);
    if (!rec.ok()) {
      torn("undecodable frame: " + rec.status().ToString());
      break;
    }
    if (rec->lsn != expected_lsn) {
      torn(StrFormat("LSN discontinuity (want %llu, frame says %llu)",
                     static_cast<unsigned long long>(expected_lsn),
                     static_cast<unsigned long long>(rec->lsn)));
      break;
    }
    replay->push_back(*std::move(rec));
    ++expected_lsn;
    pos += kFrameHeaderSize + payload_len;
  }
  stats->records_recovered = replay->size();
  stats->torn_bytes_dropped = file.size() - pos;

  if (pos < file.size()) {
    // Drop the torn tail so the next append starts on a frame boundary.
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
      ::close(fd);
      return Internal(StrFormat("cannot truncate torn WAL tail: %s", std::strerror(errno)));
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Internal(StrFormat("fsync after tail truncation failed: %s",
                                std::strerror(errno)));
    }
    EDNA_LOG(kWarning) << "WAL \"" << path << "\": dropped " << stats->torn_bytes_dropped
                       << " torn byte(s) (" << stats->torn_reason << "), kept "
                       << replay->size() << " record(s)";
  }
  if (::lseek(fd, static_cast<off_t>(pos), SEEK_SET) < 0) {
    ::close(fd);
    return Internal("cannot seek WAL \"" + path + "\"");
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, options, expected_lsn, pos));
}

// --- Append / sync -----------------------------------------------------------

StatusOr<uint64_t> WriteAheadLog::Append(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(append_mu_);
  // The fail point fires BEFORE anything reaches the file: a simulated
  // crash here models the record never having been written.
  EDNA_FAIL_POINT(failpoints::kWalAppend);
  if (!write_error_.ok()) {
    return write_error_;
  }
  WalRecord framed = record;
  framed.lsn = next_lsn_;
  std::vector<uint8_t> payload = EncodeWalPayload(framed);
  sql::ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32(payload));
  w.Bytes(payload.data(), payload.size());
  std::vector<uint8_t> frame = w.Take();
  Status written = WriteFully(fd_, frame.data(), frame.size());
  if (!written.ok()) {
    write_error_ = written;  // sticky: the file now ends mid-frame
    return written;
  }
  size_bytes_ += frame.size();
  ++next_lsn_;
  appended_lsn_.store(framed.lsn, std::memory_order_release);
  return framed.lsn;
}

Status WriteAheadLog::FsyncLocked() {
  if (::fsync(fd_) != 0) {
    return Internal(StrFormat("WAL fsync failed: %s", std::strerror(errno)));
  }
  return OkStatus();
}

Status WriteAheadLog::Sync(uint64_t lsn) {
  EDNA_FAIL_POINT(failpoints::kWalSync);
  if (options_.sync_mode == WalOptions::SyncMode::kNone || lsn == 0) {
    return OkStatus();
  }

  std::unique_lock<std::mutex> lk(sync_mu_);
  for (;;) {
    if (!sync_error_.ok()) {
      return sync_error_;
    }
    if (lsn <= durable_lsn_) {
      return OkStatus();
    }
    if (!sync_in_progress_) {
      break;  // become the leader
    }
    sync_cv_.wait(lk);
  }
  sync_in_progress_ = true;
  lk.unlock();

  if (options_.sync_mode == WalOptions::SyncMode::kGroup &&
      options_.group_window_us > 0) {
    // Linger so commits racing in behind us ride the same fsync.
    std::this_thread::sleep_for(std::chrono::microseconds(options_.group_window_us));
  }
  // Everything appended before the fsync is covered by it.
  uint64_t covered = appended_lsn_.load(std::memory_order_acquire);
  Status synced = FsyncLocked();

  lk.lock();
  sync_in_progress_ = false;
  if (synced.ok()) {
    if (covered > durable_lsn_) {
      durable_lsn_ = covered;
    }
  } else {
    sync_error_ = synced;  // sticky
  }
  sync_cv_.notify_all();
  return synced;
}

Status WriteAheadLog::Flush() { return Sync(appended_lsn_.load(std::memory_order_acquire)); }

StatusOr<bool> WriteAheadLog::TruncateIfCovered(uint64_t lsn) {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  EDNA_FAIL_POINT(failpoints::kWalTruncate);
  if (!write_error_.ok()) {
    return write_error_;
  }
  if (appended_lsn_.load(std::memory_order_acquire) != lsn) {
    return false;  // records newer than the snapshot exist; keep the log
  }
  // Flush so any committer still waiting on Sync(<=lsn) is satisfied before
  // its records disappear from the file. (sync_mu_ is only taken inside
  // Sync, after append_mu_ is NOT held there — no ordering violation.)
  if (options_.sync_mode != WalOptions::SyncMode::kNone) {
    std::unique_lock<std::mutex> lk(sync_mu_);
    if (!sync_error_.ok()) {
      return sync_error_;
    }
    if (durable_lsn_ < lsn) {
      Status synced = FsyncLocked();
      if (!synced.ok()) {
        sync_error_ = synced;
        sync_cv_.notify_all();
        return synced;
      }
      durable_lsn_ = lsn;
      sync_cv_.notify_all();
    }
  }
  // Rewrite the header with the advanced base LSN, then drop the frames.
  // Order matters for crash safety: ftruncate-then-header would leave a
  // window where old base_lsn + no frames reads as "records lost"; header
  // first merely makes the old frames unreachable (LSN discontinuity →
  // treated as torn tail), which replay already tolerates because the
  // snapshot covering `lsn` supersedes them.
  std::vector<uint8_t> header = EncodeHeader(lsn + 1);
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Internal("cannot seek WAL for truncation");
  }
  Status written = WriteFully(fd_, header.data(), header.size());
  if (!written.ok()) {
    write_error_ = written;
    return written;
  }
  if (::ftruncate(fd_, static_cast<off_t>(kHeaderSize)) != 0) {
    write_error_ = Internal(StrFormat("WAL truncate failed: %s", std::strerror(errno)));
    return write_error_;
  }
  if (::fsync(fd_) != 0) {
    write_error_ = Internal(StrFormat("fsync after WAL truncate failed: %s",
                                      std::strerror(errno)));
    return write_error_;
  }
  if (::lseek(fd_, static_cast<off_t>(kHeaderSize), SEEK_SET) < 0) {
    return Internal("cannot seek WAL after truncation");
  }
  size_bytes_ = kHeaderSize;
  return true;
}

uint64_t WriteAheadLog::appended_lsn() const {
  return appended_lsn_.load(std::memory_order_acquire);
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(sync_mu_);
  return durable_lsn_;
}

uint64_t WriteAheadLog::SizeBytes() const {
  std::lock_guard<std::mutex> lock(append_mu_);
  return size_bytes_;
}

}  // namespace edna::db
