// Database: the application-facing relational engine.
//
// Responsibilities beyond Table:
//  * cross-table referential integrity (FK existence on writes, delete
//    actions RESTRICT / CASCADE / SET NULL),
//  * predicate-driven DML (select / update / delete with SQL WHERE clauses,
//    planned through equality indexes when possible),
//  * transactions: explicit Begin/Commit/Rollback plus implicit per-statement
//    atomicity, implemented with an undo log,
//  * query statistics (statement and row-touch counters) used by the paper's
//    linear-scaling experiment,
//  * whole-database snapshot/restore for benchmarks,
//  * thread safety for parallel batch disguising (see DESIGN.md, "Parallel
//    disguising"): striped shared_mutex locking at table granularity, a
//    per-thread transaction/undo state, and first-writer-wins row intents
//    that turn write-write conflicts into retryable kAborted statuses.
//
// Concurrency model in one paragraph: every statement acquires the stripes
// covering the tables it touches — shared for reads, exclusive for writes —
// in ascending stripe order (deadlock-free), holds them for the statement,
// and releases them at statement end. Transactions therefore do NOT hold
// table locks between statements; isolation across transactions comes from
// row-level write intents: the first transaction to write a row owns it
// until commit/rollback, and any other transaction writing the same row
// gets kAborted immediately (no blocking, hence no deadlock). Readers are
// never blocked by intents, so reads are "read committed at best" — the
// disguise engine's batch workloads partition writes by user, which is what
// makes this sufficient (see DESIGN.md for the precise claim).
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/db/pagecache.h"
#include "src/db/plan.h"
#include "src/db/schema.h"
#include "src/db/table.h"
#include "src/db/wal.h"
#include "src/sql/ast.h"
#include "src/sql/eval.h"

namespace edna::db {

// Statement / row-touch counters. "Queries" counts logical statements the
// way a SQL client would issue them: one per select/insert/delete statement
// and one per row-level update, mirroring how Edna talks to MySQL.
//
// Counters are atomics so concurrent statements account exactly (no lost
// increments); the copy operations take a relaxed snapshot so existing
// by-value uses (`DbStats before = db.stats();`) keep compiling.
struct DbStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> rows_read{0};
  std::atomic<uint64_t> rows_inserted{0};
  std::atomic<uint64_t> rows_updated{0};
  std::atomic<uint64_t> rows_deleted{0};
  std::atomic<uint64_t> index_lookups{0};
  // Predicate-bearing statements that had to scan the whole table. Reads
  // with no WHERE clause at all (NumRecords-style whole-table reads) are
  // deliberate and do NOT count.
  std::atomic<uint64_t> full_scans{0};
  // Candidate rows the residual filter evaluated (per-row predicate work;
  // an effective plan keeps this close to the matching-row count).
  std::atomic<uint64_t> rows_examined{0};
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> plan_cache_misses{0};
  std::atomic<uint64_t> range_probes{0};
  // Page cache (src/db/pagecache.h). resident_bytes is a gauge (current
  // resident payload bytes), the others are monotone counters.
  std::atomic<uint64_t> page_hits{0};
  std::atomic<uint64_t> page_misses{0};
  std::atomic<uint64_t> page_evictions{0};
  std::atomic<uint64_t> page_writebacks{0};
  std::atomic<uint64_t> resident_bytes{0};
  // Vectorized execution (ExecMode::kVectorized). chunks_scanned counts
  // chunk dispatches into the batched evaluator, vector_ops its instruction
  // dispatches with a non-empty selection, vector_lanes the lanes evaluated.
  // selection_density_bp is a gauge, not a counter: matching lanes per
  // evaluated lane of the most recent vectorized statement, in basis points
  // (10000 = every lane matched).
  std::atomic<uint64_t> chunks_scanned{0};
  std::atomic<uint64_t> vector_ops{0};
  std::atomic<uint64_t> vector_lanes{0};
  std::atomic<uint64_t> selection_density_bp{0};

  DbStats() = default;
  DbStats(const DbStats& o) { *this = o; }
  // Hand-written because atomics are not copyable. When adding a counter,
  // add it here too — DbPlannerTest.StatsCopyRoundTripsEveryCounter fails
  // on any field this list misses.
  DbStats& operator=(const DbStats& o) {
    queries = o.queries.load(std::memory_order_relaxed);
    rows_read = o.rows_read.load(std::memory_order_relaxed);
    rows_inserted = o.rows_inserted.load(std::memory_order_relaxed);
    rows_updated = o.rows_updated.load(std::memory_order_relaxed);
    rows_deleted = o.rows_deleted.load(std::memory_order_relaxed);
    index_lookups = o.index_lookups.load(std::memory_order_relaxed);
    full_scans = o.full_scans.load(std::memory_order_relaxed);
    rows_examined = o.rows_examined.load(std::memory_order_relaxed);
    plan_cache_hits = o.plan_cache_hits.load(std::memory_order_relaxed);
    plan_cache_misses = o.plan_cache_misses.load(std::memory_order_relaxed);
    range_probes = o.range_probes.load(std::memory_order_relaxed);
    page_hits = o.page_hits.load(std::memory_order_relaxed);
    page_misses = o.page_misses.load(std::memory_order_relaxed);
    page_evictions = o.page_evictions.load(std::memory_order_relaxed);
    page_writebacks = o.page_writebacks.load(std::memory_order_relaxed);
    resident_bytes = o.resident_bytes.load(std::memory_order_relaxed);
    chunks_scanned = o.chunks_scanned.load(std::memory_order_relaxed);
    vector_ops = o.vector_ops.load(std::memory_order_relaxed);
    vector_lanes = o.vector_lanes.load(std::memory_order_relaxed);
    selection_density_bp = o.selection_density_bp.load(std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = DbStats{}; }
};

// How MatchRows turns a WHERE clause into candidate rows. kPlanned is the
// production path (plan cache + index probes + compiled residual);
// kInterpreted preserves the legacy path — single equality-probe attempt,
// then per-row AST interpretation — as the ablation baseline (EXPERIMENTS.md
// Ablation H).
enum class PlannerMode {
  kPlanned,
  kInterpreted,
};

// How the planned path evaluates residual predicates over candidate rows.
// kRowAtATime runs the compiled program row by row; kVectorized runs it one
// INSTRUCTION across chunks of up to sql::kChunkLanes rows — full scans read
// the tables' column-major sidecar slabs (src/db/column_store.h) in place
// with the slab's present bitmap as the active-lane mask, probe candidates
// are gathered into row-pointer chunks. Both modes execute the same compiled
// program and are fingerprint-identical (tests/db_planner_test.cc,
// tests/core_planner_test.cc pin this). Orthogonal to PlannerMode: the
// kInterpreted ablation baseline is always row-at-a-time.
enum class ExecMode {
  kRowAtATime,
  kVectorized,
};

// One column assignment in an UPDATE: column <- expression (evaluated per
// row; the expression may reference the row's current columns and params).
struct Assignment {
  std::string column;
  sql::ExprPtr expr;
};

// Pre-write hook consulted before any row mutation (update or delete).
// Returning a non-OK status vetoes the mutation (and, through the statement
// scope, unwinds the enclosing statement). Used by the disguise engine's
// strict mode to prohibit application updates to disguised data (§7).
// `column` is empty for whole-row operations (delete/restore).
//
// The guard runs while the statement's table locks are held; it must not
// call back into the Database (lock hierarchy: stripes before guard state).
using WriteGuard = std::function<Status(const std::string& table, RowId id,
                                        const std::string& column)>;

// Durability sink, implemented by the durable layer (src/db/durable.h). The
// Database stays storage-agnostic: with a sink attached, every commit hands
// over its net row changes (physical redo) BEFORE releasing write intents —
// so the log order of any one row equals its commit order — and every DDL
// entry point writes ahead before mutating the catalog.
//
// Locking contract: AppendCommit runs while the committing statement's table
// locks are held (it must only append, never fsync); AppendDdl runs under
// the exclusive catalog lock; SyncCommit runs with NO Database locks held
// (group commit may block for the flush window); OnRollback runs from
// Rollback/RollbackAll so the sink can discard per-thread staged state.
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual StatusOr<uint64_t> AppendCommit(WalCommit commit) = 0;
  virtual StatusOr<uint64_t> AppendDdl(const WalRecord& record) = 0;
  virtual Status SyncCommit(uint64_t lsn) = 0;
  virtual uint64_t AppendedLsn() const = 0;
  virtual void OnRollback() = 0;
};

class Database {
 public:
  // Reads the EDNA_EXEC_MODE environment variable ("vectorized" /
  // "row-at-a-time") for the starting ExecMode, so CI can run the whole
  // suite vectorized without touching call sites. Unknown values log a
  // warning and keep the default (a constructor has no status channel).
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL -----------------------------------------------------------------
  // DDL takes the catalog lock exclusively, so it must not run concurrently
  // with itself from inside a transaction (AddColumnToTable checks).

  // Adds a table. FK targets must already exist or arrive before first use;
  // Validate() checks the full catalog.
  Status CreateTable(TableSchema schema);

  // Creates every table of `schema` (validated as a whole first).
  Status AdoptSchema(const Schema& schema);

  // Schema evolution (§7): appends a column to an existing table, filling
  // current rows with `fill`. Disallowed inside a transaction and on
  // reserved tables. Reveal records written before the evolution remain
  // replayable: restored rows are padded with the new columns' defaults.
  Status AddColumnToTable(const std::string& table, ColumnDef col, sql::Value fill);

  // Builds (and backfills) a secondary equality index.
  Status CreateIndex(const std::string& table, const std::string& column);

  const Schema& schema() const { return schema_; }
  bool HasTable(const std::string& name) const { return FindTable(name) != nullptr; }

  // Raw table access. The returned pointer is stable (tables are never
  // dropped), but reading rows through it is NOT synchronized against
  // concurrent writers; concurrent callers must use the locked row APIs
  // (RowExists / GetRow / Select) instead.
  const Table* FindTable(const std::string& name) const;

  // --- DML -----------------------------------------------------------------

  // Positional insert; NULL auto-increment columns are assigned.
  StatusOr<RowId> Insert(const std::string& table, Row row);

  // Named-column insert; unspecified columns take their default (or NULL for
  // nullable / auto-increment columns).
  StatusOr<RowId> InsertValues(const std::string& table,
                               const std::map<std::string, sql::Value>& values);

  // Rows matching `pred` (nullptr = all rows). Results reference live storage
  // and are invalidated by any mutation of the same rows — under concurrency
  // only the owning transaction's rows are stable (write intents keep other
  // writers out of them). Readers racing with arbitrary writers should use
  // SelectRows instead. With a page cache attached, a concurrent thread's
  // statement-end eviction may additionally clear referenced payloads of
  // rows NOT owned by an open transaction — callers that dereference
  // `row` (not just `id`) outside a transaction must use SelectRowsWithIds.
  StatusOr<std::vector<RowRef>> Select(const std::string& table, const sql::Expr* pred,
                                       const sql::ParamMap& params) const;

  // Like Select but returns row COPIES made while the table lock is held,
  // so the result stays valid regardless of concurrent writers.
  StatusOr<std::vector<Row>> SelectRows(const std::string& table, const sql::Expr* pred,
                                        const sql::ParamMap& params) const;

  // SelectRows variant that keeps the row ids (copies made under the lock;
  // safe against concurrent writers AND page-cache eviction).
  StatusOr<std::vector<std::pair<RowId, Row>>> SelectRowsWithIds(
      const std::string& table, const sql::Expr* pred, const sql::ParamMap& params) const;

  // Count of matching rows without materializing.
  StatusOr<size_t> Count(const std::string& table, const sql::Expr* pred,
                         const sql::ParamMap& params) const;

  // Applies `assignments` to each matching row; returns rows updated.
  StatusOr<size_t> Update(const std::string& table, const sql::Expr* pred,
                          const sql::ParamMap& params,
                          const std::vector<Assignment>& assignments);

  // Deletes matching rows (running FK delete actions); returns rows deleted.
  StatusOr<size_t> Delete(const std::string& table, const sql::Expr* pred,
                          const sql::ParamMap& params);

  // One pre-computed column write within a batch statement.
  struct BatchUpdate {
    RowId id;
    std::string column;
    sql::Value value;
  };

  // Applies many single-column writes as ONE logical statement (stats count
  // one query, n row writes). Models the batched/multi-row UPDATE path the
  // paper suggests as an optimization; FK checks still apply per write.
  StatusOr<size_t> BatchSetColumns(const std::string& table,
                                   const std::vector<BatchUpdate>& updates);

  // --- Row-level operations (disguise engine fast paths) --------------------

  StatusOr<sql::Value> GetColumn(const std::string& table, RowId id,
                                 const std::string& column) const;
  StatusOr<Row> GetRow(const std::string& table, RowId id) const;

  // Locked existence probe (safe replacement for FindTable()->Contains()
  // under concurrency). False for unknown tables.
  bool RowExists(const std::string& table, RowId id) const;

  // Single-column write with FK validation and undo logging.
  Status SetColumn(const std::string& table, RowId id, const std::string& column,
                   sql::Value value);

  // Deletes one row, applying FK delete actions recursively.
  Status DeleteRow(const std::string& table, RowId id);

  // Re-inserts a row with a known id (reveal/restore path); FK-checked.
  Status RestoreRow(const std::string& table, RowId id, Row row);

  // Image-load path: inserts a row with a known id WITHOUT foreign-key
  // checks (rows may forward-reference during a load). Callers MUST run
  // CheckIntegrity() after the last BulkLoadRow; db/storage.cc does.
  Status BulkLoadRow(const std::string& table, RowId id, Row row);

  // Image-load path: raises a table's auto-increment counter.
  Status EnsureAutoCounterAtLeast(const std::string& table, int64_t v);

  // Primary-key lookup helper.
  StatusOr<RowId> LookupPk(const std::string& table, const PkKey& key) const;

  // --- Transactions ----------------------------------------------------------

  // Explicit transaction, scoped to the CALLING THREAD; nesting is not
  // supported. Each thread may run its own transaction concurrently.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool InTransaction() const;

  // True if ANY thread has an open transaction (recovery/audit hook).
  bool AnyTransactionActive() const;

  // Recovery hook: rolls back every thread's open transaction, including
  // those of worker threads frozen by a simulated crash. Only call when no
  // other thread is actively executing statements.
  Status RollbackAll();

  // --- Integrity & maintenance ----------------------------------------------

  // Full referential-integrity and index audit (test / property hook).
  Status CheckIntegrity() const;

  // Deep copy of all data (schema shared by value).
  std::unique_ptr<Database> Snapshot() const;

  // Total rows across all tables.
  size_t TotalRows() const;

  DbStats& stats() { return stats_; }
  const DbStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Planner mode knob (see PlannerMode). Safe to flip between statements;
  // flipping during a statement is racy but benign (both paths are correct).
  void SetPlannerMode(PlannerMode mode) {
    planner_mode_.store(mode, std::memory_order_relaxed);
  }
  PlannerMode planner_mode() const {
    return planner_mode_.load(std::memory_order_relaxed);
  }

  // Execution mode knob (see ExecMode); same flip-between-statements
  // contract as SetPlannerMode.
  void SetExecMode(ExecMode mode) { exec_mode_.store(mode, std::memory_order_relaxed); }
  ExecMode exec_mode() const { return exec_mode_.load(std::memory_order_relaxed); }

  // EXPLAIN surface: the plan description MatchRows would use for `pred`
  // on `table` ("probe(eq(contactId = $UID))", "scan(papers)", ...).
  StatusOr<std::string> DescribePlan(const std::string& table, const sql::Expr& pred) const;

  // Monotonic count of logical statements issued BY THE CALLING THREAD
  // across all Database instances. Deltas around an operation give an exact
  // per-operation statement count even while other threads run (the global
  // stats().queries delta would fold their traffic in).
  static uint64_t ThreadStatements();

  // Installs (or clears, with nullptr) the write guard. At most one guard;
  // the engine toggles it around its own operations. Excludes concurrent
  // statements via the catalog lock.
  void SetWriteGuard(WriteGuard guard);
  bool HasWriteGuard() const;

  // --- Durability -----------------------------------------------------------

  // Installs (or clears, with nullptr) the durability sink. Excludes
  // concurrent statements via the catalog lock; the durable layer attaches
  // the sink only AFTER replay, so recovery writes never re-log.
  void SetWalSink(WalSink* sink);
  bool HasWalSink() const;

  // Replay primitive: applies one WAL row change idempotently (drop the row
  // if present, then insert the post-image unless the change is an erase).
  // No FK checks and no undo logging — the change was validated when first
  // committed; callers run CheckIntegrity() after the last record
  // (src/db/durable.cc does).
  Status ApplyWalChange(const WalChange& change);

  // Checkpoint-consistent deep copy: acquires every stripe shared, refuses
  // (kFailedPrecondition) while any transaction is open — its uncommitted
  // rows would leak into the copy — and reports the WAL high-water mark the
  // copy corresponds to (0 with no sink attached).
  StatusOr<std::unique_ptr<Database>> SnapshotForCheckpoint(uint64_t* wal_mark) const;

  // --- Page cache (bounded residency; src/db/pagecache.h) -------------------

  // Attaches a page cache over every current (and future) table. Call once,
  // before concurrent use — the durable layer attaches it before WAL replay.
  // `extents_dir` receives the per-table spill files (wiped by Init).
  Status AttachPageCache(const CacheOptions& options, const std::string& extents_dir);

  // Statement-boundary eviction: while over budget, plans victim pages and
  // evicts them under per-table exclusive try_locks (busy stripes are
  // skipped). Called with NO locks held at the end of every statement and
  // periodically during replay. Real eviction errors are logged and
  // swallowed (the statement already committed; the cache just stays over
  // budget); an injected simulated-crash status (pagecache.writeback /
  // extent.read crash drills) propagates so crash batteries can cover the
  // writeback path.
  Status MaybeEvictPages() const;

  PageCache* page_cache() const { return cache_.get(); }

 private:
  struct UndoEntry {
    enum class Kind { kInsert, kDelete, kUpdate } kind;
    std::string table;
    RowId id = kInvalidRowId;
    Row row;              // kDelete: full removed row
    size_t col_idx = 0;   // kUpdate
    sql::Value old_value; // kUpdate
  };

  // Per-thread transaction state. Entries live in a node-stable map keyed by
  // thread id; after lookup only the owning thread touches its entry (except
  // RollbackAll, which runs while workers are quiescent).
  struct TxnState {
    bool in_txn = false;
    std::vector<UndoEntry> undo_log;
    // Row intents this transaction claimed (released at txn end).
    std::vector<std::pair<std::string, RowId>> intents;
  };

  TxnState& Txn() const;

  Table* MutableTable(const std::string& name);

  // Children referencing `parent_table`: (child table name, fk).
  struct ChildRef {
    std::string child_table;
    ForeignKeyDef fk;
  };
  std::vector<ChildRef> ChildrenOf(const std::string& parent_table) const;

  // Transitive child closure of `table` along FK edges (tables a delete in
  // `table` may touch through CASCADE / SET NULL), including `table` itself.
  std::vector<std::string> DeleteClosure(const std::string& table) const;

  // FK parent tables of `table` (read during FK checks on writes).
  std::vector<std::string> ParentTables(const std::string& table) const;
  // Child tables referencing `table` (read during PK-change checks).
  std::vector<std::string> ChildTables(const std::string& table) const;

  // FK existence check for one value (non-NULL) against the parent table.
  Status CheckFkTarget(const ForeignKeyDef& fk, const sql::Value& v) const;

  // Checks all FK columns of a row about to enter `table`.
  Status CheckRowFks(const TableSchema& schema, const Row& row) const;

  // Recursive delete honoring FK actions; appends undo entries.
  Status DeleteRowInternal(TxnState& tx, const std::string& table, RowId id, int depth);

  // FK-checked single-column write; assumes a transaction scope is active.
  Status SetColumnInTxn(TxnState& tx, const std::string& table_name, Table* t, RowId id,
                        size_t col_idx, sql::Value value);

  // Candidate rows matching `pred` (nullptr = all rows). Dispatches on
  // planner_mode_: planned path (plan cache + probes + compiled residual)
  // or the legacy interpreted path.
  StatusOr<std::vector<RowId>> MatchRows(const Table& table, const sql::Expr* pred,
                                         const sql::ParamMap& params) const;

  // Legacy matcher: one equality-probe attempt, then per-row AST
  // interpretation. Kept verbatim as the Ablation H baseline.
  StatusOr<std::vector<RowId>> MatchRowsInterpreted(const Table& table, const sql::Expr* pred,
                                                    const sql::ParamMap& params) const;

  // Vectorized residual filters (ExecMode::kVectorized). The scan form reads
  // the table's column slabs in place; the gather form batches probe
  // candidates into row-pointer chunks. Both surface the same first-in-RowId-
  // order error the row-at-a-time loop would (MatchChunk reports the lowest
  // errored lane; chunks run in ascending RowId order).
  StatusOr<std::vector<RowId>> FilterScanVectorized(const Table& table,
                                                    const sql::CompiledPredicate& residual,
                                                    const sql::BoundParams& bound) const;
  StatusOr<std::vector<RowId>> FilterCandidatesVectorized(
      const Table& table, const std::vector<RowId>& candidates,
      const sql::CompiledPredicate& residual, const sql::BoundParams& bound) const;

  // Drops every cached plan. Call from DDL while holding catalog_mu_
  // exclusively (no statement can then be mid-MatchRows).
  void InvalidatePlans() const {
    std::unique_lock<std::shared_mutex> lock(plan_mu_);
    plan_cache_.clear();
  }

  // Plan-cache lookup / build for (table, pred). Thread-safe; first insert
  // wins when two threads build the same plan concurrently.
  StatusOr<std::shared_ptr<const TablePlan>> GetPlan(const Table& table,
                                                     const sql::Expr& pred) const;

  // Runs one index probe, appending sorted row ids to `out`. Returns false
  // if the expected index is unavailable (caller falls back to a scan).
  StatusOr<bool> ExecuteProbe(const Table& table, const IndexProbe& probe,
                              const sql::ParamMap& params, std::vector<RowId>* out) const;

  // Undo-log helpers.
  void LogInsert(TxnState& tx, const std::string& table, RowId id);
  void LogDelete(TxnState& tx, const std::string& table, RowId id, Row row);
  void LogUpdate(TxnState& tx, const std::string& table, RowId id, size_t col_idx,
                 sql::Value old_value);
  void ApplyUndo(TxnState& tx, size_t from_mark);

  // Builds the net-change commit record from undo_log[from_mark..] plus the
  // touched tables' current state and hands it to the sink. Returns the
  // appended LSN, or 0 when there is no sink / nothing to log. Caller must
  // hold the statement's table locks (append order = lock order).
  StatusOr<uint64_t> AppendCommitToWal(TxnState& tx, size_t from_mark);

  // Post-release durability wait: blocks until `lsn` is fsync-covered.
  // Never call with table locks held (group commit lingers).
  Status WaitWalDurable(uint64_t lsn);

  // Sticky page-cache fault errors (recorded by Find/Scan/Clone, which have
  // no status channel). StickyCacheError returns-and-clears the pending one;
  // CacheFaultOr substitutes it for `fallback` so a fault failure is not
  // misreported as kNotFound.
  Status StickyCacheError() const;
  Status CacheFaultOr(Status fallback) const;

  // --- Row write intents (first-writer-wins) --------------------------------

  // Claims (table,id) for the calling thread's transaction. kAborted if
  // another live transaction holds it. Idempotent per transaction.
  Status ClaimIntent(TxnState& tx, const std::string& table, RowId id);
  // Releases every intent the transaction claimed past index `from`.
  void ReleaseIntents(TxnState& tx, size_t from);

  // --- Locking ---------------------------------------------------------------

  static size_t StripeOf(const std::string& table);

  // RAII statement lock: catalog shared + the stripes covering the named
  // tables, exclusive/shared as requested, acquired in ascending stripe
  // order. Construct, then call Lock() exactly once (the two-phase shape
  // lets the lock-set computation read the catalog safely).
  class TableLock {
   public:
    explicit TableLock(const Database* db);
    ~TableLock();
    void Lock(const std::vector<std::string>& exclusive,
              const std::vector<std::string>& shared);
    void LockAllShared();     // CheckIntegrity / Snapshot / TotalRows

   private:
    const Database* db_;
    std::vector<std::pair<size_t, bool>> held_;  // (stripe, exclusive), ascending
  };

  // Counts one logical statement (global atomic + calling thread's counter).
  void CountStatement() const;

  // Implicit-transaction guard for single statements.
  class StatementScope;

  Schema schema_;
  std::map<std::string, Table> tables_;
  mutable DbStats stats_;

  // Lock hierarchy (acquire strictly downward):
  //   catalog_mu_  ->  stripes_[i] (ascending i)  ->  txn_mu_ / intents_mu_
  //                                                   / plan_mu_ (all leaves)
  static constexpr size_t kNumStripes = 32;
  mutable std::shared_mutex catalog_mu_;
  mutable std::array<std::shared_mutex, kNumStripes> stripes_;

  mutable std::mutex txn_mu_;
  mutable std::unordered_map<std::thread::id, TxnState> txns_;

  mutable std::mutex intents_mu_;
  std::map<std::pair<std::string, RowId>, std::thread::id> write_intents_;

  // Plan cache, keyed by table name + predicate fingerprint (ToString).
  // Schema changes invalidate: every DDL entry point clears the cache while
  // holding catalog_mu_ exclusively, so no MatchRows (catalog shared) can
  // be mid-flight with a stale plan. plan_mu_ is a leaf lock: never take
  // another Database lock while holding it.
  // Cap on cached plans: one-shot literal predicates would otherwise grow
  // the cache without bound (GetPlan clears it epoch-style at the cap).
  static constexpr size_t kMaxCachedPlans = 4096;
  mutable std::shared_mutex plan_mu_;  // shared: lookup; exclusive: insert/clear
  mutable std::unordered_map<std::string, std::shared_ptr<const TablePlan>> plan_cache_;

  std::atomic<PlannerMode> planner_mode_{PlannerMode::kPlanned};
  std::atomic<ExecMode> exec_mode_{ExecMode::kRowAtATime};

  WriteGuard write_guard_;
  WalSink* wal_sink_ = nullptr;

  // Page cache: set once by AttachPageCache before concurrent use, read
  // without a lock afterwards. Its internal mutex is a leaf alongside
  // txn_mu_/intents_mu_/plan_mu_ (never nested with them).
  std::unique_ptr<PageCache> cache_;

  static constexpr int kMaxCascadeDepth = 32;
};

// Builds a ColumnResolver over one row of one table (shared with the
// disguise engine, which evaluates Modify expressions against rows).
sql::ColumnResolver MakeRowResolver(const TableSchema& schema, const Row& row);

}  // namespace edna::db

#endif  // SRC_DB_DATABASE_H_
