// Database: the application-facing relational engine.
//
// Responsibilities beyond Table:
//  * cross-table referential integrity (FK existence on writes, delete
//    actions RESTRICT / CASCADE / SET NULL),
//  * predicate-driven DML (select / update / delete with SQL WHERE clauses,
//    planned through equality indexes when possible),
//  * transactions: explicit Begin/Commit/Rollback plus implicit per-statement
//    atomicity, implemented with an undo log,
//  * query statistics (statement and row-touch counters) used by the paper's
//    linear-scaling experiment,
//  * whole-database snapshot/restore for benchmarks.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/schema.h"
#include "src/db/table.h"
#include "src/sql/ast.h"
#include "src/sql/eval.h"

namespace edna::db {

// Statement / row-touch counters. "Queries" counts logical statements the
// way a SQL client would issue them: one per select/insert/delete statement
// and one per row-level update, mirroring how Edna talks to MySQL.
struct DbStats {
  uint64_t queries = 0;
  uint64_t rows_read = 0;
  uint64_t rows_inserted = 0;
  uint64_t rows_updated = 0;
  uint64_t rows_deleted = 0;
  uint64_t index_lookups = 0;
  uint64_t full_scans = 0;

  void Reset() { *this = DbStats{}; }
};

// One column assignment in an UPDATE: column <- expression (evaluated per
// row; the expression may reference the row's current columns and params).
struct Assignment {
  std::string column;
  sql::ExprPtr expr;
};

// Pre-write hook consulted before any row mutation (update or delete).
// Returning a non-OK status vetoes the mutation (and, through the statement
// scope, unwinds the enclosing statement). Used by the disguise engine's
// strict mode to prohibit application updates to disguised data (§7).
// `column` is empty for whole-row operations (delete/restore).
using WriteGuard = std::function<Status(const std::string& table, RowId id,
                                        const std::string& column)>;

class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL -----------------------------------------------------------------

  // Adds a table. FK targets must already exist or arrive before first use;
  // Validate() checks the full catalog.
  Status CreateTable(TableSchema schema);

  // Creates every table of `schema` (validated as a whole first).
  Status AdoptSchema(const Schema& schema);

  // Schema evolution (§7): appends a column to an existing table, filling
  // current rows with `fill`. Disallowed inside a transaction and on
  // reserved tables. Reveal records written before the evolution remain
  // replayable: restored rows are padded with the new columns' defaults.
  Status AddColumnToTable(const std::string& table, ColumnDef col, sql::Value fill);

  // Builds (and backfills) a secondary equality index.
  Status CreateIndex(const std::string& table, const std::string& column);

  const Schema& schema() const { return schema_; }
  bool HasTable(const std::string& name) const { return FindTable(name) != nullptr; }
  const Table* FindTable(const std::string& name) const;

  // --- DML -----------------------------------------------------------------

  // Positional insert; NULL auto-increment columns are assigned.
  StatusOr<RowId> Insert(const std::string& table, Row row);

  // Named-column insert; unspecified columns take their default (or NULL for
  // nullable / auto-increment columns).
  StatusOr<RowId> InsertValues(const std::string& table,
                               const std::map<std::string, sql::Value>& values);

  // Rows matching `pred` (nullptr = all rows). Results reference live storage
  // and are invalidated by any mutation.
  StatusOr<std::vector<RowRef>> Select(const std::string& table, const sql::Expr* pred,
                                       const sql::ParamMap& params) const;

  // Count of matching rows without materializing.
  StatusOr<size_t> Count(const std::string& table, const sql::Expr* pred,
                         const sql::ParamMap& params) const;

  // Applies `assignments` to each matching row; returns rows updated.
  StatusOr<size_t> Update(const std::string& table, const sql::Expr* pred,
                          const sql::ParamMap& params,
                          const std::vector<Assignment>& assignments);

  // Deletes matching rows (running FK delete actions); returns rows deleted.
  StatusOr<size_t> Delete(const std::string& table, const sql::Expr* pred,
                          const sql::ParamMap& params);

  // One pre-computed column write within a batch statement.
  struct BatchUpdate {
    RowId id;
    std::string column;
    sql::Value value;
  };

  // Applies many single-column writes as ONE logical statement (stats count
  // one query, n row writes). Models the batched/multi-row UPDATE path the
  // paper suggests as an optimization; FK checks still apply per write.
  StatusOr<size_t> BatchSetColumns(const std::string& table,
                                   const std::vector<BatchUpdate>& updates);

  // --- Row-level operations (disguise engine fast paths) --------------------

  StatusOr<sql::Value> GetColumn(const std::string& table, RowId id,
                                 const std::string& column) const;
  StatusOr<Row> GetRow(const std::string& table, RowId id) const;

  // Single-column write with FK validation and undo logging.
  Status SetColumn(const std::string& table, RowId id, const std::string& column,
                   sql::Value value);

  // Deletes one row, applying FK delete actions recursively.
  Status DeleteRow(const std::string& table, RowId id);

  // Re-inserts a row with a known id (reveal/restore path); FK-checked.
  Status RestoreRow(const std::string& table, RowId id, Row row);

  // Image-load path: inserts a row with a known id WITHOUT foreign-key
  // checks (rows may forward-reference during a load). Callers MUST run
  // CheckIntegrity() after the last BulkLoadRow; db/storage.cc does.
  Status BulkLoadRow(const std::string& table, RowId id, Row row);

  // Image-load path: raises a table's auto-increment counter.
  Status EnsureAutoCounterAtLeast(const std::string& table, int64_t v);

  // Primary-key lookup helper.
  StatusOr<RowId> LookupPk(const std::string& table, const PkKey& key) const;

  // --- Transactions ----------------------------------------------------------

  // Explicit transaction; nesting is not supported.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool InTransaction() const { return in_txn_; }

  // --- Integrity & maintenance ----------------------------------------------

  // Full referential-integrity and index audit (test / property hook).
  Status CheckIntegrity() const;

  // Deep copy of all data (schema shared by value).
  std::unique_ptr<Database> Snapshot() const;

  // Total rows across all tables.
  size_t TotalRows() const;

  DbStats& stats() { return stats_; }
  const DbStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Installs (or clears, with nullptr) the write guard. At most one guard;
  // the engine toggles it around its own operations.
  void SetWriteGuard(WriteGuard guard) { write_guard_ = std::move(guard); }
  bool HasWriteGuard() const { return static_cast<bool>(write_guard_); }

 private:
  struct UndoEntry {
    enum class Kind { kInsert, kDelete, kUpdate } kind;
    std::string table;
    RowId id = kInvalidRowId;
    Row row;              // kDelete: full removed row
    size_t col_idx = 0;   // kUpdate
    sql::Value old_value; // kUpdate
  };

  Table* MutableTable(const std::string& name);

  // Children referencing `parent_table`: (child table name, fk).
  struct ChildRef {
    std::string child_table;
    ForeignKeyDef fk;
  };
  std::vector<ChildRef> ChildrenOf(const std::string& parent_table) const;

  // FK existence check for one value (non-NULL) against the parent table.
  Status CheckFkTarget(const ForeignKeyDef& fk, const sql::Value& v) const;

  // Checks all FK columns of a row about to enter `table`.
  Status CheckRowFks(const TableSchema& schema, const Row& row) const;

  // Recursive delete honoring FK actions; appends undo entries.
  Status DeleteRowInternal(const std::string& table, RowId id, int depth);

  // FK-checked single-column write; assumes a transaction scope is active.
  Status SetColumnInTxn(const std::string& table_name, Table* t, RowId id, size_t col_idx,
                        sql::Value value);

  // Predicate evaluation: builds the ColumnResolver for (schema,row).
  StatusOr<std::vector<RowId>> MatchRows(const Table& table, const sql::Expr* pred,
                                         const sql::ParamMap& params) const;

  // Undo-log helpers.
  void LogInsert(const std::string& table, RowId id);
  void LogDelete(const std::string& table, RowId id, Row row);
  void LogUpdate(const std::string& table, RowId id, size_t col_idx, sql::Value old_value);
  void ApplyUndo(size_t from_mark);

  // Implicit-transaction guard for single statements.
  class StatementScope;

  Schema schema_;
  std::map<std::string, Table> tables_;
  mutable DbStats stats_;

  bool in_txn_ = false;
  std::vector<UndoEntry> undo_log_;
  WriteGuard write_guard_;

  static constexpr int kMaxCascadeDepth = 32;
};

// Builds a ColumnResolver over one row of one table (shared with the
// disguise engine, which evaluates Modify expressions against rows).
sql::ColumnResolver MakeRowResolver(const TableSchema& schema, const Row& row);

}  // namespace edna::db

#endif  // SRC_DB_DATABASE_H_
