// Schema model for the in-memory relational engine: typed columns, primary
// keys (possibly composite), foreign keys with delete actions, and secondary
// index declarations. A Schema is the full catalog an application registers
// with a Database and a disguise specification is validated against.
#ifndef SRC_DB_SCHEMA_H_
#define SRC_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sql/value.h"

namespace edna::db {

enum class ColumnType { kInt, kDouble, kBool, kString, kBlob };

const char* ColumnTypeName(ColumnType t);

// Data-sensitivity classification of a column, consumed by the static
// analyzer's PII taint-flow analysis (src/analysis/taint.h). kPii marks
// direct identifiers or secrets (emails, password hashes, tokens); kQuasi
// marks quasi-identifiers that deanonymize in combination (free text,
// affiliations). Applications annotate their schemas in code; sidecar
// annotation files (docs/FORMATS.md) can override at analysis time.
enum class Sensitivity { kPublic = 0, kQuasi, kPii };

const char* SensitivityName(Sensitivity s);

// Parses "public" / "quasi" / "pii" (case-insensitive); false on anything else.
bool ParseSensitivity(std::string_view name, Sensitivity* out);

// True if `v` is storable in a column of type `t` (NULL is always storable
// type-wise; nullability is checked separately).
bool ValueMatchesType(const sql::Value& v, ColumnType t);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  bool nullable = true;
  bool auto_increment = false;  // INT columns only; filled on insert if NULL
  std::optional<sql::Value> default_value;
  Sensitivity sensitivity = Sensitivity::kPublic;

  // Rendered as one line of CREATE TABLE body, e.g.
  //   "email" STRING NULL DEFAULT NULL
  std::string ToSql() const;
};

// Action taken on child rows when a referenced parent row is deleted.
enum class FkAction {
  kRestrict,  // refuse the delete
  kCascade,   // delete child rows too
  kSetNull,   // null out the child reference (column must be nullable)
};

const char* FkActionName(FkAction a);

struct ForeignKeyDef {
  std::string column;         // referencing column in this table
  std::string parent_table;   // referenced table
  std::string parent_column;  // referenced column (must be parent's PK column)
  FkAction on_delete = FkAction::kRestrict;
};

struct IndexDef {
  std::string column;  // single-column secondary hash index
};

class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Builder-style mutators (return *this for chaining).
  TableSchema& AddColumn(ColumnDef col);
  TableSchema& SetPrimaryKey(std::vector<std::string> columns);
  TableSchema& AddForeignKey(ForeignKeyDef fk);
  TableSchema& AddIndex(std::string column);

  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const { return foreign_keys_; }
  const std::vector<IndexDef>& indexes() const { return indexes_; }

  // Index of a column by name; -1 if absent.
  int ColumnIndex(const std::string& name) const;
  const ColumnDef* FindColumn(const std::string& name) const;
  // Mutable access for sensitivity-annotation overlays (src/analysis/taint.h).
  ColumnDef* FindMutableColumn(const std::string& name);
  bool HasColumn(const std::string& name) const { return ColumnIndex(name) >= 0; }

  size_t num_columns() const { return columns_.size(); }

  // The foreign key declared on `column`, or nullptr.
  const ForeignKeyDef* FindForeignKey(const std::string& column) const;

  // True if `column` participates in the primary key.
  bool IsPrimaryKeyColumn(const std::string& column) const;

  // Structural validation (duplicate columns, PK columns exist & non-null,
  // FK columns exist, auto_increment only on INT, defaults type-check).
  Status Validate() const;

  // CREATE TABLE rendering; also the basis of the Figure-4 schema-LoC count.
  std::string ToCreateSql() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKeyDef> foreign_keys_;
  std::vector<IndexDef> indexes_;
};

// A named catalog of tables.
class Schema {
 public:
  Schema() = default;

  Status AddTable(TableSchema table);
  const TableSchema* FindTable(const std::string& name) const;
  // Mutable access for schema evolution (Database::AddColumnToTable).
  TableSchema* FindMutableTable(const std::string& name);
  const std::vector<TableSchema>& tables() const { return tables_; }
  size_t num_tables() const { return tables_.size(); }

  // Cross-table validation: every FK references an existing table whose
  // single-column primary key matches the referenced column, with compatible
  // types; SetNull FKs sit on nullable columns.
  Status Validate() const;

  // Full DDL script (all CREATE TABLEs).
  std::string ToSql() const;

  // Effective (non-blank, non-comment) line count of ToSql(): the paper's
  // "Schema LoC" metric in Figure 4.
  size_t SchemaLoc() const;

 private:
  std::vector<TableSchema> tables_;
};

}  // namespace edna::db

#endif  // SRC_DB_SCHEMA_H_
