#include "src/db/database.h"

#include <algorithm>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace edna::db {

sql::ColumnResolver MakeRowResolver(const TableSchema& schema, const Row& row) {
  return [&schema, &row](const std::string& table,
                         const std::string& column) -> StatusOr<sql::Value> {
    if (!table.empty() && table != schema.name()) {
      return NotFound("unknown table qualifier \"" + table + "\" (row is from \"" +
                      schema.name() + "\")");
    }
    int idx = schema.ColumnIndex(column);
    if (idx < 0) {
      return NotFound("unknown column \"" + column + "\" in table \"" + schema.name() + "\"");
    }
    return row[static_cast<size_t>(idx)];
  };
}

// RAII: wraps a single statement in an implicit transaction when no explicit
// one is active, so a mid-statement failure (e.g. cascade hitting RESTRICT)
// leaves the database unchanged.
class Database::StatementScope {
 public:
  explicit StatementScope(Database* db) : db_(db), implicit_(!db->in_txn_) {
    if (implicit_) {
      db_->in_txn_ = true;
    }
    mark_ = db_->undo_log_.size();
  }
  ~StatementScope() {
    if (!done_ && implicit_) {
      // Statement failed: roll back just this statement's effects.
      db_->ApplyUndo(mark_);
      db_->in_txn_ = false;
    } else if (!done_) {
      // Inside an explicit transaction a failed statement also unwinds its
      // own partial effects; the enclosing transaction stays open.
      db_->ApplyUndo(mark_);
    }
  }
  void Commit() {
    done_ = true;
    if (implicit_) {
      db_->undo_log_.clear();
      db_->in_txn_ = false;
    }
  }

 private:
  Database* db_;
  bool implicit_;
  bool done_ = false;
  size_t mark_ = 0;
};

Status Database::CreateTable(TableSchema schema) {
  RETURN_IF_ERROR(schema.Validate());
  if (tables_.count(schema.name()) > 0) {
    return AlreadyExists("table \"" + schema.name() + "\" already exists");
  }
  RETURN_IF_ERROR(schema_.AddTable(schema));
  std::string name = schema.name();  // read before the move below
  tables_.emplace(std::move(name), Table(std::move(schema)));
  return OkStatus();
}

Status Database::AdoptSchema(const Schema& schema) {
  RETURN_IF_ERROR(schema.Validate());
  for (const TableSchema& t : schema.tables()) {
    RETURN_IF_ERROR(CreateTable(t));
  }
  return OkStatus();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<Database::ChildRef> Database::ChildrenOf(const std::string& parent_table) const {
  std::vector<ChildRef> out;
  for (const TableSchema& t : schema_.tables()) {
    for (const ForeignKeyDef& fk : t.foreign_keys()) {
      if (fk.parent_table == parent_table) {
        out.push_back(ChildRef{t.name(), fk});
      }
    }
  }
  return out;
}

Status Database::CheckFkTarget(const ForeignKeyDef& fk, const sql::Value& v) const {
  if (v.is_null()) {
    return OkStatus();
  }
  const Table* parent = FindTable(fk.parent_table);
  if (parent == nullptr) {
    return Internal("FK parent table \"" + fk.parent_table + "\" missing");
  }
  PkKey key;
  key.values.push_back(v);
  ++stats_.index_lookups;
  if (!parent->LookupPk(key).ok()) {
    return IntegrityViolation("foreign key violation: no \"" + fk.parent_table + "\" row with " +
                              fk.parent_column + " = " + v.ToSqlString());
  }
  return OkStatus();
}

Status Database::CheckRowFks(const TableSchema& schema, const Row& row) const {
  for (const ForeignKeyDef& fk : schema.foreign_keys()) {
    const sql::Value& v = row[static_cast<size_t>(schema.ColumnIndex(fk.column))];
    RETURN_IF_ERROR(CheckFkTarget(fk, v));
  }
  return OkStatus();
}

void Database::LogInsert(const std::string& table, RowId id) {
  UndoEntry e;
  e.kind = UndoEntry::Kind::kInsert;
  e.table = table;
  e.id = id;
  undo_log_.push_back(std::move(e));
}

void Database::LogDelete(const std::string& table, RowId id, Row row) {
  UndoEntry e;
  e.kind = UndoEntry::Kind::kDelete;
  e.table = table;
  e.id = id;
  e.row = std::move(row);
  undo_log_.push_back(std::move(e));
}

void Database::LogUpdate(const std::string& table, RowId id, size_t col_idx,
                         sql::Value old_value) {
  UndoEntry e;
  e.kind = UndoEntry::Kind::kUpdate;
  e.table = table;
  e.id = id;
  e.col_idx = col_idx;
  e.old_value = std::move(old_value);
  undo_log_.push_back(std::move(e));
}

void Database::ApplyUndo(size_t from_mark) {
  while (undo_log_.size() > from_mark) {
    UndoEntry e = std::move(undo_log_.back());
    undo_log_.pop_back();
    Table* t = MutableTable(e.table);
    if (t == nullptr) {
      EDNA_LOG(kError) << "undo references missing table " << e.table;
      continue;
    }
    switch (e.kind) {
      case UndoEntry::Kind::kInsert: {
        auto removed = t->Erase(e.id);
        if (!removed.ok()) {
          EDNA_LOG(kError) << "undo insert failed: " << removed.status();
        }
        break;
      }
      case UndoEntry::Kind::kDelete: {
        Status st = t->InsertWithId(e.id, std::move(e.row));
        if (!st.ok()) {
          EDNA_LOG(kError) << "undo delete failed: " << st;
        }
        break;
      }
      case UndoEntry::Kind::kUpdate: {
        auto st = t->UpdateColumn(e.id, e.col_idx, std::move(e.old_value));
        if (!st.ok()) {
          EDNA_LOG(kError) << "undo update failed: " << st.status();
        }
        break;
      }
    }
  }
}

StatusOr<RowId> Database::Insert(const std::string& table, Row row) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  StatementScope scope(this);
  ++stats_.queries;
  RETURN_IF_ERROR(CheckRowFks(t->schema(), row));
  ASSIGN_OR_RETURN(RowId id, t->Insert(std::move(row)));
  ++stats_.rows_inserted;
  LogInsert(table, id);
  scope.Commit();
  return id;
}

StatusOr<RowId> Database::InsertValues(const std::string& table,
                                       const std::map<std::string, sql::Value>& values) {
  const Table* t = FindTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  const TableSchema& schema = t->schema();
  Row row(schema.num_columns(), sql::Value::Null());
  for (const auto& [name, value] : values) {
    int idx = schema.ColumnIndex(name);
    if (idx < 0) {
      return NotFound("unknown column \"" + name + "\" in table \"" + table + "\"");
    }
    row[static_cast<size_t>(idx)] = value;
  }
  // Fill defaults for unspecified columns.
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const ColumnDef& col = schema.columns()[i];
    if (values.count(col.name) == 0 && col.default_value.has_value()) {
      row[i] = *col.default_value;
    }
  }
  return Insert(table, std::move(row));
}

StatusOr<std::vector<RowId>> Database::MatchRows(const Table& table, const sql::Expr* pred,
                                                 const sql::ParamMap& params) const {
  std::vector<RowId> candidates;
  bool used_index = false;

  // Planner: find an equality conjunct `col = <constant>` whose column is
  // indexed; use it to seed candidates, then filter by the full predicate.
  if (pred != nullptr) {
    const sql::Expr* node = pred;
    std::vector<const sql::Expr*> stack{node};
    while (!stack.empty() && !used_index) {
      const sql::Expr* e = stack.back();
      stack.pop_back();
      if (e->kind() == sql::ExprKind::kBinary && e->binary_op() == sql::BinaryOp::kAnd) {
        stack.push_back(e->children()[0].get());
        stack.push_back(e->children()[1].get());
        continue;
      }
      if (e->kind() != sql::ExprKind::kBinary || e->binary_op() != sql::BinaryOp::kEq) {
        continue;
      }
      const sql::Expr* lhs = e->children()[0].get();
      const sql::Expr* rhs = e->children()[1].get();
      if (lhs->kind() != sql::ExprKind::kColumnRef) {
        std::swap(lhs, rhs);
      }
      if (lhs->kind() != sql::ExprKind::kColumnRef ||
          !sql::IsConstantExpression(*rhs)) {
        continue;
      }
      if (!table.HasIndexOn(lhs->column())) {
        continue;
      }
      auto value = sql::EvaluateConstant(*rhs, params);
      if (!value.ok()) {
        return value.status();
      }
      if (table.IndexLookup(lhs->column(), *value, &candidates)) {
        used_index = true;
        ++stats_.index_lookups;
      }
    }
  }

  if (!used_index) {
    candidates = table.AllRowIds();
    ++stats_.full_scans;
  }

  if (pred == nullptr) {
    stats_.rows_read += candidates.size();
    return candidates;
  }

  std::vector<RowId> out;
  for (RowId id : candidates) {
    const Row* row = table.Find(id);
    if (row == nullptr) {
      continue;
    }
    ++stats_.rows_read;
    sql::ColumnResolver resolver = MakeRowResolver(table.schema(), *row);
    ASSIGN_OR_RETURN(bool match, sql::EvaluatePredicate(*pred, resolver, params));
    if (match) {
      out.push_back(id);
    }
  }
  return out;
}

StatusOr<std::vector<RowRef>> Database::Select(const std::string& table, const sql::Expr* pred,
                                               const sql::ParamMap& params) const {
  const Table* t = FindTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  ++stats_.queries;
  ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
  std::vector<RowRef> out;
  out.reserve(ids.size());
  for (RowId id : ids) {
    out.push_back(RowRef{id, t->Find(id)});
  }
  return out;
}

StatusOr<size_t> Database::Count(const std::string& table, const sql::Expr* pred,
                                 const sql::ParamMap& params) const {
  const Table* t = FindTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  ++stats_.queries;
  ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
  return ids.size();
}

StatusOr<size_t> Database::Update(const std::string& table, const sql::Expr* pred,
                                  const sql::ParamMap& params,
                                  const std::vector<Assignment>& assignments) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  const TableSchema& schema = t->schema();
  // Pre-validate assignment columns.
  std::vector<size_t> col_indices;
  col_indices.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    int idx = schema.ColumnIndex(a.column);
    if (idx < 0) {
      return NotFound("unknown column \"" + a.column + "\" in table \"" + table + "\"");
    }
    col_indices.push_back(static_cast<size_t>(idx));
  }

  StatementScope scope(this);
  ++stats_.queries;  // the SELECT phase
  ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));

  size_t updated = 0;
  for (RowId id : ids) {
    const Row* row = t->Find(id);
    if (row == nullptr) {
      continue;
    }
    // Evaluate all assignment expressions against the pre-update row.
    std::vector<sql::Value> new_values;
    new_values.reserve(assignments.size());
    sql::ColumnResolver resolver = MakeRowResolver(schema, *row);
    for (const Assignment& a : assignments) {
      ASSIGN_OR_RETURN(sql::Value v, sql::Evaluate(*a.expr, resolver, params));
      new_values.push_back(std::move(v));
    }
    for (size_t k = 0; k < assignments.size(); ++k) {
      RETURN_IF_ERROR(SetColumnInTxn(table, t, id, col_indices[k], std::move(new_values[k])));
    }
    ++updated;
    ++stats_.queries;  // one UPDATE statement per row, as Edna issues them
  }
  scope.Commit();
  return updated;
}

// Private helper is declared inline here: performs an FK-checked single
// column write assuming a StatementScope/transaction is already active.
Status Database::SetColumnInTxn(const std::string& table_name, Table* t, RowId id,
                                size_t col_idx, sql::Value value) {
  const TableSchema& schema = t->schema();
  const ColumnDef& col = schema.columns()[col_idx];
  if (write_guard_) {
    RETURN_IF_ERROR(write_guard_(table_name, id, col.name));
  }

  // FK on this column: new value must resolve.
  if (const ForeignKeyDef* fk = schema.FindForeignKey(col.name); fk != nullptr) {
    RETURN_IF_ERROR(CheckFkTarget(*fk, value));
  }
  // If this column is the referenced PK of children, block changes that
  // would orphan them.
  if (schema.IsPrimaryKeyColumn(col.name)) {
    const Row* row = t->Find(id);
    if (row == nullptr) {
      return NotFound("row vanished during update");
    }
    const sql::Value& old = (*row)[col_idx];
    if (!old.SqlEquals(value)) {
      for (const ChildRef& child : ChildrenOf(table_name)) {
        if (child.fk.parent_column != col.name) {
          continue;
        }
        const Table* ct = FindTable(child.child_table);
        std::vector<RowId> kids;
        ++stats_.index_lookups;
        ct->IndexLookup(child.fk.column, old, &kids);
        if (!kids.empty()) {
          return IntegrityViolation("cannot change \"" + table_name + "." + col.name +
                                    "\": referenced by " + std::to_string(kids.size()) +
                                    " row(s) of \"" + child.child_table + "\"");
        }
      }
    }
  }
  ASSIGN_OR_RETURN(sql::Value old, t->UpdateColumn(id, col_idx, std::move(value)));
  ++stats_.rows_updated;
  LogUpdate(table_name, id, col_idx, std::move(old));
  return OkStatus();
}

StatusOr<size_t> Database::BatchSetColumns(const std::string& table,
                                           const std::vector<BatchUpdate>& updates) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  StatementScope scope(this);
  ++stats_.queries;  // one multi-row statement
  for (const BatchUpdate& u : updates) {
    int idx = t->schema().ColumnIndex(u.column);
    if (idx < 0) {
      return NotFound("unknown column \"" + u.column + "\" in table \"" + table + "\"");
    }
    RETURN_IF_ERROR(SetColumnInTxn(table, t, u.id, static_cast<size_t>(idx), u.value));
  }
  scope.Commit();
  return updates.size();
}

StatusOr<size_t> Database::Delete(const std::string& table, const sql::Expr* pred,
                                  const sql::ParamMap& params) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  StatementScope scope(this);
  ++stats_.queries;
  ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
  size_t deleted = 0;
  for (RowId id : ids) {
    if (!t->Contains(id)) {
      continue;  // removed by an earlier cascade in this statement
    }
    RETURN_IF_ERROR(DeleteRowInternal(table, id, 0));
    ++deleted;
    ++stats_.queries;  // one DELETE statement per row
  }
  scope.Commit();
  return deleted;
}

Status Database::DeleteRowInternal(const std::string& table, RowId id, int depth) {
  if (depth > kMaxCascadeDepth) {
    return IntegrityViolation("cascade depth limit exceeded (cycle in FK graph?)");
  }
  if (write_guard_) {
    RETURN_IF_ERROR(write_guard_(table, id, ""));
  }
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  const Row* row_ptr = t->Find(id);
  if (row_ptr == nullptr) {
    return NotFound(StrFormat("row id %llu not in table \"%s\"",
                              static_cast<unsigned long long>(id), table.c_str()));
  }
  // Handle children referencing this row before removing it.
  const TableSchema& schema = t->schema();
  if (schema.primary_key().size() == 1) {
    const std::string& pk_col = schema.primary_key()[0];
    sql::Value pk_value = (*row_ptr)[static_cast<size_t>(schema.ColumnIndex(pk_col))];
    for (const ChildRef& child : ChildrenOf(table)) {
      Table* ct = MutableTable(child.child_table);
      std::vector<RowId> kids;
      ++stats_.index_lookups;
      if (!ct->IndexLookup(child.fk.column, pk_value, &kids)) {
        // Unindexed FK column (shouldn't happen: Table indexes FK columns).
        kids.clear();
        ct->Scan([&](RowId rid, const Row& r) {
          const sql::Value& v =
              r[static_cast<size_t>(ct->schema().ColumnIndex(child.fk.column))];
          if (!v.is_null() && v.SqlEquals(pk_value)) {
            kids.push_back(rid);
          }
        });
        ++stats_.full_scans;
      }
      if (kids.empty()) {
        continue;
      }
      switch (child.fk.on_delete) {
        case FkAction::kRestrict:
          return IntegrityViolation("cannot delete \"" + table + "\" row " +
                                    pk_value.ToSqlString() + ": referenced by " +
                                    std::to_string(kids.size()) + " row(s) of \"" +
                                    child.child_table + "\"");
        case FkAction::kCascade:
          for (RowId kid : kids) {
            if (ct->Contains(kid)) {
              RETURN_IF_ERROR(DeleteRowInternal(child.child_table, kid, depth + 1));
            }
          }
          break;
        case FkAction::kSetNull: {
          int col_idx = ct->schema().ColumnIndex(child.fk.column);
          for (RowId kid : kids) {
            ASSIGN_OR_RETURN(sql::Value old,
                             ct->UpdateColumn(kid, static_cast<size_t>(col_idx),
                                              sql::Value::Null()));
            ++stats_.rows_updated;
            LogUpdate(child.child_table, kid, static_cast<size_t>(col_idx), std::move(old));
          }
          break;
        }
      }
    }
  } else if (!ChildrenOf(table).empty()) {
    return Internal("FK references a composite-PK table \"" + table + "\"");
  }

  ASSIGN_OR_RETURN(Row removed, t->Erase(id));
  ++stats_.rows_deleted;
  LogDelete(table, id, std::move(removed));
  return OkStatus();
}

StatusOr<sql::Value> Database::GetColumn(const std::string& table, RowId id,
                                         const std::string& column) const {
  const Table* t = FindTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  const Row* row = t->Find(id);
  if (row == nullptr) {
    return NotFound(StrFormat("row id %llu not in table \"%s\"",
                              static_cast<unsigned long long>(id), table.c_str()));
  }
  int idx = t->schema().ColumnIndex(column);
  if (idx < 0) {
    return NotFound("unknown column \"" + column + "\" in table \"" + table + "\"");
  }
  ++stats_.rows_read;
  return (*row)[static_cast<size_t>(idx)];
}

StatusOr<Row> Database::GetRow(const std::string& table, RowId id) const {
  const Table* t = FindTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  const Row* row = t->Find(id);
  if (row == nullptr) {
    return NotFound(StrFormat("row id %llu not in table \"%s\"",
                              static_cast<unsigned long long>(id), table.c_str()));
  }
  ++stats_.rows_read;
  return *row;
}

Status Database::SetColumn(const std::string& table, RowId id, const std::string& column,
                           sql::Value value) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  int idx = t->schema().ColumnIndex(column);
  if (idx < 0) {
    return NotFound("unknown column \"" + column + "\" in table \"" + table + "\"");
  }
  StatementScope scope(this);
  ++stats_.queries;
  RETURN_IF_ERROR(SetColumnInTxn(table, t, id, static_cast<size_t>(idx), std::move(value)));
  scope.Commit();
  return OkStatus();
}

Status Database::DeleteRow(const std::string& table, RowId id) {
  StatementScope scope(this);
  ++stats_.queries;
  RETURN_IF_ERROR(DeleteRowInternal(table, id, 0));
  scope.Commit();
  return OkStatus();
}

Status Database::RestoreRow(const std::string& table, RowId id, Row row) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  StatementScope scope(this);
  ++stats_.queries;
  RETURN_IF_ERROR(CheckRowFks(t->schema(), row));
  RETURN_IF_ERROR(t->InsertWithId(id, std::move(row)));
  ++stats_.rows_inserted;
  LogInsert(table, id);
  scope.Commit();
  return OkStatus();
}

Status Database::BulkLoadRow(const std::string& table, RowId id, Row row) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  RETURN_IF_ERROR(t->InsertWithId(id, std::move(row)));
  ++stats_.rows_inserted;
  return OkStatus();
}

Status Database::EnsureAutoCounterAtLeast(const std::string& table, int64_t v) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  t->EnsureAutoCounterAtLeast(v);
  return OkStatus();
}

StatusOr<RowId> Database::LookupPk(const std::string& table, const PkKey& key) const {
  const Table* t = FindTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  ++stats_.index_lookups;
  return t->LookupPk(key);
}

Status Database::AddColumnToTable(const std::string& table, ColumnDef col,
                                  sql::Value fill) {
  if (in_txn_) {
    return FailedPrecondition("cannot evolve the schema inside a transaction");
  }
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  // A default makes the column restorable for pre-evolution reveal records;
  // require one (possibly NULL for nullable columns).
  if (!col.default_value.has_value()) {
    if (!col.nullable) {
      return InvalidArgument("new NOT NULL column \"" + col.name +
                             "\" needs a default value");
    }
    col.default_value = sql::Value::Null();
  }
  TableSchema* catalog = schema_.FindMutableTable(table);
  RETURN_IF_ERROR(t->AddColumn(col, fill));
  catalog->AddColumn(std::move(col));
  return OkStatus();
}

Status Database::CreateIndex(const std::string& table, const std::string& column) {
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  RETURN_IF_ERROR(t->BuildIndex(column));
  TableSchema* catalog = schema_.FindMutableTable(table);
  if (!catalog->HasColumn(column)) {
    return Internal("catalog desync after index build");
  }
  bool listed = false;
  for (const IndexDef& idx : catalog->indexes()) {
    if (idx.column == column) {
      listed = true;
    }
  }
  if (!listed) {
    catalog->AddIndex(column);
  }
  return OkStatus();
}

Status Database::Begin() {
  EDNA_FAIL_POINT(failpoints::kDbBegin);
  if (in_txn_) {
    return FailedPrecondition("transaction already active");
  }
  in_txn_ = true;
  undo_log_.clear();
  return OkStatus();
}

Status Database::Commit() {
  EDNA_FAIL_POINT(failpoints::kDbCommit);
  if (!in_txn_) {
    return FailedPrecondition("no active transaction");
  }
  in_txn_ = false;
  undo_log_.clear();
  return OkStatus();
}

Status Database::Rollback() {
  EDNA_FAIL_POINT(failpoints::kDbRollback);
  if (!in_txn_) {
    return FailedPrecondition("no active transaction");
  }
  ApplyUndo(0);
  in_txn_ = false;
  return OkStatus();
}

Status Database::CheckIntegrity() const {
  for (const auto& [name, table] : tables_) {
    RETURN_IF_ERROR(table.CheckIndexConsistency());
    const TableSchema& schema = table.schema();
    for (const ForeignKeyDef& fk : schema.foreign_keys()) {
      const Table* parent = FindTable(fk.parent_table);
      if (parent == nullptr) {
        return IntegrityViolation("missing parent table \"" + fk.parent_table + "\"");
      }
      int col_idx = schema.ColumnIndex(fk.column);
      Status bad = OkStatus();
      table.Scan([&](RowId, const Row& row) {
        if (!bad.ok()) {
          return;
        }
        const sql::Value& v = row[static_cast<size_t>(col_idx)];
        if (v.is_null()) {
          return;
        }
        PkKey key;
        key.values.push_back(v);
        if (!parent->LookupPk(key).ok()) {
          bad = IntegrityViolation("dangling foreign key \"" + name + "." + fk.column + "\" = " +
                                   v.ToSqlString() + " -> \"" + fk.parent_table + "\"");
        }
      });
      RETURN_IF_ERROR(bad);
    }
  }
  return OkStatus();
}

std::unique_ptr<Database> Database::Snapshot() const {
  auto copy = std::make_unique<Database>();
  copy->schema_ = schema_;
  for (const auto& [name, table] : tables_) {
    copy->tables_.emplace(name, table.Clone());
  }
  return copy;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table.num_rows();
  }
  return total;
}

}  // namespace edna::db
