#include "src/db/database.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/sql/verify.h"

namespace edna::db {

namespace {

// Per-thread statement counter (see Database::ThreadStatements). One global
// counter is enough: a thread computes deltas around one operation on one
// database at a time, so cross-instance bleed cannot occur within a delta.
thread_local uint64_t tls_statements = 0;

}  // namespace

Database::Database() {
  if (const char* env = std::getenv("EDNA_EXEC_MODE"); env != nullptr && *env != '\0') {
    if (std::strcmp(env, "vectorized") == 0) {
      exec_mode_.store(ExecMode::kVectorized, std::memory_order_relaxed);
    } else if (std::strcmp(env, "row-at-a-time") == 0 || std::strcmp(env, "row") == 0) {
      exec_mode_.store(ExecMode::kRowAtATime, std::memory_order_relaxed);
    } else {
      EDNA_LOG(kWarning) << "EDNA_EXEC_MODE=\"" << env
                         << "\" is not \"vectorized\" or \"row-at-a-time\"; "
                            "keeping row-at-a-time";
    }
  }
}

sql::ColumnResolver MakeRowResolver(const TableSchema& schema, const Row& row) {
  return [&schema, &row](const std::string& table,
                         const std::string& column) -> StatusOr<sql::Value> {
    if (!table.empty() && table != schema.name()) {
      return NotFound("unknown table qualifier \"" + table + "\" (row is from \"" +
                      schema.name() + "\")");
    }
    int idx = schema.ColumnIndex(column);
    if (idx < 0) {
      return NotFound("unknown column \"" + column + "\" in table \"" + schema.name() + "\"");
    }
    return row[static_cast<size_t>(idx)];
  };
}

// --- Locking -----------------------------------------------------------------

size_t Database::StripeOf(const std::string& table) {
  return std::hash<std::string>{}(table) % kNumStripes;
}

Database::TableLock::TableLock(const Database* db) : db_(db) {
  db_->catalog_mu_.lock_shared();
}

void Database::TableLock::Lock(const std::vector<std::string>& exclusive,
                               const std::vector<std::string>& shared) {
  // Collapse table names onto stripes; if a stripe is wanted in both modes,
  // exclusive wins. Acquisition in ascending stripe order makes every
  // multi-stripe statement take locks in the same global order (deadlock
  // freedom); each stripe is acquired at most once (shared_mutex is not
  // recursive).
  std::map<size_t, bool> want;
  for (const std::string& t : exclusive) {
    want[StripeOf(t)] = true;
  }
  for (const std::string& t : shared) {
    want.emplace(StripeOf(t), false);
  }
  held_.reserve(want.size());
  for (const auto& [stripe, excl] : want) {
    if (excl) {
      db_->stripes_[stripe].lock();
    } else {
      db_->stripes_[stripe].lock_shared();
    }
    held_.emplace_back(stripe, excl);
  }
}

void Database::TableLock::LockAllShared() {
  held_.reserve(kNumStripes);
  for (size_t i = 0; i < kNumStripes; ++i) {
    db_->stripes_[i].lock_shared();
    held_.emplace_back(i, false);
  }
}

Database::TableLock::~TableLock() {
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (it->second) {
      db_->stripes_[it->first].unlock();
    } else {
      db_->stripes_[it->first].unlock_shared();
    }
  }
  db_->catalog_mu_.unlock_shared();
}

Database::TxnState& Database::Txn() const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  return txns_[std::this_thread::get_id()];  // node-stable; owner-thread access after
}

void Database::CountStatement() const {
  ++stats_.queries;
  ++tls_statements;
}

uint64_t Database::ThreadStatements() { return tls_statements; }

// --- Write intents (first-writer-wins) ---------------------------------------

Status Database::ClaimIntent(TxnState& tx, const std::string& table, RowId id) {
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(intents_mu_);
    auto key = std::make_pair(table, id);
    auto [it, inserted] = write_intents_.try_emplace(key, std::this_thread::get_id());
    if (!inserted && it->second != std::this_thread::get_id()) {
      return Aborted(StrFormat("write conflict: row %llu of \"%s\" is being written by a "
                               "concurrent transaction",
                               static_cast<unsigned long long>(id), table.c_str()));
    }
    if (inserted) {
      tx.intents.push_back(std::move(key));
      fresh = true;
    }
  }
  // Pin outside intents_mu_: the cache mutex and intents_mu_ are sibling
  // leaves and must never nest. A pinned page is unevictable, which keeps
  // every row in the undo log resident until the intent is released.
  if (fresh && cache_ != nullptr) {
    cache_->PinRow(table, id);
  }
  return OkStatus();
}

void Database::ReleaseIntents(TxnState& tx, size_t from) {
  if (tx.intents.size() <= from) {
    return;
  }
  std::vector<std::pair<std::string, RowId>> released;
  {
    std::lock_guard<std::mutex> lock(intents_mu_);
    while (tx.intents.size() > from) {
      write_intents_.erase(tx.intents.back());
      released.push_back(std::move(tx.intents.back()));
      tx.intents.pop_back();
    }
  }
  if (cache_ != nullptr) {
    for (const auto& [table, id] : released) {
      cache_->UnpinRow(table, id);
    }
  }
}

// RAII: wraps a single statement in an implicit transaction when no explicit
// one is active, so a mid-statement failure (e.g. cascade hitting RESTRICT)
// leaves the database unchanged. Statement-scoped intents are released on
// implicit commit/abort; inside an explicit transaction they are kept until
// the transaction ends (conservative: a reverted row stays claimed).
class Database::StatementScope {
 public:
  StatementScope(Database* db, TxnState& tx) : db_(db), tx_(tx), implicit_(!tx.in_txn) {
    if (implicit_) {
      tx_.in_txn = true;
    }
    mark_ = tx_.undo_log.size();
  }
  ~StatementScope() {
    if (!done_) {
      // Statement failed: roll back just this statement's effects. Inside an
      // explicit transaction the enclosing transaction stays open.
      db_->ApplyUndo(tx_, mark_);
      if (implicit_) {
        tx_.in_txn = false;
        db_->ReleaseIntents(tx_, 0);
      }
    }
  }
  // Commits the statement. When this scope IS the implicit transaction and a
  // durability sink is attached, the statement's net changes are appended to
  // the WAL before write intents are released; `*wal_lsn` receives the LSN
  // the caller must sync AFTER dropping its table locks (group commit may
  // linger). A simulated crash out of the append freezes the statement —
  // done_ set, no undo, intents kept — so the in-memory state matches what a
  // real process death mid-commit would leave for recovery to roll back.
  // Any other append failure rolls the statement back via the destructor.
  Status Commit(uint64_t* wal_lsn) {
    if (implicit_ && tx_.undo_log.size() > mark_) {
      StatusOr<uint64_t> lsn = db_->AppendCommitToWal(tx_, mark_);
      if (!lsn.ok()) {
        if (FailPoints::IsSimulatedCrash(lsn.status())) {
          done_ = true;
        }
        return lsn.status();
      }
      if (wal_lsn != nullptr) {
        *wal_lsn = *lsn;
      }
    }
    done_ = true;
    if (implicit_) {
      tx_.undo_log.clear();
      tx_.in_txn = false;
      db_->ReleaseIntents(tx_, 0);
    }
    return OkStatus();
  }

 private:
  Database* db_;
  TxnState& tx_;
  bool implicit_;
  bool done_ = false;
  size_t mark_ = 0;
};

// --- Durability --------------------------------------------------------------

void Database::SetWalSink(WalSink* sink) {
  std::unique_lock<std::shared_mutex> catalog(catalog_mu_);
  wal_sink_ = sink;
}

bool Database::HasWalSink() const {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  return wal_sink_ != nullptr;
}

StatusOr<uint64_t> Database::AppendCommitToWal(TxnState& tx, size_t from_mark) {
  if (wal_sink_ == nullptr || tx.undo_log.size() <= from_mark) {
    return static_cast<uint64_t>(0);
  }
  WalCommit commit;
  // The undo log holds one entry per primitive mutation; the NET change of a
  // row is (prior existence, current state). The FIRST undo entry touching a
  // row tells whether it existed before the transaction (kInsert: no;
  // kDelete/kUpdate: yes), and the table holds its final image now.
  std::set<std::pair<std::string, RowId>> seen;
  std::set<std::string> touched_tables;
  for (size_t i = from_mark; i < tx.undo_log.size(); ++i) {
    const UndoEntry& e = tx.undo_log[i];
    touched_tables.insert(e.table);
    if (!seen.insert({e.table, e.id}).second) {
      continue;
    }
    Table* t = MutableTable(e.table);
    if (t == nullptr) {
      return Internal("commit references missing table \"" + e.table + "\"");
    }
    const Row* now = t->Find(e.id);
    WalChange change;
    change.table = e.table;
    change.id = e.id;
    if (now == nullptr) {
      // Undo-logged rows are intent-pinned, so Find cannot have fault-failed
      // here; the sticky check is defensive against that invariant breaking.
      RETURN_IF_ERROR(StickyCacheError());
      if (e.kind == UndoEntry::Kind::kInsert) {
        continue;  // created and deleted within the transaction: net no-op
      }
      change.erase = true;
    } else {
      change.row = *now;
    }
    commit.changes.push_back(std::move(change));
  }
  // Auto-increment counters ride along so a replayed database hands out the
  // same ids. Replay raises to the max seen, so a stale value from an
  // interleaved explicit commit is harmless.
  for (const std::string& name : touched_tables) {
    if (Table* t = MutableTable(name); t != nullptr) {
      commit.counters.emplace_back(name, t->PeekAutoIncrement() - 1);
    }
  }
  return wal_sink_->AppendCommit(std::move(commit));
}

Status Database::WaitWalDurable(uint64_t lsn) {
  if (lsn == 0) {
    return OkStatus();
  }
  WalSink* sink = nullptr;
  {
    // Read the pointer under the catalog lock, but sync OUTSIDE it: the
    // group-commit linger must not block DDL.
    std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
    sink = wal_sink_;
  }
  if (sink == nullptr) {
    return OkStatus();
  }
  return sink->SyncCommit(lsn);
}

// --- Page cache --------------------------------------------------------------

Status Database::StickyCacheError() const {
  return cache_ == nullptr ? OkStatus() : cache_->ConsumeStickyError();
}

Status Database::CacheFaultOr(Status fallback) const {
  // A Find that returned nullptr is ambiguous with a pager attached: the row
  // may be gone (fallback, usually kNotFound) or its page may have failed to
  // fault in. Surface the fault — mapping an extent I/O error to kNotFound
  // would silently report a live row as missing.
  if (cache_ != nullptr) {
    Status sticky = cache_->ConsumeStickyError();
    if (!sticky.ok()) {
      return sticky;
    }
  }
  return fallback;
}

Status Database::AttachPageCache(const CacheOptions& options,
                                 const std::string& extents_dir) {
  std::unique_lock<std::shared_mutex> catalog(catalog_mu_);
  if (cache_ != nullptr) {
    return FailedPrecondition("page cache already attached");
  }
  if (options.max_resident_bytes == 0) {
    return InvalidArgument("page cache needs a nonzero max_resident_bytes");
  }
  auto cache = std::make_unique<PageCache>(options, extents_dir, &stats_);
  RETURN_IF_ERROR(cache->Init());
  for (auto& [name, table] : tables_) {
    const uint32_t table_id = cache->RegisterTable(name, &table);
    table.SetPager(cache.get(), table_id, cache->rows_per_page());
  }
  cache_ = std::move(cache);
  return OkStatus();
}

Status Database::MaybeEvictPages() const {
  PageCache* cache = cache_.get();
  if (cache == nullptr || !cache->OverBudget()) {
    return OkStatus();
  }
  // Called at statement boundaries with NO locks held. Lock order here is
  // the canonical one (catalog shared, then one stripe), but only try_lock
  // on the stripe: a statement blocked on eviction would invert the
  // "eviction never delays readers" goal, and the budget is soft anyway —
  // the next statement boundary retries.
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  for (int round = 0; round < 4 && cache->OverBudget(); ++round) {
    std::vector<PageCache::EvictGroup> plan = cache->PlanEviction();
    if (plan.empty()) {
      break;  // everything evictable is pinned or already spilled
    }
    bool progressed = false;
    for (PageCache::EvictGroup& g : plan) {
      const size_t stripe = StripeOf(g.table);
      if (!stripes_[stripe].try_lock()) {
        cache->Requeue(g.table_id, g.pages);
        continue;
      }
      StatusOr<bool> evicted = cache->EvictPages(g.table_id, g.pages);
      stripes_[stripe].unlock();
      if (!evicted.ok()) {
        if (FailPoints::IsSimulatedCrash(evicted.status())) {
          return evicted.status();  // joins the crash battery
        }
        // The statement already committed; a failed spill costs memory
        // headroom, never correctness. Log and let the budget ride.
        EDNA_LOG(kWarning) << "page eviction failed: " << evicted.status();
        return OkStatus();
      }
      progressed = progressed || *evicted;
    }
    if (!progressed) {
      break;
    }
  }
  return OkStatus();
}

Status Database::ApplyWalChange(const WalChange& change) {
  TableLock lock(this);
  lock.Lock({change.table}, {});
  Table* t = MutableTable(change.table);
  if (t == nullptr) {
    return NotFound("WAL change references missing table \"" + change.table + "\"");
  }
  if (t->Contains(change.id)) {
    RETURN_IF_ERROR(t->Erase(change.id).status());
  }
  if (!change.erase) {
    RETURN_IF_ERROR(t->InsertWithId(change.id, Row(change.row)));
  }
  return OkStatus();
}

// --- DDL ---------------------------------------------------------------------

Status Database::CreateTable(TableSchema schema) {
  RETURN_IF_ERROR(schema.Validate());
  uint64_t wal_lsn = 0;
  {
    std::unique_lock<std::shared_mutex> catalog(catalog_mu_);
    if (tables_.count(schema.name()) > 0) {
      return AlreadyExists("table \"" + schema.name() + "\" already exists");
    }
    // Write-ahead: log the DDL before the catalog mutation, so a crash
    // between the two replays the table into existence rather than losing it.
    if (wal_sink_ != nullptr) {
      WalRecord rec;
      rec.kind = WalRecord::Kind::kCreateTable;
      rec.schema = schema;
      ASSIGN_OR_RETURN(wal_lsn, wal_sink_->AppendDdl(rec));
    }
    RETURN_IF_ERROR(schema_.AddTable(schema));
    std::string name = schema.name();  // read before the move below
    auto [it, inserted] =
        tables_.emplace(std::move(name), Table(std::move(schema)));
    if (cache_ != nullptr) {
      const uint32_t table_id = cache_->RegisterTable(it->first, &it->second);
      it->second.SetPager(cache_.get(), table_id, cache_->rows_per_page());
    }
    InvalidatePlans();
  }
  return WaitWalDurable(wal_lsn);
}

Status Database::AdoptSchema(const Schema& schema) {
  RETURN_IF_ERROR(schema.Validate());
  for (const TableSchema& t : schema.tables()) {
    RETURN_IF_ERROR(CreateTable(t));
  }
  return OkStatus();
}

const Table* Database::FindTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::MutableTable(const std::string& name) {
  // Callers hold the catalog (shared) and the table's stripe already.
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<Database::ChildRef> Database::ChildrenOf(const std::string& parent_table) const {
  std::vector<ChildRef> out;
  for (const TableSchema& t : schema_.tables()) {
    for (const ForeignKeyDef& fk : t.foreign_keys()) {
      if (fk.parent_table == parent_table) {
        out.push_back(ChildRef{t.name(), fk});
      }
    }
  }
  return out;
}

std::vector<std::string> Database::DeleteClosure(const std::string& table) const {
  std::vector<std::string> closure{table};
  std::set<std::string> seen{table};
  for (size_t i = 0; i < closure.size(); ++i) {
    for (const ChildRef& child : ChildrenOf(closure[i])) {
      if (seen.insert(child.child_table).second) {
        closure.push_back(child.child_table);
      }
    }
  }
  return closure;
}

std::vector<std::string> Database::ParentTables(const std::string& table) const {
  std::vector<std::string> out;
  if (const TableSchema* ts = schema_.FindTable(table); ts != nullptr) {
    for (const ForeignKeyDef& fk : ts->foreign_keys()) {
      out.push_back(fk.parent_table);
    }
  }
  return out;
}

std::vector<std::string> Database::ChildTables(const std::string& table) const {
  std::vector<std::string> out;
  for (const ChildRef& child : ChildrenOf(table)) {
    out.push_back(child.child_table);
  }
  return out;
}

Status Database::CheckFkTarget(const ForeignKeyDef& fk, const sql::Value& v) const {
  if (v.is_null()) {
    return OkStatus();
  }
  auto it = tables_.find(fk.parent_table);
  const Table* parent = it == tables_.end() ? nullptr : &it->second;
  if (parent == nullptr) {
    return Internal("FK parent table \"" + fk.parent_table + "\" missing");
  }
  PkKey key;
  key.values.push_back(v);
  ++stats_.index_lookups;
  if (!parent->LookupPk(key).ok()) {
    return IntegrityViolation("foreign key violation: no \"" + fk.parent_table + "\" row with " +
                              fk.parent_column + " = " + v.ToSqlString());
  }
  return OkStatus();
}

Status Database::CheckRowFks(const TableSchema& schema, const Row& row) const {
  for (const ForeignKeyDef& fk : schema.foreign_keys()) {
    const sql::Value& v = row[static_cast<size_t>(schema.ColumnIndex(fk.column))];
    RETURN_IF_ERROR(CheckFkTarget(fk, v));
  }
  return OkStatus();
}

void Database::LogInsert(TxnState& tx, const std::string& table, RowId id) {
  UndoEntry e;
  e.kind = UndoEntry::Kind::kInsert;
  e.table = table;
  e.id = id;
  tx.undo_log.push_back(std::move(e));
}

void Database::LogDelete(TxnState& tx, const std::string& table, RowId id, Row row) {
  UndoEntry e;
  e.kind = UndoEntry::Kind::kDelete;
  e.table = table;
  e.id = id;
  e.row = std::move(row);
  tx.undo_log.push_back(std::move(e));
}

void Database::LogUpdate(TxnState& tx, const std::string& table, RowId id, size_t col_idx,
                         sql::Value old_value) {
  UndoEntry e;
  e.kind = UndoEntry::Kind::kUpdate;
  e.table = table;
  e.id = id;
  e.col_idx = col_idx;
  e.old_value = std::move(old_value);
  tx.undo_log.push_back(std::move(e));
}

void Database::ApplyUndo(TxnState& tx, size_t from_mark) {
  while (tx.undo_log.size() > from_mark) {
    UndoEntry e = std::move(tx.undo_log.back());
    tx.undo_log.pop_back();
    Table* t = MutableTable(e.table);
    if (t == nullptr) {
      EDNA_LOG(kError) << "undo references missing table " << e.table;
      continue;
    }
    switch (e.kind) {
      case UndoEntry::Kind::kInsert: {
        auto removed = t->Erase(e.id);
        if (!removed.ok()) {
          EDNA_LOG(kError) << "undo insert failed: " << removed.status();
        }
        break;
      }
      case UndoEntry::Kind::kDelete: {
        Status st = t->InsertWithId(e.id, std::move(e.row));
        if (!st.ok()) {
          EDNA_LOG(kError) << "undo delete failed: " << st;
        }
        break;
      }
      case UndoEntry::Kind::kUpdate: {
        auto st = t->UpdateColumn(e.id, e.col_idx, std::move(e.old_value));
        if (!st.ok()) {
          EDNA_LOG(kError) << "undo update failed: " << st.status();
        }
        break;
      }
    }
  }
}

// --- DML ---------------------------------------------------------------------

StatusOr<RowId> Database::Insert(const std::string& table, Row row) {
  uint64_t wal_lsn = 0;
  RowId id = kInvalidRowId;
  {
    TableLock lock(this);
    lock.Lock({table}, ParentTables(table));
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();
    RETURN_IF_ERROR(CheckRowFks(t->schema(), row));
    ASSIGN_OR_RETURN(id, t->Insert(std::move(row)));
    ++stats_.rows_inserted;
    LogInsert(tx, table, id);
    // Claim the fresh row so a concurrent transaction cannot delete or update
    // it before this one commits (it can only see it through reads).
    RETURN_IF_ERROR(ClaimIntent(tx, table, id));
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  RETURN_IF_ERROR(MaybeEvictPages());
  return id;
}

StatusOr<RowId> Database::InsertValues(const std::string& table,
                                       const std::map<std::string, sql::Value>& values) {
  Row row;
  {
    std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return NotFound("no table \"" + table + "\"");
    }
    const TableSchema& schema = it->second.schema();
    row.assign(schema.num_columns(), sql::Value::Null());
    for (const auto& [name, value] : values) {
      int idx = schema.ColumnIndex(name);
      if (idx < 0) {
        return NotFound("unknown column \"" + name + "\" in table \"" + table + "\"");
      }
      row[static_cast<size_t>(idx)] = value;
    }
    // Fill defaults for unspecified columns.
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const ColumnDef& col = schema.columns()[i];
      if (values.count(col.name) == 0 && col.default_value.has_value()) {
        row[i] = *col.default_value;
      }
    }
  }
  return Insert(table, std::move(row));
}

StatusOr<std::vector<RowId>> Database::MatchRows(const Table& table, const sql::Expr* pred,
                                                 const sql::ParamMap& params) const {
  // No WHERE clause: a deliberate whole-table read, not a planner miss —
  // full_scans stays untouched (it counts predicates that FELL BACK to
  // scanning).
  if (pred == nullptr) {
    std::vector<RowId> candidates = table.AllRowIds();
    stats_.rows_read += candidates.size();
    return candidates;
  }

  if (planner_mode() == PlannerMode::kInterpreted) {
    return MatchRowsInterpreted(table, pred, params);
  }

  // Fast path: `col = <literal or $param>` on an indexed column. The
  // engine's hot path is dominated by this shape — literal one-shots (one
  // statement per placeholder row) and spec predicates like
  // `"contactId" = $UID` — so going through the cache would pay a ToString
  // key (plus, for one-shots, an insert) per statement. The shape is exact
  // (see plan.h): the probe decides, no residual.
  if (pred->kind() == sql::ExprKind::kBinary &&
      pred->binary_op() == sql::BinaryOp::kEq) {
    const sql::Expr* col = pred->children()[0].get();
    const sql::Expr* val = pred->children()[1].get();
    if (col->kind() != sql::ExprKind::kColumnRef) {
      std::swap(col, val);
    }
    const sql::Value* value = nullptr;
    if (val->kind() == sql::ExprKind::kLiteral) {
      value = &val->literal();
    } else if (val->kind() == sql::ExprKind::kParam) {
      auto it = params.find(val->param_name());
      if (it != params.end()) {
        value = &it->second;
      }
      // Unbound param: fall through; the cached path surfaces the same
      // error the interpreter would.
    }
    if (value != nullptr && col->kind() == sql::ExprKind::kColumnRef &&
        (col->table().empty() || col->table() == table.schema().name()) &&
        table.HasIndexOn(col->column())) {
      std::vector<RowId> out;
      if (value->is_null()) {
        return out;  // col = NULL is UNKNOWN for every row
      }
      if (table.IndexLookup(col->column(), *value, &out)) {
        ++stats_.index_lookups;
        stats_.rows_read += out.size();
        return out;
      }
    }
  }

  ASSIGN_OR_RETURN(std::shared_ptr<const TablePlan> plan, GetPlan(table, *pred));

  // Constant predicate: one evaluation decides for every row.
  if (plan->access == TablePlan::Access::kConstant) {
    auto value = sql::EvaluateConstant(*plan->constant, params);
    // The interpreter evaluates per row, so an empty table never surfaces
    // a constant-predicate error; preserve that.
    if (!value.ok()) {
      if (table.num_rows() == 0) {
        return std::vector<RowId>{};
      }
      return value.status();
    }
    Status truth_error = OkStatus();
    sql::Truth truth = sql::TruthOf(*value, &truth_error);
    if (!truth_error.ok()) {
      if (table.num_rows() == 0) {
        return std::vector<RowId>{};
      }
      return truth_error;
    }
    if (truth != sql::Truth::kTrue) {
      return std::vector<RowId>{};
    }
    std::vector<RowId> candidates = table.AllRowIds();
    stats_.rows_read += candidates.size();
    return candidates;
  }

  // Access path: seed candidates from the plan's probes. Vectorized
  // full scans skip materializing AllRowIds — they read the column sidecar's
  // slabs in place instead of walking a candidate list.
  const bool vectorized = exec_mode() == ExecMode::kVectorized;
  std::vector<RowId> candidates;
  bool scanned = false;
  switch (plan->access) {
    case TablePlan::Access::kProbe: {
      // Intersect all probe row sets, seeded from the smallest. Probes are
      // rank-ordered (equality first), so bail out early on an empty seed.
      bool seeded = false;
      std::vector<RowId> probe_rows;
      for (const IndexProbe& probe : plan->probes) {
        ASSIGN_OR_RETURN(bool probed, ExecuteProbe(table, probe, params, &probe_rows));
        if (!probed) {
          continue;  // index unavailable (defensive); rely on other probes
        }
        if (!seeded) {
          candidates = std::move(probe_rows);
          seeded = true;
        } else {
          std::vector<RowId> merged;
          merged.reserve(std::min(candidates.size(), probe_rows.size()));
          std::set_intersection(candidates.begin(), candidates.end(), probe_rows.begin(),
                                probe_rows.end(), std::back_inserter(merged));
          candidates = std::move(merged);
        }
        probe_rows.clear();
        if (seeded && candidates.empty()) {
          break;
        }
      }
      if (!seeded) {
        scanned = true;
        if (!vectorized || plan->exact) {
          candidates = table.AllRowIds();
        }
      }
      break;
    }
    case TablePlan::Access::kUnion: {
      bool all_probed = true;
      std::vector<RowId> probe_rows;
      for (const IndexProbe& probe : plan->union_arms) {
        ASSIGN_OR_RETURN(bool probed, ExecuteProbe(table, probe, params, &probe_rows));
        if (!probed) {
          all_probed = false;  // an arm we cannot probe may match anything
          break;
        }
        candidates.insert(candidates.end(), probe_rows.begin(), probe_rows.end());
        probe_rows.clear();
      }
      if (all_probed) {
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
      } else {
        candidates.clear();
        scanned = true;
        if (!vectorized || plan->exact) {
          candidates = table.AllRowIds();
        }
      }
      break;
    }
    case TablePlan::Access::kFullScan:
    default:
      scanned = true;
      if (!vectorized || plan->exact) {
        candidates = table.AllRowIds();
      }
      break;
  }
  if (scanned) {
    if (plan->exact) {
      // An exact plan has no residual to filter a scan with; this only
      // happens if a probe found its index missing (defensive — plans are
      // invalidated on DDL and indexes are never dropped). The interpreter
      // is the safety net; it does its own counter accounting.
      return MatchRowsInterpreted(table, pred, params);
    }
    ++stats_.full_scans;
  }

  // Exact plan: the probes' row set IS the answer (see plan.h). Skipping
  // the per-row filter matches the interpreter on these shapes because the
  // index groups rows by the same value ordering SQL comparison uses.
  if (plan->exact) {
    stats_.rows_read += candidates.size();
    return candidates;
  }

  // Residual filter: the FULL compiled predicate over every candidate.
  sql::BoundParams bound = plan->residual->BindParams(params);
  if (vectorized) {
    if (scanned) {
      return FilterScanVectorized(table, *plan->residual, bound);
    }
    return FilterCandidatesVectorized(table, candidates, *plan->residual, bound);
  }
  sql::EvalScratch scratch;
  std::vector<RowId> out;
  for (RowId id : candidates) {
    const Row* row = table.Find(id);
    if (row == nullptr) {
      continue;
    }
    ++stats_.rows_read;
    ++stats_.rows_examined;
    ASSIGN_OR_RETURN(bool match,
                     plan->residual->Matches(row->data(), row->size(), bound, &scratch));
    if (match) {
      out.push_back(id);
    }
  }
  // With a pager, a nullptr Find above may be a fault failure, not a gone
  // row; surface it instead of silently dropping candidates.
  RETURN_IF_ERROR(StickyCacheError());
  return out;
}

namespace {

// Shared by both vectorized filters: fold one MatchChunk run into the vector
// counters and collect the matching lanes.
struct VectorRunTotals {
  uint64_t lanes = 0;
  uint64_t matches = 0;
};

void AccountChunk(const sql::ChunkScratch& scratch, DbStats* stats,
                  VectorRunTotals* totals) {
  ++stats->chunks_scanned;
  stats->vector_ops += scratch.insns_executed;
  stats->vector_lanes += scratch.lanes_evaluated;
  stats->rows_read += scratch.lanes_evaluated;
  stats->rows_examined += scratch.lanes_evaluated;
  totals->lanes += scratch.lanes_evaluated;
  totals->matches += scratch.match_count;
}

void SettleDensity(const VectorRunTotals& totals, DbStats* stats) {
  if (totals.lanes > 0) {
    stats->selection_density_bp.store(totals.matches * 10000 / totals.lanes,
                                      std::memory_order_relaxed);
  }
}

}  // namespace

StatusOr<std::vector<RowId>> Database::FilterScanVectorized(
    const Table& table, const sql::CompiledPredicate& residual,
    const sql::BoundParams& bound) const {
  static thread_local sql::ChunkScratch scratch;
  const size_t width = table.schema().num_columns();
  std::vector<const sql::Value*> col_ptrs(width);
  std::vector<RowId> out;
  VectorRunTotals totals;
  const size_t num_slabs = table.NumColumnSlabs();
  for (size_t s = 0; s < num_slabs; ++s) {
    ASSIGN_OR_RETURN(const ColumnSlab* slab, table.GetColumnSlab(s));
    if (slab->live_rows == 0) {
      continue;
    }
    for (size_t c = 0; c < width; ++c) {
      col_ptrs[c] = slab->columns[c].data();
    }
    sql::RowChunk chunk;
    chunk.lanes = slab->lanes;
    chunk.row_width = width;
    chunk.columns = col_ptrs.data();
    chunk.active = slab->present.data();
    Status matched = residual.MatchChunk(chunk, bound, &scratch);
    AccountChunk(scratch, &stats_, &totals);
    RETURN_IF_ERROR(matched);
    for (size_t w = 0; w * 64 < slab->lanes; ++w) {
      uint64_t bits = scratch.match_bits[w];
      while (bits != 0) {
        const int lane = __builtin_ctzll(bits);
        bits &= bits - 1;
        out.push_back(slab->first_row + static_cast<RowId>(w * 64 + lane));
      }
    }
  }
  SettleDensity(totals, &stats_);
  return out;
}

StatusOr<std::vector<RowId>> Database::FilterCandidatesVectorized(
    const Table& table, const std::vector<RowId>& candidates,
    const sql::CompiledPredicate& residual, const sql::BoundParams& bound) const {
  static thread_local sql::ChunkScratch scratch;
  const size_t width = table.schema().num_columns();
  std::vector<const sql::Value*> row_ptrs;
  std::vector<RowId> lane_ids;
  row_ptrs.reserve(std::min<size_t>(candidates.size(), sql::kChunkLanes));
  lane_ids.reserve(row_ptrs.capacity());
  std::vector<RowId> out;
  VectorRunTotals totals;
  size_t i = 0;
  while (i < candidates.size()) {
    // Gather up to one chunk of resident rows. Row pointers stay valid for
    // the whole statement: eviction only runs at statement boundaries, and
    // map nodes are stable.
    row_ptrs.clear();
    lane_ids.clear();
    for (; i < candidates.size() && row_ptrs.size() < sql::kChunkLanes; ++i) {
      const Row* row = table.Find(candidates[i]);
      if (row == nullptr) {
        continue;  // gone (or faulted — the sticky check below surfaces it)
      }
      row_ptrs.push_back(row->data());
      lane_ids.push_back(candidates[i]);
    }
    if (row_ptrs.empty()) {
      continue;
    }
    sql::RowChunk chunk;
    chunk.lanes = row_ptrs.size();
    chunk.row_width = width;
    chunk.rows = row_ptrs.data();
    Status matched = residual.MatchChunk(chunk, bound, &scratch);
    AccountChunk(scratch, &stats_, &totals);
    RETURN_IF_ERROR(matched);
    for (size_t w = 0; w * 64 < chunk.lanes; ++w) {
      uint64_t bits = scratch.match_bits[w];
      while (bits != 0) {
        const int lane = __builtin_ctzll(bits);
        bits &= bits - 1;
        out.push_back(lane_ids[w * 64 + static_cast<size_t>(lane)]);
      }
    }
  }
  SettleDensity(totals, &stats_);
  RETURN_IF_ERROR(StickyCacheError());
  return out;
}

StatusOr<std::vector<RowId>> Database::MatchRowsInterpreted(
    const Table& table, const sql::Expr* pred, const sql::ParamMap& params) const {
  std::vector<RowId> candidates;
  bool used_index = false;

  // Planner: find an equality conjunct `col = <constant>` whose column is
  // indexed; use it to seed candidates, then filter by the full predicate.
  if (pred != nullptr) {
    const sql::Expr* node = pred;
    std::vector<const sql::Expr*> stack{node};
    while (!stack.empty() && !used_index) {
      const sql::Expr* e = stack.back();
      stack.pop_back();
      if (e->kind() == sql::ExprKind::kBinary && e->binary_op() == sql::BinaryOp::kAnd) {
        stack.push_back(e->children()[0].get());
        stack.push_back(e->children()[1].get());
        continue;
      }
      if (e->kind() != sql::ExprKind::kBinary || e->binary_op() != sql::BinaryOp::kEq) {
        continue;
      }
      const sql::Expr* lhs = e->children()[0].get();
      const sql::Expr* rhs = e->children()[1].get();
      if (lhs->kind() != sql::ExprKind::kColumnRef) {
        std::swap(lhs, rhs);
      }
      if (lhs->kind() != sql::ExprKind::kColumnRef ||
          !sql::IsConstantExpression(*rhs)) {
        continue;
      }
      if (!table.HasIndexOn(lhs->column())) {
        continue;
      }
      auto value = sql::EvaluateConstant(*rhs, params);
      if (!value.ok()) {
        return value.status();
      }
      if (table.IndexLookup(lhs->column(), *value, &candidates)) {
        used_index = true;
        ++stats_.index_lookups;
      }
    }
  }

  if (!used_index) {
    candidates = table.AllRowIds();
    ++stats_.full_scans;
  }

  if (pred == nullptr) {
    stats_.rows_read += candidates.size();
    return candidates;
  }

  std::vector<RowId> out;
  for (RowId id : candidates) {
    const Row* row = table.Find(id);
    if (row == nullptr) {
      continue;
    }
    ++stats_.rows_read;
    sql::ColumnResolver resolver = MakeRowResolver(table.schema(), *row);
    ASSIGN_OR_RETURN(bool match, sql::EvaluatePredicate(*pred, resolver, params));
    if (match) {
      out.push_back(id);
    }
  }
  RETURN_IF_ERROR(StickyCacheError());
  return out;
}

StatusOr<std::shared_ptr<const TablePlan>> Database::GetPlan(const Table& table,
                                                             const sql::Expr& pred) const {
  std::string key = table.schema().name();
  key += '\x1f';  // cannot appear in a table name; separates name from pred
  key += pred.ToString();
  {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++stats_.plan_cache_hits;
      return it->second;
    }
  }
  ++stats_.plan_cache_misses;
  // Build outside plan_mu_ (compilation is slow); first insert wins if two
  // threads raced on the same key.
  ASSIGN_OR_RETURN(std::shared_ptr<const TablePlan> plan, PlanPredicate(table, pred));
#ifndef NDEBUG
  // Debug builds statically check every compiled program before it enters
  // the cache: a malformed residual would otherwise run on every matching
  // row. Release builds skip this (tests cover the compiler exhaustively).
  if (plan->residual.has_value()) {
    sql::ProgramCheckOptions check;
    check.row_width = static_cast<int>(table.schema().num_columns());
    RETURN_IF_ERROR(sql::VerifyProgram(*plan->residual, check));
  }
#endif
  std::unique_lock<std::shared_mutex> lock(plan_mu_);
  // The engine's hot path emits unbounded streams of one-shot literal
  // predicates (`"id" = 42` per placeholder row); an epoch-style reset keeps
  // the cache from growing without bound. Reusable (parameterized) plans
  // re-enter within one statement each after a reset.
  if (plan_cache_.size() >= kMaxCachedPlans) {
    plan_cache_.clear();
  }
  auto [it, inserted] = plan_cache_.emplace(std::move(key), std::move(plan));
  return it->second;
}

StatusOr<bool> Database::ExecuteProbe(const Table& table, const IndexProbe& probe,
                                      const sql::ParamMap& params,
                                      std::vector<RowId>* out) const {
  out->clear();
  switch (probe.kind) {
    case IndexProbe::Kind::kEq: {
      ASSIGN_OR_RETURN(sql::Value value, sql::EvaluateConstant(*probe.eq_value, params));
      if (value.is_null()) {
        // col = NULL is UNKNOWN for every row: empty probe, no index touch.
        return true;
      }
      if (!table.IndexLookup(probe.column, value, out)) {
        return false;
      }
      ++stats_.index_lookups;
      return true;  // IndexLookup output is already sorted
    }
    case IndexProbe::Kind::kIn: {
      std::vector<RowId> item_rows;
      for (const sql::ExprPtr& item : probe.in_items) {
        ASSIGN_OR_RETURN(sql::Value value, sql::EvaluateConstant(*item, params));
        if (value.is_null()) {
          continue;  // col = NULL item never matches
        }
        if (!table.IndexLookup(probe.column, value, &item_rows)) {
          return false;
        }
        ++stats_.index_lookups;
        out->insert(out->end(), item_rows.begin(), item_rows.end());
      }
      std::sort(out->begin(), out->end());
      out->erase(std::unique(out->begin(), out->end()), out->end());
      return true;
    }
    case IndexProbe::Kind::kRange: {
      sql::Value lo, hi;
      if (probe.lo != nullptr) {
        ASSIGN_OR_RETURN(lo, sql::EvaluateConstant(*probe.lo, params));
      }
      if (probe.hi != nullptr) {
        ASSIGN_OR_RETURN(hi, sql::EvaluateConstant(*probe.hi, params));
      }
      if (!table.RangeLookup(probe.column, probe.lo != nullptr ? &lo : nullptr,
                             probe.lo_inclusive, probe.hi != nullptr ? &hi : nullptr,
                             probe.hi_inclusive, out)) {
        return false;
      }
      ++stats_.range_probes;
      return true;
    }
    case IndexProbe::Kind::kIsNull: {
      if (!table.NullLookup(probe.column, out)) {
        return false;
      }
      ++stats_.index_lookups;
      return true;  // null set iterates in ascending RowId order
    }
  }
  return false;
}

StatusOr<std::string> Database::DescribePlan(const std::string& table,
                                             const sql::Expr& pred) const {
  TableLock lock(this);
  lock.Lock({}, {table});
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return NotFound("no table \"" + table + "\"");
  }
  if (planner_mode() == PlannerMode::kInterpreted) {
    return std::string("interpreted");
  }
  ASSIGN_OR_RETURN(std::shared_ptr<const TablePlan> plan, GetPlan(it->second, pred));
  return plan->description;
}

StatusOr<std::vector<RowRef>> Database::Select(const std::string& table, const sql::Expr* pred,
                                               const sql::ParamMap& params) const {
  TableLock lock(this);
  lock.Lock({}, {table});
  auto it = tables_.find(table);
  const Table* t = it == tables_.end() ? nullptr : &it->second;
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  CountStatement();
  ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
  std::vector<RowRef> out;
  out.reserve(ids.size());
  for (RowId id : ids) {
    out.push_back(RowRef{id, t->Find(id)});
  }
  // No MaybeEvictPages here on purpose: the returned pointers live past the
  // stripe lock, and a later statement's eviction may clear any payload not
  // pinned by an open intent. Callers that hold rows across statements use
  // SelectRowsWithIds.
  RETURN_IF_ERROR(StickyCacheError());
  return out;
}

StatusOr<std::vector<Row>> Database::SelectRows(const std::string& table,
                                                const sql::Expr* pred,
                                                const sql::ParamMap& params) const {
  std::vector<Row> out;
  {
    TableLock lock(this);
    lock.Lock({}, {table});
    auto it = tables_.find(table);
    const Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    CountStatement();
    ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
    out.reserve(ids.size());
    for (RowId id : ids) {
      const Row* row = t->Find(id);
      if (row != nullptr) {
        out.push_back(*row);
      }
    }
    RETURN_IF_ERROR(StickyCacheError());
  }
  RETURN_IF_ERROR(MaybeEvictPages());
  return out;
}

StatusOr<std::vector<std::pair<RowId, Row>>> Database::SelectRowsWithIds(
    const std::string& table, const sql::Expr* pred,
    const sql::ParamMap& params) const {
  std::vector<std::pair<RowId, Row>> out;
  {
    TableLock lock(this);
    lock.Lock({}, {table});
    auto it = tables_.find(table);
    const Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    CountStatement();
    ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
    out.reserve(ids.size());
    for (RowId id : ids) {
      const Row* row = t->Find(id);
      if (row != nullptr) {
        out.emplace_back(id, *row);
      }
    }
    RETURN_IF_ERROR(StickyCacheError());
  }
  RETURN_IF_ERROR(MaybeEvictPages());
  return out;
}

StatusOr<size_t> Database::Count(const std::string& table, const sql::Expr* pred,
                                 const sql::ParamMap& params) const {
  size_t n = 0;
  {
    TableLock lock(this);
    lock.Lock({}, {table});
    auto it = tables_.find(table);
    const Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    CountStatement();
    ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
    n = ids.size();
  }
  RETURN_IF_ERROR(MaybeEvictPages());
  return n;
}

StatusOr<size_t> Database::Update(const std::string& table, const sql::Expr* pred,
                                  const sql::ParamMap& params,
                                  const std::vector<Assignment>& assignments) {
  uint64_t wal_lsn = 0;
  size_t updated = 0;
  {
    TableLock lock(this);
    {
      std::vector<std::string> shared = ParentTables(table);
      std::vector<std::string> children = ChildTables(table);
      shared.insert(shared.end(), children.begin(), children.end());
      lock.Lock({table}, shared);
    }
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    const TableSchema& schema = t->schema();
    // Pre-validate assignment columns.
    std::vector<size_t> col_indices;
    col_indices.reserve(assignments.size());
    for (const Assignment& a : assignments) {
      int idx = schema.ColumnIndex(a.column);
      if (idx < 0) {
        return NotFound("unknown column \"" + a.column + "\" in table \"" + table + "\"");
      }
      col_indices.push_back(static_cast<size_t>(idx));
    }

    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();  // the SELECT phase
    ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));

    for (RowId id : ids) {
      const Row* row = t->Find(id);
      if (row == nullptr) {
        continue;
      }
      // Evaluate all assignment expressions against the pre-update row.
      std::vector<sql::Value> new_values;
      new_values.reserve(assignments.size());
      sql::ColumnResolver resolver = MakeRowResolver(schema, *row);
      for (const Assignment& a : assignments) {
        ASSIGN_OR_RETURN(sql::Value v, sql::Evaluate(*a.expr, resolver, params));
        new_values.push_back(std::move(v));
      }
      for (size_t k = 0; k < assignments.size(); ++k) {
        RETURN_IF_ERROR(SetColumnInTxn(tx, table, t, id, col_indices[k], std::move(new_values[k])));
      }
      ++updated;
      CountStatement();  // one UPDATE statement per row, as Edna issues them
    }
    // A nullptr Find above may be a page-fault failure rather than a row
    // deleted earlier in this statement; abort rather than under-update.
    RETURN_IF_ERROR(StickyCacheError());
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  RETURN_IF_ERROR(MaybeEvictPages());
  return updated;
}

// Private helper is declared inline here: performs an FK-checked single
// column write assuming a StatementScope/transaction is already active.
Status Database::SetColumnInTxn(TxnState& tx, const std::string& table_name, Table* t,
                                RowId id, size_t col_idx, sql::Value value) {
  const TableSchema& schema = t->schema();
  const ColumnDef& col = schema.columns()[col_idx];
  RETURN_IF_ERROR(ClaimIntent(tx, table_name, id));
  if (write_guard_) {
    RETURN_IF_ERROR(write_guard_(table_name, id, col.name));
  }

  // FK on this column: new value must resolve.
  if (const ForeignKeyDef* fk = schema.FindForeignKey(col.name); fk != nullptr) {
    RETURN_IF_ERROR(CheckFkTarget(*fk, value));
  }
  // If this column is the referenced PK of children, block changes that
  // would orphan them.
  if (schema.IsPrimaryKeyColumn(col.name)) {
    const Row* row = t->Find(id);
    if (row == nullptr) {
      return CacheFaultOr(NotFound("row vanished during update"));
    }
    const sql::Value& old = (*row)[col_idx];
    if (!old.SqlEquals(value)) {
      for (const ChildRef& child : ChildrenOf(table_name)) {
        if (child.fk.parent_column != col.name) {
          continue;
        }
        auto cit = tables_.find(child.child_table);
        const Table* ct = cit == tables_.end() ? nullptr : &cit->second;
        std::vector<RowId> kids;
        ++stats_.index_lookups;
        ct->IndexLookup(child.fk.column, old, &kids);
        if (!kids.empty()) {
          return IntegrityViolation("cannot change \"" + table_name + "." + col.name +
                                    "\": referenced by " + std::to_string(kids.size()) +
                                    " row(s) of \"" + child.child_table + "\"");
        }
      }
    }
  }
  ASSIGN_OR_RETURN(sql::Value old, t->UpdateColumn(id, col_idx, std::move(value)));
  ++stats_.rows_updated;
  LogUpdate(tx, table_name, id, col_idx, std::move(old));
  return OkStatus();
}

StatusOr<size_t> Database::BatchSetColumns(const std::string& table,
                                           const std::vector<BatchUpdate>& updates) {
  uint64_t wal_lsn = 0;
  {
    TableLock lock(this);
    {
      std::vector<std::string> shared = ParentTables(table);
      std::vector<std::string> children = ChildTables(table);
      shared.insert(shared.end(), children.begin(), children.end());
      lock.Lock({table}, shared);
    }
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();  // one multi-row statement
    for (const BatchUpdate& u : updates) {
      int idx = t->schema().ColumnIndex(u.column);
      if (idx < 0) {
        return NotFound("unknown column \"" + u.column + "\" in table \"" + table + "\"");
      }
      RETURN_IF_ERROR(SetColumnInTxn(tx, table, t, u.id, static_cast<size_t>(idx), u.value));
    }
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  RETURN_IF_ERROR(MaybeEvictPages());
  return updates.size();
}

StatusOr<size_t> Database::Delete(const std::string& table, const sql::Expr* pred,
                                  const sql::ParamMap& params) {
  uint64_t wal_lsn = 0;
  size_t deleted = 0;
  {
    TableLock lock(this);
    lock.Lock(DeleteClosure(table), {});
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();
    ASSIGN_OR_RETURN(std::vector<RowId> ids, MatchRows(*t, pred, params));
    for (RowId id : ids) {
      if (!t->Contains(id)) {
        continue;  // removed by an earlier cascade in this statement
      }
      RETURN_IF_ERROR(DeleteRowInternal(tx, table, id, 0));
      ++deleted;
      CountStatement();  // one DELETE statement per row
    }
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  RETURN_IF_ERROR(MaybeEvictPages());
  return deleted;
}

Status Database::DeleteRowInternal(TxnState& tx, const std::string& table, RowId id,
                                   int depth) {
  if (depth > kMaxCascadeDepth) {
    return IntegrityViolation("cascade depth limit exceeded (cycle in FK graph?)");
  }
  RETURN_IF_ERROR(ClaimIntent(tx, table, id));
  if (write_guard_) {
    RETURN_IF_ERROR(write_guard_(table, id, ""));
  }
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  const Row* row_ptr = t->Find(id);
  if (row_ptr == nullptr) {
    return CacheFaultOr(NotFound(StrFormat("row id %llu not in table \"%s\"",
                                           static_cast<unsigned long long>(id),
                                           table.c_str())));
  }
  // Handle children referencing this row before removing it.
  const TableSchema& schema = t->schema();
  if (schema.primary_key().size() == 1) {
    const std::string& pk_col = schema.primary_key()[0];
    sql::Value pk_value = (*row_ptr)[static_cast<size_t>(schema.ColumnIndex(pk_col))];
    for (const ChildRef& child : ChildrenOf(table)) {
      Table* ct = MutableTable(child.child_table);
      std::vector<RowId> kids;
      ++stats_.index_lookups;
      if (!ct->IndexLookup(child.fk.column, pk_value, &kids)) {
        // Unindexed FK column (shouldn't happen: Table indexes FK columns).
        kids.clear();
        ct->Scan([&](RowId rid, const Row& r) {
          const sql::Value& v =
              r[static_cast<size_t>(ct->schema().ColumnIndex(child.fk.column))];
          if (!v.is_null() && v.SqlEquals(pk_value)) {
            kids.push_back(rid);
          }
        });
        ++stats_.full_scans;
      }
      if (kids.empty()) {
        continue;
      }
      switch (child.fk.on_delete) {
        case FkAction::kRestrict:
          return IntegrityViolation("cannot delete \"" + table + "\" row " +
                                    pk_value.ToSqlString() + ": referenced by " +
                                    std::to_string(kids.size()) + " row(s) of \"" +
                                    child.child_table + "\"");
        case FkAction::kCascade:
          for (RowId kid : kids) {
            if (ct->Contains(kid)) {
              RETURN_IF_ERROR(DeleteRowInternal(tx, child.child_table, kid, depth + 1));
            }
          }
          break;
        case FkAction::kSetNull: {
          int col_idx = ct->schema().ColumnIndex(child.fk.column);
          for (RowId kid : kids) {
            RETURN_IF_ERROR(ClaimIntent(tx, child.child_table, kid));
            ASSIGN_OR_RETURN(sql::Value old,
                             ct->UpdateColumn(kid, static_cast<size_t>(col_idx),
                                              sql::Value::Null()));
            ++stats_.rows_updated;
            LogUpdate(tx, child.child_table, kid, static_cast<size_t>(col_idx), std::move(old));
          }
          break;
        }
      }
    }
  } else if (!ChildrenOf(table).empty()) {
    return Internal("FK references a composite-PK table \"" + table + "\"");
  }

  ASSIGN_OR_RETURN(Row removed, t->Erase(id));
  ++stats_.rows_deleted;
  LogDelete(tx, table, id, std::move(removed));
  return OkStatus();
}

StatusOr<sql::Value> Database::GetColumn(const std::string& table, RowId id,
                                         const std::string& column) const {
  sql::Value out;
  {
    TableLock lock(this);
    lock.Lock({}, {table});
    auto it = tables_.find(table);
    const Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    const Row* row = t->Find(id);
    if (row == nullptr) {
      return CacheFaultOr(NotFound(StrFormat("row id %llu not in table \"%s\"",
                                             static_cast<unsigned long long>(id),
                                             table.c_str())));
    }
    int idx = t->schema().ColumnIndex(column);
    if (idx < 0) {
      return NotFound("unknown column \"" + column + "\" in table \"" + table + "\"");
    }
    ++stats_.rows_read;
    out = (*row)[static_cast<size_t>(idx)];
  }
  RETURN_IF_ERROR(MaybeEvictPages());
  return out;
}

StatusOr<Row> Database::GetRow(const std::string& table, RowId id) const {
  Row out;
  {
    TableLock lock(this);
    lock.Lock({}, {table});
    auto it = tables_.find(table);
    const Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    const Row* row = t->Find(id);
    if (row == nullptr) {
      return CacheFaultOr(NotFound(StrFormat("row id %llu not in table \"%s\"",
                                             static_cast<unsigned long long>(id),
                                             table.c_str())));
    }
    ++stats_.rows_read;
    out = *row;
  }
  RETURN_IF_ERROR(MaybeEvictPages());
  return out;
}

bool Database::RowExists(const std::string& table, RowId id) const {
  TableLock lock(this);
  lock.Lock({}, {table});
  auto it = tables_.find(table);
  return it != tables_.end() && it->second.Contains(id);
}

Status Database::SetColumn(const std::string& table, RowId id, const std::string& column,
                           sql::Value value) {
  uint64_t wal_lsn = 0;
  {
    TableLock lock(this);
    {
      std::vector<std::string> shared = ParentTables(table);
      std::vector<std::string> children = ChildTables(table);
      shared.insert(shared.end(), children.begin(), children.end());
      lock.Lock({table}, shared);
    }
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    int idx = t->schema().ColumnIndex(column);
    if (idx < 0) {
      return NotFound("unknown column \"" + column + "\" in table \"" + table + "\"");
    }
    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();
    RETURN_IF_ERROR(SetColumnInTxn(tx, table, t, id, static_cast<size_t>(idx), std::move(value)));
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  return MaybeEvictPages();
}

Status Database::DeleteRow(const std::string& table, RowId id) {
  uint64_t wal_lsn = 0;
  {
    TableLock lock(this);
    lock.Lock(DeleteClosure(table), {});
    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();
    RETURN_IF_ERROR(DeleteRowInternal(tx, table, id, 0));
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  return MaybeEvictPages();
}

Status Database::RestoreRow(const std::string& table, RowId id, Row row) {
  uint64_t wal_lsn = 0;
  {
    TableLock lock(this);
    lock.Lock({table}, ParentTables(table));
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    TxnState& tx = Txn();
    StatementScope scope(this, tx);
    CountStatement();
    RETURN_IF_ERROR(ClaimIntent(tx, table, id));
    RETURN_IF_ERROR(CheckRowFks(t->schema(), row));
    RETURN_IF_ERROR(t->InsertWithId(id, std::move(row)));
    ++stats_.rows_inserted;
    LogInsert(tx, table, id);
    RETURN_IF_ERROR(scope.Commit(&wal_lsn));
  }
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  return MaybeEvictPages();
}

Status Database::BulkLoadRow(const std::string& table, RowId id, Row row) {
  {
    TableLock lock(this);
    lock.Lock({table}, {});
    Table* t = MutableTable(table);
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    RETURN_IF_ERROR(t->InsertWithId(id, std::move(row)));
    ++stats_.rows_inserted;
  }
  return MaybeEvictPages();
}

Status Database::EnsureAutoCounterAtLeast(const std::string& table, int64_t v) {
  TableLock lock(this);
  lock.Lock({table}, {});
  Table* t = MutableTable(table);
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  t->EnsureAutoCounterAtLeast(v);
  return OkStatus();
}

StatusOr<RowId> Database::LookupPk(const std::string& table, const PkKey& key) const {
  TableLock lock(this);
  lock.Lock({}, {table});
  auto it = tables_.find(table);
  const Table* t = it == tables_.end() ? nullptr : &it->second;
  if (t == nullptr) {
    return NotFound("no table \"" + table + "\"");
  }
  ++stats_.index_lookups;
  return t->LookupPk(key);
}

Status Database::AddColumnToTable(const std::string& table, ColumnDef col,
                                  sql::Value fill) {
  if (InTransaction()) {
    return FailedPrecondition("cannot evolve the schema inside a transaction");
  }
  uint64_t wal_lsn = 0;
  {
    std::unique_lock<std::shared_mutex> catalog(catalog_mu_);
    auto it = tables_.find(table);
    Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    // A default makes the column restorable for pre-evolution reveal records;
    // require one (possibly NULL for nullable columns).
    if (!col.default_value.has_value()) {
      if (!col.nullable) {
        return InvalidArgument("new NOT NULL column \"" + col.name +
                               "\" needs a default value");
      }
      col.default_value = sql::Value::Null();
    }
    // Pre-run Table::AddColumn's own checks, so the write-ahead append below
    // can precede a then-infallible mutation (a logged DDL that failed in
    // memory would poison replay).
    if (t->schema().HasColumn(col.name)) {
      return AlreadyExists("column \"" + col.name + "\" already in table \"" +
                           table + "\"");
    }
    if (!ValueMatchesType(fill, col.type)) {
      return InvalidArgument("fill value " + fill.ToSqlString() +
                             " does not match new column type " + ColumnTypeName(col.type));
    }
    if (fill.is_null() && !col.nullable) {
      return InvalidArgument("NULL fill for NOT NULL column \"" + col.name + "\"");
    }
    if (col.auto_increment) {
      return InvalidArgument("cannot add an auto-increment column to a populated table");
    }
    if (wal_sink_ != nullptr) {
      WalRecord rec;
      rec.kind = WalRecord::Kind::kAddColumn;
      rec.table = table;
      rec.column = col;  // post-fixup, so replay sees the same default
      rec.fill = fill;
      ASSIGN_OR_RETURN(wal_lsn, wal_sink_->AppendDdl(rec));
    }
    TableSchema* catalog_entry = schema_.FindMutableTable(table);
    RETURN_IF_ERROR(t->AddColumn(col, fill));
    catalog_entry->AddColumn(std::move(col));
    InvalidatePlans();
  }
  return WaitWalDurable(wal_lsn);
}

Status Database::CreateIndex(const std::string& table, const std::string& column) {
  uint64_t wal_lsn = 0;
  {
    std::unique_lock<std::shared_mutex> catalog(catalog_mu_);
    auto it = tables_.find(table);
    Table* t = it == tables_.end() ? nullptr : &it->second;
    if (t == nullptr) {
      return NotFound("no table \"" + table + "\"");
    }
    // Write-ahead once the only failure BuildIndex can hit (missing column)
    // is excluded; index builds are idempotent on replay.
    if (t->schema().ColumnIndex(column) < 0) {
      return NotFound("no column \"" + column + "\" in table \"" + table + "\"");
    }
    if (wal_sink_ != nullptr) {
      WalRecord rec;
      rec.kind = WalRecord::Kind::kCreateIndex;
      rec.table = table;
      rec.index_column = column;
      ASSIGN_OR_RETURN(wal_lsn, wal_sink_->AppendDdl(rec));
    }
    RETURN_IF_ERROR(t->BuildIndex(column));
    TableSchema* catalog_entry = schema_.FindMutableTable(table);
    if (!catalog_entry->HasColumn(column)) {
      return Internal("catalog desync after index build");
    }
    bool listed = false;
    for (const IndexDef& idx : catalog_entry->indexes()) {
      if (idx.column == column) {
        listed = true;
      }
    }
    if (!listed) {
      catalog_entry->AddIndex(column);
    }
    InvalidatePlans();
  }
  return WaitWalDurable(wal_lsn);
}

// --- Transactions ------------------------------------------------------------

Status Database::Begin() {
  EDNA_FAIL_POINT(failpoints::kDbBegin);
  TxnState& tx = Txn();
  if (tx.in_txn) {
    return FailedPrecondition("transaction already active");
  }
  tx.in_txn = true;
  tx.undo_log.clear();
  return OkStatus();
}

Status Database::Commit() {
  EDNA_FAIL_POINT(failpoints::kDbCommit);
  TxnState& tx = Txn();
  if (!tx.in_txn) {
    return FailedPrecondition("no active transaction");
  }
  uint64_t wal_lsn = 0;
  if (HasWalSink() && !tx.undo_log.empty()) {
    // Build and append the net-change record under SHARED locks on the
    // touched tables: intents keep concurrent writers out of our rows, and
    // counter records replay as raise-to-max, so shared suffices — and it
    // lets independent explicit commits append concurrently.
    StatusOr<uint64_t> appended = [&]() -> StatusOr<uint64_t> {
      std::vector<std::string> touched;
      touched.reserve(tx.undo_log.size());
      for (const UndoEntry& e : tx.undo_log) {
        touched.push_back(e.table);
      }
      TableLock lock(this);
      lock.Lock({}, touched);
      return AppendCommitToWal(tx, 0);
    }();
    if (!appended.ok()) {
      if (FailPoints::IsSimulatedCrash(appended.status())) {
        // Freeze: the transaction stays open (undo intact, intents held) so
        // recovery sees the same state a process death mid-commit leaves.
        return appended.status();
      }
      // The durability layer refused the commit; roll back so memory agrees
      // with the log, which carries no record of this transaction.
      Status rb = Rollback();
      if (!rb.ok()) {
        EDNA_LOG(kError) << "rollback after failed WAL append: " << rb;
      }
      return appended.status();
    }
    wal_lsn = *appended;
  }
  tx.in_txn = false;
  tx.undo_log.clear();
  ReleaseIntents(tx, 0);
  RETURN_IF_ERROR(WaitWalDurable(wal_lsn));
  return MaybeEvictPages();
}

Status Database::Rollback() {
  EDNA_FAIL_POINT(failpoints::kDbRollback);
  TxnState& tx = Txn();
  if (!tx.in_txn) {
    return FailedPrecondition("no active transaction");
  }
  WalSink* sink = nullptr;
  {
    std::vector<std::string> touched;
    for (const UndoEntry& e : tx.undo_log) {
      touched.push_back(e.table);
    }
    TableLock lock(this);
    lock.Lock(touched, {});
    ApplyUndo(tx, 0);
    sink = wal_sink_;
  }
  tx.in_txn = false;
  ReleaseIntents(tx, 0);
  if (sink != nullptr) {
    sink->OnRollback();
  }
  return MaybeEvictPages();
}

bool Database::InTransaction() const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = txns_.find(std::this_thread::get_id());
  return it != txns_.end() && it->second.in_txn;
}

bool Database::AnyTransactionActive() const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  for (const auto& [tid, tx] : txns_) {
    if (tx.in_txn) {
      return true;
    }
  }
  return false;
}

Status Database::RollbackAll() {
  // Collect every open transaction's state first (txn_mu_ is below the
  // stripes in the hierarchy, so it cannot be held while locking them).
  std::vector<TxnState*> open;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    for (auto& [tid, tx] : txns_) {
      if (tx.in_txn) {
        open.push_back(&tx);
      }
    }
  }
  if (open.empty()) {
    return OkStatus();
  }
  TableLock lock(this);
  {
    std::vector<std::string> touched;
    for (TxnState* tx : open) {
      for (const UndoEntry& e : tx->undo_log) {
        touched.push_back(e.table);
      }
    }
    lock.Lock(touched, {});
  }
  // Intents keep concurrent transactions' writes disjoint, so the undo of
  // one frozen transaction never collides with another's.
  for (TxnState* tx : open) {
    ApplyUndo(*tx, 0);
    tx->in_txn = false;
    ReleaseIntents(*tx, 0);
  }
  return OkStatus();
}

// --- Integrity & maintenance -------------------------------------------------

Status Database::CheckIntegrity() const {
  {
    TableLock lock(this);
    lock.LockAllShared();
    for (const auto& [name, table] : tables_) {
      // With a pager attached this faults every page in (the audit reads all
      // payloads); residency transiently exceeds the budget and the eviction
      // pass below restores it.
      RETURN_IF_ERROR(table.CheckIndexConsistency());
      const TableSchema& schema = table.schema();
      for (const ForeignKeyDef& fk : schema.foreign_keys()) {
        auto pit = tables_.find(fk.parent_table);
        const Table* parent = pit == tables_.end() ? nullptr : &pit->second;
        if (parent == nullptr) {
          return IntegrityViolation("missing parent table \"" + fk.parent_table + "\"");
        }
        int col_idx = schema.ColumnIndex(fk.column);
        Status bad = OkStatus();
        table.Scan([&](RowId, const Row& row) {
          if (!bad.ok()) {
            return;
          }
          const sql::Value& v = row[static_cast<size_t>(col_idx)];
          if (v.is_null()) {
            return;
          }
          PkKey key;
          key.values.push_back(v);
          if (!parent->LookupPk(key).ok()) {
            bad = IntegrityViolation("dangling foreign key \"" + name + "." + fk.column + "\" = " +
                                     v.ToSqlString() + " -> \"" + fk.parent_table + "\"");
          }
        });
        RETURN_IF_ERROR(bad);
        RETURN_IF_ERROR(StickyCacheError());
      }
    }
  }
  return MaybeEvictPages();
}

std::unique_ptr<Database> Database::Snapshot() const {
  TableLock lock(this);
  lock.LockAllShared();
  auto copy = std::make_unique<Database>();
  copy->schema_ = schema_;
  for (const auto& [name, table] : tables_) {
    copy->tables_.emplace(name, table.Clone());
  }
  return copy;
}

StatusOr<std::unique_ptr<Database>> Database::SnapshotForCheckpoint(
    uint64_t* wal_mark) const {
  TableLock lock(this);
  lock.LockAllShared();
  // With every stripe held shared, no statement is mid-mutation and no open
  // transaction can add one; a transaction still open HERE has uncommitted
  // rows sitting in the tables, which must not reach a snapshot.
  if (AnyTransactionActive()) {
    return FailedPrecondition(
        "checkpoint requires quiescent transactions (an open transaction's "
        "uncommitted rows would leak into the snapshot)");
  }
  if (wal_mark != nullptr) {
    *wal_mark = wal_sink_ != nullptr ? wal_sink_->AppendedLsn() : 0;
  }
  auto copy = std::make_unique<Database>();
  copy->schema_ = schema_;
  for (const auto& [name, table] : tables_) {
    copy->tables_.emplace(name, table.Clone());
  }
  // Clone reads spilled pages through the extent files; a read failure is
  // recorded sticky and must abort the checkpoint (the clone is incomplete).
  RETURN_IF_ERROR(StickyCacheError());
  return copy;
}

size_t Database::TotalRows() const {
  TableLock lock(this);
  lock.LockAllShared();
  size_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table.num_rows();
  }
  return total;
}

void Database::SetWriteGuard(WriteGuard guard) {
  std::unique_lock<std::shared_mutex> catalog(catalog_mu_);
  write_guard_ = std::move(guard);
}

bool Database::HasWriteGuard() const {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  return static_cast<bool>(write_guard_);
}

}  // namespace edna::db
