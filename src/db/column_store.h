// Column-major sidecar for vectorized scans (DESIGN.md, "Vectorized
// execution").
//
// Row storage (src/db/table.h) keeps rows in a RowId-ordered map — ideal for
// point access and undo logging, hostile to the disguise engine's scan-heavy
// residual filters, which touch every row of a table to evaluate one
// predicate. The sidecar slices each table into slabs of sql::kChunkLanes
// (1024) row slots, lane = (RowId - 1) % kChunkLanes, and stores each slab
// transposed: one contiguous Value vector per column plus a `present` lane
// bitmap (live rows) and per-column null bitmaps. A slab feeds the batched
// evaluator (sql::CompiledPredicate::MatchChunk) directly as a columnar
// RowChunk with `present` as the active-lane mask.
//
// Slabs are copies, built lazily on first scan and invalidated — not
// updated — by every row mutation of their RowId range, so the sidecar is
// trivially coherent with write intents and transaction rollback: rollback
// replays ordinary mutations (InsertWithId / Erase / UpdateColumn /
// UpdateRow), each of which invalidates the affected slab. Page-cache
// eviction likewise invalidates (Table::DropPageRows), releasing the slab's
// memory along with the evicted payloads; a rebuild faults the covered
// pages back in first. Slabs are in-memory only and never serialized — the
// image format (docs/FORMATS.md) is unchanged.
//
// Concurrency: invalidation only happens under the table's exclusive stripe
// lock (all mutators; eviction holds the stripe exclusively), while Acquire
// runs under at least a shared stripe lock with an internal mutex
// serializing concurrent rebuilds of the same slab. A built slab is
// immutable until the next exclusive-lock invalidation, so readers may use
// the returned pointer for the remainder of their statement without holding
// the mutex.
#ifndef SRC_DB_COLUMN_STORE_H_
#define SRC_DB_COLUMN_STORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/db/row.h"
#include "src/sql/compile.h"
#include "src/sql/value.h"

namespace edna::db {

// One transposed slab of sql::kChunkLanes row slots.
struct ColumnSlab {
  RowId first_row = 0;  // RowId of lane 0
  // Highest present lane + 1; column vectors are sized to this, so a sparse
  // tail slab does not allocate kChunkLanes Values per column.
  size_t lanes = 0;
  size_t live_rows = 0;  // popcount(present)
  // columns[col][lane]; lanes with no live row hold Null and are masked off
  // by `present` (the batched evaluator never reads them).
  std::vector<std::vector<sql::Value>> columns;
  std::array<uint64_t, sql::kChunkWords> present{};
  // Per-column null bitmaps (bit set: live row, value IS NULL). Redundant
  // with Value::is_null on the stored Values; kept so future operators can
  // skip null-free columns without touching the Values at all.
  std::vector<std::array<uint64_t, sql::kChunkWords>> nulls;
};

class ColumnStore {
 public:
  static size_t SlabIndexOf(RowId id) {
    return static_cast<size_t>((id - 1) / sql::kChunkLanes);
  }
  static size_t LaneOf(RowId id) {
    return static_cast<size_t>((id - 1) % sql::kChunkLanes);
  }

  // Invalidation hooks (caller holds the table's exclusive stripe lock).
  // Invalidated slabs release their memory immediately.
  void Invalidate(RowId id);
  void InvalidateRange(RowId first, RowId last);
  void InvalidateAll();

  // Returns the slab at `index`, rebuilding it via `build` when stale.
  // Thread-safe under shared table locks. On build failure returns nullptr
  // with the error in *error (the slab stays invalid).
  const ColumnSlab* Acquire(size_t index, const std::function<Status(ColumnSlab*)>& build,
                            Status* error);

  // Monotone rebuild counter (coherence tests: a second scan of an
  // unmodified table must not rebuild).
  uint64_t rebuilds() const { return rebuilds_; }

 private:
  // unique_ptr entries keep slab addresses stable while slabs_ grows.
  struct Entry {
    bool valid = false;
    ColumnSlab slab;
  };

  mutable std::mutex mu_;  // serializes concurrent Acquire rebuilds
  std::vector<std::unique_ptr<Entry>> slabs_;
  uint64_t rebuilds_ = 0;
};

}  // namespace edna::db

#endif  // SRC_DB_COLUMN_STORE_H_
