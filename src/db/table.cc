#include "src/db/table.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/db/pagecache.h"

namespace edna::db {

namespace {
std::string JoinValues(const std::vector<sql::Value>& vs) {
  std::vector<std::string> parts;
  parts.reserve(vs.size());
  for (const sql::Value& v : vs) {
    parts.push_back(v.ToSqlString());
  }
  return StrJoin(parts, ", ");
}
}  // namespace

std::string RowToString(const Row& row) { return "(" + JoinValues(row) + ")"; }

bool PkKey::operator<(const PkKey& other) const {
  size_t n = std::min(values.size(), other.values.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values[i].Compare(other.values[i]);
    if (c != 0) {
      return c < 0;
    }
  }
  return values.size() < other.values.size();
}

bool PkKey::operator==(const PkKey& other) const {
  if (values.size() != other.values.size()) {
    return false;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].Compare(other.values[i]) != 0) {
      return false;
    }
  }
  return true;
}

std::string PkKey::ToString() const { return "[" + JoinValues(values) + "]"; }

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  for (const IndexDef& idx : schema_.indexes()) {
    secondary_[idx.column].ordered = true;  // declared indexes support ranges
  }
  // Index every foreign-key column implicitly: child lookups during deletes
  // and decorrelation are the engine's hottest operation.
  for (const ForeignKeyDef& fk : schema_.foreign_keys()) {
    secondary_.emplace(fk.column, SecondaryIndex{});
  }
}

Table Table::Clone() const {
  Table copy(schema_);
  if (pager_ == nullptr) {
    copy.rows_ = rows_;
  } else {
    // Read-through without admission: spilled pages are materialized into the
    // clone from their extent frames, under the cache mutex so a concurrent
    // shared-stripe reader's fault install cannot race the row copy. A read
    // failure leaves those payloads empty and records a sticky error the
    // caller (SnapshotForCheckpoint) surfaces.
    Status st = pager_->SnapshotTableRows(table_id_, &copy.rows_);
    if (!st.ok()) {
      pager_->RecordStickyError(st);
      EDNA_LOG(kError) << "clone read-through failed for table \"" << schema_.name()
                       << "\": " << st.ToString();
    }
  }
  copy.next_row_id_ = next_row_id_;
  copy.auto_counter_ = auto_counter_;
  copy.pk_index_ = pk_index_;
  copy.secondary_ = secondary_;
  return copy;
}

Status Table::ValidateRowShape(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return InvalidArgument(StrFormat("row width %zu does not match table \"%s\" width %zu",
                                     row.size(), schema_.name().c_str(),
                                     schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.columns()[i];
    if (!ValueMatchesType(row[i], col.type)) {
      return InvalidArgument("value " + row[i].ToSqlString() + " does not match column \"" +
                             schema_.name() + "." + col.name + "\" type " +
                             ColumnTypeName(col.type));
    }
    if (row[i].is_null() && !col.nullable) {
      return InvalidArgument("NULL in NOT NULL column \"" + schema_.name() + "." + col.name +
                             "\"");
    }
  }
  return OkStatus();
}

PkKey Table::ExtractPk(const Row& row) const {
  PkKey key;
  key.values.reserve(schema_.primary_key().size());
  for (const std::string& col : schema_.primary_key()) {
    key.values.push_back(row[static_cast<size_t>(schema_.ColumnIndex(col))]);
  }
  return key;
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (auto& [column, index] : secondary_) {
    const sql::Value& v = row[static_cast<size_t>(schema_.ColumnIndex(column))];
    if (v.is_null()) {
      index.nulls.insert(id);
      continue;
    }
    index.eq[v].insert(id);
    if (index.ordered) {
      index.sorted[v].insert(id);
    }
  }
}

void Table::IndexErase(RowId id, const Row& row) {
  for (auto& [column, index] : secondary_) {
    const sql::Value& v = row[static_cast<size_t>(schema_.ColumnIndex(column))];
    if (v.is_null()) {
      index.nulls.erase(id);
      continue;
    }
    auto it = index.eq.find(v);
    if (it != index.eq.end()) {
      it->second.erase(id);
      if (it->second.empty()) {
        index.eq.erase(it);
      }
    }
    if (index.ordered) {
      auto oit = index.sorted.find(v);
      if (oit != index.sorted.end()) {
        oit->second.erase(id);
        if (oit->second.empty()) {
          index.sorted.erase(oit);
        }
      }
    }
  }
}

StatusOr<RowId> Table::Insert(Row row) {
  RETURN_IF_ERROR([&]() -> Status {
    // Fill auto-increment before shape validation so NOT NULL passes.
    if (row.size() != schema_.num_columns()) {
      return InvalidArgument(StrFormat("row width %zu does not match table \"%s\" width %zu",
                                       row.size(), schema_.name().c_str(),
                                       schema_.num_columns()));
    }
    for (size_t i = 0; i < row.size(); ++i) {
      const ColumnDef& col = schema_.columns()[i];
      if (col.auto_increment && row[i].is_null()) {
        row[i] = sql::Value::Int(++auto_counter_);
      } else if (col.auto_increment && row[i].is_int()) {
        auto_counter_ = std::max(auto_counter_, row[i].AsInt());
      }
    }
    return OkStatus();
  }());
  RETURN_IF_ERROR(ValidateRowShape(row));

  PkKey key = ExtractPk(row);
  if (pk_index_.count(key) > 0) {
    return AlreadyExists("duplicate primary key " + key.ToString() + " in table \"" +
                         schema_.name() + "\"");
  }
  // The new id's page must be resident before the row joins it, or a spilled
  // page's extent frame would stop being an exact image.
  RETURN_IF_ERROR(EnsureRowResident(next_row_id_));
  RowId id = next_row_id_++;
  pk_index_.emplace(key, id);
  IndexInsert(id, row);
  const uint64_t bytes = pager_ == nullptr ? 0 : ApproxRowBytes(row);
  rows_.emplace(id, std::move(row));
  col_store_->Invalidate(id);
  if (pager_ != nullptr) {
    pager_->OnMutation(table_id_, PageOf(id), static_cast<int64_t>(bytes));
  }
  return id;
}

Status Table::InsertWithId(RowId id, Row row) {
  if (id == kInvalidRowId) {
    return InvalidArgument("invalid row id");
  }
  if (rows_.count(id) > 0) {
    return AlreadyExists(StrFormat("row id %llu already live in table \"%s\"",
                                   static_cast<unsigned long long>(id),
                                   schema_.name().c_str()));
  }
  RETURN_IF_ERROR(ValidateRowShape(row));
  PkKey key = ExtractPk(row);
  if (pk_index_.count(key) > 0) {
    return AlreadyExists("duplicate primary key " + key.ToString() + " in table \"" +
                         schema_.name() + "\"");
  }
  // Keep auto counters monotone across restores.
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema_.columns()[i].auto_increment && row[i].is_int()) {
      auto_counter_ = std::max(auto_counter_, row[i].AsInt());
    }
  }
  RETURN_IF_ERROR(EnsureRowResident(id));
  next_row_id_ = std::max(next_row_id_, id + 1);
  pk_index_.emplace(key, id);
  IndexInsert(id, row);
  const uint64_t bytes = pager_ == nullptr ? 0 : ApproxRowBytes(row);
  rows_.emplace(id, std::move(row));
  col_store_->Invalidate(id);
  if (pager_ != nullptr) {
    pager_->OnMutation(table_id_, PageOf(id), static_cast<int64_t>(bytes));
  }
  return OkStatus();
}

const Row* Table::Find(RowId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) return nullptr;
  if (pager_ != nullptr) {
    Status st = pager_->Access(table_id_, PageOf(id));
    if (!st.ok()) {
      // No status channel here: report nullptr and leave the real error
      // sticky on the cache for the statement boundary.
      pager_->RecordStickyError(st);
      return nullptr;
    }
  }
  return &it->second;
}

StatusOr<RowId> Table::LookupPk(const PkKey& key) const {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return NotFound("no row with primary key " + key.ToString() + " in table \"" +
                    schema_.name() + "\"");
  }
  return it->second;
}

StatusOr<Row> Table::Erase(RowId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return NotFound(StrFormat("row id %llu not in table \"%s\"",
                              static_cast<unsigned long long>(id), schema_.name().c_str()));
  }
  RETURN_IF_ERROR(EnsureRowResident(id));
  Row row = std::move(it->second);
  pk_index_.erase(ExtractPk(row));
  IndexErase(id, row);
  rows_.erase(it);
  col_store_->Invalidate(id);
  if (pager_ != nullptr) {
    pager_->OnMutation(table_id_, PageOf(id), -static_cast<int64_t>(ApproxRowBytes(row)));
  }
  return row;
}

StatusOr<sql::Value> Table::UpdateColumn(RowId id, size_t col_idx, sql::Value value) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return NotFound(StrFormat("row id %llu not in table \"%s\"",
                              static_cast<unsigned long long>(id), schema_.name().c_str()));
  }
  if (col_idx >= schema_.num_columns()) {
    return InvalidArgument("column index out of range");
  }
  RETURN_IF_ERROR(EnsureRowResident(id));
  const ColumnDef& col = schema_.columns()[col_idx];
  if (!ValueMatchesType(value, col.type)) {
    return InvalidArgument("value " + value.ToSqlString() + " does not match column \"" +
                           schema_.name() + "." + col.name + "\" type " +
                           ColumnTypeName(col.type));
  }
  if (value.is_null() && !col.nullable) {
    return InvalidArgument("NULL in NOT NULL column \"" + schema_.name() + "." + col.name +
                           "\"");
  }
  Row& row = it->second;
  sql::Value old = row[col_idx];
  const int64_t byte_delta =
      pager_ == nullptr ? 0
                        : static_cast<int64_t>(ApproxValueBytes(value)) -
                              static_cast<int64_t>(ApproxValueBytes(old));
  if (old.SqlEquals(value) && old.is_null() == value.is_null()) {
    row[col_idx] = std::move(value);
    // Still a representation change (e.g. 1 -> 1.0); the slab copy is stale.
    col_store_->Invalidate(id);
    if (pager_ != nullptr) pager_->OnMutation(table_id_, PageOf(id), byte_delta);
    return old;
  }

  // PK maintenance (with uniqueness re-check).
  if (schema_.IsPrimaryKeyColumn(col.name)) {
    PkKey old_key = ExtractPk(row);
    Row candidate = row;
    candidate[col_idx] = value;
    PkKey new_key = ExtractPk(candidate);
    auto existing = pk_index_.find(new_key);
    if (existing != pk_index_.end() && existing->second != id) {
      return AlreadyExists("primary key update collides: " + new_key.ToString() +
                           " in table \"" + schema_.name() + "\"");
    }
    pk_index_.erase(old_key);
    pk_index_.emplace(new_key, id);
  }

  // Secondary index maintenance.
  auto sec = secondary_.find(col.name);
  if (sec != secondary_.end()) {
    SecondaryIndex& index = sec->second;
    if (old.is_null()) {
      index.nulls.erase(id);
    } else {
      auto bucket = index.eq.find(old);
      if (bucket != index.eq.end()) {
        bucket->second.erase(id);
        if (bucket->second.empty()) {
          index.eq.erase(bucket);
        }
      }
      if (index.ordered) {
        auto obucket = index.sorted.find(old);
        if (obucket != index.sorted.end()) {
          obucket->second.erase(id);
          if (obucket->second.empty()) {
            index.sorted.erase(obucket);
          }
        }
      }
    }
    if (value.is_null()) {
      index.nulls.insert(id);
    } else {
      index.eq[value].insert(id);
      if (index.ordered) {
        index.sorted[value].insert(id);
      }
    }
  }

  row[col_idx] = std::move(value);
  col_store_->Invalidate(id);
  if (pager_ != nullptr) pager_->OnMutation(table_id_, PageOf(id), byte_delta);
  return old;
}

Status Table::UpdateRow(RowId id, Row new_row) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return NotFound(StrFormat("row id %llu not in table \"%s\"",
                              static_cast<unsigned long long>(id), schema_.name().c_str()));
  }
  RETURN_IF_ERROR(ValidateRowShape(new_row));
  PkKey new_key = ExtractPk(new_row);
  auto existing = pk_index_.find(new_key);
  if (existing != pk_index_.end() && existing->second != id) {
    return AlreadyExists("primary key update collides: " + new_key.ToString() + " in table \"" +
                         schema_.name() + "\"");
  }
  RETURN_IF_ERROR(EnsureRowResident(id));
  Row& row = it->second;
  const int64_t byte_delta =
      pager_ == nullptr ? 0
                        : static_cast<int64_t>(ApproxRowBytes(new_row)) -
                              static_cast<int64_t>(ApproxRowBytes(row));
  pk_index_.erase(ExtractPk(row));
  IndexErase(id, row);
  pk_index_.emplace(new_key, id);
  IndexInsert(id, new_row);
  row = std::move(new_row);
  col_store_->Invalidate(id);
  if (pager_ != nullptr) pager_->OnMutation(table_id_, PageOf(id), byte_delta);
  return OkStatus();
}

bool Table::IndexLookup(const std::string& column, const sql::Value& value,
                        std::vector<RowId>* out) const {
  out->clear();
  if (value.is_null()) {
    return false;  // NULL never matches an equality predicate
  }
  // Whole-PK fast path.
  if (schema_.primary_key().size() == 1 && schema_.primary_key()[0] == column) {
    PkKey key;
    key.values.push_back(value);
    auto it = pk_index_.find(key);
    if (it != pk_index_.end()) {
      out->push_back(it->second);
    }
    return true;
  }
  auto sec = secondary_.find(column);
  if (sec == secondary_.end()) {
    return false;
  }
  auto bucket = sec->second.eq.find(value);
  if (bucket != sec->second.eq.end()) {
    out->assign(bucket->second.begin(), bucket->second.end());
    std::sort(out->begin(), out->end());
  }
  return true;
}

bool Table::HasIndexOn(const std::string& column) const {
  if (schema_.primary_key().size() == 1 && schema_.primary_key()[0] == column) {
    return true;
  }
  return secondary_.count(column) > 0;
}

bool Table::RangeLookup(const std::string& column, const sql::Value* lo, bool lo_inclusive,
                        const sql::Value* hi, bool hi_inclusive,
                        std::vector<RowId>* out) const {
  out->clear();
  // A NULL bound compares UNKNOWN against everything: no row can match.
  if ((lo != nullptr && lo->is_null()) || (hi != nullptr && hi->is_null())) {
    return HasOrderedIndexOn(column);
  }
  // Empty range (lo past hi): answer [] without iterating — begin/end
  // iterators would cross otherwise.
  if (lo != nullptr && hi != nullptr) {
    int c = lo->Compare(*hi);
    if (c > 0 || (c == 0 && !(lo_inclusive && hi_inclusive))) {
      return HasOrderedIndexOn(column);
    }
  }
  // Whole-PK fast path: pk_index_ is already ordered by value.
  if (schema_.primary_key().size() == 1 && schema_.primary_key()[0] == column) {
    auto begin = pk_index_.begin();
    auto end = pk_index_.end();
    if (lo != nullptr) {
      PkKey key;
      key.values.push_back(*lo);
      begin = lo_inclusive ? pk_index_.lower_bound(key) : pk_index_.upper_bound(key);
    }
    if (hi != nullptr) {
      PkKey key;
      key.values.push_back(*hi);
      end = hi_inclusive ? pk_index_.upper_bound(key) : pk_index_.lower_bound(key);
    }
    for (auto it = begin; it != end; ++it) {
      out->push_back(it->second);
    }
    std::sort(out->begin(), out->end());
    return true;
  }
  auto sec = secondary_.find(column);
  if (sec == secondary_.end() || !sec->second.ordered) {
    return false;
  }
  const OrderedIndex& sorted = sec->second.sorted;
  auto begin = lo == nullptr ? sorted.begin()
                             : (lo_inclusive ? sorted.lower_bound(*lo) : sorted.upper_bound(*lo));
  auto end = hi == nullptr ? sorted.end()
                           : (hi_inclusive ? sorted.upper_bound(*hi) : sorted.lower_bound(*hi));
  for (auto it = begin; it != end; ++it) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  std::sort(out->begin(), out->end());
  return true;
}

bool Table::HasOrderedIndexOn(const std::string& column) const {
  if (schema_.primary_key().size() == 1 && schema_.primary_key()[0] == column) {
    return true;
  }
  auto sec = secondary_.find(column);
  return sec != secondary_.end() && sec->second.ordered;
}

bool Table::NullLookup(const std::string& column, std::vector<RowId>* out) const {
  out->clear();
  auto sec = secondary_.find(column);
  if (sec == secondary_.end()) {
    return false;
  }
  out->assign(sec->second.nulls.begin(), sec->second.nulls.end());
  return true;
}

bool Table::HasNullTrackingOn(const std::string& column) const {
  return secondary_.count(column) > 0;
}

void Table::Scan(const std::function<void(RowId, const Row&)>& fn) const {
  if (pager_ == nullptr) {
    for (const auto& [id, row] : rows_) {
      fn(id, row);
    }
    return;
  }
  // Fault page-by-page; a page whose fault fails is skipped (its payloads are
  // empty and callbacks index into them) with the error left sticky.
  uint64_t current_page = ~uint64_t{0};
  bool page_ok = true;
  for (const auto& [id, row] : rows_) {
    const uint64_t page = PageOf(id);
    if (page != current_page) {
      current_page = page;
      Status st = pager_->Access(table_id_, page);
      page_ok = st.ok();
      if (!page_ok) {
        pager_->RecordStickyError(st);
        EDNA_LOG(kError) << "scan fault failed for table \"" << schema_.name()
                         << "\" page " << page << ": " << st.ToString();
      }
    }
    if (page_ok) fn(id, row);
  }
}

std::vector<RowId> Table::AllRowIds() const {
  std::vector<RowId> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) {
    out.push_back(id);
  }
  return out;
}

Status Table::AddColumn(ColumnDef col, const sql::Value& fill) {
  if (schema_.HasColumn(col.name)) {
    return AlreadyExists("column \"" + col.name + "\" already in table \"" +
                         schema_.name() + "\"");
  }
  if (!ValueMatchesType(fill, col.type)) {
    return InvalidArgument("fill value " + fill.ToSqlString() +
                           " does not match new column type " + ColumnTypeName(col.type));
  }
  if (fill.is_null() && !col.nullable) {
    return InvalidArgument("NULL fill for NOT NULL column \"" + col.name + "\"");
  }
  if (col.auto_increment) {
    return InvalidArgument("cannot add an auto-increment column to a populated table");
  }
  RETURN_IF_ERROR(EnsureAllResident());
  schema_.AddColumn(std::move(col));
  col_store_->InvalidateAll();  // every slab's column count is now stale
  const int64_t fill_bytes =
      pager_ == nullptr ? 0 : static_cast<int64_t>(ApproxValueBytes(fill));
  for (auto& [id, row] : rows_) {
    row.push_back(fill);
    if (pager_ != nullptr) pager_->OnMutation(table_id_, PageOf(id), fill_bytes);
  }
  return OkStatus();
}

Status Table::BuildIndex(const std::string& column) {
  int idx = schema_.ColumnIndex(column);
  if (idx < 0) {
    return NotFound("no column \"" + column + "\" in table \"" + schema_.name() + "\"");
  }
  RETURN_IF_ERROR(EnsureAllResident());
  if (auto it = secondary_.find(column); it != secondary_.end()) {
    // Already indexed. An implicit FK index may lack the ordered mirror a
    // declared index carries; upgrade it in place.
    if (!it->second.ordered) {
      it->second.ordered = true;
      for (const auto& [value, ids] : it->second.eq) {
        it->second.sorted[value].insert(ids.begin(), ids.end());
      }
    }
    return OkStatus();
  }
  schema_.AddIndex(column);
  SecondaryIndex& index = secondary_[column];
  index.ordered = true;
  for (const auto& [id, row] : rows_) {
    const sql::Value& v = row[static_cast<size_t>(idx)];
    if (v.is_null()) {
      index.nulls.insert(id);
    } else {
      index.eq[v].insert(id);
      index.sorted[v].insert(id);
    }
  }
  return OkStatus();
}

Status Table::CheckIndexConsistency() const {
  // The audit reads every payload; transiently exceeding the cache budget
  // here is accepted (the caller evicts afterwards; docs/DESIGN.md).
  RETURN_IF_ERROR(EnsureAllResident());
  // 1. Every row's PK is in pk_index_ and maps back to it.
  for (const auto& [id, row] : rows_) {
    auto it = pk_index_.find(ExtractPk(row));
    if (it == pk_index_.end() || it->second != id) {
      return Internal("pk_index missing/incorrect for row " + RowToString(row) +
                      " in table \"" + schema_.name() + "\"");
    }
  }
  if (pk_index_.size() != rows_.size()) {
    return Internal("pk_index size mismatch in table \"" + schema_.name() + "\"");
  }
  // 2. Secondary indexes exactly cover non-null column values; the null set
  //    exactly covers the NULL values; the ordered mirror (when present)
  //    agrees with the hash buckets entry-for-entry.
  for (const auto& [column, index] : secondary_) {
    const size_t col_idx = static_cast<size_t>(schema_.ColumnIndex(column));
    size_t indexed = 0;
    for (const auto& [value, ids] : index.eq) {
      for (RowId id : ids) {
        const Row* row = Find(id);
        if (row == nullptr) {
          return Internal("secondary index on \"" + column + "\" holds dead row id");
        }
        const sql::Value& actual = (*row)[col_idx];
        if (!actual.SqlEquals(value)) {
          return Internal("secondary index on \"" + column + "\" holds stale value");
        }
        ++indexed;
      }
    }
    size_t expected = 0;
    size_t expected_null = 0;
    for (const auto& [id, row] : rows_) {
      if (row[col_idx].is_null()) {
        ++expected_null;
        if (index.nulls.count(id) == 0) {
          return Internal("secondary index on \"" + column +
                          "\" null set missing a NULL row");
        }
      } else {
        ++expected;
      }
    }
    if (indexed != expected) {
      return Internal(StrFormat("secondary index on \"%s\" covers %zu rows, expected %zu",
                                column.c_str(), indexed, expected));
    }
    if (index.nulls.size() != expected_null) {
      return Internal(StrFormat(
          "secondary index on \"%s\" null set holds %zu rows, expected %zu",
          column.c_str(), index.nulls.size(), expected_null));
    }
    if (index.ordered) {
      size_t sorted_count = 0;
      for (const auto& [value, ids] : index.sorted) {
        sorted_count += ids.size();
        auto eq_it = index.eq.find(value);
        if (eq_it == index.eq.end()) {
          return Internal("ordered index on \"" + column +
                          "\" holds a value absent from the hash index");
        }
        for (RowId id : ids) {
          if (eq_it->second.count(id) == 0) {
            return Internal("ordered index on \"" + column +
                            "\" holds a row absent from the hash bucket");
          }
        }
      }
      if (sorted_count != indexed) {
        return Internal(StrFormat(
            "ordered index on \"%s\" covers %zu rows, hash index covers %zu",
            column.c_str(), sorted_count, indexed));
      }
    } else if (!index.sorted.empty()) {
      return Internal("hash-only index on \"" + column +
                      "\" carries ordered entries");
    }
  }
  return OkStatus();
}

void Table::SetPager(PageCache* pager, uint32_t table_id, uint32_t rows_per_page) {
  pager_ = pager;
  table_id_ = table_id;
  rows_per_page_ = std::max<uint32_t>(1, rows_per_page);
}

Status Table::EnsureRowResident(RowId id) const {
  if (pager_ == nullptr) return OkStatus();
  return pager_->Access(table_id_, PageOf(id));
}

Status Table::EnsureAllResident() const {
  if (pager_ == nullptr) return OkStatus();
  uint64_t current_page = ~uint64_t{0};
  for (const auto& [id, row] : rows_) {
    const uint64_t page = PageOf(id);
    if (page == current_page) continue;
    current_page = page;
    RETURN_IF_ERROR(pager_->Access(table_id_, page));
  }
  return OkStatus();
}

void Table::CollectPageRows(uint64_t page,
                            std::vector<std::pair<RowId, const Row*>>* out) const {
  const RowId first = page * rows_per_page_ + 1;
  const RowId last = first + rows_per_page_ - 1;
  for (auto it = rows_.lower_bound(first); it != rows_.end() && it->first <= last; ++it) {
    out->emplace_back(it->first, &it->second);
  }
}

void Table::DropPageRows(uint64_t page) {
  const RowId first = page * rows_per_page_ + 1;
  const RowId last = first + rows_per_page_ - 1;
  for (auto it = rows_.lower_bound(first); it != rows_.end() && it->first <= last; ++it) {
    Row().swap(it->second);  // swap releases the heap allocation, clear() keeps it
  }
  // Slab copies of the evicted range go with it — keeping them would defeat
  // the cache's memory bound (eviction holds the stripe exclusively).
  col_store_->InvalidateRange(first, last);
}

Status Table::InstallPageRows(uint64_t page, std::vector<std::pair<RowId, Row>>* rows) {
  const RowId first = page * rows_per_page_ + 1;
  const RowId last = first + rows_per_page_ - 1;
  // Validate before mutating: the frame must hold exactly the page's live
  // ids (a spilled page's id set cannot change — mutators fault first), with
  // schema-width payloads. Frames store rows in ascending id order.
  auto expected = rows->begin();
  for (auto it = rows_.lower_bound(first); it != rows_.end() && it->first <= last; ++it) {
    if (expected == rows->end() || expected->first != it->first) {
      return Internal("extent frame row set does not match live rows of table \"" +
                      schema_.name() + "\"");
    }
    if (expected->second.size() != schema_.num_columns()) {
      return Internal("extent frame row width mismatch in table \"" + schema_.name() +
                      "\"");
    }
    ++expected;
  }
  if (expected != rows->end()) {
    return Internal("extent frame holds rows absent from table \"" + schema_.name() +
                    "\"");
  }
  auto src = rows->begin();
  for (auto it = rows_.lower_bound(first); it != rows_.end() && it->first <= last;
       ++it, ++src) {
    it->second = std::move(src->second);
  }
  return OkStatus();
}

size_t Table::NumColumnSlabs() const {
  return next_row_id_ <= 1 ? 0 : ColumnStore::SlabIndexOf(next_row_id_ - 1) + 1;
}

StatusOr<const ColumnSlab*> Table::GetColumnSlab(size_t index) const {
  Status error = OkStatus();
  const ColumnSlab* slab = col_store_->Acquire(
      index, [this, index](ColumnSlab* out) { return BuildColumnSlab(index, out); },
      &error);
  if (slab == nullptr) {
    return error;
  }
  return slab;
}

Status Table::BuildColumnSlab(size_t index, ColumnSlab* out) const {
  const RowId first = static_cast<RowId>(index) * sql::kChunkLanes + 1;
  const RowId last = first + sql::kChunkLanes - 1;
  const size_t width = schema_.num_columns();
  out->first_row = first;

  // Pass 1: presence. With a pager, fault every covered page in — the slab
  // must copy real payloads, not spilled empty shells.
  size_t high = 0;
  uint64_t current_page = ~uint64_t{0};
  for (auto it = rows_.lower_bound(first); it != rows_.end() && it->first <= last; ++it) {
    if (pager_ != nullptr) {
      const uint64_t page = PageOf(it->first);
      if (page != current_page) {
        current_page = page;
        RETURN_IF_ERROR(pager_->Access(table_id_, page));
      }
    }
    const size_t lane = static_cast<size_t>(it->first - first);
    out->present[lane >> 6] |= uint64_t{1} << (lane & 63);
    high = lane + 1;
    ++out->live_rows;
  }
  out->lanes = high;
  out->columns.assign(width, {});
  out->nulls.assign(width, {});
  for (size_t c = 0; c < width; ++c) {
    out->columns[c].assign(high, sql::Value::Null());
  }

  // Pass 2: transpose. NULL values stay as the default-constructed Null and
  // set the column's null bit.
  for (auto it = rows_.lower_bound(first); it != rows_.end() && it->first <= last; ++it) {
    const size_t lane = static_cast<size_t>(it->first - first);
    const Row& row = it->second;
    for (size_t c = 0; c < width; ++c) {
      if (row[c].is_null()) {
        out->nulls[c][lane >> 6] |= uint64_t{1} << (lane & 63);
      } else {
        out->columns[c][lane] = row[c];
      }
    }
  }
  return OkStatus();
}

}  // namespace edna::db
