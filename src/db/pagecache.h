// Page/extent cache: bounded-memory residency for the durable database.
//
// The durable database was fully memory-resident between snapshots (PR 5
// solved durability, not capacity). The page cache bounds resident row
// memory: rows are grouped into fixed-size pages by RowId, cold pages are
// evicted to per-table extent files, and faulted back on access. The design
// follows the netdata dbengine shape — fixed pages grouped into CRC-framed,
// optionally-compressed extents — adapted to this engine's row model.
//
// Key invariants (docs/DESIGN.md, "Tiered storage and the page cache"):
//
//  * The row-id heap (std::map keys), the PK index, and every secondary
//    index stay fully resident; only row PAYLOADS spill. Contains/AllRowIds/
//    LookupPk/IndexLookup never fault. A spilled row keeps its map node with
//    an empty payload vector.
//  * A page is entirely resident or entirely spilled; mutators fault the
//    target page in first, so a spilled page's extent frame is always an
//    exact image of its live rows.
//  * Extents are a CACHE SPILL, not a durability source: the extents/
//    directory is wiped on every Open, and recovery reads only snapshot +
//    WAL. Eviction never needs fsync, and a lost or corrupt extent can cost
//    availability (kInternal on the access) but never durability.
//  * Pages pinned by row write intents (open transactions, in-flight batch
//    statements) are unevictable, so uncommitted row images never reach an
//    extent and rollback always operates on resident rows.
//  * Eviction runs only at statement boundaries with no locks held: the
//    evictor try_locks the victim table's stripe EXCLUSIVELY, so it can
//    never clear a payload a concurrent statement is reading (readers hold
//    the stripe shared for the whole statement).
//
// Locking: PageCache has one internal leaf mutex (mu_). It is taken below
// the Database's stripe locks and never nested with txn_mu_/intents_mu_/
// plan_mu_. All fault-path installs happen under mu_, which is what makes
// concurrent shared-stripe readers safe against each other.
#ifndef SRC_DB_PAGECACHE_H_
#define SRC_DB_PAGECACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/db/row.h"

namespace edna::db {

class Table;
struct DbStats;

// Threaded through db::Database / DurableDatabase / DurableEngine::Open and
// `disguisectl --cache-mb`. max_resident_bytes == 0 means "no cache": the
// durable layer then skips attaching one and the database stays fully
// resident (the pre-cache behavior, and the in-memory default).
struct CacheOptions {
  uint64_t max_resident_bytes = 0;
  // Rows per page is derived as max(1, page_size_bytes / 128): rows are
  // variable-width, so the page size is a grouping target, not a hard cap.
  uint32_t page_size_bytes = 4096;
  enum class Policy { kClock, k2Q };
  Policy policy = Policy::kClock;
  // Extent frames are LZ-compressed (greedy LZ4-style byte codec, no
  // external deps) when that shrinks them; stored raw otherwise.
  bool compress = true;
};

// Approximate heap footprint of a value / row, used for resident-byte
// accounting (32 bytes of per-row overhead approximates the map node).
uint64_t ApproxValueBytes(const sql::Value& v);
uint64_t ApproxRowBytes(const Row& row);

class PageCache {
 public:
  // `dir` is the extents directory (data_dir + "/extents"); `stats` receives
  // page_hits/page_misses/page_evictions/page_writebacks/resident_bytes.
  PageCache(CacheOptions options, std::string dir, DbStats* stats);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Creates the extents directory and wipes stale *.edx spill files (they
  // belong to a previous process lifetime; canonical data is snapshot+WAL).
  Status Init();

  uint32_t rows_per_page() const { return rows_per_page_; }
  uint64_t PageOf(RowId id) const { return (id - 1) / rows_per_page_; }

  // Registers a table and seeds page accounting from its current rows (all
  // resident at registration). Returns the table's cache id. The caller then
  // hands (this, id, rows_per_page()) to Table::SetPager.
  uint32_t RegisterTable(const std::string& name, Table* table);

  // Hit/fault path, called by Table for every payload access. Caller holds
  // the table's stripe (shared or exclusive). Resident: policy touch.
  // Spilled: reads the page's extent frame and installs the payloads.
  // Missing page metadata is created resident-empty (insert path).
  // kNotFound: extent file missing; kInternal: frame corrupt/truncated.
  Status Access(uint32_t table_id, uint64_t page);

  // Mutation bookkeeping: marks the page dirty and adjusts its byte count.
  // Caller holds the table's stripe exclusively and has already ensured the
  // page is resident. Creates the page (resident, empty) if new.
  void OnMutation(uint32_t table_id, uint64_t page, int64_t byte_delta);

  // Transaction pins, keyed the way write intents are (table name + row).
  // A pinned page is unevictable. Pin/unpin only from Database intent
  // claim/release, with no other PageCache-relevant locks held.
  void PinRow(const std::string& table, RowId id);
  void UnpinRow(const std::string& table, RowId id);

  // Fast budget probe (lock-free) for statement-end eviction checks.
  bool OverBudget() const;

  // One eviction round's victims, grouped per table so the evictor can
  // take each table's stripe once. Victims leave the policy structures;
  // EvictPages (or Requeue, if the stripe was busy) re-settles them.
  struct EvictGroup {
    std::string table;
    uint32_t table_id = 0;
    std::vector<uint64_t> pages;
  };
  std::vector<EvictGroup> PlanEviction();

  // Evicts the given pages of one table: revalidates (resident, unpinned),
  // writes dirty pages into ONE new extent frame, clears payloads. Returns
  // true if at least one page was evicted. Caller holds the table's stripe
  // EXCLUSIVELY. Fail-point: pagecache.writeback (before the frame write).
  StatusOr<bool> EvictPages(uint32_t table_id, const std::vector<uint64_t>& pages);

  // Returns planned-but-skipped victims to the eviction policy.
  void Requeue(uint32_t table_id, const std::vector<uint64_t>& pages);

  // Copies a table's full row map, reading spilled pages THROUGH the extent
  // files without admitting them (checkpoint clones must not perturb the
  // cache). Runs entirely under mu_, which serializes it against concurrent
  // fault installs (Table::Clone's shared stripe does not). Caller holds at
  // least a shared stripe on the table.
  Status SnapshotTableRows(uint32_t table_id, std::map<RowId, Row>* out);

  // Void/pointer APIs (Find, Scan, Clone) cannot return a fault Status; they
  // record it here and the Database surfaces it at the statement boundary
  // instead of mapping the miss to kNotFound.
  void RecordStickyError(const Status& s);
  Status ConsumeStickyError();

  uint64_t ResidentBytes() const;

  // Test hooks.
  bool DebugIsRowResident(const std::string& table, RowId id);
  std::vector<std::string> DebugExtentFiles() const;

 private:
  struct PageMeta {
    bool resident = true;
    bool dirty = true;       // no frame yet / frame stale
    bool has_frame = false;  // a frame in the extent file holds this page
    uint32_t pins = 0;
    uint64_t bytes = 0;  // payload bytes while resident (kept across spill)
    uint64_t frame_off = 0;
    uint32_t frame_len = 0;
    // Policy state. Clock: membership in the ring + reference bit. 2Q:
    // which queue (0 = none, 1 = A1 FIFO, 2 = Am LRU) + position.
    bool in_ring = false;
    bool ref = false;
    uint8_t queue = 0;
    std::list<std::pair<uint32_t, uint64_t>>::iterator qpos;
  };

  struct TableState {
    std::string name;
    Table* table = nullptr;
    int fd = -1;
    uint64_t file_size = 0;
    std::unordered_map<uint64_t, PageMeta> pages;
  };

  // Decoded extent frame: (page index, rows) per contained page.
  using FramePages = std::vector<std::pair<uint64_t, std::vector<std::pair<RowId, Row>>>>;

  // All private helpers assume mu_ is held.
  Status Fault(TableState& ts, uint32_t table_id, uint64_t page, PageMeta& meta);
  Status ReadFrame(uint32_t table_id, uint64_t off, uint32_t len, FramePages* pages);
  void PolicyInsert(uint32_t table_id, uint64_t page, PageMeta& meta);
  void PolicyTouch(uint32_t table_id, uint64_t page, PageMeta& meta);
  void AddResident(int64_t delta);
  std::string ExtentPath(uint32_t table_id) const;

  const CacheOptions options_;
  const std::string dir_;
  DbStats* const stats_;
  const uint32_t rows_per_page_;

  mutable std::mutex mu_;  // leaf: below stripes, never nested with txn/intents/plan
  std::vector<TableState> tables_;
  std::unordered_map<std::string, uint32_t> ids_;
  uint64_t resident_bytes_ = 0;           // authoritative, under mu_
  std::atomic<uint64_t> resident_gauge_{0};  // mirror for OverBudget()
  Status sticky_ = OkStatus();

  // Clock: a queue of page keys; PlanEviction pops, second-chances ref'd
  // pages, and emits unpinned cold pages as victims. 2Q (simplified): A1
  // FIFO for once-touched pages, Am LRU for re-touched pages; victims come
  // from A1 while it holds >25% of tracked pages, else from Am's front.
  std::deque<std::pair<uint32_t, uint64_t>> ring_;
  std::list<std::pair<uint32_t, uint64_t>> a1_;
  std::list<std::pair<uint32_t, uint64_t>> am_;
};

// LZ4-style greedy byte compressor used for extent frames (exposed for the
// round-trip property tests). Compress returns an empty vector when the
// input does not shrink; Decompress bounds-checks every read so corrupt
// input yields kInternal, never out-of-bounds access.
std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& in);
Status LzDecompress(const uint8_t* in, size_t in_len, size_t raw_len,
                    std::vector<uint8_t>* out);

}  // namespace edna::db

#endif  // SRC_DB_PAGECACHE_H_
