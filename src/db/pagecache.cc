#include "src/db/pagecache.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/db/database.h"
#include "src/db/table.h"
#include "src/sql/codec.h"

namespace edna::db {

namespace {

// Extent frame header (20 bytes, little-endian; docs/FORMATS.md):
//   u32 magic "EDNX" | u8 version | u8 flags (bit0 = LZ-compressed) |
//   u16 page_count | u32 raw_len | u32 stored_len | u32 crc32(stored payload)
constexpr uint32_t kExtentMagic = 0x584E4445;  // "EDNX"
constexpr uint8_t kExtentVersion = 1;
constexpr uint8_t kFlagCompressed = 0x01;
constexpr size_t kFrameHeaderSize = 20;

uint16_t ReadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t ReadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

Status WriteFullyAt(int fd, const uint8_t* data, size_t len, uint64_t off) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::pwrite(fd, data + written, len - written,
                         static_cast<off_t>(off + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Internal(std::string("extent pwrite failed: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace

uint64_t ApproxValueBytes(const sql::Value& v) {
  uint64_t bytes = sizeof(sql::Value);
  if (v.is_string()) {
    bytes += v.AsString().size();
  } else if (v.is_blob()) {
    bytes += v.AsBlob().size();
  }
  return bytes;
}

uint64_t ApproxRowBytes(const Row& row) {
  uint64_t bytes = 32;  // map-node + vector-header overhead approximation
  for (const sql::Value& v : row) bytes += ApproxValueBytes(v);
  return bytes;
}

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& in) {
  const size_t n = in.size();
  if (n < 16) return {};
  std::vector<uint8_t> out;
  out.reserve(n);
  constexpr uint32_t kHashBits = 13;
  std::vector<uint32_t> htab(1u << kHashBits, 0xFFFFFFFFu);
  auto hash4 = [&in](size_t p) {
    uint32_t v;
    std::memcpy(&v, &in[p], 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  };
  auto emit_ext = [&out](size_t len) {
    while (len >= 255) {
      out.push_back(255);
      len -= 255;
    }
    out.push_back(static_cast<uint8_t>(len));
  };
  // Stop matching 12 bytes before the end so the stream always closes with a
  // literals-only sequence (the decoder's end-of-input condition).
  const size_t limit = n - 12;
  size_t pos = 0;
  size_t anchor = 0;
  while (pos < limit) {
    const uint32_t h = hash4(pos);
    const size_t cand = htab[h];
    htab[h] = static_cast<uint32_t>(pos);
    if (cand == 0xFFFFFFFFu || pos - cand > 0xFFFF ||
        std::memcmp(&in[cand], &in[pos], 4) != 0) {
      ++pos;
      continue;
    }
    size_t mlen = 4;
    while (pos + mlen < limit && in[cand + mlen] == in[pos + mlen]) ++mlen;
    const size_t lit = pos - anchor;
    const size_t mex = mlen - 4;
    out.push_back(static_cast<uint8_t>((std::min<size_t>(lit, 15) << 4) |
                                       std::min<size_t>(mex, 15)));
    if (lit >= 15) emit_ext(lit - 15);
    out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(anchor),
               in.begin() + static_cast<ptrdiff_t>(pos));
    const uint16_t dist = static_cast<uint16_t>(pos - cand);
    out.push_back(static_cast<uint8_t>(dist & 0xFF));
    out.push_back(static_cast<uint8_t>(dist >> 8));
    if (mex >= 15) emit_ext(mex - 15);
    pos += mlen;
    anchor = pos;
    if (out.size() >= n) return {};
  }
  const size_t lit = n - anchor;
  out.push_back(static_cast<uint8_t>(std::min<size_t>(lit, 15) << 4));
  if (lit >= 15) emit_ext(lit - 15);
  out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(anchor), in.end());
  if (out.size() >= n) return {};
  return out;
}

Status LzDecompress(const uint8_t* in, size_t in_len, size_t raw_len,
                    std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(raw_len);
  size_t p = 0;
  auto read_ext = [in, in_len, &p](size_t base, size_t* len) {
    *len = base;
    if (base < 15) return true;
    while (true) {
      if (p >= in_len) return false;
      const uint8_t b = in[p++];
      *len += b;
      if (b != 255) return true;
    }
  };
  while (p < in_len) {
    const uint8_t token = in[p++];
    size_t lit = 0;
    if (!read_ext(token >> 4, &lit)) return Internal("lz: truncated literal length");
    if (lit > in_len - p) return Internal("lz: literal overrun");
    if (out->size() + lit > raw_len) return Internal("lz: output overflow");
    out->insert(out->end(), in + p, in + p + lit);
    p += lit;
    if (p == in_len) break;  // final literals-only sequence
    if (in_len - p < 2) return Internal("lz: truncated match offset");
    const size_t dist = static_cast<size_t>(in[p]) | (static_cast<size_t>(in[p + 1]) << 8);
    p += 2;
    if (dist == 0 || dist > out->size()) return Internal("lz: bad match distance");
    size_t mlen = 0;
    if (!read_ext(token & 0x0F, &mlen)) return Internal("lz: truncated match length");
    mlen += 4;
    if (out->size() + mlen > raw_len) return Internal("lz: output overflow");
    const size_t from = out->size() - dist;
    for (size_t i = 0; i < mlen; ++i) out->push_back((*out)[from + i]);
  }
  if (out->size() != raw_len) return Internal("lz: decompressed size mismatch");
  return OkStatus();
}

PageCache::PageCache(CacheOptions options, std::string dir, DbStats* stats)
    : options_(options),
      dir_(std::move(dir)),
      stats_(stats),
      rows_per_page_(std::max<uint32_t>(1, options.page_size_bytes / 128)) {}

PageCache::~PageCache() = default;

Status PageCache::Init() {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    return Internal("cannot create extents directory " + dir_ + ": " +
                    std::strerror(errno));
  }
  // Spill files are scoped to one process lifetime; stale ones are garbage.
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return Internal("cannot open extents directory " + dir_ + ": " +
                    std::strerror(errno));
  }
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".edx") == 0) {
      ::unlink((dir_ + "/" + name).c_str());
    }
  }
  ::closedir(d);
  return OkStatus();
}

std::string PageCache::ExtentPath(uint32_t table_id) const {
  return dir_ + "/t" + std::to_string(table_id) + ".edx";
}

uint32_t PageCache::RegisterTable(const std::string& name, Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.emplace_back();
  TableState& ts = tables_.back();
  ts.name = name;
  ts.table = table;
  ids_[name] = id;
  // Seed accounting: every current row is resident and has no frame yet.
  uint64_t total = 0;
  table->Scan([&](RowId row_id, const Row& row) {
    const uint64_t page = PageOf(row_id);
    PageMeta& meta = ts.pages[page];  // default: resident, dirty, no frame
    const uint64_t bytes = ApproxRowBytes(row);
    meta.bytes += bytes;
    total += bytes;
  });
  for (auto& [page, meta] : ts.pages) PolicyInsert(id, page, meta);
  AddResident(static_cast<int64_t>(total));
  return id;
}

Status PageCache::Access(uint32_t table_id, uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState& ts = tables_[table_id];
  auto [it, inserted] = ts.pages.try_emplace(page);
  PageMeta& meta = it->second;
  if (inserted) {
    // First touch of a page that has never held rows (insert path).
    PolicyInsert(table_id, page, meta);
    return OkStatus();
  }
  if (meta.resident) {
    stats_->page_hits.fetch_add(1, std::memory_order_relaxed);
    PolicyTouch(table_id, page, meta);
    return OkStatus();
  }
  stats_->page_misses.fetch_add(1, std::memory_order_relaxed);
  RETURN_IF_ERROR(Fault(ts, table_id, page, meta));
  PolicyInsert(table_id, page, meta);
  return OkStatus();
}

Status PageCache::Fault(TableState& ts, uint32_t table_id, uint64_t page,
                        PageMeta& meta) {
  EDNA_FAIL_POINT(failpoints::kExtentRead);
  if (!meta.has_frame) return Internal("spilled page has no extent frame");
  FramePages frame_pages;
  RETURN_IF_ERROR(ReadFrame(table_id, meta.frame_off, meta.frame_len, &frame_pages));
  for (auto& [frame_page, rows] : frame_pages) {
    // A frame can hold several pages of one eviction round; install only the
    // requested one — siblings may have been faulted back and re-dirtied.
    if (frame_page != page) continue;
    uint64_t bytes = 0;
    for (const auto& [row_id, row] : rows) bytes += ApproxRowBytes(row);
    RETURN_IF_ERROR(ts.table->InstallPageRows(page, &rows));
    meta.resident = true;
    meta.dirty = false;
    meta.bytes = bytes;
    AddResident(static_cast<int64_t>(bytes));
    return OkStatus();
  }
  return Internal("extent frame does not contain page " + std::to_string(page));
}

Status PageCache::ReadFrame(uint32_t table_id, uint64_t off, uint32_t len,
                            FramePages* pages) {
  const std::string path = ExtentPath(table_id);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return NotFound("extent file missing: " + path);
    return Internal("cannot open extent file " + path + ": " + std::strerror(errno));
  }
  std::vector<uint8_t> buf(len);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::pread(fd, buf.data() + got, len - got, static_cast<off_t>(off + got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got < len) return Internal("extent frame truncated: " + path);
  if (len < kFrameHeaderSize) return Internal("extent frame shorter than header");
  if (ReadLe32(buf.data()) != kExtentMagic) return Internal("bad extent frame magic");
  if (buf[4] != kExtentVersion) return Internal("unsupported extent frame version");
  const uint8_t flags = buf[5];
  const uint16_t page_count = ReadLe16(buf.data() + 6);
  const uint32_t raw_len = ReadLe32(buf.data() + 8);
  const uint32_t stored_len = ReadLe32(buf.data() + 12);
  const uint32_t crc = ReadLe32(buf.data() + 16);
  if (kFrameHeaderSize + stored_len != len) {
    return Internal("extent frame length mismatch");
  }
  // Integrity before decompression: a corrupt stored payload must fail the
  // CRC, not trip the decoder.
  if (Crc32(buf.data() + kFrameHeaderSize, stored_len) != crc) {
    return Internal("extent frame CRC mismatch");
  }
  std::vector<uint8_t> raw;
  if (flags & kFlagCompressed) {
    RETURN_IF_ERROR(LzDecompress(buf.data() + kFrameHeaderSize, stored_len, raw_len, &raw));
  } else {
    if (stored_len != raw_len) return Internal("extent frame raw length mismatch");
    raw.assign(buf.begin() + kFrameHeaderSize, buf.end());
  }
  sql::ByteReader reader(raw);
  for (uint16_t i = 0; i < page_count; ++i) {
    auto page = reader.U64();
    if (!page.ok()) return Internal("extent payload corrupt: " + page.status().message());
    auto nrows = reader.U32();
    if (!nrows.ok()) return Internal("extent payload corrupt: " + nrows.status().message());
    std::vector<std::pair<RowId, Row>> rows;
    rows.reserve(*nrows);
    for (uint32_t r = 0; r < *nrows; ++r) {
      auto id = reader.U64();
      if (!id.ok()) return Internal("extent payload corrupt: " + id.status().message());
      auto ncols = reader.U32();
      if (!ncols.ok()) return Internal("extent payload corrupt: " + ncols.status().message());
      if (*ncols > raw.size()) return Internal("extent payload corrupt: column count");
      Row row;
      row.reserve(*ncols);
      for (uint32_t c = 0; c < *ncols; ++c) {
        auto value = reader.Value();
        if (!value.ok()) {
          return Internal("extent payload corrupt: " + value.status().message());
        }
        row.push_back(std::move(*value));
      }
      rows.emplace_back(*id, std::move(row));
    }
    pages->emplace_back(*page, std::move(rows));
  }
  if (!reader.AtEnd()) return Internal("extent payload corrupt: trailing bytes");
  return OkStatus();
}

void PageCache::OnMutation(uint32_t table_id, uint64_t page, int64_t byte_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState& ts = tables_[table_id];
  auto [it, inserted] = ts.pages.try_emplace(page);
  PageMeta& meta = it->second;
  if (inserted) PolicyInsert(table_id, page, meta);
  meta.dirty = true;
  if (byte_delta < 0 && meta.bytes < static_cast<uint64_t>(-byte_delta)) {
    meta.bytes = 0;  // accounting is approximate; clamp rather than wrap
  } else {
    meta.bytes = static_cast<uint64_t>(static_cast<int64_t>(meta.bytes) + byte_delta);
  }
  AddResident(byte_delta);
}

void PageCache::PinRow(const std::string& table, RowId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(table);
  if (it == ids_.end()) return;
  TableState& ts = tables_[it->second];
  // RestoreRow claims its intent before the row exists; create the page
  // resident-empty so the pin has something to hold.
  auto [pit, inserted] = ts.pages.try_emplace(PageOf(id));
  if (inserted) PolicyInsert(it->second, pit->first, pit->second);
  ++pit->second.pins;
}

void PageCache::UnpinRow(const std::string& table, RowId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(table);
  if (it == ids_.end()) return;
  TableState& ts = tables_[it->second];
  auto pit = ts.pages.find(PageOf(id));
  if (pit != ts.pages.end() && pit->second.pins > 0) --pit->second.pins;
}

bool PageCache::OverBudget() const {
  return options_.max_resident_bytes > 0 &&
         resident_gauge_.load(std::memory_order_relaxed) > options_.max_resident_bytes;
}

std::vector<PageCache::EvictGroup> PageCache::PlanEviction() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_resident_bytes == 0 || resident_bytes_ <= options_.max_resident_bytes) {
    return {};
  }
  const uint64_t need = resident_bytes_ - options_.max_resident_bytes;
  uint64_t freed = 0;
  std::map<uint32_t, std::vector<uint64_t>> by_table;

  auto classify = [&](uint32_t tid, uint64_t page) -> PageMeta* {
    auto it = tables_[tid].pages.find(page);
    if (it == tables_[tid].pages.end()) return nullptr;
    return &it->second;
  };

  if (options_.policy == CacheOptions::Policy::kClock) {
    size_t steps = ring_.size() * 2 + 8;
    while (freed < need && steps-- > 0 && !ring_.empty()) {
      auto [tid, page] = ring_.front();
      ring_.pop_front();
      PageMeta* meta = classify(tid, page);
      if (meta == nullptr || !meta->resident) {
        if (meta != nullptr) meta->in_ring = false;  // stale ring entry
        continue;
      }
      if (meta->bytes == 0) {  // empty page: nothing to free, drop from ring
        meta->in_ring = false;
        continue;
      }
      if (meta->pins > 0) {
        ring_.emplace_back(tid, page);
        continue;
      }
      if (meta->ref) {  // second chance
        meta->ref = false;
        ring_.emplace_back(tid, page);
        continue;
      }
      meta->in_ring = false;
      by_table[tid].push_back(page);
      freed += meta->bytes;
    }
  } else {
    size_t steps = (a1_.size() + am_.size()) * 2 + 8;
    while (freed < need && steps-- > 0 && !(a1_.empty() && am_.empty())) {
      const bool from_a1 =
          !a1_.empty() && (am_.empty() || a1_.size() * 4 > a1_.size() + am_.size());
      auto& queue = from_a1 ? a1_ : am_;
      auto [tid, page] = queue.front();
      queue.pop_front();
      PageMeta* meta = classify(tid, page);
      if (meta == nullptr || !meta->resident || meta->bytes == 0) {
        if (meta != nullptr) meta->queue = 0;
        continue;
      }
      if (meta->pins > 0) {
        queue.emplace_back(tid, page);
        meta->qpos = --queue.end();
        continue;
      }
      meta->queue = 0;
      by_table[tid].push_back(page);
      freed += meta->bytes;
    }
  }

  std::vector<EvictGroup> groups;
  groups.reserve(by_table.size());
  for (auto& [tid, pages] : by_table) {
    EvictGroup g;
    g.table = tables_[tid].name;
    g.table_id = tid;
    g.pages = std::move(pages);
    groups.push_back(std::move(g));
  }
  return groups;
}

void PageCache::Requeue(uint32_t table_id, const std::vector<uint64_t>& pages) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState& ts = tables_[table_id];
  for (uint64_t page : pages) {
    auto it = ts.pages.find(page);
    if (it != ts.pages.end() && it->second.resident) {
      PolicyInsert(table_id, page, it->second);
    }
  }
}

StatusOr<bool> PageCache::EvictPages(uint32_t table_id,
                                     const std::vector<uint64_t>& pages) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState& ts = tables_[table_id];
  std::vector<uint64_t> victims;
  std::vector<uint64_t> dirty;
  for (uint64_t page : pages) {
    auto it = ts.pages.find(page);
    if (it == ts.pages.end()) continue;
    PageMeta& meta = it->second;
    if (!meta.resident) continue;
    if (meta.pins > 0 || meta.bytes == 0) {
      PolicyInsert(table_id, page, meta);  // revalidation failed: keep tracked
      continue;
    }
    victims.push_back(page);
    if (meta.dirty || !meta.has_frame) dirty.push_back(page);
  }
  if (victims.empty()) return false;

  auto requeue_victims = [&] {
    for (uint64_t page : victims) PolicyInsert(table_id, page, ts.pages[page]);
  };

  if (!dirty.empty()) {
    sql::ByteWriter payload;
    for (uint64_t page : dirty) {
      std::vector<std::pair<RowId, const Row*>> rows;
      ts.table->CollectPageRows(page, &rows);
      payload.U64(page);
      payload.U32(static_cast<uint32_t>(rows.size()));
      for (const auto& [row_id, row] : rows) {
        payload.U64(row_id);
        payload.U32(static_cast<uint32_t>(row->size()));
        for (const sql::Value& v : *row) payload.Value(v);
      }
    }
    const std::vector<uint8_t> raw = payload.Take();

    // Inline fail-point evaluation (not the macro): on an injected failure
    // the victims must return to the eviction policy before we bail, or
    // they would stay resident but untracked.
    Status status = FailPoints::Instance().Check(failpoints::kPagecacheWriteback);
    uint64_t frame_off = 0;
    uint32_t frame_len = 0;
    if (status.ok()) {
      uint8_t flags = 0;
      std::vector<uint8_t> compressed;
      if (options_.compress) {
        compressed = LzCompress(raw);
        if (!compressed.empty()) flags |= kFlagCompressed;
      }
      const std::vector<uint8_t>& stored = (flags & kFlagCompressed) ? compressed : raw;
      std::vector<uint8_t> frame;
      frame.reserve(kFrameHeaderSize + stored.size());
      sql::ByteWriter header;
      header.U32(kExtentMagic);
      header.U8(kExtentVersion);
      header.U8(flags);
      header.U8(static_cast<uint8_t>(dirty.size() & 0xFF));
      header.U8(static_cast<uint8_t>(dirty.size() >> 8));
      header.U32(static_cast<uint32_t>(raw.size()));
      header.U32(static_cast<uint32_t>(stored.size()));
      header.U32(Crc32(stored));
      frame = header.Take();
      frame.insert(frame.end(), stored.begin(), stored.end());

      frame_off = ts.file_size;
      frame_len = static_cast<uint32_t>(frame.size());
      const std::string path = ExtentPath(table_id);
      const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
      if (fd < 0) {
        status = Internal("cannot open extent file " + path + ": " + std::strerror(errno));
      } else {
        status = WriteFullyAt(fd, frame.data(), frame.size(), frame_off);
        ::close(fd);
      }
    }
    if (!status.ok()) {
      requeue_victims();
      return status;
    }
    // Extents are spill, not durability: no fsync. The frame is append-only;
    // frames superseded by re-dirty + re-evict become dead space reclaimed by
    // the wipe at next Open.
    ts.file_size += frame_len;
    for (uint64_t page : dirty) {
      PageMeta& meta = ts.pages[page];
      meta.has_frame = true;
      meta.dirty = false;
      meta.frame_off = frame_off;
      meta.frame_len = frame_len;
    }
    stats_->page_writebacks.fetch_add(dirty.size(), std::memory_order_relaxed);
  }

  for (uint64_t page : victims) {
    PageMeta& meta = ts.pages[page];
    ts.table->DropPageRows(page);
    meta.resident = false;
    meta.ref = false;
    AddResident(-static_cast<int64_t>(meta.bytes));
  }
  stats_->page_evictions.fetch_add(victims.size(), std::memory_order_relaxed);
  return true;
}

Status PageCache::SnapshotTableRows(uint32_t table_id, std::map<RowId, Row>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  TableState& ts = tables_[table_id];
  *out = ts.table->RawRows();
  for (auto& [page, meta] : ts.pages) {
    if (meta.resident) continue;
    if (!meta.has_frame) return Internal("spilled page has no extent frame");
    FramePages frame_pages;
    RETURN_IF_ERROR(ReadFrame(table_id, meta.frame_off, meta.frame_len, &frame_pages));
    bool found = false;
    for (auto& [frame_page, rows] : frame_pages) {
      if (frame_page != page) continue;
      found = true;
      for (auto& [row_id, row] : rows) {
        auto it = out->find(row_id);
        if (it == out->end()) {
          return Internal("extent frame holds row absent from live table");
        }
        it->second = std::move(row);
      }
    }
    if (!found) return Internal("extent frame does not contain page");
  }
  return OkStatus();
}

void PageCache::RecordStickyError(const Status& s) {
  if (s.ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (sticky_.ok()) sticky_ = s;
}

Status PageCache::ConsumeStickyError() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = sticky_;
  sticky_ = OkStatus();
  return s;
}

uint64_t PageCache::ResidentBytes() const {
  return resident_gauge_.load(std::memory_order_relaxed);
}

bool PageCache::DebugIsRowResident(const std::string& table, RowId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(table);
  if (it == ids_.end()) return true;
  const TableState& ts = tables_[it->second];
  auto pit = ts.pages.find(PageOf(id));
  return pit == ts.pages.end() || pit->second.resident;
}

std::vector<std::string> PageCache::DebugExtentFiles() const {
  std::vector<std::string> files;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return files;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".edx") == 0) {
      files.push_back(dir_ + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

void PageCache::PolicyInsert(uint32_t table_id, uint64_t page, PageMeta& meta) {
  if (options_.policy == CacheOptions::Policy::kClock) {
    if (meta.in_ring) {
      meta.ref = true;
      return;
    }
    meta.in_ring = true;
    meta.ref = true;
    ring_.emplace_back(table_id, page);
  } else {
    if (meta.queue != 0) return;
    a1_.emplace_back(table_id, page);
    meta.queue = 1;
    meta.qpos = --a1_.end();
  }
}

void PageCache::PolicyTouch(uint32_t table_id, uint64_t page, PageMeta& meta) {
  if (options_.policy == CacheOptions::Policy::kClock) {
    if (meta.in_ring) {
      meta.ref = true;
    } else {
      PolicyInsert(table_id, page, meta);
    }
    return;
  }
  if (meta.queue == 1) {
    // Second touch promotes from the A1 FIFO into the Am LRU.
    a1_.erase(meta.qpos);
    am_.emplace_back(table_id, page);
    meta.queue = 2;
    meta.qpos = --am_.end();
  } else if (meta.queue == 2) {
    am_.splice(am_.end(), am_, meta.qpos);
  } else {
    PolicyInsert(table_id, page, meta);
  }
}

void PageCache::AddResident(int64_t delta) {
  if (delta < 0 && resident_bytes_ < static_cast<uint64_t>(-delta)) {
    resident_bytes_ = 0;
  } else {
    resident_bytes_ = static_cast<uint64_t>(static_cast<int64_t>(resident_bytes_) + delta);
  }
  resident_gauge_.store(resident_bytes_, std::memory_order_relaxed);
  stats_->resident_bytes.store(resident_bytes_, std::memory_order_relaxed);
}

}  // namespace edna::db
