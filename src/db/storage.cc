#include "src/db/storage.h"

#include <cstdio>

#include "src/common/crc32.h"
#include "src/common/failpoint.h"
#include "src/common/strings.h"
#include "src/sql/codec.h"

namespace edna::db {

namespace {

// Image header: magic + version. Bump kVersion on format changes.
constexpr uint32_t kMagic = 0x45444201;  // "EDB" + 1
// Version history: 1 = initial; 2 = per-column sensitivity byte;
// 3 = u32 CRC32 of the body between version and body (v2 still loads).
constexpr uint32_t kVersion = 3;
constexpr uint32_t kLegacyVersion = 2;

}  // namespace

void SerializeColumnDef(sql::ByteWriter* w, const ColumnDef& col) {
  w->String(col.name);
  w->U8(static_cast<uint8_t>(col.type));
  w->U8(static_cast<uint8_t>(col.sensitivity));
  w->U8(col.nullable ? 1 : 0);
  w->U8(col.auto_increment ? 1 : 0);
  w->U8(col.default_value.has_value() ? 1 : 0);
  if (col.default_value.has_value()) {
    w->Value(*col.default_value);
  }
}

StatusOr<ColumnDef> DeserializeColumnDef(sql::ByteReader* r) {
  ColumnDef col;
  ASSIGN_OR_RETURN(col.name, r->String());
  ASSIGN_OR_RETURN(uint8_t type, r->U8());
  if (type > static_cast<uint8_t>(ColumnType::kBlob)) {
    return InvalidArgument("bad column type in database image");
  }
  col.type = static_cast<ColumnType>(type);
  ASSIGN_OR_RETURN(uint8_t sensitivity, r->U8());
  if (sensitivity > static_cast<uint8_t>(Sensitivity::kPii)) {
    return InvalidArgument("bad column sensitivity in database image");
  }
  col.sensitivity = static_cast<Sensitivity>(sensitivity);
  ASSIGN_OR_RETURN(uint8_t nullable, r->U8());
  col.nullable = nullable != 0;
  ASSIGN_OR_RETURN(uint8_t auto_inc, r->U8());
  col.auto_increment = auto_inc != 0;
  ASSIGN_OR_RETURN(uint8_t has_default, r->U8());
  if (has_default != 0) {
    ASSIGN_OR_RETURN(sql::Value v, r->Value());
    col.default_value = std::move(v);
  }
  return col;
}

void SerializeTableSchema(sql::ByteWriter* w, const TableSchema& ts) {
  w->String(ts.name());
  w->U32(static_cast<uint32_t>(ts.columns().size()));
  for (const ColumnDef& col : ts.columns()) {
    SerializeColumnDef(w, col);
  }
  w->U32(static_cast<uint32_t>(ts.primary_key().size()));
  for (const std::string& pk : ts.primary_key()) {
    w->String(pk);
  }
  w->U32(static_cast<uint32_t>(ts.foreign_keys().size()));
  for (const ForeignKeyDef& fk : ts.foreign_keys()) {
    w->String(fk.column);
    w->String(fk.parent_table);
    w->String(fk.parent_column);
    w->U8(static_cast<uint8_t>(fk.on_delete));
  }
  w->U32(static_cast<uint32_t>(ts.indexes().size()));
  for (const IndexDef& idx : ts.indexes()) {
    w->String(idx.column);
  }
}

StatusOr<TableSchema> DeserializeTableSchema(sql::ByteReader* r) {
  ASSIGN_OR_RETURN(std::string name, r->String());
  TableSchema ts(name);
  ASSIGN_OR_RETURN(uint32_t num_cols, r->U32());
  for (uint32_t i = 0; i < num_cols; ++i) {
    ASSIGN_OR_RETURN(ColumnDef col, DeserializeColumnDef(r));
    ts.AddColumn(std::move(col));
  }
  ASSIGN_OR_RETURN(uint32_t num_pk, r->U32());
  std::vector<std::string> pk;
  for (uint32_t i = 0; i < num_pk; ++i) {
    ASSIGN_OR_RETURN(std::string col, r->String());
    pk.push_back(std::move(col));
  }
  ts.SetPrimaryKey(std::move(pk));
  ASSIGN_OR_RETURN(uint32_t num_fks, r->U32());
  for (uint32_t i = 0; i < num_fks; ++i) {
    ForeignKeyDef fk;
    ASSIGN_OR_RETURN(fk.column, r->String());
    ASSIGN_OR_RETURN(fk.parent_table, r->String());
    ASSIGN_OR_RETURN(fk.parent_column, r->String());
    ASSIGN_OR_RETURN(uint8_t action, r->U8());
    if (action > static_cast<uint8_t>(FkAction::kSetNull)) {
      return InvalidArgument("bad FK action in database image");
    }
    fk.on_delete = static_cast<FkAction>(action);
    ts.AddForeignKey(std::move(fk));
  }
  ASSIGN_OR_RETURN(uint32_t num_idx, r->U32());
  for (uint32_t i = 0; i < num_idx; ++i) {
    ASSIGN_OR_RETURN(std::string col, r->String());
    ts.AddIndex(std::move(col));
  }
  return ts;
}

namespace {

// The version-independent image body: table schemas, then per table the
// auto-increment counter and rows.
std::vector<uint8_t> SerializeBody(const Database& db) {
  sql::ByteWriter w;
  const Schema& schema = db.schema();
  w.U32(static_cast<uint32_t>(schema.num_tables()));
  for (const TableSchema& ts : schema.tables()) {
    SerializeTableSchema(&w, ts);
  }
  for (const TableSchema& ts : schema.tables()) {
    const Table* t = db.FindTable(ts.name());
    w.U64(static_cast<uint64_t>(t->PeekAutoIncrement() - 1));
    w.U64(t->num_rows());
    t->Scan([&w](RowId id, const Row& row) {
      w.U64(id);
      w.U32(static_cast<uint32_t>(row.size()));
      for (const sql::Value& v : row) {
        w.Value(v);
      }
    });
  }
  return w.Take();
}

StatusOr<std::unique_ptr<Database>> DeserializeBody(sql::ByteReader* r) {
  auto db = std::make_unique<Database>();
  ASSIGN_OR_RETURN(uint32_t num_tables, r->U32());
  std::vector<std::string> table_order;
  for (uint32_t i = 0; i < num_tables; ++i) {
    ASSIGN_OR_RETURN(TableSchema ts, DeserializeTableSchema(r));
    table_order.push_back(ts.name());
    RETURN_IF_ERROR(db->CreateTable(std::move(ts)));
  }
  RETURN_IF_ERROR(db->schema().Validate());

  for (const std::string& table : table_order) {
    ASSIGN_OR_RETURN(uint64_t auto_counter, r->U64());
    ASSIGN_OR_RETURN(uint64_t num_rows, r->U64());
    for (uint64_t i = 0; i < num_rows; ++i) {
      ASSIGN_OR_RETURN(uint64_t id, r->U64());
      ASSIGN_OR_RETURN(uint32_t width, r->U32());
      Row row;
      row.reserve(width);
      for (uint32_t c = 0; c < width; ++c) {
        ASSIGN_OR_RETURN(sql::Value v, r->Value());
        row.push_back(std::move(v));
      }
      // FK checks deferred: tables load in image order, and rows may
      // forward-reference (self-referencing FKs). Integrity is audited once
      // below.
      RETURN_IF_ERROR(db->BulkLoadRow(table, id, std::move(row)));
    }
    db->EnsureAutoCounterAtLeast(table, static_cast<int64_t>(auto_counter));
  }
  if (!r->AtEnd()) {
    return InvalidArgument("trailing bytes in database image");
  }
  RETURN_IF_ERROR(db->CheckIntegrity());
  return db;
}

}  // namespace

std::vector<uint8_t> SerializeDatabase(const Database& db) {
  std::vector<uint8_t> body = SerializeBody(db);
  sql::ByteWriter w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(Crc32(body));
  w.Bytes(body.data(), body.size());
  return w.Take();
}

StatusOr<std::unique_ptr<Database>> DeserializeDatabase(const std::vector<uint8_t>& wire) {
  sql::ByteReader r(wire);
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) {
    return InvalidArgument("not a database image (bad magic)");
  }
  ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version == kVersion) {
    ASSIGN_OR_RETURN(uint32_t expected_crc, r.U32());
    // Everything after the CRC field is the body; checksum before parsing so
    // corruption fails fast with a precise diagnosis.
    constexpr size_t kBodyOffset = 12;  // magic + version + crc
    uint32_t actual_crc = Crc32(wire.data() + kBodyOffset, wire.size() - kBodyOffset);
    if (actual_crc != expected_crc) {
      return InvalidArgument(
          StrFormat("database image checksum mismatch (stored %08x, computed %08x)",
                    expected_crc, actual_crc));
    }
  } else if (version != kLegacyVersion) {
    return InvalidArgument(StrFormat("unsupported database image version %u", version));
  }
  return DeserializeBody(&r);
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  EDNA_FAIL_POINT(failpoints::kStorageSave);
  std::vector<uint8_t> wire = SerializeDatabase(db);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return FailedPrecondition("cannot open \"" + path + "\" for writing");
  }
  size_t written = std::fwrite(wire.data(), 1, wire.size(), f);
  int close_rc = std::fclose(f);
  if (written != wire.size() || close_rc != 0) {
    return Internal("short write to \"" + path + "\"");
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<Database>> LoadDatabaseFromFile(const std::string& path) {
  EDNA_FAIL_POINT(failpoints::kStorageLoad);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("no database image at \"" + path + "\"");
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Internal("cannot stat \"" + path + "\"");
  }
  std::vector<uint8_t> wire(static_cast<size_t>(size));
  size_t got = std::fread(wire.data(), 1, wire.size(), f);
  std::fclose(f);
  if (got != wire.size()) {
    return Internal(StrFormat("short read from \"%s\" (%zu of %zu bytes)", path.c_str(),
                              got, wire.size()));
  }
  StatusOr<std::unique_ptr<Database>> db = DeserializeDatabase(wire);
  if (!db.ok() && db.status().code() == StatusCode::kInvalidArgument) {
    return InvalidArgument("corrupt database image \"" + path +
                           "\": " + db.status().message());
  }
  return db;
}

}  // namespace edna::db
