#include "src/sql/value.h"

#include <cassert>
#include <cmath>
#include <ostream>

#include "src/common/strings.h"

namespace edna::sql {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBlob:
      return "BLOB";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kBool;
    case 4:
      return ValueType::kString;
    case 5:
      return ValueType::kBlob;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt() const {
  assert(is_int());
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (is_int()) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  if (is_bool()) {
    return std::get<bool>(data_) ? 1.0 : 0.0;
  }
  assert(is_double());
  return std::get<double>(data_);
}

bool Value::AsBool() const {
  assert(is_bool());
  return std::get<bool>(data_);
}

const std::string& Value::AsString() const {
  assert(is_string());
  return std::get<std::string>(data_);
}

const std::vector<uint8_t>& Value::AsBlob() const {
  assert(is_blob());
  return std::get<std::vector<uint8_t>>(data_);
}

StatusOr<double> Value::ToNumber() const {
  if (is_numeric()) {
    return AsDouble();
  }
  return InvalidArgument(std::string("value is not numeric: ") + ToSqlString());
}

std::string Value::ToSqlString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      std::string s = StrFormat("%.17g", std::get<double>(data_));
      // Make integral doubles visibly doubles.
      if (s.find_first_of(".eEn") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kBool:
      return std::get<bool>(data_) ? "TRUE" : "FALSE";
    case ValueType::kString:
      return SqlQuote(std::get<std::string>(data_));
    case ValueType::kBlob:
      return "x'" + BytesToHex(std::get<std::vector<uint8_t>>(data_)) + "'";
  }
  return "?";
}

namespace {
// Type class for the cross-type total order: NULL < numeric < string < blob.
int TypeClass(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kBool:
      return 1;
    case ValueType::kString:
      return 2;
    case ValueType::kBlob:
      return 3;
  }
  return 4;
}

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) {
    return -1;
  }
  if (b < a) {
    return 1;
  }
  return 0;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ca = TypeClass(type());
  int cb = TypeClass(other.type());
  if (ca != cb) {
    return ca < cb ? -1 : 1;
  }
  switch (ca) {
    case 0:  // both NULL
      return 0;
    case 1: {  // numeric family: compare by value; exact int path when possible
      if (is_int() && other.is_int()) {
        return Cmp3(AsInt(), other.AsInt());
      }
      return Cmp3(AsDouble(), other.AsDouble());
    }
    case 2:
      return Cmp3(AsString(), other.AsString());
    case 3:
      return Cmp3(AsBlob(), other.AsBlob());
  }
  return 0;
}

uint64_t Value::Hash() const {
  // FNV-1a over a canonical byte rendering so Compare-equal values collide.
  auto mix = [](uint64_t h, const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  };
  uint64_t h = 0xcbf29ce484222325ULL;
  int cls = TypeClass(type());
  h = mix(h, &cls, sizeof(cls));
  switch (cls) {
    case 0:
      break;
    case 1: {
      // Canonicalize numerics: integral values hash as int64, others as the
      // double bit pattern. Guarantees Int(1), Bool(true), Double(1.0) agree.
      double d = AsDouble();
      if (std::floor(d) == d && std::abs(d) < 9.2e18) {
        int64_t i = static_cast<int64_t>(d);
        h = mix(h, &i, sizeof(i));
      } else {
        h = mix(h, &d, sizeof(d));
      }
      break;
    }
    case 2:
      h = mix(h, AsString().data(), AsString().size());
      break;
    case 3:
      h = mix(h, AsBlob().data(), AsBlob().size());
      break;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToSqlString();
}

}  // namespace edna::sql
