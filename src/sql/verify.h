// Static checker for compiled predicate programs (compile.h).
//
// A CompiledPredicate is trusted on the disguise hot path: the planner
// caches it and every matching row runs it. VerifyProgram() validates the
// program shape without executing it — register bounds, per-op arity and
// operand kinds, forward-only jump targets, define-before-use, and the
// three-valued-logic protocol (short-circuit jumps and Kleene combines must
// consume truth-coerced registers, the IN protocol's saw-null flag must flow
// through kInInit/kInStep). DecompileProgram() reconstructs the source AST
// from the instruction stream, which lets callers that link the symbolic
// predicate engine (src/analysis) prove a program equivalent to the
// expression it was compiled from; tests and `disguisectl verify` do this
// exhaustively, and Database::GetPlan runs VerifyProgram at plan-cache
// insert in debug builds.
#ifndef SRC_SQL_VERIFY_H_
#define SRC_SQL_VERIFY_H_

#include <cstddef>
#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/sql/ast.h"
#include "src/sql/compile.h"

namespace edna::sql {

struct ProgramCheckOptions {
  // When >= 0, kColumn ordinals must be < row_width (the table's column
  // count); negative skips the bound check.
  int row_width = -1;
};

// Validates well-formedness of the instruction stream. Returns the first
// problem found as InvalidArgument, naming the instruction index.
Status VerifyProgram(const CompiledPredicate& program,
                     const ProgramCheckOptions& options = {});

// Resolves a kColumn ordinal back to a column name for decompilation.
using ColumnNamer = std::function<StatusOr<std::string>(size_t ordinal)>;

// Reconstructs the expression a program computes by symbolically executing
// the instruction stream (jumps become the AND/OR/IN structure they encode).
// Fails on malformed programs and on programs with deferred binding errors
// (kFail): those have no well-defined source expression.
StatusOr<ExprPtr> DecompileProgram(const CompiledPredicate& program,
                                   const ColumnNamer& namer);

}  // namespace edna::sql

#endif  // SRC_SQL_VERIFY_H_
