#include "src/sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace edna::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "<end>";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kParameter:
      return "parameter";
    case TokenKind::kIntLiteral:
      return "integer";
    case TokenKind::kDoubleLiteral:
      return "double";
    case TokenKind::kStringLiteral:
      return "string";
    case TokenKind::kBlobLiteral:
      return "blob";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kConcat:
      return "||";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kIs:
      return "IS";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kLike:
      return "LIKE";
    case TokenKind::kBetween:
      return "BETWEEN";
    case TokenKind::kNull:
      return "NULL";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

StatusOr<TokenKind> KeywordKind(std::string_view word) {
  struct Entry {
    const char* name;
    TokenKind kind;
  };
  static const Entry kKeywords[] = {
      {"and", TokenKind::kAnd},       {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},       {"is", TokenKind::kIs},
      {"in", TokenKind::kIn},         {"like", TokenKind::kLike},
      {"between", TokenKind::kBetween}, {"null", TokenKind::kNull},
      {"true", TokenKind::kTrue},     {"false", TokenKind::kFalse},
  };
  for (const Entry& e : kKeywords) {
    if (EqualsIgnoreCase(word, e.name)) {
      return e.kind;
    }
  }
  return NotFound("not a keyword");
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenKind kind, size_t offset, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;

    // Identifiers, keywords, and x'..' blob literals.
    if (IsIdentStart(c)) {
      // Blob literal: x'hex' / X'hex'.
      if ((c == 'x' || c == 'X') && i + 1 < n && input[i + 1] == '\'') {
        size_t j = i + 2;
        while (j < n && input[j] != '\'') {
          ++j;
        }
        if (j >= n) {
          return InvalidArgument(StrFormat("unterminated blob literal at offset %zu", start));
        }
        std::string hex(input.substr(i + 2, j - i - 2));
        std::vector<uint8_t> bytes;
        if (!HexToBytes(hex, &bytes)) {
          return InvalidArgument(StrFormat("bad blob literal at offset %zu", start));
        }
        push(TokenKind::kBlobLiteral, start, std::move(hex));
        i = j + 1;
        continue;
      }
      size_t j = i + 1;
      while (j < n && IsIdentCont(input[j])) {
        ++j;
      }
      std::string word(input.substr(i, j - i));
      auto kw = KeywordKind(word);
      if (kw.ok()) {
        push(*kw, start);
      } else {
        push(TokenKind::kIdentifier, start, std::move(word));
      }
      i = j;
      continue;
    }

    // Quoted identifiers: "col" or `col` (SQL / MySQL styles).
    if (c == '"' || c == '`') {
      char quote = c;
      size_t j = i + 1;
      std::string name;
      while (j < n) {
        if (input[j] == quote) {
          if (j + 1 < n && input[j + 1] == quote) {  // doubled quote escape
            name.push_back(quote);
            j += 2;
            continue;
          }
          break;
        }
        name.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return InvalidArgument(StrFormat("unterminated quoted identifier at offset %zu", start));
      }
      push(TokenKind::kIdentifier, start, std::move(name));
      i = j + 1;
      continue;
    }

    // Parameters: $NAME.
    if (c == '$') {
      size_t j = i + 1;
      while (j < n && IsIdentCont(input[j])) {
        ++j;
      }
      if (j == i + 1) {
        return InvalidArgument(StrFormat("bare '$' at offset %zu", start));
      }
      push(TokenKind::kParameter, start, std::string(input.substr(i + 1, j - i - 1)));
      i = j;
      continue;
    }

    // Numeric literals.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < n && input[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) {
          ++k;
        }
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
            ++j;
          }
        }
      }
      std::string text(input.substr(i, j - i));
      Token t;
      t.offset = start;
      t.text = text;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kIntLiteral;
        errno = 0;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return InvalidArgument(StrFormat("integer literal out of range at offset %zu", start));
        }
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }

    // String literals with '' escaping.
    if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return InvalidArgument(StrFormat("unterminated string literal at offset %zu", start));
      }
      push(TokenKind::kStringLiteral, start, std::move(text));
      i = j + 1;
      continue;
    }

    // Operators / punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('<', '=')) {
      push(TokenKind::kLe, start);
      i += 2;
    } else if (two('>', '=')) {
      push(TokenKind::kGe, start);
      i += 2;
    } else if (two('<', '>')) {
      push(TokenKind::kNe, start);
      i += 2;
    } else if (two('!', '=')) {
      push(TokenKind::kNe, start);
      i += 2;
    } else if (two('=', '=')) {
      push(TokenKind::kEq, start);
      i += 2;
    } else if (two('|', '|')) {
      push(TokenKind::kConcat, start);
      i += 2;
    } else {
      switch (c) {
        case '(':
          push(TokenKind::kLParen, start);
          break;
        case ')':
          push(TokenKind::kRParen, start);
          break;
        case ',':
          push(TokenKind::kComma, start);
          break;
        case '.':
          push(TokenKind::kDot, start);
          break;
        case '+':
          push(TokenKind::kPlus, start);
          break;
        case '-':
          push(TokenKind::kMinus, start);
          break;
        case '*':
          push(TokenKind::kStar, start);
          break;
        case '/':
          push(TokenKind::kSlash, start);
          break;
        case '%':
          push(TokenKind::kPercent, start);
          break;
        case '=':
          push(TokenKind::kEq, start);
          break;
        case '<':
          push(TokenKind::kLt, start);
          break;
        case '>':
          push(TokenKind::kGt, start);
          break;
        default:
          return InvalidArgument(
              StrFormat("unexpected character '%c' at offset %zu", c, start));
      }
      ++i;
    }
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace edna::sql
