// Compiled predicates: one-time lowering of a parsed SQL expression into a
// flat register program bound to a fixed column layout.
//
// The tree-walking interpreter in eval.cc resolves every column reference
// through a string-keyed std::function per row and re-discovers the
// expression shape on every evaluation. On the disguise hot path the same
// predicate runs against thousands of rows, so Compile() does the work once:
// column refs bind to ordinals, params bind to slots (filled per statement,
// not per row), and the AST lowers to a linear instruction sequence with
// explicit jumps for the interpreter's short-circuit points. Kleene
// three-valued logic, NULL propagation, evaluation order, and every error
// message are preserved exactly — eval.cc's kernels (CompareValues and
// friends) are shared, and tests/sql_compile_test.cc fuzzes the two
// evaluators against each other.
//
// Binding failures (unknown column) do NOT fail Compile: the interpreter
// only raises them if the reference is actually evaluated (short-circuit can
// skip it), so they lower to a deferred-error instruction instead.
#ifndef SRC_SQL_COMPILE_H_
#define SRC_SQL_COMPILE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/sql/ast.h"
#include "src/sql/eval.h"
#include "src/sql/value.h"

namespace edna::sql {

// Lane count of one evaluation chunk: compiled programs can run one
// instruction across up to this many rows at a time (EvalChunk/MatchChunk
// below), and the columnar sidecar in src/db slices tables into slabs of
// this many row slots.
constexpr size_t kChunkLanes = 1024;
constexpr size_t kChunkWords = kChunkLanes / 64;

// Resolves an (optionally table-qualified) column reference to its ordinal
// in the row layout the program will run against. A non-OK status is
// captured and re-raised lazily at evaluation time.
using ColumnBinder =
    std::function<StatusOr<size_t>(const std::string& table, const std::string& column)>;

// Parameter values resolved to the program's slots, once per statement.
// Missing params are legal at bind time; evaluating one raises the
// interpreter's "unbound parameter" error.
class BoundParams {
 public:
  bool present(size_t slot) const { return present_[slot]; }
  const Value& value(size_t slot) const { return values_[slot]; }

 private:
  friend class CompiledPredicate;
  std::vector<Value> values_;
  std::vector<uint8_t> present_;
};

// Reusable register file so steady-state row evaluation allocates nothing.
// One per evaluating thread; pass the same instance across rows.
struct EvalScratch {
  std::vector<Value> regs;
};

// One chunk of rows for batched evaluation, in either of two layouts:
//   - row-pointer form (`rows`): rows[lane] points at `row_width` positional
//     Values — how probe candidates are gathered out of row storage;
//   - columnar form (`columns`): columns[ord] points at `lanes` Values of
//     one column — how the sidecar's column slabs are scanned in place.
// `active`, when set, is a lane bitmap restricting evaluation to set lanes
// (a slab's present bitmap: slots whose row exists). Inactive lanes are
// never read, never evaluated, and never match.
struct RowChunk {
  size_t lanes = 0;
  size_t row_width = 0;
  const Value* const* rows = nullptr;
  const Value* const* columns = nullptr;
  const uint64_t* active = nullptr;

  const Value& At(size_t lane, size_t col) const {
    return rows != nullptr ? rows[lane][col] : columns[col][lane];
  }
};

// Reusable per-thread state for chunked evaluation: the vectorized register
// file (truth-class registers as value/null bitmaps, everything else as a
// Value vector per register), the selection vectors, and the outputs of the
// last MatchChunk call. Steady state allocates nothing.
struct ChunkScratch {
  struct TruthBits {
    std::vector<uint64_t> truth;  // lane bit: value is TRUE
    std::vector<uint64_t> null;   // lane bit: value is UNKNOWN/Null
  };
  std::vector<std::vector<Value>> vals;  // value-class register lanes
  std::vector<TruthBits> bits;           // truth-class register lanes
  std::vector<uint32_t> sel;             // lanes executing the current insn
  std::vector<std::vector<uint32_t>> pending;  // lanes parked at a jump target
  std::vector<std::pair<uint32_t, Status>> lane_errors;

  // MatchChunk outputs: matching lanes, lanes evaluated, instruction
  // dispatches with a non-empty selection (feeds the db vector counters).
  std::array<uint64_t, kChunkWords> match_bits{};
  uint64_t lanes_evaluated = 0;
  uint64_t match_count = 0;
  uint64_t insns_executed = 0;
};

class CompiledPredicate {
 public:
  // The instruction set is public: the static program checker
  // (src/sql/verify.h) validates it and decompiles programs back to ASTs,
  // and tests hand-build malformed programs to exercise the checker.
  enum class Op : uint8_t {
    kConst,        // regs[dst] = imm
    kColumn,       // regs[dst] = row[a]
    kParam,        // regs[dst] = params[a]; error if unbound
    kFail,         // raise `error` (deferred binding failure)
    kNot,          // regs[dst] = Kleene NOT truth(regs[a])
    kNeg,          // regs[dst] = -regs[a]
    kPlusOp,       // regs[dst] = +regs[a] (numeric check only)
    kCompare,      // regs[dst] = CompareValues(bop, regs[a], regs[b])
    kArith,        // regs[dst] = ArithmeticValues(bop, regs[a], regs[b])
    kConcatOp,     // regs[dst] = regs[a] || regs[b]
    kTruth,        // regs[dst] = TruthToValue(TruthOf(regs[a]))
    kJumpIfFalse,  // if regs[a] == FALSE: pc = target  (AND short-circuit)
    kJumpIfTrue,   // if regs[a] == TRUE: pc = target   (OR short-circuit)
    kAndCombine,   // regs[dst] = Kleene min(regs[a], regs[b]) (truth-encoded)
    kOrCombine,    // regs[dst] = Kleene max(regs[a], regs[b])
    kIsNullOp,     // regs[dst] = Bool(regs[a] is null, xor negated)
    kInInit,       // needle regs[a] null -> regs[dst] = Null, pc = target;
                   // else regs[b] (saw_null flag) = false
    kInStep,       // item regs[c]: null -> regs[b] = true; == needle regs[a]
                   // -> regs[dst] = Bool(!negated), pc = target
    kInFinish,     // regs[dst] = regs[b] ? Null : Bool(negated)
    kBetweenOp,    // regs[dst] = regs[a] BETWEEN regs[b] AND regs[c]
    kLikeOp,       // regs[dst] = regs[a] LIKE regs[b]
    kCall,         // regs[dst] = CallScalarFunction(text, regs[args...])
  };

  struct Insn {
    Op op = Op::kConst;
    BinaryOp bop = BinaryOp::kEq;
    bool negated = false;
    int dst = -1;
    int a = -1;
    int b = -1;
    int c = -1;
    int target = -1;        // jump destination (instruction index)
    Value imm;              // kConst
    std::string text;       // param / function name
    Status error = OkStatus();  // kFail payload
    std::vector<int> args;  // kCall argument registers
  };

  // Lowers `expr` against `binder`. Only internal inconsistencies fail;
  // unknown columns become deferred errors (see file comment).
  static StatusOr<CompiledPredicate> Compile(const Expr& expr, const ColumnBinder& binder);

  CompiledPredicate(CompiledPredicate&&) = default;
  CompiledPredicate& operator=(CompiledPredicate&&) = default;

  // Resolves `params` to slots. Cheap; do once per statement.
  BoundParams BindParams(const ParamMap& params) const;

  // Evaluates against one row (positional values, `row_width` columns).
  // Result may be Null (UNKNOWN).
  StatusOr<Value> EvalRow(const Value* row, size_t row_width, const BoundParams& params,
                          EvalScratch* scratch) const;

  // Predicate form: NULL and FALSE are "no match", matching
  // sql::EvaluatePredicate.
  StatusOr<bool> Matches(const Value* row, size_t row_width, const BoundParams& params,
                         EvalScratch* scratch) const;

  // Batched evaluation: runs the program one INSTRUCTION across the whole
  // chunk instead of one ROW through the whole program. Short-circuit jumps
  // become selection-vector splits (jumping lanes park at the forward
  // target; all jumps Compile() emits are forward), Kleene AND/OR combine
  // truth bitmaps word-wise when every lane is live, and per-lane semantics
  // — including evaluation order within a lane and every error message —
  // match EvalRow exactly. A lane that raises is retired with its error;
  // because row-at-a-time evaluation surfaces the first row's error, the
  // lowest errored lane's status is the chunk's status.
  //
  // On OK, scratch->match_bits holds the lanes where the predicate is TRUE
  // (NULL/FALSE filter out, as in Matches). On error, match bits are
  // meaningless. scratch->lanes_evaluated / match_count / insns_executed
  // describe the run either way.
  Status MatchChunk(const RowChunk& chunk, const BoundParams& params,
                    ChunkScratch* scratch) const;

  // Differential-oracle form: per-lane value-or-error, element i holding
  // exactly what EvalRow would return for row i. Lanes masked off by
  // chunk.active are left as OK/Null.
  void EvalChunk(const RowChunk& chunk, const BoundParams& params, ChunkScratch* scratch,
                 std::vector<StatusOr<Value>>* out) const;

  // Sorted, de-duplicated column ordinals the program reads (kColumn), so
  // planners can materialize only the referenced columns of a chunk.
  std::vector<size_t> ReferencedColumns() const;

  size_t num_instructions() const { return code_.size(); }
  size_t num_registers() const { return num_regs_; }
  const std::vector<std::string>& param_names() const { return param_names_; }

  // Program introspection for verify.h and tests.
  const std::vector<Insn>& code() const { return code_; }
  int result_reg() const { return result_reg_; }

  // Test-only constructor: assembles a program directly so the checker's
  // negative cases can exercise malformed shapes Compile() never emits.
  static CompiledPredicate AssembleForTest(std::vector<Insn> code, size_t num_regs,
                                           int result_reg,
                                           std::vector<std::string> param_names);

 private:
  class Builder;

  CompiledPredicate() = default;

  // Marks registers whose every writer is a truth-encoding op (kTruth,
  // kAndCombine, kOrCombine): those live as bitmaps in ChunkScratch.
  void ClassifyRegisters();
  void RunChunk(const RowChunk& chunk, const BoundParams& params,
                ChunkScratch* scratch) const;

  std::vector<Insn> code_;
  size_t num_regs_ = 0;
  int result_reg_ = -1;
  std::vector<std::string> param_names_;  // slot -> name
  std::vector<uint8_t> truth_class_;      // reg -> lives as truth bitmaps
};

}  // namespace edna::sql

#endif  // SRC_SQL_COMPILE_H_
