#include "src/sql/compile.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"

namespace edna::sql {

// --- Compilation -------------------------------------------------------------

class CompiledPredicate::Builder {
 public:
  explicit Builder(const ColumnBinder& binder) : binder_(binder) {}

  StatusOr<int> CompileExpr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral: {
        int r = Alloc();
        Insn in;
        in.op = Op::kConst;
        in.dst = r;
        in.imm = e.literal();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kColumnRef: {
        int r = Alloc();
        StatusOr<size_t> ordinal = binder_(e.table(), e.column());
        if (ordinal.ok()) {
          Insn in;
        in.op = Op::kColumn;
          in.dst = r;
          in.a = static_cast<int>(*ordinal);
          Emit(std::move(in));
        } else {
          // Deferred: the interpreter only errors if the reference is
          // actually evaluated (short-circuit may skip it). dst records the
          // register the value would have landed in — kFail "defines" it by
          // raising, which the static checker (verify.h) relies on.
          Insn in;
        in.op = Op::kFail;
          in.dst = r;
          in.error = ordinal.status();
          Emit(std::move(in));
        }
        return r;
      }
      case ExprKind::kParam: {
        int r = Alloc();
        Insn in;
        in.op = Op::kParam;
        in.dst = r;
        in.a = static_cast<int>(InternParam(e.param_name()));
        in.text = e.param_name();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kUnary: {
        ASSIGN_OR_RETURN(int operand, CompileExpr(*e.children()[0]));
        int r = Alloc();
        Insn in;
        in.op = Op::kNot;
        switch (e.unary_op()) {
          case UnaryOp::kNot:
            in.op = Op::kNot;
            break;
          case UnaryOp::kNeg:
            in.op = Op::kNeg;
            break;
          case UnaryOp::kPlus:
            in.op = Op::kPlusOp;
            break;
        }
        in.dst = r;
        in.a = operand;
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kIsNull: {
        ASSIGN_OR_RETURN(int operand, CompileExpr(*e.children()[0]));
        int r = Alloc();
        Insn in;
        in.op = Op::kIsNullOp;
        in.dst = r;
        in.a = operand;
        in.negated = e.negated();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kIn:
        return CompileIn(e);
      case ExprKind::kBetween: {
        ASSIGN_OR_RETURN(int v, CompileExpr(*e.children()[0]));
        ASSIGN_OR_RETURN(int lo, CompileExpr(*e.children()[1]));
        ASSIGN_OR_RETURN(int hi, CompileExpr(*e.children()[2]));
        int r = Alloc();
        Insn in;
        in.op = Op::kBetweenOp;
        in.dst = r;
        in.a = v;
        in.b = lo;
        in.c = hi;
        in.negated = e.negated();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kLike: {
        ASSIGN_OR_RETURN(int v, CompileExpr(*e.children()[0]));
        ASSIGN_OR_RETURN(int pat, CompileExpr(*e.children()[1]));
        int r = Alloc();
        Insn in;
        in.op = Op::kLikeOp;
        in.dst = r;
        in.a = v;
        in.b = pat;
        in.negated = e.negated();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kCall: {
        std::vector<int> args;
        args.reserve(e.children().size());
        for (const ExprPtr& c : e.children()) {
          ASSIGN_OR_RETURN(int a, CompileExpr(*c));
          args.push_back(a);
        }
        int r = Alloc();
        Insn in;
        in.op = Op::kCall;
        in.dst = r;
        in.text = e.function();
        in.args = std::move(args);
        Emit(std::move(in));
        return r;
      }
    }
    return Internal("bad expression kind");
  }

  std::vector<Insn> TakeCode() { return std::move(code_); }
  size_t num_regs() const { return next_reg_; }
  std::vector<std::string> TakeParams() { return std::move(param_names_); }

 private:
  StatusOr<int> CompileBinary(const Expr& e) {
    BinaryOp op = e.binary_op();
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      // Mirrors the interpreter: evaluate lhs, coerce to truth (may error),
      // short-circuit on FALSE (AND) / TRUE (OR), else evaluate rhs and
      // Kleene-combine. The truth encoding (Bool/Null) doubles as the
      // result value, exactly like TruthToValue.
      ASSIGN_OR_RETURN(int lhs, CompileExpr(*e.children()[0]));
      int r = Alloc();
      {
        Insn in;
        in.op = Op::kTruth;
        in.dst = r;
        in.a = lhs;
        Emit(std::move(in));
      }
      size_t jump_at = code_.size();
      {
        Insn in;
        in.op = op == BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue;
        in.a = r;
        Emit(std::move(in));
      }
      ASSIGN_OR_RETURN(int rhs, CompileExpr(*e.children()[1]));
      int rt = Alloc();
      {
        Insn in;
        in.op = Op::kTruth;
        in.dst = rt;
        in.a = rhs;
        Emit(std::move(in));
      }
      {
        Insn in;
        in.op = op == BinaryOp::kAnd ? Op::kAndCombine : Op::kOrCombine;
        in.dst = r;
        in.a = r;
        in.b = rt;
        Emit(std::move(in));
      }
      code_[jump_at].target = static_cast<int>(code_.size());
      return r;
    }

    ASSIGN_OR_RETURN(int a, CompileExpr(*e.children()[0]));
    ASSIGN_OR_RETURN(int b, CompileExpr(*e.children()[1]));
    int r = Alloc();
    Insn in;
        in.op = Op::kCompare;
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        in.op = Op::kArith;
        break;
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        in.op = Op::kCompare;
        break;
      case BinaryOp::kConcat:
        in.op = Op::kConcatOp;
        break;
      default:
        return Internal("bad binary op");
    }
    in.bop = op;
    in.dst = r;
    in.a = a;
    in.b = b;
    Emit(std::move(in));
    return r;
  }

  StatusOr<int> CompileIn(const Expr& e) {
    // NULL needle skips the whole list (items unevaluated), matching the
    // interpreter's early return; a matching item exits early too.
    ASSIGN_OR_RETURN(int needle, CompileExpr(*e.children()[0]));
    int result = Alloc();
    int saw_null = Alloc();
    std::vector<size_t> exits;
    exits.push_back(code_.size());
    {
      Insn in;
        in.op = Op::kInInit;
      in.dst = result;
      in.a = needle;
      in.b = saw_null;
      Emit(std::move(in));
    }
    for (size_t i = 1; i < e.children().size(); ++i) {
      ASSIGN_OR_RETURN(int item, CompileExpr(*e.children()[i]));
      exits.push_back(code_.size());
      Insn in;
        in.op = Op::kInStep;
      in.dst = result;
      in.a = needle;
      in.b = saw_null;
      in.c = item;
      in.negated = e.negated();
      Emit(std::move(in));
    }
    {
      Insn in;
        in.op = Op::kInFinish;
      in.dst = result;
      in.b = saw_null;
      in.negated = e.negated();
      Emit(std::move(in));
    }
    for (size_t at : exits) {
      code_[at].target = static_cast<int>(code_.size());
    }
    return result;
  }

  int Alloc() { return static_cast<int>(next_reg_++); }
  void Emit(Insn in) { code_.push_back(std::move(in)); }

  size_t InternParam(const std::string& name) {
    for (size_t i = 0; i < param_names_.size(); ++i) {
      if (param_names_[i] == name) {
        return i;
      }
    }
    param_names_.push_back(name);
    return param_names_.size() - 1;
  }

  const ColumnBinder& binder_;
  std::vector<Insn> code_;
  size_t next_reg_ = 0;
  std::vector<std::string> param_names_;
};

StatusOr<CompiledPredicate> CompiledPredicate::Compile(const Expr& expr,
                                                       const ColumnBinder& binder) {
  if (!binder) {
    return InvalidArgument("CompiledPredicate requires a column binder");
  }
  Builder builder(binder);
  ASSIGN_OR_RETURN(int result, builder.CompileExpr(expr));
  CompiledPredicate p;
  p.code_ = builder.TakeCode();
  p.num_regs_ = builder.num_regs();
  p.result_reg_ = result;
  p.param_names_ = builder.TakeParams();
  p.ClassifyRegisters();
  return p;
}

CompiledPredicate CompiledPredicate::AssembleForTest(std::vector<Insn> code,
                                                     size_t num_regs, int result_reg,
                                                     std::vector<std::string> param_names) {
  CompiledPredicate p;
  p.code_ = std::move(code);
  p.num_regs_ = num_regs;
  p.result_reg_ = result_reg;
  p.param_names_ = std::move(param_names);
  p.ClassifyRegisters();
  return p;
}

void CompiledPredicate::ClassifyRegisters() {
  // A register is truth-class iff it is written at least once and every
  // writer emits a truth-encoded value (Bool or Null). Such registers carry
  // only three states per lane, so the chunked evaluator stores them as two
  // bitmaps and the Kleene combines become word-wise logic. (kFail "writes"
  // dst by raising, so it never constrains the class.)
  truth_class_.assign(num_regs_, 0);
  std::vector<uint8_t> written(num_regs_, 0);
  std::vector<uint8_t> value_written(num_regs_, 0);
  for (const Insn& in : code_) {
    if (in.dst < 0 || in.op == Op::kFail) {
      continue;
    }
    bool truth_write = in.op == Op::kTruth || in.op == Op::kAndCombine ||
                       in.op == Op::kOrCombine;
    written[in.dst] = 1;
    if (!truth_write) {
      value_written[in.dst] = 1;
    }
    // kInInit/kInStep also write their saw_null flag register (b).
    if ((in.op == Op::kInInit || in.op == Op::kInStep) && in.b >= 0) {
      written[in.b] = 1;
      value_written[in.b] = 1;
    }
  }
  for (size_t r = 0; r < num_regs_; ++r) {
    truth_class_[r] = written[r] && !value_written[r];
  }
}

std::vector<size_t> CompiledPredicate::ReferencedColumns() const {
  std::vector<size_t> cols;
  for (const Insn& in : code_) {
    if (in.op == Op::kColumn) {
      cols.push_back(static_cast<size_t>(in.a));
    }
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

// --- Execution ---------------------------------------------------------------

BoundParams CompiledPredicate::BindParams(const ParamMap& params) const {
  BoundParams bound;
  bound.values_.resize(param_names_.size());
  bound.present_.assign(param_names_.size(), 0);
  for (size_t i = 0; i < param_names_.size(); ++i) {
    auto it = params.find(param_names_[i]);
    if (it != params.end()) {
      bound.values_[i] = it->second;
      bound.present_[i] = 1;
    }
  }
  return bound;
}

StatusOr<Value> CompiledPredicate::EvalRow(const Value* row, size_t row_width,
                                           const BoundParams& params,
                                           EvalScratch* scratch) const {
  std::vector<Value>& regs = scratch->regs;
  if (regs.size() < num_regs_) {
    regs.resize(num_regs_);
  }
  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const Insn& in = code_[pc];
    switch (in.op) {
      case Op::kConst:
        regs[in.dst] = in.imm;
        break;
      case Op::kColumn:
        if (static_cast<size_t>(in.a) >= row_width) {
          return Internal(StrFormat("compiled predicate reads column %d of a %zu-wide row",
                                    in.a, row_width));
        }
        regs[in.dst] = row[in.a];
        break;
      case Op::kParam:
        if (!params.present(static_cast<size_t>(in.a))) {
          return InvalidArgument("unbound parameter $" + in.text);
        }
        regs[in.dst] = params.value(static_cast<size_t>(in.a));
        break;
      case Op::kFail:
        return in.error;
      case Op::kNot: {
        Status err = OkStatus();
        Truth t = TruthOf(regs[in.a], &err);
        RETURN_IF_ERROR(err);
        regs[in.dst] =
            t == Truth::kUnknown ? Value::Null() : Value::Bool(t == Truth::kFalse);
        break;
      }
      case Op::kNeg: {
        const Value& v = regs[in.a];
        if (v.is_null()) {
          regs[in.dst] = Value::Null();
        } else if (v.is_int()) {
          regs[in.dst] = Value::Int(-v.AsInt());
        } else {
          ASSIGN_OR_RETURN(double d, v.ToNumber());
          regs[in.dst] = Value::Double(-d);
        }
        break;
      }
      case Op::kPlusOp: {
        const Value& v = regs[in.a];
        if (v.is_null()) {
          regs[in.dst] = Value::Null();
        } else {
          RETURN_IF_ERROR(v.ToNumber().status());
          regs[in.dst] = v;
        }
        break;
      }
      case Op::kCompare: {
        ASSIGN_OR_RETURN(Value v, CompareValues(in.bop, regs[in.a], regs[in.b]));
        regs[in.dst] = std::move(v);
        break;
      }
      case Op::kArith: {
        ASSIGN_OR_RETURN(Value v, ArithmeticValues(in.bop, regs[in.a], regs[in.b]));
        regs[in.dst] = std::move(v);
        break;
      }
      case Op::kConcatOp: {
        const Value& a = regs[in.a];
        const Value& b = regs[in.b];
        if (a.is_null() || b.is_null()) {
          regs[in.dst] = Value::Null();
        } else {
          regs[in.dst] = Value::String(StringifyValue(a) + StringifyValue(b));
        }
        break;
      }
      case Op::kTruth: {
        Status err = OkStatus();
        Truth t = TruthOf(regs[in.a], &err);
        RETURN_IF_ERROR(err);
        regs[in.dst] = TruthToValue(t);
        break;
      }
      case Op::kJumpIfFalse:
        if (regs[in.a].is_bool() && !regs[in.a].AsBool()) {
          pc = static_cast<size_t>(in.target);
          continue;
        }
        break;
      case Op::kJumpIfTrue:
        if (regs[in.a].is_bool() && regs[in.a].AsBool()) {
          pc = static_cast<size_t>(in.target);
          continue;
        }
        break;
      case Op::kAndCombine:
      case Op::kOrCombine: {
        // Operands are truth-encoded (Bool/Null), so TruthOf cannot error.
        Status err = OkStatus();
        Truth a = TruthOf(regs[in.a], &err);
        Truth b = TruthOf(regs[in.b], &err);
        Truth r = in.op == Op::kAndCombine ? std::min(a, b) : std::max(a, b);
        regs[in.dst] = TruthToValue(r);
        break;
      }
      case Op::kIsNullOp: {
        bool is_null = regs[in.a].is_null();
        regs[in.dst] = Value::Bool(in.negated ? !is_null : is_null);
        break;
      }
      case Op::kInInit:
        if (regs[in.a].is_null()) {
          regs[in.dst] = Value::Null();
          pc = static_cast<size_t>(in.target);
          continue;
        }
        regs[in.b] = Value::Bool(false);
        break;
      case Op::kInStep: {
        const Value& item = regs[in.c];
        if (item.is_null()) {
          regs[in.b] = Value::Bool(true);
          break;
        }
        ASSIGN_OR_RETURN(Value eq, CompareValues(BinaryOp::kEq, regs[in.a], item));
        if (!eq.is_null() && eq.AsBool()) {
          regs[in.dst] = Value::Bool(!in.negated);
          pc = static_cast<size_t>(in.target);
          continue;
        }
        break;
      }
      case Op::kInFinish:
        if (regs[in.b].AsBool()) {
          regs[in.dst] = Value::Null();
        } else {
          regs[in.dst] = Value::Bool(in.negated);
        }
        break;
      case Op::kBetweenOp: {
        ASSIGN_OR_RETURN(Value ge, CompareValues(BinaryOp::kGe, regs[in.a], regs[in.b]));
        ASSIGN_OR_RETURN(Value le, CompareValues(BinaryOp::kLe, regs[in.a], regs[in.c]));
        Status err = OkStatus();
        Truth tg = TruthOf(ge, &err);
        RETURN_IF_ERROR(err);
        Truth tl = TruthOf(le, &err);
        RETURN_IF_ERROR(err);
        Truth both = std::min(tg, tl);  // Kleene AND
        if (in.negated) {
          regs[in.dst] = both == Truth::kUnknown ? Value::Null()
                                                 : Value::Bool(both == Truth::kFalse);
        } else {
          regs[in.dst] = TruthToValue(both);
        }
        break;
      }
      case Op::kLikeOp: {
        const Value& v = regs[in.a];
        const Value& pat = regs[in.b];
        if (v.is_null() || pat.is_null()) {
          regs[in.dst] = Value::Null();
        } else if (!v.is_string() || !pat.is_string()) {
          return InvalidArgument("LIKE requires string operands");
        } else {
          bool m = LikeMatch(v.AsString(), pat.AsString());
          regs[in.dst] = Value::Bool(in.negated ? !m : m);
        }
        break;
      }
      case Op::kCall: {
        std::vector<Value> args;
        args.reserve(in.args.size());
        for (int r : in.args) {
          args.push_back(regs[r]);
        }
        ASSIGN_OR_RETURN(Value v, CallScalarFunction(in.text, args));
        regs[in.dst] = std::move(v);
        break;
      }
    }
    ++pc;
  }
  return regs[result_reg_];
}

StatusOr<bool> CompiledPredicate::Matches(const Value* row, size_t row_width,
                                          const BoundParams& params,
                                          EvalScratch* scratch) const {
  ASSIGN_OR_RETURN(Value v, EvalRow(row, row_width, params, scratch));
  if (v.is_null()) {
    return false;  // UNKNOWN filters out, as in SQL WHERE
  }
  Status err = OkStatus();
  Truth t = TruthOf(v, &err);
  RETURN_IF_ERROR(err);
  return t == Truth::kTrue;
}

// --- Batched execution -------------------------------------------------------

namespace {

bool GetBit(const std::vector<uint64_t>& words, uint32_t lane) {
  return (words[lane >> 6] >> (lane & 63)) & 1;
}

void AssignBit(std::vector<uint64_t>* words, uint32_t lane, bool on) {
  uint64_t mask = uint64_t{1} << (lane & 63);
  if (on) {
    (*words)[lane >> 6] |= mask;
  } else {
    (*words)[lane >> 6] &= ~mask;
  }
}

}  // namespace

void CompiledPredicate::RunChunk(const RowChunk& chunk, const BoundParams& params,
                                 ChunkScratch* s) const {
  const size_t lanes = chunk.lanes;
  const size_t words = (lanes + 63) / 64;
  const size_t n = code_.size();

  s->vals.resize(num_regs_);
  s->bits.resize(num_regs_);
  for (size_t r = 0; r < num_regs_; ++r) {
    if (truth_class_[r]) {
      s->bits[r].truth.assign(words, 0);
      s->bits[r].null.assign(words, 0);
    } else if (s->vals[r].size() < lanes) {
      s->vals[r].resize(lanes);
    }
  }
  if (s->pending.size() < n + 1) {
    s->pending.resize(n + 1);
  }
  for (auto& p : s->pending) {
    p.clear();
  }
  s->lane_errors.clear();
  s->insns_executed = 0;

  std::vector<uint32_t>& sel = s->sel;
  sel.clear();
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    if (chunk.active == nullptr || ((chunk.active[lane >> 6] >> (lane & 63)) & 1)) {
      sel.push_back(lane);
    }
  }
  s->lanes_evaluated = sel.size();

  // Per-lane accessors that paper over the two register classes. `stash`
  // gives materialized truth values a home so reads can stay by-reference.
  Value stash_a, stash_b, stash_c;
  auto ref = [&](int r, uint32_t lane, Value* stash) -> const Value& {
    if (truth_class_[r]) {
      *stash = GetBit(s->bits[r].null, lane)
                   ? Value::Null()
                   : Value::Bool(GetBit(s->bits[r].truth, lane));
      return *stash;
    }
    return s->vals[r][lane];
  };
  auto get_truth = [&](int r, uint32_t lane) -> Truth {
    // Operands of the truth ops are truth-encoded, so TruthOf cannot error.
    if (truth_class_[r]) {
      if (GetBit(s->bits[r].null, lane)) return Truth::kUnknown;
      return GetBit(s->bits[r].truth, lane) ? Truth::kTrue : Truth::kFalse;
    }
    Status err = OkStatus();
    return TruthOf(s->vals[r][lane], &err);
  };
  auto set_truth = [&](int r, uint32_t lane, Truth t) {
    if (truth_class_[r]) {
      AssignBit(&s->bits[r].truth, lane, t == Truth::kTrue);
      AssignBit(&s->bits[r].null, lane, t == Truth::kUnknown);
    } else {
      s->vals[r][lane] = TruthToValue(t);
    }
  };

  // Runs `fn` for each selected lane; a lane whose fn returns non-OK is
  // retired with its error (the row loop would have aborted on it — the
  // lowest such lane decides the chunk's status afterwards).
  auto run_lanes = [&](auto&& fn) {
    size_t out = 0;
    for (uint32_t lane : sel) {
      Status st = fn(lane);
      if (st.ok()) {
        sel[out++] = lane;
      } else {
        s->lane_errors.emplace_back(lane, std::move(st));
      }
    }
    sel.resize(out);
  };
  // Fails every selected lane with the same status (whole-chunk errors:
  // kFail, unbound params, bad column ordinals).
  auto fail_all = [&](const Status& st) {
    for (uint32_t lane : sel) {
      s->lane_errors.emplace_back(lane, st);
    }
    sel.clear();
  };
  // Moves lanes satisfying `cond` to pending[target]; the rest fall through.
  auto branch = [&](int target, auto&& cond) {
    std::vector<uint32_t>& park = s->pending[static_cast<size_t>(target)];
    size_t out = 0;
    for (uint32_t lane : sel) {
      if (cond(lane)) {
        park.push_back(lane);
      } else {
        sel[out++] = lane;
      }
    }
    sel.resize(out);
  };

  for (size_t pc = 0; pc < n; ++pc) {
    if (!s->pending[pc].empty()) {
      sel.insert(sel.end(), s->pending[pc].begin(), s->pending[pc].end());
      s->pending[pc].clear();
    }
    if (sel.empty()) {
      continue;
    }
    ++s->insns_executed;
    const Insn& in = code_[pc];
    switch (in.op) {
      case Op::kConst:
        for (uint32_t lane : sel) {
          s->vals[in.dst][lane] = in.imm;
        }
        break;
      case Op::kColumn:
        if (static_cast<size_t>(in.a) >= chunk.row_width) {
          fail_all(Internal(StrFormat("compiled predicate reads column %d of a %zu-wide row",
                                      in.a, chunk.row_width)));
          break;
        }
        for (uint32_t lane : sel) {
          s->vals[in.dst][lane] = chunk.At(lane, in.a);
        }
        break;
      case Op::kParam:
        if (!params.present(static_cast<size_t>(in.a))) {
          fail_all(InvalidArgument("unbound parameter $" + in.text));
          break;
        }
        for (uint32_t lane : sel) {
          s->vals[in.dst][lane] = params.value(static_cast<size_t>(in.a));
        }
        break;
      case Op::kFail:
        fail_all(in.error);
        break;
      case Op::kNot:
        run_lanes([&](uint32_t lane) -> Status {
          Status err = OkStatus();
          Truth t = TruthOf(ref(in.a, lane, &stash_a), &err);
          RETURN_IF_ERROR(err);
          s->vals[in.dst][lane] =
              t == Truth::kUnknown ? Value::Null() : Value::Bool(t == Truth::kFalse);
          return OkStatus();
        });
        break;
      case Op::kNeg:
        run_lanes([&](uint32_t lane) -> Status {
          const Value& v = ref(in.a, lane, &stash_a);
          if (v.is_null()) {
            s->vals[in.dst][lane] = Value::Null();
          } else if (v.is_int()) {
            s->vals[in.dst][lane] = Value::Int(-v.AsInt());
          } else {
            ASSIGN_OR_RETURN(double d, v.ToNumber());
            s->vals[in.dst][lane] = Value::Double(-d);
          }
          return OkStatus();
        });
        break;
      case Op::kPlusOp:
        run_lanes([&](uint32_t lane) -> Status {
          const Value& v = ref(in.a, lane, &stash_a);
          if (v.is_null()) {
            s->vals[in.dst][lane] = Value::Null();
          } else {
            RETURN_IF_ERROR(v.ToNumber().status());
            s->vals[in.dst][lane] = v;
          }
          return OkStatus();
        });
        break;
      case Op::kCompare:
        run_lanes([&](uint32_t lane) -> Status {
          ASSIGN_OR_RETURN(Value v, CompareValues(in.bop, ref(in.a, lane, &stash_a),
                                                  ref(in.b, lane, &stash_b)));
          s->vals[in.dst][lane] = std::move(v);
          return OkStatus();
        });
        break;
      case Op::kArith:
        run_lanes([&](uint32_t lane) -> Status {
          ASSIGN_OR_RETURN(Value v, ArithmeticValues(in.bop, ref(in.a, lane, &stash_a),
                                                     ref(in.b, lane, &stash_b)));
          s->vals[in.dst][lane] = std::move(v);
          return OkStatus();
        });
        break;
      case Op::kConcatOp:
        run_lanes([&](uint32_t lane) -> Status {
          const Value& a = ref(in.a, lane, &stash_a);
          const Value& b = ref(in.b, lane, &stash_b);
          if (a.is_null() || b.is_null()) {
            s->vals[in.dst][lane] = Value::Null();
          } else {
            s->vals[in.dst][lane] = Value::String(StringifyValue(a) + StringifyValue(b));
          }
          return OkStatus();
        });
        break;
      case Op::kTruth:
        if (truth_class_[in.dst] && truth_class_[in.a] && sel.size() == lanes) {
          // Truth of a truth-encoded register is the identity: whole-chunk
          // bitmap copy.
          s->bits[in.dst].truth = s->bits[in.a].truth;
          s->bits[in.dst].null = s->bits[in.a].null;
          break;
        }
        run_lanes([&](uint32_t lane) -> Status {
          Status err = OkStatus();
          Truth t = TruthOf(ref(in.a, lane, &stash_a), &err);
          RETURN_IF_ERROR(err);
          set_truth(in.dst, lane, t);
          return OkStatus();
        });
        break;
      case Op::kJumpIfFalse:
        branch(in.target, [&](uint32_t lane) {
          if (truth_class_[in.a]) {
            return !GetBit(s->bits[in.a].null, lane) && !GetBit(s->bits[in.a].truth, lane);
          }
          const Value& v = s->vals[in.a][lane];
          return v.is_bool() && !v.AsBool();
        });
        break;
      case Op::kJumpIfTrue:
        branch(in.target, [&](uint32_t lane) {
          if (truth_class_[in.a]) {
            return !GetBit(s->bits[in.a].null, lane) && GetBit(s->bits[in.a].truth, lane);
          }
          const Value& v = s->vals[in.a][lane];
          return v.is_bool() && v.AsBool();
        });
        break;
      case Op::kAndCombine:
      case Op::kOrCombine: {
        bool and_op = in.op == Op::kAndCombine;
        if (truth_class_[in.dst] && truth_class_[in.a] && truth_class_[in.b] &&
            sel.size() == lanes) {
          // Every lane is live (no lane short-circuited past this combine,
          // so no lane's dst may be preserved): Kleene min/max word-wise.
          //   AND: true = a&b;  unknown = (aN|bN) & ~aF & ~bF  (F = ~T & ~N)
          //   OR:  true = a|b;  unknown = (aN|bN) & ~true
          const ChunkScratch::TruthBits& a = s->bits[in.a];
          const ChunkScratch::TruthBits& b = s->bits[in.b];
          ChunkScratch::TruthBits& d = s->bits[in.dst];
          for (size_t w = 0; w < words; ++w) {
            uint64_t at = a.truth[w], an = a.null[w];
            uint64_t bt = b.truth[w], bn = b.null[w];
            if (and_op) {
              uint64_t af = ~at & ~an;
              uint64_t bf = ~bt & ~bn;
              d.truth[w] = at & bt;
              d.null[w] = (an | bn) & ~af & ~bf;
            } else {
              d.truth[w] = at | bt;
              d.null[w] = (an | bn) & ~d.truth[w];
            }
          }
          break;
        }
        for (uint32_t lane : sel) {
          Truth a = get_truth(in.a, lane);
          Truth b = get_truth(in.b, lane);
          set_truth(in.dst, lane, and_op ? std::min(a, b) : std::max(a, b));
        }
        break;
      }
      case Op::kIsNullOp:
        for (uint32_t lane : sel) {
          bool is_null = truth_class_[in.a] ? GetBit(s->bits[in.a].null, lane)
                                            : s->vals[in.a][lane].is_null();
          s->vals[in.dst][lane] = Value::Bool(in.negated ? !is_null : is_null);
        }
        break;
      case Op::kInInit:
        branch(in.target, [&](uint32_t lane) {
          if (ref(in.a, lane, &stash_a).is_null()) {
            s->vals[in.dst][lane] = Value::Null();
            return true;
          }
          s->vals[in.b][lane] = Value::Bool(false);
          return false;
        });
        break;
      case Op::kInStep: {
        // Three-way split per lane: null item records saw_null and falls
        // through, a match writes the result and exits the list, an error
        // retires the lane.
        std::vector<uint32_t>& park = s->pending[static_cast<size_t>(in.target)];
        size_t out = 0;
        for (uint32_t lane : sel) {
          const Value& item = ref(in.c, lane, &stash_c);
          if (item.is_null()) {
            s->vals[in.b][lane] = Value::Bool(true);
            sel[out++] = lane;
            continue;
          }
          StatusOr<Value> eq =
              CompareValues(BinaryOp::kEq, ref(in.a, lane, &stash_a), item);
          if (!eq.ok()) {
            s->lane_errors.emplace_back(lane, eq.status());
            continue;
          }
          if (!eq->is_null() && eq->AsBool()) {
            s->vals[in.dst][lane] = Value::Bool(!in.negated);
            park.push_back(lane);
          } else {
            sel[out++] = lane;
          }
        }
        sel.resize(out);
        break;
      }
      case Op::kInFinish:
        for (uint32_t lane : sel) {
          if (s->vals[in.b][lane].AsBool()) {
            s->vals[in.dst][lane] = Value::Null();
          } else {
            s->vals[in.dst][lane] = Value::Bool(in.negated);
          }
        }
        break;
      case Op::kBetweenOp:
        run_lanes([&](uint32_t lane) -> Status {
          const Value& v = ref(in.a, lane, &stash_a);
          ASSIGN_OR_RETURN(Value ge, CompareValues(BinaryOp::kGe, v, ref(in.b, lane, &stash_b)));
          ASSIGN_OR_RETURN(Value le, CompareValues(BinaryOp::kLe, v, ref(in.c, lane, &stash_c)));
          Status err = OkStatus();
          Truth tg = TruthOf(ge, &err);
          RETURN_IF_ERROR(err);
          Truth tl = TruthOf(le, &err);
          RETURN_IF_ERROR(err);
          Truth both = std::min(tg, tl);  // Kleene AND
          if (in.negated) {
            s->vals[in.dst][lane] = both == Truth::kUnknown
                                        ? Value::Null()
                                        : Value::Bool(both == Truth::kFalse);
          } else {
            s->vals[in.dst][lane] = TruthToValue(both);
          }
          return OkStatus();
        });
        break;
      case Op::kLikeOp:
        run_lanes([&](uint32_t lane) -> Status {
          const Value& v = ref(in.a, lane, &stash_a);
          const Value& pat = ref(in.b, lane, &stash_b);
          if (v.is_null() || pat.is_null()) {
            s->vals[in.dst][lane] = Value::Null();
          } else if (!v.is_string() || !pat.is_string()) {
            return InvalidArgument("LIKE requires string operands");
          } else {
            bool m = LikeMatch(v.AsString(), pat.AsString());
            s->vals[in.dst][lane] = Value::Bool(in.negated ? !m : m);
          }
          return OkStatus();
        });
        break;
      case Op::kCall:
        run_lanes([&](uint32_t lane) -> Status {
          std::vector<Value> args;
          args.reserve(in.args.size());
          for (int r : in.args) {
            args.push_back(ref(r, lane, &stash_a));
          }
          ASSIGN_OR_RETURN(Value v, CallScalarFunction(in.text, args));
          s->vals[in.dst][lane] = std::move(v);
          return OkStatus();
        });
        break;
    }
  }

  // Lanes parked exactly at end-of-program completed via a jump.
  if (n < s->pending.size() && !s->pending[n].empty()) {
    sel.insert(sel.end(), s->pending[n].begin(), s->pending[n].end());
    s->pending[n].clear();
  }
}

Status CompiledPredicate::MatchChunk(const RowChunk& chunk, const BoundParams& params,
                                     ChunkScratch* s) const {
  RunChunk(chunk, params, s);
  s->match_bits.fill(0);
  s->match_count = 0;
  if (truth_class_[result_reg_]) {
    // Truth-encoded result: TRUE lanes are exactly the set truth bits.
    const ChunkScratch::TruthBits& res = s->bits[result_reg_];
    for (uint32_t lane : s->sel) {
      if (GetBit(res.truth, lane) && !GetBit(res.null, lane)) {
        s->match_bits[lane >> 6] |= uint64_t{1} << (lane & 63);
        ++s->match_count;
      }
    }
  } else {
    for (uint32_t lane : s->sel) {
      const Value& v = s->vals[result_reg_][lane];
      if (v.is_null()) {
        continue;  // UNKNOWN filters out
      }
      Status err = OkStatus();
      Truth t = TruthOf(v, &err);
      if (!err.ok()) {
        s->lane_errors.emplace_back(lane, std::move(err));
        continue;
      }
      if (t == Truth::kTrue) {
        s->match_bits[lane >> 6] |= uint64_t{1} << (lane & 63);
        ++s->match_count;
      }
    }
  }
  if (!s->lane_errors.empty()) {
    // Row-at-a-time evaluation stops at the first erroring row, so the
    // lowest lane's error is the one the caller would have seen.
    const std::pair<uint32_t, Status>* first = &s->lane_errors[0];
    for (const auto& le : s->lane_errors) {
      if (le.first < first->first) {
        first = &le;
      }
    }
    return first->second;
  }
  return OkStatus();
}

void CompiledPredicate::EvalChunk(const RowChunk& chunk, const BoundParams& params,
                                  ChunkScratch* s, std::vector<StatusOr<Value>>* out) const {
  RunChunk(chunk, params, s);
  out->assign(chunk.lanes, Value::Null());
  Value stash;
  for (uint32_t lane : s->sel) {
    if (truth_class_[result_reg_]) {
      (*out)[lane] = GetBit(s->bits[result_reg_].null, lane)
                         ? Value::Null()
                         : Value::Bool(GetBit(s->bits[result_reg_].truth, lane));
    } else {
      (*out)[lane] = s->vals[result_reg_][lane];
    }
  }
  for (auto& le : s->lane_errors) {
    (*out)[le.first] = le.second;
  }
}

}  // namespace edna::sql
