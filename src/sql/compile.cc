#include "src/sql/compile.h"

#include <utility>

#include "src/common/strings.h"

namespace edna::sql {

// --- Compilation -------------------------------------------------------------

class CompiledPredicate::Builder {
 public:
  explicit Builder(const ColumnBinder& binder) : binder_(binder) {}

  StatusOr<int> CompileExpr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral: {
        int r = Alloc();
        Insn in;
        in.op = Op::kConst;
        in.dst = r;
        in.imm = e.literal();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kColumnRef: {
        int r = Alloc();
        StatusOr<size_t> ordinal = binder_(e.table(), e.column());
        if (ordinal.ok()) {
          Insn in;
        in.op = Op::kColumn;
          in.dst = r;
          in.a = static_cast<int>(*ordinal);
          Emit(std::move(in));
        } else {
          // Deferred: the interpreter only errors if the reference is
          // actually evaluated (short-circuit may skip it). dst records the
          // register the value would have landed in — kFail "defines" it by
          // raising, which the static checker (verify.h) relies on.
          Insn in;
        in.op = Op::kFail;
          in.dst = r;
          in.error = ordinal.status();
          Emit(std::move(in));
        }
        return r;
      }
      case ExprKind::kParam: {
        int r = Alloc();
        Insn in;
        in.op = Op::kParam;
        in.dst = r;
        in.a = static_cast<int>(InternParam(e.param_name()));
        in.text = e.param_name();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kUnary: {
        ASSIGN_OR_RETURN(int operand, CompileExpr(*e.children()[0]));
        int r = Alloc();
        Insn in;
        in.op = Op::kNot;
        switch (e.unary_op()) {
          case UnaryOp::kNot:
            in.op = Op::kNot;
            break;
          case UnaryOp::kNeg:
            in.op = Op::kNeg;
            break;
          case UnaryOp::kPlus:
            in.op = Op::kPlusOp;
            break;
        }
        in.dst = r;
        in.a = operand;
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kIsNull: {
        ASSIGN_OR_RETURN(int operand, CompileExpr(*e.children()[0]));
        int r = Alloc();
        Insn in;
        in.op = Op::kIsNullOp;
        in.dst = r;
        in.a = operand;
        in.negated = e.negated();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kIn:
        return CompileIn(e);
      case ExprKind::kBetween: {
        ASSIGN_OR_RETURN(int v, CompileExpr(*e.children()[0]));
        ASSIGN_OR_RETURN(int lo, CompileExpr(*e.children()[1]));
        ASSIGN_OR_RETURN(int hi, CompileExpr(*e.children()[2]));
        int r = Alloc();
        Insn in;
        in.op = Op::kBetweenOp;
        in.dst = r;
        in.a = v;
        in.b = lo;
        in.c = hi;
        in.negated = e.negated();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kLike: {
        ASSIGN_OR_RETURN(int v, CompileExpr(*e.children()[0]));
        ASSIGN_OR_RETURN(int pat, CompileExpr(*e.children()[1]));
        int r = Alloc();
        Insn in;
        in.op = Op::kLikeOp;
        in.dst = r;
        in.a = v;
        in.b = pat;
        in.negated = e.negated();
        Emit(std::move(in));
        return r;
      }
      case ExprKind::kCall: {
        std::vector<int> args;
        args.reserve(e.children().size());
        for (const ExprPtr& c : e.children()) {
          ASSIGN_OR_RETURN(int a, CompileExpr(*c));
          args.push_back(a);
        }
        int r = Alloc();
        Insn in;
        in.op = Op::kCall;
        in.dst = r;
        in.text = e.function();
        in.args = std::move(args);
        Emit(std::move(in));
        return r;
      }
    }
    return Internal("bad expression kind");
  }

  std::vector<Insn> TakeCode() { return std::move(code_); }
  size_t num_regs() const { return next_reg_; }
  std::vector<std::string> TakeParams() { return std::move(param_names_); }

 private:
  StatusOr<int> CompileBinary(const Expr& e) {
    BinaryOp op = e.binary_op();
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      // Mirrors the interpreter: evaluate lhs, coerce to truth (may error),
      // short-circuit on FALSE (AND) / TRUE (OR), else evaluate rhs and
      // Kleene-combine. The truth encoding (Bool/Null) doubles as the
      // result value, exactly like TruthToValue.
      ASSIGN_OR_RETURN(int lhs, CompileExpr(*e.children()[0]));
      int r = Alloc();
      {
        Insn in;
        in.op = Op::kTruth;
        in.dst = r;
        in.a = lhs;
        Emit(std::move(in));
      }
      size_t jump_at = code_.size();
      {
        Insn in;
        in.op = op == BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue;
        in.a = r;
        Emit(std::move(in));
      }
      ASSIGN_OR_RETURN(int rhs, CompileExpr(*e.children()[1]));
      int rt = Alloc();
      {
        Insn in;
        in.op = Op::kTruth;
        in.dst = rt;
        in.a = rhs;
        Emit(std::move(in));
      }
      {
        Insn in;
        in.op = op == BinaryOp::kAnd ? Op::kAndCombine : Op::kOrCombine;
        in.dst = r;
        in.a = r;
        in.b = rt;
        Emit(std::move(in));
      }
      code_[jump_at].target = static_cast<int>(code_.size());
      return r;
    }

    ASSIGN_OR_RETURN(int a, CompileExpr(*e.children()[0]));
    ASSIGN_OR_RETURN(int b, CompileExpr(*e.children()[1]));
    int r = Alloc();
    Insn in;
        in.op = Op::kCompare;
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        in.op = Op::kArith;
        break;
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        in.op = Op::kCompare;
        break;
      case BinaryOp::kConcat:
        in.op = Op::kConcatOp;
        break;
      default:
        return Internal("bad binary op");
    }
    in.bop = op;
    in.dst = r;
    in.a = a;
    in.b = b;
    Emit(std::move(in));
    return r;
  }

  StatusOr<int> CompileIn(const Expr& e) {
    // NULL needle skips the whole list (items unevaluated), matching the
    // interpreter's early return; a matching item exits early too.
    ASSIGN_OR_RETURN(int needle, CompileExpr(*e.children()[0]));
    int result = Alloc();
    int saw_null = Alloc();
    std::vector<size_t> exits;
    exits.push_back(code_.size());
    {
      Insn in;
        in.op = Op::kInInit;
      in.dst = result;
      in.a = needle;
      in.b = saw_null;
      Emit(std::move(in));
    }
    for (size_t i = 1; i < e.children().size(); ++i) {
      ASSIGN_OR_RETURN(int item, CompileExpr(*e.children()[i]));
      exits.push_back(code_.size());
      Insn in;
        in.op = Op::kInStep;
      in.dst = result;
      in.a = needle;
      in.b = saw_null;
      in.c = item;
      in.negated = e.negated();
      Emit(std::move(in));
    }
    {
      Insn in;
        in.op = Op::kInFinish;
      in.dst = result;
      in.b = saw_null;
      in.negated = e.negated();
      Emit(std::move(in));
    }
    for (size_t at : exits) {
      code_[at].target = static_cast<int>(code_.size());
    }
    return result;
  }

  int Alloc() { return static_cast<int>(next_reg_++); }
  void Emit(Insn in) { code_.push_back(std::move(in)); }

  size_t InternParam(const std::string& name) {
    for (size_t i = 0; i < param_names_.size(); ++i) {
      if (param_names_[i] == name) {
        return i;
      }
    }
    param_names_.push_back(name);
    return param_names_.size() - 1;
  }

  const ColumnBinder& binder_;
  std::vector<Insn> code_;
  size_t next_reg_ = 0;
  std::vector<std::string> param_names_;
};

StatusOr<CompiledPredicate> CompiledPredicate::Compile(const Expr& expr,
                                                       const ColumnBinder& binder) {
  if (!binder) {
    return InvalidArgument("CompiledPredicate requires a column binder");
  }
  Builder builder(binder);
  ASSIGN_OR_RETURN(int result, builder.CompileExpr(expr));
  CompiledPredicate p;
  p.code_ = builder.TakeCode();
  p.num_regs_ = builder.num_regs();
  p.result_reg_ = result;
  p.param_names_ = builder.TakeParams();
  return p;
}

CompiledPredicate CompiledPredicate::AssembleForTest(std::vector<Insn> code,
                                                     size_t num_regs, int result_reg,
                                                     std::vector<std::string> param_names) {
  CompiledPredicate p;
  p.code_ = std::move(code);
  p.num_regs_ = num_regs;
  p.result_reg_ = result_reg;
  p.param_names_ = std::move(param_names);
  return p;
}

// --- Execution ---------------------------------------------------------------

BoundParams CompiledPredicate::BindParams(const ParamMap& params) const {
  BoundParams bound;
  bound.values_.resize(param_names_.size());
  bound.present_.assign(param_names_.size(), 0);
  for (size_t i = 0; i < param_names_.size(); ++i) {
    auto it = params.find(param_names_[i]);
    if (it != params.end()) {
      bound.values_[i] = it->second;
      bound.present_[i] = 1;
    }
  }
  return bound;
}

StatusOr<Value> CompiledPredicate::EvalRow(const Value* row, size_t row_width,
                                           const BoundParams& params,
                                           EvalScratch* scratch) const {
  std::vector<Value>& regs = scratch->regs;
  if (regs.size() < num_regs_) {
    regs.resize(num_regs_);
  }
  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const Insn& in = code_[pc];
    switch (in.op) {
      case Op::kConst:
        regs[in.dst] = in.imm;
        break;
      case Op::kColumn:
        if (static_cast<size_t>(in.a) >= row_width) {
          return Internal(StrFormat("compiled predicate reads column %d of a %zu-wide row",
                                    in.a, row_width));
        }
        regs[in.dst] = row[in.a];
        break;
      case Op::kParam:
        if (!params.present(static_cast<size_t>(in.a))) {
          return InvalidArgument("unbound parameter $" + in.text);
        }
        regs[in.dst] = params.value(static_cast<size_t>(in.a));
        break;
      case Op::kFail:
        return in.error;
      case Op::kNot: {
        Status err = OkStatus();
        Truth t = TruthOf(regs[in.a], &err);
        RETURN_IF_ERROR(err);
        regs[in.dst] =
            t == Truth::kUnknown ? Value::Null() : Value::Bool(t == Truth::kFalse);
        break;
      }
      case Op::kNeg: {
        const Value& v = regs[in.a];
        if (v.is_null()) {
          regs[in.dst] = Value::Null();
        } else if (v.is_int()) {
          regs[in.dst] = Value::Int(-v.AsInt());
        } else {
          ASSIGN_OR_RETURN(double d, v.ToNumber());
          regs[in.dst] = Value::Double(-d);
        }
        break;
      }
      case Op::kPlusOp: {
        const Value& v = regs[in.a];
        if (v.is_null()) {
          regs[in.dst] = Value::Null();
        } else {
          RETURN_IF_ERROR(v.ToNumber().status());
          regs[in.dst] = v;
        }
        break;
      }
      case Op::kCompare: {
        ASSIGN_OR_RETURN(Value v, CompareValues(in.bop, regs[in.a], regs[in.b]));
        regs[in.dst] = std::move(v);
        break;
      }
      case Op::kArith: {
        ASSIGN_OR_RETURN(Value v, ArithmeticValues(in.bop, regs[in.a], regs[in.b]));
        regs[in.dst] = std::move(v);
        break;
      }
      case Op::kConcatOp: {
        const Value& a = regs[in.a];
        const Value& b = regs[in.b];
        if (a.is_null() || b.is_null()) {
          regs[in.dst] = Value::Null();
        } else {
          regs[in.dst] = Value::String(StringifyValue(a) + StringifyValue(b));
        }
        break;
      }
      case Op::kTruth: {
        Status err = OkStatus();
        Truth t = TruthOf(regs[in.a], &err);
        RETURN_IF_ERROR(err);
        regs[in.dst] = TruthToValue(t);
        break;
      }
      case Op::kJumpIfFalse:
        if (regs[in.a].is_bool() && !regs[in.a].AsBool()) {
          pc = static_cast<size_t>(in.target);
          continue;
        }
        break;
      case Op::kJumpIfTrue:
        if (regs[in.a].is_bool() && regs[in.a].AsBool()) {
          pc = static_cast<size_t>(in.target);
          continue;
        }
        break;
      case Op::kAndCombine:
      case Op::kOrCombine: {
        // Operands are truth-encoded (Bool/Null), so TruthOf cannot error.
        Status err = OkStatus();
        Truth a = TruthOf(regs[in.a], &err);
        Truth b = TruthOf(regs[in.b], &err);
        Truth r = in.op == Op::kAndCombine ? std::min(a, b) : std::max(a, b);
        regs[in.dst] = TruthToValue(r);
        break;
      }
      case Op::kIsNullOp: {
        bool is_null = regs[in.a].is_null();
        regs[in.dst] = Value::Bool(in.negated ? !is_null : is_null);
        break;
      }
      case Op::kInInit:
        if (regs[in.a].is_null()) {
          regs[in.dst] = Value::Null();
          pc = static_cast<size_t>(in.target);
          continue;
        }
        regs[in.b] = Value::Bool(false);
        break;
      case Op::kInStep: {
        const Value& item = regs[in.c];
        if (item.is_null()) {
          regs[in.b] = Value::Bool(true);
          break;
        }
        ASSIGN_OR_RETURN(Value eq, CompareValues(BinaryOp::kEq, regs[in.a], item));
        if (!eq.is_null() && eq.AsBool()) {
          regs[in.dst] = Value::Bool(!in.negated);
          pc = static_cast<size_t>(in.target);
          continue;
        }
        break;
      }
      case Op::kInFinish:
        if (regs[in.b].AsBool()) {
          regs[in.dst] = Value::Null();
        } else {
          regs[in.dst] = Value::Bool(in.negated);
        }
        break;
      case Op::kBetweenOp: {
        ASSIGN_OR_RETURN(Value ge, CompareValues(BinaryOp::kGe, regs[in.a], regs[in.b]));
        ASSIGN_OR_RETURN(Value le, CompareValues(BinaryOp::kLe, regs[in.a], regs[in.c]));
        Status err = OkStatus();
        Truth tg = TruthOf(ge, &err);
        RETURN_IF_ERROR(err);
        Truth tl = TruthOf(le, &err);
        RETURN_IF_ERROR(err);
        Truth both = std::min(tg, tl);  // Kleene AND
        if (in.negated) {
          regs[in.dst] = both == Truth::kUnknown ? Value::Null()
                                                 : Value::Bool(both == Truth::kFalse);
        } else {
          regs[in.dst] = TruthToValue(both);
        }
        break;
      }
      case Op::kLikeOp: {
        const Value& v = regs[in.a];
        const Value& pat = regs[in.b];
        if (v.is_null() || pat.is_null()) {
          regs[in.dst] = Value::Null();
        } else if (!v.is_string() || !pat.is_string()) {
          return InvalidArgument("LIKE requires string operands");
        } else {
          bool m = LikeMatch(v.AsString(), pat.AsString());
          regs[in.dst] = Value::Bool(in.negated ? !m : m);
        }
        break;
      }
      case Op::kCall: {
        std::vector<Value> args;
        args.reserve(in.args.size());
        for (int r : in.args) {
          args.push_back(regs[r]);
        }
        ASSIGN_OR_RETURN(Value v, CallScalarFunction(in.text, args));
        regs[in.dst] = std::move(v);
        break;
      }
    }
    ++pc;
  }
  return regs[result_reg_];
}

StatusOr<bool> CompiledPredicate::Matches(const Value* row, size_t row_width,
                                          const BoundParams& params,
                                          EvalScratch* scratch) const {
  ASSIGN_OR_RETURN(Value v, EvalRow(row, row_width, params, scratch));
  if (v.is_null()) {
    return false;  // UNKNOWN filters out, as in SQL WHERE
  }
  Status err = OkStatus();
  Truth t = TruthOf(v, &err);
  RETURN_IF_ERROR(err);
  return t == Truth::kTrue;
}

}  // namespace edna::sql
