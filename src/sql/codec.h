// Small binary codec for values and records that leave the process: vault
// payloads (offline storage, third-party storage, encryption) and database
// images serialize to a self-describing little-endian byte format.
#ifndef SRC_SQL_CODEC_H_
#define SRC_SQL_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sql/value.h"

namespace edna::sql {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bytes(const uint8_t* data, size_t len);
  void String(const std::string& s);
  void Value(const class Value& v);

  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  StatusOr<uint8_t> U8();
  StatusOr<uint32_t> U32();
  StatusOr<uint64_t> U64();
  StatusOr<int64_t> I64();
  StatusOr<double> F64();
  StatusOr<std::string> String();
  StatusOr<::edna::sql::Value> Value();

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  Status Need(size_t n);

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace edna::sql

#endif  // SRC_SQL_CODEC_H_
