// Expression evaluation with SQL three-valued logic.
//
// Evaluation needs two bindings: a column resolver (supplied per row by the
// relational engine) and a parameter map ($UID etc., supplied per disguise
// invocation). NULL propagates through arithmetic and comparisons; AND/OR
// follow Kleene logic; predicates treat NULL results as "not matched".
#ifndef SRC_SQL_EVAL_H_
#define SRC_SQL_EVAL_H_

#include <functional>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/sql/ast.h"
#include "src/sql/value.h"

namespace edna::sql {

// Resolves an (optionally table-qualified) column reference to a value.
using ColumnResolver =
    std::function<StatusOr<Value>(const std::string& table, const std::string& column)>;

// Named parameter bindings ($NAME -> value). Names are case-sensitive.
using ParamMap = std::map<std::string, Value>;

// Evaluates `expr` to a Value (which may be Null).
StatusOr<Value> Evaluate(const Expr& expr, const ColumnResolver& columns,
                         const ParamMap& params);

// Evaluates `expr` as a predicate: NULL and FALSE are both "no match";
// non-boolean non-null results are an error.
StatusOr<bool> EvaluatePredicate(const Expr& expr, const ColumnResolver& columns,
                                 const ParamMap& params);

// Convenience: evaluates an expression with no column references (constants,
// params, and functions only).
StatusOr<Value> EvaluateConstant(const Expr& expr, const ParamMap& params);

// True if the expression can be evaluated without resolving columns.
bool IsConstantExpression(const Expr& expr);

}  // namespace edna::sql

#endif  // SRC_SQL_EVAL_H_
