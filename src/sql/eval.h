// Expression evaluation with SQL three-valued logic.
//
// Evaluation needs two bindings: a column resolver (supplied per row by the
// relational engine) and a parameter map ($UID etc., supplied per disguise
// invocation). NULL propagates through arithmetic and comparisons; AND/OR
// follow Kleene logic; predicates treat NULL results as "not matched".
#ifndef SRC_SQL_EVAL_H_
#define SRC_SQL_EVAL_H_

#include <functional>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/sql/ast.h"
#include "src/sql/value.h"

namespace edna::sql {

// Resolves an (optionally table-qualified) column reference to a value.
using ColumnResolver =
    std::function<StatusOr<Value>(const std::string& table, const std::string& column)>;

// Named parameter bindings ($NAME -> value). Names are case-sensitive.
using ParamMap = std::map<std::string, Value>;

// --- Shared evaluation kernels ----------------------------------------------
// Used by both the tree-walking interpreter below and the compiled-predicate
// executor (src/sql/compile.cc). Exposing one set of kernels is what keeps
// the two evaluators semantically identical; the differential fuzz test in
// tests/sql_compile_test.cc checks the composition, these keep the parts.

// Kleene truth value, ordered so AND = min and OR = max.
enum class Truth { kFalse = 0, kUnknown = 1, kTrue = 2 };

// Truthiness: NULL -> UNKNOWN, bool -> itself, numerics -> (v != 0); any
// other type sets *error and returns UNKNOWN.
Truth TruthOf(const Value& v, Status* error);

// kFalse -> Bool(false), kUnknown -> Null, kTrue -> Bool(true).
Value TruthToValue(Truth t);

// SQL comparison (`op` one of kEq..kGe): NULL operand -> Null result;
// cross-class comparisons (number vs string) are type errors.
StatusOr<Value> CompareValues(BinaryOp op, const Value& a, const Value& b);

// SQL arithmetic (`op` one of kAdd..kMod): int-preserving where possible,
// NULL-propagating, division/modulo by zero are errors.
StatusOr<Value> ArithmeticValues(BinaryOp op, const Value& a, const Value& b);

// Renders a value for string contexts (CONCAT and friends); NULL -> "".
std::string StringifyValue(const Value& v);

// Scalar function dispatch (LOWER/UPPER/LENGTH/...); unknown names are
// errors at call time, not parse time.
StatusOr<Value> CallScalarFunction(const std::string& name,
                                   const std::vector<Value>& args);

// ----------------------------------------------------------------------------

// Evaluates `expr` to a Value (which may be Null).
StatusOr<Value> Evaluate(const Expr& expr, const ColumnResolver& columns,
                         const ParamMap& params);

// Evaluates `expr` as a predicate: NULL and FALSE are both "no match";
// non-boolean non-null results are an error.
StatusOr<bool> EvaluatePredicate(const Expr& expr, const ColumnResolver& columns,
                                 const ParamMap& params);

// Convenience: evaluates an expression with no column references (constants,
// params, and functions only).
StatusOr<Value> EvaluateConstant(const Expr& expr, const ParamMap& params);

// True if the expression can be evaluated without resolving columns.
bool IsConstantExpression(const Expr& expr);

}  // namespace edna::sql

#endif  // SRC_SQL_EVAL_H_
