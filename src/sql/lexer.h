// Lexer for SQL scalar expressions (the WHERE-clause grammar used by
// disguise predicates). One-shot: tokenizes a whole input string.
#ifndef SRC_SQL_LEXER_H_
#define SRC_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sql/token.h"

namespace edna::sql {

// Tokenizes `input`; the result always ends with a kEnd token on success.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace edna::sql

#endif  // SRC_SQL_LEXER_H_
