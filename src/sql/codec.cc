#include "src/sql/codec.h"

#include <cstring>

namespace edna::sql {

namespace {
enum class Tag : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kBoolFalse = 3,
  kBoolTrue = 4,
  kString = 5,
  kBlob = 6,
};
}  // namespace

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Bytes(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::String(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  Bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void ByteWriter::Value(const class Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      U8(static_cast<uint8_t>(Tag::kNull));
      break;
    case ValueType::kInt:
      U8(static_cast<uint8_t>(Tag::kInt));
      I64(v.AsInt());
      break;
    case ValueType::kDouble:
      U8(static_cast<uint8_t>(Tag::kDouble));
      F64(v.AsDouble());
      break;
    case ValueType::kBool:
      U8(static_cast<uint8_t>(v.AsBool() ? Tag::kBoolTrue : Tag::kBoolFalse));
      break;
    case ValueType::kString:
      U8(static_cast<uint8_t>(Tag::kString));
      String(v.AsString());
      break;
    case ValueType::kBlob:
      U8(static_cast<uint8_t>(Tag::kBlob));
      U32(static_cast<uint32_t>(v.AsBlob().size()));
      Bytes(v.AsBlob().data(), v.AsBlob().size());
      break;
  }
}

Status ByteReader::Need(size_t n) {
  if (pos_ + n > buf_.size()) {
    return InvalidArgument("vault payload truncated");
  }
  return OkStatus();
}

StatusOr<uint8_t> ByteReader::U8() {
  RETURN_IF_ERROR(Need(1));
  return buf_[pos_++];
}

StatusOr<uint32_t> ByteReader::U32() {
  RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
  }
  return v;
}

StatusOr<uint64_t> ByteReader::U64() {
  RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
  }
  return v;
}

StatusOr<int64_t> ByteReader::I64() {
  ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

StatusOr<double> ByteReader::F64() {
  ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> ByteReader::String() {
  ASSIGN_OR_RETURN(uint32_t len, U32());
  RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), len);
  pos_ += len;
  return s;
}

StatusOr<::edna::sql::Value> ByteReader::Value() {
  ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<Tag>(tag)) {
    case Tag::kNull:
      return Value::Null();
    case Tag::kInt: {
      ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Int(v);
    }
    case Tag::kDouble: {
      ASSIGN_OR_RETURN(double v, F64());
      return Value::Double(v);
    }
    case Tag::kBoolFalse:
      return Value::Bool(false);
    case Tag::kBoolTrue:
      return Value::Bool(true);
    case Tag::kString: {
      ASSIGN_OR_RETURN(std::string s, String());
      return Value::String(std::move(s));
    }
    case Tag::kBlob: {
      ASSIGN_OR_RETURN(uint32_t len, U32());
      RETURN_IF_ERROR(Need(len));
      std::vector<uint8_t> b(buf_.begin() + static_cast<long>(pos_),
                             buf_.begin() + static_cast<long>(pos_ + len));
      pos_ += len;
      return Value::Blob(std::move(b));
    }
  }
  return InvalidArgument("bad value tag in vault payload");
}

}  // namespace edna::sql
