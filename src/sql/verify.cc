#include "src/sql/verify.h"

#include <map>
#include <utility>
#include <vector>

namespace edna::sql {
namespace {

using Op = CompiledPredicate::Op;
using Insn = CompiledPredicate::Insn;

std::string At(size_t pc) { return "insn " + std::to_string(pc) + ": "; }

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

// What last defined a register: needed for the 3VL protocol checks.
enum class DefKind { kUndefined, kValue, kTruth, kSawNullFlag };

class Checker {
 public:
  Checker(const CompiledPredicate& program, const ProgramCheckOptions& options)
      : program_(program),
        options_(options),
        nregs_(static_cast<int>(program.num_registers())),
        defined_(program.num_registers(), DefKind::kUndefined) {}

  Status Run() {
    const std::vector<Insn>& code = program_.code();
    for (size_t pc = 0; pc < code.size(); ++pc) {
      RETURN_IF_ERROR(CheckInsn(pc, code[pc]));
    }
    const int result = program_.result_reg();
    if (result < 0 || result >= nregs_) {
      return InvalidArgument("result register " + std::to_string(result) +
                             " out of bounds (" + std::to_string(nregs_) + " registers)");
    }
    // kFail-only programs legitimately leave the result undefined: they raise
    // before producing a value.
    if (defined_[result] == DefKind::kUndefined && !has_fail_) {
      return InvalidArgument("result register " + std::to_string(result) +
                             " is never defined");
    }
    return OkStatus();
  }

 private:
  Status CheckRead(size_t pc, int reg, const char* role) {
    if (reg < 0 || reg >= nregs_) {
      return InvalidArgument(At(pc) + std::string(role) + " register " +
                             std::to_string(reg) + " out of bounds");
    }
    // Define-before-use in instruction order: the builder only emits forward
    // jumps, so a textually later definition can never reach an earlier
    // read. (A jump may skip a definition, but then it skips every read of
    // it too — the skipped range is straight-line.)
    if (defined_[reg] == DefKind::kUndefined) {
      return InvalidArgument(At(pc) + std::string(role) + " register " +
                             std::to_string(reg) + " read before definition");
    }
    return OkStatus();
  }

  Status CheckWrite(size_t pc, int reg, DefKind kind) {
    if (reg < 0 || reg >= nregs_) {
      return InvalidArgument(At(pc) + "destination register " + std::to_string(reg) +
                             " out of bounds");
    }
    defined_[reg] = kind;
    return OkStatus();
  }

  Status CheckJump(size_t pc, int target) {
    // Forward-only, at most one past the end (jump-to-exit).
    if (target <= static_cast<int>(pc) ||
        target > static_cast<int>(program_.code().size())) {
      return InvalidArgument(At(pc) + "jump target " + std::to_string(target) +
                             " is not strictly forward in [" + std::to_string(pc + 1) +
                             ", " + std::to_string(program_.code().size()) + "]");
    }
    return OkStatus();
  }

  // The 3VL protocol: short-circuit jumps and Kleene combines are only sound
  // over truth-coerced registers (Bool / Null). A raw value register (e.g.
  // the integer 0) would short-circuit incorrectly.
  Status CheckTruthOperand(size_t pc, int reg, const char* role) {
    RETURN_IF_ERROR(CheckRead(pc, reg, role));
    if (defined_[reg] != DefKind::kTruth) {
      return InvalidArgument(At(pc) + std::string(role) + " register " +
                             std::to_string(reg) +
                             " is not truth-coerced (3VL short-circuit over a raw "
                             "value is unsound)");
    }
    return OkStatus();
  }

  Status CheckInsn(size_t pc, const Insn& in) {
    switch (in.op) {
      case Op::kConst:
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kColumn:
        if (in.a < 0 ||
            (options_.row_width >= 0 && in.a >= options_.row_width)) {
          return InvalidArgument(At(pc) + "column ordinal " + std::to_string(in.a) +
                                 " out of row bounds");
        }
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kParam:
        if (in.a < 0 || in.a >= static_cast<int>(program_.param_names().size())) {
          return InvalidArgument(At(pc) + "parameter slot " + std::to_string(in.a) +
                                 " out of bounds (" +
                                 std::to_string(program_.param_names().size()) +
                                 " params)");
        }
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kFail:
        if (in.error.ok()) {
          return InvalidArgument(At(pc) + "kFail carries an OK status");
        }
        has_fail_ = true;
        // Raising "defines" dst: execution cannot fall through to a read of
        // it, so downstream insns in the same straight-line region check out.
        if (in.dst >= 0) {
          return CheckWrite(pc, in.dst, DefKind::kValue);
        }
        return OkStatus();
      case Op::kNot:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "operand"));
        return CheckWrite(pc, in.dst, DefKind::kTruth);  // NOT truth-coerces
      case Op::kNeg:
      case Op::kPlusOp:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "operand"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kCompare:
        if (!IsComparison(in.bop)) {
          return InvalidArgument(At(pc) + "kCompare with non-comparison operator " +
                                 BinaryOpName(in.bop));
        }
        RETURN_IF_ERROR(CheckRead(pc, in.a, "lhs"));
        RETURN_IF_ERROR(CheckRead(pc, in.b, "rhs"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kArith:
        if (!IsArithmetic(in.bop)) {
          return InvalidArgument(At(pc) + "kArith with non-arithmetic operator " +
                                 BinaryOpName(in.bop));
        }
        RETURN_IF_ERROR(CheckRead(pc, in.a, "lhs"));
        RETURN_IF_ERROR(CheckRead(pc, in.b, "rhs"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kConcatOp:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "lhs"));
        RETURN_IF_ERROR(CheckRead(pc, in.b, "rhs"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kTruth:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "operand"));
        return CheckWrite(pc, in.dst, DefKind::kTruth);
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
        RETURN_IF_ERROR(CheckTruthOperand(pc, in.a, "condition"));
        return CheckJump(pc, in.target);
      case Op::kAndCombine:
      case Op::kOrCombine:
        RETURN_IF_ERROR(CheckTruthOperand(pc, in.a, "lhs"));
        RETURN_IF_ERROR(CheckTruthOperand(pc, in.b, "rhs"));
        return CheckWrite(pc, in.dst, DefKind::kTruth);
      case Op::kIsNullOp:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "operand"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kInInit:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "needle"));
        RETURN_IF_ERROR(CheckJump(pc, in.target));
        RETURN_IF_ERROR(CheckWrite(pc, in.b, DefKind::kSawNullFlag));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kInStep:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "needle"));
        RETURN_IF_ERROR(CheckSawNull(pc, in.b));
        RETURN_IF_ERROR(CheckRead(pc, in.c, "item"));
        RETURN_IF_ERROR(CheckJump(pc, in.target));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kInFinish:
        RETURN_IF_ERROR(CheckSawNull(pc, in.b));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kBetweenOp:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "operand"));
        RETURN_IF_ERROR(CheckRead(pc, in.b, "low"));
        RETURN_IF_ERROR(CheckRead(pc, in.c, "high"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kLikeOp:
        RETURN_IF_ERROR(CheckRead(pc, in.a, "operand"));
        RETURN_IF_ERROR(CheckRead(pc, in.b, "pattern"));
        return CheckWrite(pc, in.dst, DefKind::kValue);
      case Op::kCall:
        for (int arg : in.args) {
          RETURN_IF_ERROR(CheckRead(pc, arg, "argument"));
        }
        return CheckWrite(pc, in.dst, DefKind::kValue);
    }
    return InvalidArgument(At(pc) + "unknown opcode " +
                           std::to_string(static_cast<int>(in.op)));
  }

  // The IN protocol's saw-null flag must come from kInInit (or an earlier
  // kInStep write, which preserves the kind).
  Status CheckSawNull(size_t pc, int reg) {
    if (reg < 0 || reg >= nregs_) {
      return InvalidArgument(At(pc) + "saw-null register " + std::to_string(reg) +
                             " out of bounds");
    }
    if (defined_[reg] != DefKind::kSawNullFlag) {
      return InvalidArgument(At(pc) + "saw-null register " + std::to_string(reg) +
                             " was not initialized by kInInit");
    }
    return OkStatus();
  }

  const CompiledPredicate& program_;
  const ProgramCheckOptions& options_;
  const int nregs_;
  std::vector<DefKind> defined_;
  bool has_fail_ = false;
};

// ---------------------------------------------------------------------------
// Decompilation: symbolic execution of the instruction stream. Jumps carry
// no data (they only skip work the combine makes redundant), so a linear
// pass that ignores them reconstructs exactly the expression the builder
// lowered: kTruth copies its operand, combines rebuild AND/OR, the IN
// protocol accumulates its item list.

struct InState {
  ExprPtr needle;
  std::vector<ExprPtr> items;
  bool negated = false;
};

class Decompiler {
 public:
  Decompiler(const CompiledPredicate& program, const ColumnNamer& namer)
      : program_(program), namer_(namer), regs_(program.num_registers()) {}

  StatusOr<ExprPtr> Run() {
    for (size_t pc = 0; pc < program_.code().size(); ++pc) {
      RETURN_IF_ERROR(Step(pc, program_.code()[pc]));
    }
    return Read(program_.code().size(), program_.result_reg(), "result");
  }

 private:
  StatusOr<ExprPtr> Read(size_t pc, int reg, const char* role) {
    if (reg < 0 || reg >= static_cast<int>(regs_.size()) || regs_[reg] == nullptr) {
      return InvalidArgument(At(pc) + std::string(role) + " register " +
                             std::to_string(reg) + " holds no expression");
    }
    return regs_[reg]->Clone();
  }

  Status Write(size_t pc, int reg, ExprPtr e) {
    if (reg < 0 || reg >= static_cast<int>(regs_.size())) {
      return InvalidArgument(At(pc) + "destination register " + std::to_string(reg) +
                             " out of bounds");
    }
    regs_[reg] = std::move(e);
    return OkStatus();
  }

  Status Step(size_t pc, const Insn& in) {
    switch (in.op) {
      case Op::kConst:
        return Write(pc, in.dst, Expr::Literal(in.imm));
      case Op::kColumn: {
        if (!namer_) {
          return InvalidArgument(At(pc) + "no column namer provided");
        }
        ASSIGN_OR_RETURN(std::string name, namer_(static_cast<size_t>(in.a)));
        return Write(pc, in.dst, Expr::ColumnRef("", std::move(name)));
      }
      case Op::kParam:
        return Write(pc, in.dst, Expr::Param(in.text));
      case Op::kFail:
        return FailedPrecondition(
            At(pc) + "program contains a deferred binding error (" +
            in.error.message() + "); it has no source expression");
      case Op::kNot: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        return Write(pc, in.dst, Expr::Unary(UnaryOp::kNot, std::move(a)));
      }
      case Op::kNeg: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        return Write(pc, in.dst, Expr::Unary(UnaryOp::kNeg, std::move(a)));
      }
      case Op::kPlusOp: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        return Write(pc, in.dst, Expr::Unary(UnaryOp::kPlus, std::move(a)));
      }
      case Op::kCompare:
      case Op::kArith:
      case Op::kConcatOp: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "lhs"));
        ASSIGN_OR_RETURN(ExprPtr b, Read(pc, in.b, "rhs"));
        BinaryOp bop = in.op == Op::kConcatOp ? BinaryOp::kConcat : in.bop;
        return Write(pc, in.dst, Expr::Binary(bop, std::move(a), std::move(b)));
      }
      case Op::kTruth: {
        // Truth-coercion is implicit in the AST's AND/OR semantics; the
        // operand expression itself is the value.
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        return Write(pc, in.dst, std::move(a));
      }
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
        return OkStatus();  // pure control flow; the combine rebuilds the node
      case Op::kAndCombine:
      case Op::kOrCombine: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "lhs"));
        ASSIGN_OR_RETURN(ExprPtr b, Read(pc, in.b, "rhs"));
        return Write(pc, in.dst,
                     Expr::Binary(in.op == Op::kAndCombine ? BinaryOp::kAnd
                                                           : BinaryOp::kOr,
                                  std::move(a), std::move(b)));
      }
      case Op::kIsNullOp: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        return Write(pc, in.dst, Expr::IsNull(std::move(a), in.negated));
      }
      case Op::kInInit: {
        ASSIGN_OR_RETURN(ExprPtr needle, Read(pc, in.a, "needle"));
        InState st;
        st.needle = std::move(needle);
        in_states_[in.dst] = std::move(st);
        return OkStatus();
      }
      case Op::kInStep: {
        auto it = in_states_.find(in.dst);
        if (it == in_states_.end()) {
          return InvalidArgument(At(pc) + "kInStep without a preceding kInInit");
        }
        ASSIGN_OR_RETURN(ExprPtr item, Read(pc, in.c, "item"));
        it->second.items.push_back(std::move(item));
        it->second.negated = in.negated;
        return OkStatus();
      }
      case Op::kInFinish: {
        auto it = in_states_.find(in.dst);
        if (it == in_states_.end()) {
          return InvalidArgument(At(pc) + "kInFinish without a preceding kInInit");
        }
        InState st = std::move(it->second);
        in_states_.erase(it);
        return Write(pc, in.dst,
                     Expr::In(std::move(st.needle), std::move(st.items),
                              in.negated || st.negated));
      }
      case Op::kBetweenOp: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        ASSIGN_OR_RETURN(ExprPtr lo, Read(pc, in.b, "low"));
        ASSIGN_OR_RETURN(ExprPtr hi, Read(pc, in.c, "high"));
        return Write(pc, in.dst,
                     Expr::Between(std::move(a), std::move(lo), std::move(hi),
                                   in.negated));
      }
      case Op::kLikeOp: {
        ASSIGN_OR_RETURN(ExprPtr a, Read(pc, in.a, "operand"));
        ASSIGN_OR_RETURN(ExprPtr pat, Read(pc, in.b, "pattern"));
        return Write(pc, in.dst, Expr::Like(std::move(a), std::move(pat), in.negated));
      }
      case Op::kCall: {
        std::vector<ExprPtr> args;
        for (int arg : in.args) {
          ASSIGN_OR_RETURN(ExprPtr a, Read(pc, arg, "argument"));
          args.push_back(std::move(a));
        }
        return Write(pc, in.dst, Expr::Call(in.text, std::move(args)));
      }
    }
    return InvalidArgument(At(pc) + "unknown opcode " +
                           std::to_string(static_cast<int>(in.op)));
  }

  const CompiledPredicate& program_;
  const ColumnNamer& namer_;
  std::vector<ExprPtr> regs_;
  std::map<int, InState> in_states_;
};

}  // namespace

Status VerifyProgram(const CompiledPredicate& program,
                     const ProgramCheckOptions& options) {
  return Checker(program, options).Run();
}

StatusOr<ExprPtr> DecompileProgram(const CompiledPredicate& program,
                                   const ColumnNamer& namer) {
  return Decompiler(program, namer).Run();
}

}  // namespace edna::sql
