#include "src/sql/eval.h"

#include <cmath>

#include "src/common/strings.h"

namespace edna::sql {

// --- Shared kernels (declared in eval.h; also used by compile.cc) ------------

Truth TruthOf(const Value& v, Status* error) {
  if (v.is_null()) {
    return Truth::kUnknown;
  }
  if (v.is_bool()) {
    return v.AsBool() ? Truth::kTrue : Truth::kFalse;
  }
  // Permit numeric truthiness (0 = false) to match common SQL dialects.
  if (v.is_numeric()) {
    return v.AsDouble() != 0.0 ? Truth::kTrue : Truth::kFalse;
  }
  *error = InvalidArgument("expected boolean, got " + v.ToSqlString());
  return Truth::kUnknown;
}

Value TruthToValue(Truth t) {
  switch (t) {
    case Truth::kFalse:
      return Value::Bool(false);
    case Truth::kUnknown:
      return Value::Null();
    case Truth::kTrue:
      return Value::Bool(true);
  }
  return Value::Null();
}

StatusOr<Value> CompareValues(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  // Cross-class comparisons (number vs string) are type errors, matching
  // strict SQL modes; this catches schema/spec mistakes early.
  bool a_num = a.is_numeric();
  bool b_num = b.is_numeric();
  if (a_num != b_num || (!a_num && a.type() != b.type())) {
    return InvalidArgument(StrFormat("cannot compare %s with %s",
                                     ValueTypeName(a.type()), ValueTypeName(b.type())));
  }
  int c = a.Compare(b);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq:
      result = c == 0;
      break;
    case BinaryOp::kNe:
      result = c != 0;
      break;
    case BinaryOp::kLt:
      result = c < 0;
      break;
    case BinaryOp::kLe:
      result = c <= 0;
      break;
    case BinaryOp::kGt:
      result = c > 0;
      break;
    case BinaryOp::kGe:
      result = c >= 0;
      break;
    default:
      return Internal("CompareValues called with non-comparison op");
  }
  return Value::Bool(result);
}

StatusOr<Value> ArithmeticValues(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  // Integer-preserving paths.
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(x + y);
      case BinaryOp::kSub:
        return Value::Int(x - y);
      case BinaryOp::kMul:
        return Value::Int(x * y);
      case BinaryOp::kDiv:
        if (y == 0) {
          return InvalidArgument("division by zero");
        }
        return Value::Int(x / y);
      case BinaryOp::kMod:
        if (y == 0) {
          return InvalidArgument("modulo by zero");
        }
        return Value::Int(x % y);
      default:
        break;
    }
  }
  ASSIGN_OR_RETURN(double x, a.ToNumber());
  ASSIGN_OR_RETURN(double y, b.ToNumber());
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(x + y);
    case BinaryOp::kSub:
      return Value::Double(x - y);
    case BinaryOp::kMul:
      return Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0) {
        return InvalidArgument("division by zero");
      }
      return Value::Double(x / y);
    case BinaryOp::kMod:
      if (y == 0) {
        return InvalidArgument("modulo by zero");
      }
      return Value::Double(std::fmod(x, y));
    default:
      return Internal("Arithmetic called with non-arithmetic op");
  }
}

std::string StringifyValue(const Value& v) {
  if (v.is_string()) {
    return v.AsString();
  }
  if (v.is_null()) {
    return "";
  }
  return v.ToSqlString();
}

StatusOr<Value> CallScalarFunction(const std::string& name,
                                   const std::vector<Value>& args) {
  auto arity = [&](size_t want) -> Status {
    if (args.size() != want) {
      return InvalidArgument(
          StrFormat("%s expects %zu argument(s), got %zu", name.c_str(), want, args.size()));
    }
    return OkStatus();
  };

  if (name == "LOWER") {
    RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      return Value::Null();
    }
    return Value::String(AsciiLower(StringifyValue(args[0])));
  }
  if (name == "UPPER") {
    RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      return Value::Null();
    }
    return Value::String(AsciiUpper(StringifyValue(args[0])));
  }
  if (name == "LENGTH") {
    RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      return Value::Null();
    }
    if (args[0].is_blob()) {
      return Value::Int(static_cast<int64_t>(args[0].AsBlob().size()));
    }
    return Value::Int(static_cast<int64_t>(StringifyValue(args[0]).size()));
  }
  if (name == "ABS") {
    RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      return Value::Null();
    }
    if (args[0].is_int()) {
      int64_t v = args[0].AsInt();
      return Value::Int(v < 0 ? -v : v);
    }
    ASSIGN_OR_RETURN(double d, args[0].ToNumber());
    return Value::Double(std::fabs(d));
  }
  if (name == "COALESCE") {
    if (args.empty()) {
      return InvalidArgument("COALESCE expects at least one argument");
    }
    for (const Value& a : args) {
      if (!a.is_null()) {
        return a;
      }
    }
    return Value::Null();
  }
  if (name == "IFNULL") {
    RETURN_IF_ERROR(arity(2));
    return args[0].is_null() ? args[1] : args[0];
  }
  if (name == "SUBSTR" || name == "SUBSTRING") {
    if (args.size() != 2 && args.size() != 3) {
      return InvalidArgument("SUBSTR expects 2 or 3 arguments");
    }
    if (args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    std::string s = StringifyValue(args[0]);
    ASSIGN_OR_RETURN(double startd, args[1].ToNumber());
    int64_t start = static_cast<int64_t>(startd);  // 1-based, SQL style
    if (start < 1) {
      start = 1;
    }
    size_t from = static_cast<size_t>(start - 1);
    if (from >= s.size()) {
      return Value::String("");
    }
    size_t len = s.size() - from;
    if (args.size() == 3 && !args[2].is_null()) {
      ASSIGN_OR_RETURN(double lend, args[2].ToNumber());
      if (lend < 0) {
        lend = 0;
      }
      len = std::min<size_t>(len, static_cast<size_t>(lend));
    }
    return Value::String(s.substr(from, len));
  }
  if (name == "REPLACE") {
    RETURN_IF_ERROR(arity(3));
    if (args[0].is_null()) {
      return Value::Null();
    }
    return Value::String(
        StrReplaceAll(StringifyValue(args[0]), StringifyValue(args[1]), StringifyValue(args[2])));
  }
  if (name == "CONCAT") {
    std::string out;
    for (const Value& a : args) {
      if (!a.is_null()) {
        out += StringifyValue(a);
      }
    }
    return Value::String(std::move(out));
  }
  if (name == "MIN" || name == "MAX") {
    // Scalar (non-aggregate) min/max over the argument list.
    if (args.empty()) {
      return InvalidArgument(name + " expects at least one argument");
    }
    Value best = args[0];
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i].is_null() || best.is_null()) {
        return Value::Null();
      }
      int c = args[i].Compare(best);
      if ((name == "MIN" && c < 0) || (name == "MAX" && c > 0)) {
        best = args[i];
      }
    }
    return best;
  }
  return InvalidArgument("unknown function: " + name);
}

namespace {

class Evaluator {
 public:
  Evaluator(const ColumnResolver& columns, const ParamMap& params)
      : columns_(columns), params_(params) {}

  StatusOr<Value> Eval(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral:
        return e.literal();
      case ExprKind::kColumnRef: {
        if (!columns_) {
          return InvalidArgument("expression references column \"" + e.column() +
                                 "\" but no row context was provided");
        }
        return columns_(e.table(), e.column());
      }
      case ExprKind::kParam: {
        auto it = params_.find(e.param_name());
        if (it == params_.end()) {
          return InvalidArgument("unbound parameter $" + e.param_name());
        }
        return it->second;
      }
      case ExprKind::kUnary: {
        ASSIGN_OR_RETURN(Value v, Eval(*e.children()[0]));
        switch (e.unary_op()) {
          case UnaryOp::kNot: {
            Status err = OkStatus();
            Truth t = TruthOf(v, &err);
            RETURN_IF_ERROR(err);
            if (t == Truth::kUnknown) {
              return Value::Null();
            }
            return Value::Bool(t == Truth::kFalse);
          }
          case UnaryOp::kNeg: {
            if (v.is_null()) {
              return Value::Null();
            }
            if (v.is_int()) {
              return Value::Int(-v.AsInt());
            }
            ASSIGN_OR_RETURN(double d, v.ToNumber());
            return Value::Double(-d);
          }
          case UnaryOp::kPlus: {
            if (v.is_null()) {
              return Value::Null();
            }
            RETURN_IF_ERROR(v.ToNumber().status());
            return v;
          }
        }
        return Internal("bad unary op");
      }
      case ExprKind::kBinary:
        return EvalBinary(e);
      case ExprKind::kIsNull: {
        ASSIGN_OR_RETURN(Value v, Eval(*e.children()[0]));
        bool is_null = v.is_null();
        return Value::Bool(e.negated() ? !is_null : is_null);
      }
      case ExprKind::kIn: {
        ASSIGN_OR_RETURN(Value needle, Eval(*e.children()[0]));
        if (needle.is_null()) {
          return Value::Null();
        }
        bool saw_null = false;
        for (size_t i = 1; i < e.children().size(); ++i) {
          ASSIGN_OR_RETURN(Value item, Eval(*e.children()[i]));
          if (item.is_null()) {
            saw_null = true;
            continue;
          }
          ASSIGN_OR_RETURN(Value eq, CompareValues(BinaryOp::kEq, needle, item));
          if (!eq.is_null() && eq.AsBool()) {
            return Value::Bool(!e.negated());
          }
        }
        // SQL: x IN (..NULL..) is UNKNOWN when nothing matched but NULL seen.
        if (saw_null) {
          return Value::Null();
        }
        return Value::Bool(e.negated());
      }
      case ExprKind::kBetween: {
        ASSIGN_OR_RETURN(Value v, Eval(*e.children()[0]));
        ASSIGN_OR_RETURN(Value lo, Eval(*e.children()[1]));
        ASSIGN_OR_RETURN(Value hi, Eval(*e.children()[2]));
        ASSIGN_OR_RETURN(Value ge, CompareValues(BinaryOp::kGe, v, lo));
        ASSIGN_OR_RETURN(Value le, CompareValues(BinaryOp::kLe, v, hi));
        Status err = OkStatus();
        Truth tg = TruthOf(ge, &err);
        RETURN_IF_ERROR(err);
        Truth tl = TruthOf(le, &err);
        RETURN_IF_ERROR(err);
        Truth both = std::min(tg, tl);  // Kleene AND
        if (e.negated()) {
          if (both == Truth::kUnknown) {
            return Value::Null();
          }
          return Value::Bool(both == Truth::kFalse);
        }
        return TruthToValue(both);
      }
      case ExprKind::kLike: {
        ASSIGN_OR_RETURN(Value v, Eval(*e.children()[0]));
        ASSIGN_OR_RETURN(Value pat, Eval(*e.children()[1]));
        if (v.is_null() || pat.is_null()) {
          return Value::Null();
        }
        if (!v.is_string() || !pat.is_string()) {
          return InvalidArgument("LIKE requires string operands");
        }
        bool m = LikeMatch(v.AsString(), pat.AsString());
        return Value::Bool(e.negated() ? !m : m);
      }
      case ExprKind::kCall: {
        std::vector<Value> args;
        args.reserve(e.children().size());
        for (const ExprPtr& c : e.children()) {
          ASSIGN_OR_RETURN(Value v, Eval(*c));
          args.push_back(std::move(v));
        }
        return CallScalarFunction(e.function(), args);
      }
    }
    return Internal("bad expression kind");
  }

 private:
  StatusOr<Value> EvalBinary(const Expr& e) {
    BinaryOp op = e.binary_op();
    // Short-circuiting Kleene AND/OR.
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      ASSIGN_OR_RETURN(Value lv, Eval(*e.children()[0]));
      Status err = OkStatus();
      Truth lt = TruthOf(lv, &err);
      RETURN_IF_ERROR(err);
      if (op == BinaryOp::kAnd && lt == Truth::kFalse) {
        return Value::Bool(false);
      }
      if (op == BinaryOp::kOr && lt == Truth::kTrue) {
        return Value::Bool(true);
      }
      ASSIGN_OR_RETURN(Value rv, Eval(*e.children()[1]));
      Truth rt = TruthOf(rv, &err);
      RETURN_IF_ERROR(err);
      Truth result = (op == BinaryOp::kAnd) ? std::min(lt, rt) : std::max(lt, rt);
      return TruthToValue(result);
    }

    ASSIGN_OR_RETURN(Value a, Eval(*e.children()[0]));
    ASSIGN_OR_RETURN(Value b, Eval(*e.children()[1]));
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        return ArithmeticValues(op, a, b);
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return CompareValues(op, a, b);
      case BinaryOp::kConcat: {
        if (a.is_null() || b.is_null()) {
          return Value::Null();
        }
        return Value::String(StringifyValue(a) + StringifyValue(b));
      }
      default:
        return Internal("bad binary op");
    }
  }

  const ColumnResolver& columns_;
  const ParamMap& params_;
};

}  // namespace

StatusOr<Value> Evaluate(const Expr& expr, const ColumnResolver& columns,
                         const ParamMap& params) {
  Evaluator eval(columns, params);
  return eval.Eval(expr);
}

StatusOr<bool> EvaluatePredicate(const Expr& expr, const ColumnResolver& columns,
                                 const ParamMap& params) {
  ASSIGN_OR_RETURN(Value v, Evaluate(expr, columns, params));
  if (v.is_null()) {
    return false;  // UNKNOWN filters out, as in SQL WHERE
  }
  Status err = OkStatus();
  Truth t = TruthOf(v, &err);
  RETURN_IF_ERROR(err);
  return t == Truth::kTrue;
}

StatusOr<Value> EvaluateConstant(const Expr& expr, const ParamMap& params) {
  return Evaluate(expr, ColumnResolver(), params);
}

bool IsConstantExpression(const Expr& expr) {
  if (expr.kind() == ExprKind::kColumnRef) {
    return false;
  }
  for (const ExprPtr& c : expr.children()) {
    if (!IsConstantExpression(*c)) {
      return false;
    }
  }
  return true;
}

}  // namespace edna::sql
