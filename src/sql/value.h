// The dynamic value model shared by the SQL expression evaluator and the
// relational engine. A Value is one of: NULL, 64-bit integer, double, bool,
// string, or a byte blob. Semantics follow SQL conventions where they matter
// (three-valued logic lives in the evaluator; comparisons here are total for
// use in indexes, with NULL ordered first).
#ifndef SRC_SQL_VALUE_H_
#define SRC_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace edna::sql {

enum class ValueType { kNull = 0, kInt, kDouble, kBool, kString, kBlob };

const char* ValueTypeName(ValueType t);

class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Bool(bool v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Blob(std::vector<uint8_t> v) { return Value(std::move(v)); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_blob() const { return type() == ValueType::kBlob; }
  bool is_numeric() const { return is_int() || is_double() || is_bool(); }

  // Accessors assert the type in debug builds.
  int64_t AsInt() const;
  double AsDouble() const;       // accepts int/double/bool
  bool AsBool() const;
  const std::string& AsString() const;
  const std::vector<uint8_t>& AsBlob() const;

  // Numeric coercion used by comparisons/arithmetic: int & bool widen to
  // double. Error if not numeric.
  StatusOr<double> ToNumber() const;

  // SQL-literal rendering: NULL, 42, 3.5, TRUE, 'text', x'0aff'.
  std::string ToSqlString() const;

  // Total order over all values for index keys and deterministic sorting:
  // NULL < numerics/bools (by numeric value; ties broken by type) < strings
  // < blobs. Returns -1/0/+1.
  int Compare(const Value& other) const;

  // SQL equality ignoring the NULL question (NULL handling is the
  // evaluator's job): 1 == 1.0, TRUE == 1.
  bool SqlEquals(const Value& other) const { return Compare(other) == 0; }

  // Exact structural equality (type-sensitive): Int(1) != Double(1.0).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Stable 64-bit hash consistent with Compare-equality for use in hash
  // indexes (values that Compare equal hash equal).
  uint64_t Hash() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(std::vector<uint8_t> v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, bool, std::string,
               std::vector<uint8_t>>
      data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

// Equality functor matching ValueHash (Compare-based).
struct ValueSqlEq {
  bool operator()(const Value& a, const Value& b) const { return a.SqlEquals(b); }
};

}  // namespace edna::sql

#endif  // SRC_SQL_VALUE_H_
