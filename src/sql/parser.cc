#include "src/sql/parser.h"

#include <vector>

#include "src/common/strings.h"
#include "src/sql/lexer.h"

namespace edna::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> Parse() {
    ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return InvalidArgument(StrFormat("trailing input at offset %zu near '%s'",
                                       Peek().offset, TokenKindName(Peek().kind)));
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Consume() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      Consume();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind) {
    if (!Match(kind)) {
      return InvalidArgument(StrFormat("expected %s at offset %zu, found %s",
                                       TokenKindName(kind), Peek().offset,
                                       TokenKindName(Peek().kind)));
    }
    return OkStatus();
  }

  StatusOr<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Match(TokenKind::kOr)) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Match(TokenKind::kAnd)) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  StatusOr<ExprPtr> ParsePredicate() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseConcat());

    // IS [NOT] NULL
    if (Match(TokenKind::kIs)) {
      bool negated = Match(TokenKind::kNot);
      RETURN_IF_ERROR(Expect(TokenKind::kNull));
      return Expr::IsNull(std::move(lhs), negated);
    }

    bool negated = false;
    if (Peek().kind == TokenKind::kNot &&
        (Peek(1).kind == TokenKind::kIn || Peek(1).kind == TokenKind::kBetween ||
         Peek(1).kind == TokenKind::kLike)) {
      Consume();
      negated = true;
    }

    if (Match(TokenKind::kIn)) {
      RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<ExprPtr> items;
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          ASSIGN_OR_RETURN(ExprPtr item, ParseOr());
          items.push_back(std::move(item));
          if (!Match(TokenKind::kComma)) {
            break;
          }
        }
      }
      RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Expr::In(std::move(lhs), std::move(items), negated);
    }

    if (Match(TokenKind::kBetween)) {
      ASSIGN_OR_RETURN(ExprPtr lo, ParseConcat());
      RETURN_IF_ERROR(Expect(TokenKind::kAnd));
      ASSIGN_OR_RETURN(ExprPtr hi, ParseConcat());
      return Expr::Between(std::move(lhs), std::move(lo), std::move(hi), negated);
    }

    if (Match(TokenKind::kLike)) {
      ASSIGN_OR_RETURN(ExprPtr pattern, ParseConcat());
      return Expr::Like(std::move(lhs), std::move(pattern), negated);
    }

    if (negated) {
      return InvalidArgument(StrFormat("dangling NOT at offset %zu", Peek().offset));
    }

    // Comparison operators.
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Consume();
    ASSIGN_OR_RETURN(ExprPtr rhs, ParseConcat());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  StatusOr<ExprPtr> ParseConcat() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (Match(TokenKind::kConcat)) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Expr::Binary(BinaryOp::kConcat, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      Consume();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Consume();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    if (Match(TokenKind::kPlus)) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kPlus, std::move(operand));
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        Token tok = Consume();
        return Expr::Literal(Value::Int(tok.int_value));
      }
      case TokenKind::kDoubleLiteral: {
        Token tok = Consume();
        return Expr::Literal(Value::Double(tok.double_value));
      }
      case TokenKind::kStringLiteral: {
        Token tok = Consume();
        return Expr::Literal(Value::String(std::move(tok.text)));
      }
      case TokenKind::kBlobLiteral: {
        Token tok = Consume();
        std::vector<uint8_t> bytes;
        HexToBytes(tok.text, &bytes);  // validated by lexer
        return Expr::Literal(Value::Blob(std::move(bytes)));
      }
      case TokenKind::kNull:
        Consume();
        return Expr::Literal(Value::Null());
      case TokenKind::kTrue:
        Consume();
        return Expr::Literal(Value::Bool(true));
      case TokenKind::kFalse:
        Consume();
        return Expr::Literal(Value::Bool(false));
      case TokenKind::kParameter: {
        Token tok = Consume();
        return Expr::Param(std::move(tok.text));
      }
      case TokenKind::kLParen: {
        Consume();
        ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kIdentifier: {
        Token name = Consume();
        // Function call?
        if (Peek().kind == TokenKind::kLParen) {
          Consume();
          std::vector<ExprPtr> args;
          if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (!Match(TokenKind::kComma)) {
                break;
              }
            }
          }
          RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return Expr::Call(AsciiUpper(name.text), std::move(args));
        }
        // Qualified column: table.column.
        if (Match(TokenKind::kDot)) {
          if (Peek().kind != TokenKind::kIdentifier) {
            return InvalidArgument(
                StrFormat("expected column name after '.' at offset %zu", Peek().offset));
          }
          Token col = Consume();
          return Expr::ColumnRef(std::move(name.text), std::move(col.text));
        }
        return Expr::ColumnRef("", std::move(name.text));
      }
      default:
        return InvalidArgument(StrFormat("unexpected %s at offset %zu",
                                         TokenKindName(t.kind), t.offset));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ExprPtr> ParseExpression(std::string_view input) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace edna::sql
