// Token model for the SQL-expression lexer.
#ifndef SRC_SQL_TOKEN_H_
#define SRC_SQL_TOKEN_H_

#include <string>

namespace edna::sql {

enum class TokenKind {
  kEnd,
  kIdentifier,   // column names; bare or "quoted" / `quoted`
  kParameter,    // $NAME, e.g. $UID
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // 'text' with '' escaping
  kBlobLiteral,    // x'hex'
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,        // = or ==
  kNe,        // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,    // ||
  // Keywords (case-insensitive).
  kAnd,
  kOr,
  kNot,
  kIs,
  kIn,
  kLike,
  kBetween,
  kNull,
  kTrue,
  kFalse,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/parameter name or literal spelling
  int64_t int_value = 0;  // for kIntLiteral
  double double_value = 0.0;
  size_t offset = 0;      // byte offset in the source, for error messages
};

}  // namespace edna::sql

#endif  // SRC_SQL_TOKEN_H_
