// Expression AST produced by the parser and consumed by the evaluator.
// Nodes are immutable after construction and owned through unique_ptr.
#ifndef SRC_SQL_AST_H_
#define SRC_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sql/value.h"

namespace edna::sql {

enum class ExprKind {
  kLiteral,    // constant Value
  kColumnRef,  // column (optionally table-qualified)
  kParam,      // $NAME placeholder bound at evaluation time
  kUnary,      // NOT x, -x, +x
  kBinary,     // arithmetic / comparison / AND / OR / concat
  kIsNull,     // x IS [NOT] NULL
  kIn,         // x [NOT] IN (a, b, ...)
  kBetween,    // x [NOT] BETWEEN lo AND hi
  kLike,       // x [NOT] LIKE pattern
  kCall,       // scalar function call: LOWER(x), COALESCE(a,b), ...
};

enum class UnaryOp { kNot, kNeg, kPlus };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kConcat,
};

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(std::string table, std::string column);
  static ExprPtr Param(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr IsNull(ExprPtr operand, bool negated);
  static ExprPtr In(ExprPtr needle, std::vector<ExprPtr> haystack, bool negated);
  static ExprPtr Between(ExprPtr operand, ExprPtr lo, ExprPtr hi, bool negated);
  static ExprPtr Like(ExprPtr operand, ExprPtr pattern, bool negated);
  static ExprPtr Call(std::string function, std::vector<ExprPtr> args);

  ExprKind kind() const { return kind_; }

  // kLiteral
  const Value& literal() const { return literal_; }
  // kColumnRef
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }
  // kParam
  const std::string& param_name() const { return column_; }
  // kCall
  const std::string& function() const { return column_; }
  // kUnary / kBinary
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  // Children by role. For kUnary/kIsNull/kLike/kBetween/kIn the primary
  // operand is children()[0]; for kBinary lhs/rhs are [0]/[1]; for kBetween
  // lo/hi are [1]/[2]; for kLike the pattern is [1]; for kIn the list starts
  // at [1]; for kCall all children are arguments.
  const std::vector<ExprPtr>& children() const { return children_; }
  bool negated() const { return negated_; }

  // Re-renders the expression as parseable SQL text (used for spec
  // round-tripping, logging, and the disguise log).
  std::string ToString() const;

  // Structural deep copy.
  ExprPtr Clone() const;

  // True if any subexpression references parameter `name`.
  bool ReferencesParam(const std::string& name) const;

  // Collects the distinct column names referenced (unqualified form).
  void CollectColumns(std::vector<std::string>* out) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  std::string table_;   // kColumnRef qualifier, may be empty
  std::string column_;  // column / param / function name
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kEq;
  bool negated_ = false;
  std::vector<ExprPtr> children_;
};

}  // namespace edna::sql

#endif  // SRC_SQL_AST_H_
