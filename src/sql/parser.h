// Recursive-descent / Pratt parser for SQL scalar expressions.
//
// Grammar (lowest to highest precedence):
//   or_expr     := and_expr (OR and_expr)*
//   and_expr    := not_expr (AND not_expr)*
//   not_expr    := NOT not_expr | predicate
//   predicate   := concat ( IS [NOT] NULL
//                         | [NOT] IN '(' expr (',' expr)* ')'
//                         | [NOT] BETWEEN concat AND concat
//                         | [NOT] LIKE concat
//                         | cmp_op concat )?
//   concat      := additive ('||' additive)*
//   additive    := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/'|'%') unary)*
//   unary       := ('-'|'+') unary | primary
//   primary     := literal | param | column | function '(' args ')' | '(' or_expr ')'
//   column      := identifier ('.' identifier)?
#ifndef SRC_SQL_PARSER_H_
#define SRC_SQL_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/sql/ast.h"

namespace edna::sql {

// Parses a complete expression; trailing tokens are an error.
StatusOr<ExprPtr> ParseExpression(std::string_view input);

}  // namespace edna::sql

#endif  // SRC_SQL_PARSER_H_
