#include "src/sql/ast.h"

#include <algorithm>

#include "src/common/strings.h"

namespace edna::sql {

namespace {
// Renders an identifier with SQL doubling of embedded quotes, matching the
// lexer's escape rule for quoted identifiers.
std::string QuoteIdent(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  out.push_back('"');
  for (char ch : name) {
    if (ch == '"') {
      out.push_back('"');
    }
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kPlus:
      return "+";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string table, std::string column) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->table_ = std::move(table);
  e->column_ = std::move(column);
  return e;
}

ExprPtr Expr::Param(std::string name) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kParam;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->children_.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::IsNull(ExprPtr operand, bool negated) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kIsNull;
  e->negated_ = negated;
  e->children_.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::In(ExprPtr needle, std::vector<ExprPtr> haystack, bool negated) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kIn;
  e->negated_ = negated;
  e->children_.push_back(std::move(needle));
  for (ExprPtr& item : haystack) {
    e->children_.push_back(std::move(item));
  }
  return e;
}

ExprPtr Expr::Between(ExprPtr operand, ExprPtr lo, ExprPtr hi, bool negated) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kBetween;
  e->negated_ = negated;
  e->children_.push_back(std::move(operand));
  e->children_.push_back(std::move(lo));
  e->children_.push_back(std::move(hi));
  return e;
}

ExprPtr Expr::Like(ExprPtr operand, ExprPtr pattern, bool negated) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kLike;
  e->negated_ = negated;
  e->children_.push_back(std::move(operand));
  e->children_.push_back(std::move(pattern));
  return e;
}

ExprPtr Expr::Call(std::string function, std::vector<ExprPtr> args) {
  ExprPtr e(new Expr());
  e->kind_ = ExprKind::kCall;
  e->column_ = std::move(function);
  e->children_ = std::move(args);
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToSqlString();
    case ExprKind::kColumnRef: {
      std::string out;
      if (!table_.empty()) {
        out += QuoteIdent(table_) + ".";
      }
      out += QuoteIdent(column_);
      return out;
    }
    case ExprKind::kParam:
      return "$" + column_;
    case ExprKind::kUnary:
      if (unary_op_ == UnaryOp::kNot) {
        return std::string("NOT (") + children_[0]->ToString() + ")";
      }
      return std::string(UnaryOpName(unary_op_)) + "(" + children_[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " + BinaryOpName(binary_op_) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kIsNull:
      return "(" + children_[0]->ToString() + (negated_ ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kIn: {
      std::vector<std::string> items;
      for (size_t i = 1; i < children_.size(); ++i) {
        items.push_back(children_[i]->ToString());
      }
      return "(" + children_[0]->ToString() + (negated_ ? " NOT IN (" : " IN (") +
             StrJoin(items, ", ") + "))";
    }
    case ExprKind::kBetween:
      return "(" + children_[0]->ToString() + (negated_ ? " NOT BETWEEN " : " BETWEEN ") +
             children_[1]->ToString() + " AND " + children_[2]->ToString() + ")";
    case ExprKind::kLike:
      return "(" + children_[0]->ToString() + (negated_ ? " NOT LIKE " : " LIKE ") +
             children_[1]->ToString() + ")";
    case ExprKind::kCall: {
      std::vector<std::string> args;
      for (const ExprPtr& a : children_) {
        args.push_back(a->ToString());
      }
      return column_ + "(" + StrJoin(args, ", ") + ")";
    }
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  ExprPtr e(new Expr());
  e->kind_ = kind_;
  e->literal_ = literal_;
  e->table_ = table_;
  e->column_ = column_;
  e->unary_op_ = unary_op_;
  e->binary_op_ = binary_op_;
  e->negated_ = negated_;
  e->children_.reserve(children_.size());
  for (const ExprPtr& c : children_) {
    e->children_.push_back(c->Clone());
  }
  return e;
}

bool Expr::ReferencesParam(const std::string& name) const {
  if (kind_ == ExprKind::kParam && column_ == name) {
    return true;
  }
  return std::any_of(children_.begin(), children_.end(),
                     [&](const ExprPtr& c) { return c->ReferencesParam(name); });
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), column_) == out->end()) {
      out->push_back(column_);
    }
  }
  for (const ExprPtr& c : children_) {
    c->CollectColumns(out);
  }
}

}  // namespace edna::sql
