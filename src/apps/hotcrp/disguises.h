// The three HotCRP disguises evaluated in the paper (Figure 4, §6):
//   * HotCRP-GDPR   — HotCRP's current account-deletion policy: transitively
//                     delete all of the user's data, including reviews.
//   * HotCRP-GDPR+  — user scrubbing (§3): delete the account and
//                     user-only data, but retain reviews and comments,
//                     decorrelated onto per-row placeholder users.
//   * HotCRP-ConfAnon — anonymize the whole conference: decorrelate every
//                     review/comment/conflict from real identities and
//                     scrub identifying content. Global (not per-user).
#ifndef SRC_APPS_HOTCRP_DISGUISES_H_
#define SRC_APPS_HOTCRP_DISGUISES_H_

#include <string>

#include "src/common/status.h"
#include "src/disguise/spec.h"

namespace edna::hotcrp {

// Raw spec texts (the artifacts whose effective line counts Figure 4 reports).
const std::string& GdprSpecText();
const std::string& GdprPlusSpecText();
const std::string& ConfAnonSpecText();

// Parsed specs.
StatusOr<disguise::DisguiseSpec> GdprSpec();
StatusOr<disguise::DisguiseSpec> GdprPlusSpec();
StatusOr<disguise::DisguiseSpec> ConfAnonSpec();

inline constexpr char kGdprName[] = "HotCRP-GDPR";
inline constexpr char kGdprPlusName[] = "HotCRP-GDPR+";
inline constexpr char kConfAnonName[] = "HotCRP-ConfAnon";

}  // namespace edna::hotcrp

#endif  // SRC_APPS_HOTCRP_DISGUISES_H_
