// Synthetic HotCRP workload generator. Default sizes reproduce the paper's
// §6 experiment: "a HotCRP database with 430 users (30 PC members), 450
// papers, and 1400 reviews". All content is deterministic in the seed.
#ifndef SRC_APPS_HOTCRP_GENERATOR_H_
#define SRC_APPS_HOTCRP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"

namespace edna::hotcrp {

struct Config {
  size_t num_users = 430;
  size_t num_pc = 30;
  size_t num_papers = 450;
  size_t num_reviews = 1400;
  size_t num_topics = 20;
  double comment_rate = 0.4;     // comments per review
  double preference_rate = 6.0;  // preferences per PC member
  uint64_t seed = 42;

  // Proportionally scaled config (for the linear-scaling experiment).
  Config Scaled(double factor) const;
};

struct Generated {
  std::vector<int64_t> all_contact_ids;
  std::vector<int64_t> pc_contact_ids;
  std::vector<int64_t> paper_ids;
  std::vector<int64_t> review_ids;
};

// Creates all tables (BuildSchema) and fills them. The database must be
// empty of HotCRP tables.
StatusOr<Generated> Populate(db::Database* db, const Config& config);

}  // namespace edna::hotcrp

#endif  // SRC_APPS_HOTCRP_GENERATOR_H_
