#include "src/apps/hotcrp/schema.h"

#include <cassert>

namespace edna::hotcrp {

namespace {

using db::ColumnDef;
using db::ColumnType;
using db::FkAction;
using db::ForeignKeyDef;
using db::Sensitivity;
using db::TableSchema;

// Sensitivity annotations for the PII taint analysis (src/analysis/taint.h):
// Pii marks direct identifiers and secrets, Quasi marks free text and
// attributes that deanonymize in combination.
ColumnDef Pii(ColumnDef col) {
  col.sensitivity = Sensitivity::kPii;
  return col;
}
ColumnDef Quasi(ColumnDef col) {
  col.sensitivity = Sensitivity::kQuasi;
  return col;
}

ColumnDef IntCol(const char* name, bool nullable = false) {
  return {.name = name, .type = ColumnType::kInt, .nullable = nullable};
}
ColumnDef AutoPk(const char* name) {
  return {.name = name, .type = ColumnType::kInt, .nullable = false, .auto_increment = true};
}
ColumnDef StrCol(const char* name, bool nullable = true) {
  return {.name = name, .type = ColumnType::kString, .nullable = nullable};
}
ColumnDef BoolCol(const char* name, bool dflt = false) {
  return {.name = name,
          .type = ColumnType::kBool,
          .nullable = false,
          .default_value = sql::Value::Bool(dflt)};
}
ForeignKeyDef Fk(const char* col, const char* parent, const char* pcol,
                 FkAction action = FkAction::kRestrict) {
  return {.column = col, .parent_table = parent, .parent_column = pcol, .on_delete = action};
}

TableSchema ContactInfo() {
  TableSchema t("ContactInfo");
  t.AddColumn(AutoPk("contactId"))
      .AddColumn(Pii(StrCol("name", false)))
      .AddColumn(Pii(StrCol("email")))
      .AddColumn(Quasi(StrCol("affiliation")))
      .AddColumn(Pii(StrCol("passwordHash")))
      .AddColumn(Quasi(StrCol("country")))
      .AddColumn(IntCol("roles"))
      .AddColumn(BoolCol("disabled"))
      .AddColumn(IntCol("lastLogin", true))
      .AddColumn(IntCol("creationTime"))
      .AddColumn(Pii(StrCol("collaborators")))
      .AddColumn(StrCol("defaultWatch"))
      .SetPrimaryKey({"contactId"})
      // ConfAnon selects active accounts by `"disabled" = FALSE`.
      .AddIndex("disabled");
  return t;
}

TableSchema Paper() {
  TableSchema t("Paper");
  t.AddColumn(AutoPk("paperId"))
      .AddColumn(StrCol("title", false))
      .AddColumn(StrCol("abstract"))
      .AddColumn(Pii(StrCol("authorInformation")))
      .AddColumn(IntCol("timeSubmitted"))
      .AddColumn(IntCol("timeWithdrawn"))
      .AddColumn(IntCol("outcome"))
      .AddColumn(IntCol("leadContactId", true))
      .AddColumn(IntCol("shepherdContactId", true))
      .AddColumn(IntCol("managerContactId", true))
      .SetPrimaryKey({"paperId"})
      .AddForeignKey(Fk("leadContactId", "ContactInfo", "contactId", FkAction::kSetNull))
      .AddForeignKey(Fk("shepherdContactId", "ContactInfo", "contactId", FkAction::kSetNull))
      .AddForeignKey(Fk("managerContactId", "ContactInfo", "contactId", FkAction::kSetNull));
  return t;
}

TableSchema PaperConflict() {
  TableSchema t("PaperConflict");
  t.AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("conflictType"))
      .SetPrimaryKey({"paperId", "contactId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"))
      // ConfAnon decorrelates conflicts via `"conflictType" >= 0` (range).
      .AddIndex("conflictType");
  return t;
}

TableSchema PaperReview() {
  TableSchema t("PaperReview");
  t.AddColumn(AutoPk("reviewId"))
      .AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("requestedBy", true))
      .AddColumn(IntCol("reviewType"))
      .AddColumn(IntCol("reviewRound"))
      .AddColumn(IntCol("overAllMerit"))
      .AddColumn(IntCol("reviewerQualification"))
      .AddColumn(Quasi(StrCol("reviewText")))
      .AddColumn(IntCol("reviewSubmitted", true))
      .AddColumn(IntCol("reviewModified", true))
      .SetPrimaryKey({"reviewId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"))
      .AddForeignKey(Fk("requestedBy", "ContactInfo", "contactId", FkAction::kSetNull));
  return t;
}

TableSchema PaperReviewPreference() {
  TableSchema t("PaperReviewPreference");
  t.AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("preference"))
      .AddColumn(IntCol("expertise", true))
      .SetPrimaryKey({"paperId", "contactId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"));
  return t;
}

TableSchema PaperComment() {
  TableSchema t("PaperComment");
  t.AddColumn(AutoPk("commentId"))
      .AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(Quasi(StrCol("comment")))
      .AddColumn(IntCol("timeModified"))
      .AddColumn(IntCol("commentType"))
      .SetPrimaryKey({"commentId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"));
  return t;
}

TableSchema ReviewRating() {
  TableSchema t("ReviewRating");
  t.AddColumn(AutoPk("ratingId"))
      .AddColumn(IntCol("reviewId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("rating"))
      .SetPrimaryKey({"ratingId"})
      .AddForeignKey(Fk("reviewId", "PaperReview", "reviewId", FkAction::kCascade))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"));
  return t;
}

TableSchema ReviewRequest() {
  TableSchema t("ReviewRequest");
  t.AddColumn(AutoPk("requestId"))
      .AddColumn(IntCol("paperId"))
      .AddColumn(Pii(StrCol("email", false)))
      .AddColumn(Quasi(StrCol("reason")))
      .AddColumn(IntCol("requestedBy", true))
      .SetPrimaryKey({"requestId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("requestedBy", "ContactInfo", "contactId", FkAction::kSetNull));
  return t;
}

TableSchema PaperReviewRefused() {
  TableSchema t("PaperReviewRefused");
  t.AddColumn(AutoPk("refusedId"))
      .AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("refusedBy", true))
      .AddColumn(Quasi(StrCol("reason")))
      .SetPrimaryKey({"refusedId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"))
      .AddForeignKey(Fk("refusedBy", "ContactInfo", "contactId", FkAction::kSetNull));
  return t;
}

TableSchema PaperTag() {
  TableSchema t("PaperTag");
  t.AddColumn(IntCol("paperId"))
      .AddColumn(StrCol("tag", false))
      .AddColumn(IntCol("tagIndex"))
      .SetPrimaryKey({"paperId", "tag"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"));
  return t;
}

TableSchema PaperTagAnno() {
  TableSchema t("PaperTagAnno");
  t.AddColumn(StrCol("tag", false))
      .AddColumn(IntCol("annoId"))
      .AddColumn(StrCol("annoText"))
      .SetPrimaryKey({"tag", "annoId"});
  return t;
}

TableSchema TopicArea() {
  TableSchema t("TopicArea");
  t.AddColumn(AutoPk("topicId"))
      .AddColumn(StrCol("topicName", false))
      .SetPrimaryKey({"topicId"});
  return t;
}

TableSchema PaperTopic() {
  TableSchema t("PaperTopic");
  t.AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("topicId"))
      .SetPrimaryKey({"paperId", "topicId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("topicId", "TopicArea", "topicId"));
  return t;
}

TableSchema TopicInterest() {
  TableSchema t("TopicInterest");
  t.AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("topicId"))
      .AddColumn(IntCol("interest"))
      .SetPrimaryKey({"contactId", "topicId"})
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"))
      .AddForeignKey(Fk("topicId", "TopicArea", "topicId"));
  return t;
}

TableSchema PaperWatch() {
  TableSchema t("PaperWatch");
  t.AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("watch"))
      .SetPrimaryKey({"paperId", "contactId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"));
  return t;
}

TableSchema PaperOption() {
  TableSchema t("PaperOption");
  t.AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("optionId"))
      .AddColumn(StrCol("value"))
      .SetPrimaryKey({"paperId", "optionId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"));
  return t;
}

TableSchema PaperStorage() {
  TableSchema t("PaperStorage");
  t.AddColumn(AutoPk("paperStorageId"))
      .AddColumn(IntCol("paperId"))
      .AddColumn(StrCol("mimetype"))
      .AddColumn(IntCol("size"))
      .AddColumn(StrCol("sha1"))
      .SetPrimaryKey({"paperStorageId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"));
  return t;
}

TableSchema DocumentLink() {
  TableSchema t("DocumentLink");
  t.AddColumn(AutoPk("linkId"))
      .AddColumn(IntCol("paperId"))
      .AddColumn(IntCol("documentId"))
      .AddColumn(IntCol("linkType"))
      .SetPrimaryKey({"linkId"})
      .AddForeignKey(Fk("paperId", "Paper", "paperId"))
      .AddForeignKey(Fk("documentId", "PaperStorage", "paperStorageId", FkAction::kCascade));
  return t;
}

TableSchema ActionLog() {
  TableSchema t("ActionLog");
  t.AddColumn(AutoPk("logId"))
      .AddColumn(IntCol("contactId", true))
      .AddColumn(IntCol("destContactId", true))
      .AddColumn(IntCol("paperId", true))
      .AddColumn(StrCol("action"))
      .AddColumn(Pii(StrCol("ipaddr")))
      .AddColumn(IntCol("timestamp"))
      .SetPrimaryKey({"logId"})
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId", FkAction::kSetNull))
      .AddForeignKey(Fk("destContactId", "ContactInfo", "contactId", FkAction::kSetNull))
      .AddForeignKey(Fk("paperId", "Paper", "paperId", FkAction::kSetNull));
  return t;
}

TableSchema MailLog() {
  TableSchema t("MailLog");
  t.AddColumn(AutoPk("mailId"))
      .AddColumn(Pii(StrCol("recipients")))
      .AddColumn(StrCol("paperIds"))
      .AddColumn(StrCol("subject"))
      .AddColumn(Pii(StrCol("emailBody")))
      .AddColumn(IntCol("timestamp"))
      .SetPrimaryKey({"mailId"});
  return t;
}

TableSchema Capability() {
  TableSchema t("Capability");
  t.AddColumn(AutoPk("capabilityId"))
      .AddColumn(IntCol("capabilityType"))
      .AddColumn(IntCol("contactId"))
      .AddColumn(IntCol("paperId", true))
      .AddColumn(IntCol("timeExpires"))
      .AddColumn(Pii(StrCol("salt")))
      .SetPrimaryKey({"capabilityId"})
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId"))
      .AddForeignKey(Fk("paperId", "Paper", "paperId", FkAction::kSetNull));
  return t;
}

TableSchema Settings() {
  TableSchema t("Settings");
  t.AddColumn(StrCol("name", false))
      .AddColumn(IntCol("value"))
      .AddColumn(StrCol("data"))
      .SetPrimaryKey({"name"});
  return t;
}

TableSchema Formula() {
  TableSchema t("Formula");
  t.AddColumn(AutoPk("formulaId"))
      .AddColumn(StrCol("name", false))
      .AddColumn(StrCol("expression"))
      .AddColumn(IntCol("createdBy", true))
      .SetPrimaryKey({"formulaId"})
      .AddForeignKey(Fk("createdBy", "ContactInfo", "contactId", FkAction::kSetNull));
  return t;
}

TableSchema DeletedContactInfo() {
  TableSchema t("DeletedContactInfo");
  t.AddColumn(IntCol("contactId"))
      .AddColumn(Pii(StrCol("name")))
      .AddColumn(Pii(StrCol("email")))
      .AddColumn(IntCol("deletedAt"))
      .SetPrimaryKey({"contactId"});
  return t;
}

TableSchema Invitation() {
  TableSchema t("Invitation");
  t.AddColumn(AutoPk("invitationId"))
      .AddColumn(Pii(StrCol("email", false)))
      .AddColumn(IntCol("contactId", true))
      .AddColumn(IntCol("invitedBy", true))
      .AddColumn(IntCol("created"))
      .SetPrimaryKey({"invitationId"})
      .AddForeignKey(Fk("contactId", "ContactInfo", "contactId", FkAction::kSetNull))
      .AddForeignKey(Fk("invitedBy", "ContactInfo", "contactId", FkAction::kSetNull));
  return t;
}

}  // namespace

db::Schema BuildSchema() {
  db::Schema schema;
  // Parents before children so AdoptSchema can FK-validate incrementally.
  auto add = [&schema](TableSchema t) {
    Status st = schema.AddTable(std::move(t));
    assert(st.ok());
    (void)st;
  };
  add(ContactInfo());
  add(Paper());
  add(PaperConflict());
  add(PaperReview());
  add(PaperReviewPreference());
  add(PaperComment());
  add(ReviewRating());
  add(ReviewRequest());
  add(PaperReviewRefused());
  add(PaperTag());
  add(PaperTagAnno());
  add(TopicArea());
  add(PaperTopic());
  add(TopicInterest());
  add(PaperWatch());
  add(PaperOption());
  add(PaperStorage());
  add(DocumentLink());
  add(ActionLog());
  add(MailLog());
  add(Capability());
  add(Settings());
  add(Formula());
  add(DeletedContactInfo());
  add(Invitation());
  return schema;
}

const std::vector<std::string>& ObjectTypes() {
  static const std::vector<std::string> kTypes = [] {
    std::vector<std::string> out;
    const db::Schema schema = BuildSchema();  // keep alive across the loop
    for (const db::TableSchema& t : schema.tables()) {
      out.push_back(t.name());
    }
    return out;
  }();
  return kTypes;
}

}  // namespace edna::hotcrp
