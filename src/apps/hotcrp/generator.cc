#include "src/apps/hotcrp/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/apps/hotcrp/schema.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace edna::hotcrp {

namespace {

using sql::Value;

Value S(std::string s) { return Value::String(std::move(s)); }
Value I(int64_t v) { return Value::Int(v); }
Value B(bool v) { return Value::Bool(v); }
Value N() { return Value::Null(); }

std::string Email(Rng* rng, const std::string& name) {
  static const char* kDomains[] = {"uni.edu", "example.org", "lab.io", "inst.ac.uk",
                                   "research.net"};
  return AsciiLower(name) + "." + rng->NextAlphaString(3) + "@" +
         kDomains[rng->NextBounded(5)];
}

std::string Sentence(Rng* rng, size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += rng->NextPseudoword(3, 9);
  }
  out += '.';
  return out;
}

}  // namespace

Config Config::Scaled(double factor) const {
  Config c = *this;
  auto scale = [factor](size_t v) {
    return static_cast<size_t>(std::max<double>(1.0, static_cast<double>(std::llround(static_cast<double>(v) * factor))));
  };
  c.num_users = scale(num_users);
  c.num_pc = std::min(c.num_users, scale(num_pc));
  c.num_papers = scale(num_papers);
  c.num_reviews = scale(num_reviews);
  return c;
}

StatusOr<Generated> Populate(db::Database* db, const Config& config) {
  RETURN_IF_ERROR(db->AdoptSchema(BuildSchema()));
  Rng rng(config.seed);
  Generated gen;

  const int64_t now = 1'600'000'000;

  // --- Topics ---------------------------------------------------------------
  std::vector<int64_t> topic_ids;
  for (size_t i = 0; i < config.num_topics; ++i) {
    ASSIGN_OR_RETURN(db::RowId rid,
                     db->InsertValues("TopicArea",
                                      {{"topicId", N()},
                                       {"topicName", S(rng.NextPseudoword(6, 12))}}));
    ASSIGN_OR_RETURN(Value v, db->GetColumn("TopicArea", rid, "topicId"));
    topic_ids.push_back(v.AsInt());
  }

  // --- Users ------------------------------------------------------------------
  for (size_t i = 0; i < config.num_users; ++i) {
    bool is_pc = i < config.num_pc;
    std::string name = rng.NextPseudoword(4, 8) + " " + rng.NextPseudoword(5, 10);
    ASSIGN_OR_RETURN(
        db::RowId rid,
        db->InsertValues(
            "ContactInfo",
            {{"contactId", N()},
             {"name", S(name)},
             {"email", S(Email(&rng, rng.NextPseudoword(4, 7)))},
             {"affiliation", S(rng.NextPseudoword(5, 12) + " University")},
             {"passwordHash", S(rng.NextAlnumString(32))},
             {"country", S(rng.NextPseudoword(4, 8))},
             {"roles", I(is_pc ? kRolePc : kRoleAuthor)},
             {"disabled", B(false)},
             {"lastLogin", I(now - rng.NextInt(0, 300 * kDay))},
             {"creationTime", I(now - rng.NextInt(300 * kDay, 900 * kDay))},
             {"collaborators", S(Sentence(&rng, 4))},
             {"defaultWatch", S("all")}}));
    ASSIGN_OR_RETURN(Value v, db->GetColumn("ContactInfo", rid, "contactId"));
    gen.all_contact_ids.push_back(v.AsInt());
    if (is_pc) {
      gen.pc_contact_ids.push_back(v.AsInt());
    }
  }

  // --- Papers (each with 1-4 contact authors via PaperConflict) --------------
  for (size_t i = 0; i < config.num_papers; ++i) {
    ASSIGN_OR_RETURN(
        db::RowId rid,
        db->InsertValues("Paper", {{"paperId", N()},
                                   {"title", S(Sentence(&rng, 6))},
                                   {"abstract", S(Sentence(&rng, 40))},
                                   {"authorInformation", S(Sentence(&rng, 8))},
                                   {"timeSubmitted", I(now - rng.NextInt(0, 90 * kDay))},
                                   {"timeWithdrawn", I(0)},
                                   {"outcome", I(rng.NextInt(-1, 1))},
                                   {"leadContactId", N()},
                                   {"shepherdContactId", N()},
                                   {"managerContactId", N()}}));
    ASSIGN_OR_RETURN(Value pid, db->GetColumn("Paper", rid, "paperId"));
    gen.paper_ids.push_back(pid.AsInt());

    size_t num_authors = 1 + rng.NextBounded(4);
    std::set<int64_t> authors;
    while (authors.size() < num_authors) {
      authors.insert(rng.Pick(gen.all_contact_ids));
    }
    for (int64_t author : authors) {
      RETURN_IF_ERROR(db->InsertValues("PaperConflict", {{"paperId", pid},
                                                         {"contactId", I(author)},
                                                         {"conflictType",
                                                          I(kConflictAuthor)}})
                          .status());
    }
  }

  // --- Reviews (PC members review papers) -------------------------------------
  // Deterministic round-robin pairing with jitter keeps (paper, reviewer)
  // pairs unique without rejection loops.
  {
    size_t made = 0;
    size_t paper_idx = 0;
    std::set<std::pair<int64_t, int64_t>> used;
    // A (paper, reviewer) pair can appear once; cap the target so small or
    // oddly-scaled configs cannot request more reviews than pairs exist.
    size_t max_reviews = gen.paper_ids.size() * gen.pc_contact_ids.size();
    size_t target_reviews = std::min(config.num_reviews, max_reviews);
    while (made < target_reviews) {
      int64_t paper = gen.paper_ids[paper_idx % gen.paper_ids.size()];
      ++paper_idx;
      int64_t reviewer = rng.Pick(gen.pc_contact_ids);
      if (!used.insert({paper, reviewer}).second) {
        continue;
      }
      int64_t requested_by = rng.NextBool(0.3)
                                 ? rng.Pick(gen.pc_contact_ids)
                                 : reviewer;
      ASSIGN_OR_RETURN(
          db::RowId rid,
          db->InsertValues("PaperReview",
                           {{"reviewId", N()},
                            {"paperId", I(paper)},
                            {"contactId", I(reviewer)},
                            {"requestedBy", I(requested_by)},
                            {"reviewType", I(rng.NextInt(1, 3))},
                            {"reviewRound", I(rng.NextInt(0, 1))},
                            {"overAllMerit", I(rng.NextInt(1, 5))},
                            {"reviewerQualification", I(rng.NextInt(1, 4))},
                            {"reviewText", S(Sentence(&rng, 80))},
                            {"reviewSubmitted", I(now - rng.NextInt(0, 60 * kDay))},
                            {"reviewModified", I(now - rng.NextInt(0, 30 * kDay))}}));
      ASSIGN_OR_RETURN(Value v, db->GetColumn("PaperReview", rid, "reviewId"));
      gen.review_ids.push_back(v.AsInt());
      ++made;
    }
  }

  // --- Comments on reviews' papers --------------------------------------------
  {
    size_t num_comments =
        static_cast<size_t>(static_cast<double>(config.num_reviews) * config.comment_rate);
    for (size_t i = 0; i < num_comments; ++i) {
      RETURN_IF_ERROR(db->InsertValues("PaperComment",
                                       {{"commentId", N()},
                                        {"paperId", I(rng.Pick(gen.paper_ids))},
                                        {"contactId", I(rng.Pick(gen.pc_contact_ids))},
                                        {"comment", S(Sentence(&rng, 25))},
                                        {"timeModified", I(now)},
                                        {"commentType", I(rng.NextInt(0, 2))}})
                          .status());
    }
  }

  // --- Review preferences -------------------------------------------------------
  for (int64_t pc : gen.pc_contact_ids) {
    size_t prefs = static_cast<size_t>(config.preference_rate);
    std::set<int64_t> pref_papers;
    while (pref_papers.size() < prefs && pref_papers.size() < gen.paper_ids.size()) {
      pref_papers.insert(rng.Pick(gen.paper_ids));
    }
    for (int64_t paper : pref_papers) {
      RETURN_IF_ERROR(db->InsertValues("PaperReviewPreference",
                                       {{"paperId", I(paper)},
                                        {"contactId", I(pc)},
                                        {"preference", I(rng.NextInt(-20, 20))},
                                        {"expertise", I(rng.NextInt(-2, 2))}})
                          .status());
    }
  }

  // --- Topic links ----------------------------------------------------------------
  for (int64_t paper : gen.paper_ids) {
    std::set<int64_t> topics;
    size_t n = 1 + rng.NextBounded(3);
    while (topics.size() < n) {
      topics.insert(rng.Pick(topic_ids));
    }
    for (int64_t topic : topics) {
      RETURN_IF_ERROR(
          db->InsertValues("PaperTopic", {{"paperId", I(paper)}, {"topicId", I(topic)}})
              .status());
    }
  }
  for (int64_t pc : gen.pc_contact_ids) {
    std::set<int64_t> topics;
    size_t n = 2 + rng.NextBounded(4);
    while (topics.size() < n) {
      topics.insert(rng.Pick(topic_ids));
    }
    for (int64_t topic : topics) {
      RETURN_IF_ERROR(db->InsertValues("TopicInterest", {{"contactId", I(pc)},
                                                         {"topicId", I(topic)},
                                                         {"interest",
                                                          I(rng.NextInt(-2, 4))}})
                          .status());
    }
  }

  // --- Watches, ratings, requests, refusals, tags ---------------------------------
  for (size_t i = 0; i < config.num_papers / 3; ++i) {
    int64_t paper = gen.paper_ids[i * 3 % gen.paper_ids.size()];
    int64_t watcher = rng.Pick(gen.pc_contact_ids);
    // Composite PK (paperId, contactId): skip duplicates quietly.
    auto st = db->InsertValues(
        "PaperWatch", {{"paperId", I(paper)}, {"contactId", I(watcher)}, {"watch", I(1)}});
    if (!st.ok() && st.status().code() != StatusCode::kAlreadyExists) {
      return st.status();
    }
  }
  for (size_t i = 0; i < gen.review_ids.size() / 4; ++i) {
    RETURN_IF_ERROR(db->InsertValues("ReviewRating",
                                     {{"ratingId", N()},
                                      {"reviewId", I(rng.Pick(gen.review_ids))},
                                      {"contactId", I(rng.Pick(gen.pc_contact_ids))},
                                      {"rating", I(rng.NextInt(0, 1))}})
                        .status());
  }
  for (size_t i = 0; i < config.num_papers / 10; ++i) {
    RETURN_IF_ERROR(db->InsertValues("ReviewRequest",
                                     {{"requestId", N()},
                                      {"paperId", I(rng.Pick(gen.paper_ids))},
                                      {"email", S(Email(&rng, rng.NextPseudoword(4, 7)))},
                                      {"reason", S(Sentence(&rng, 6))},
                                      {"requestedBy", I(rng.Pick(gen.pc_contact_ids))}})
                        .status());
  }
  for (size_t i = 0; i < config.num_papers / 20; ++i) {
    RETURN_IF_ERROR(db->InsertValues("PaperReviewRefused",
                                     {{"refusedId", N()},
                                      {"paperId", I(rng.Pick(gen.paper_ids))},
                                      {"contactId", I(rng.Pick(gen.pc_contact_ids))},
                                      {"refusedBy", I(rng.Pick(gen.pc_contact_ids))},
                                      {"reason", S(Sentence(&rng, 5))}})
                        .status());
  }
  for (size_t i = 0; i < config.num_papers / 2; ++i) {
    int64_t paper = gen.paper_ids[i * 2 % gen.paper_ids.size()];
    auto st = db->InsertValues("PaperTag", {{"paperId", I(paper)},
                                            {"tag", S(rng.NextPseudoword(4, 8))},
                                            {"tagIndex", I(rng.NextInt(0, 10))}});
    if (!st.ok() && st.status().code() != StatusCode::kAlreadyExists) {
      return st.status();
    }
  }

  // --- Documents, logs, capabilities, misc ------------------------------------------
  for (int64_t paper : gen.paper_ids) {
    ASSIGN_OR_RETURN(db::RowId sid,
                     db->InsertValues("PaperStorage",
                                      {{"paperStorageId", N()},
                                       {"paperId", I(paper)},
                                       {"mimetype", S("application/pdf")},
                                       {"size", I(rng.NextInt(50'000, 5'000'000))},
                                       {"sha1", S(rng.NextAlnumString(40))}}));
    ASSIGN_OR_RETURN(Value doc, db->GetColumn("PaperStorage", sid, "paperStorageId"));
    RETURN_IF_ERROR(db->InsertValues("DocumentLink", {{"linkId", N()},
                                                      {"paperId", I(paper)},
                                                      {"documentId", doc},
                                                      {"linkType", I(0)}})
                        .status());
  }
  for (size_t i = 0; i < config.num_users; ++i) {
    RETURN_IF_ERROR(db->InsertValues("ActionLog",
                                     {{"logId", N()},
                                      {"contactId", I(rng.Pick(gen.all_contact_ids))},
                                      {"destContactId", N()},
                                      {"paperId", I(rng.Pick(gen.paper_ids))},
                                      {"action", S("paper/view")},
                                      {"ipaddr", S(StrFormat("10.0.%d.%d",
                                                             static_cast<int>(
                                                                 rng.NextBounded(256)),
                                                             static_cast<int>(
                                                                 rng.NextBounded(256))))},
                                      {"timestamp", I(now - rng.NextInt(0, 90 * kDay))}})
                        .status());
  }
  for (size_t i = 0; i < config.num_users / 10; ++i) {
    RETURN_IF_ERROR(db->InsertValues("MailLog",
                                     {{"mailId", N()},
                                      {"recipients", S(Email(&rng, "pc"))},
                                      {"paperIds", S(std::to_string(rng.Pick(gen.paper_ids)))},
                                      {"subject", S(Sentence(&rng, 5))},
                                      {"emailBody", S(Sentence(&rng, 30))},
                                      {"timestamp", I(now)}})
                        .status());
  }
  for (size_t i = 0; i < config.num_users / 20; ++i) {
    RETURN_IF_ERROR(db->InsertValues("Capability",
                                     {{"capabilityId", N()},
                                      {"capabilityType", I(1)},
                                      {"contactId", I(rng.Pick(gen.all_contact_ids))},
                                      {"paperId", I(rng.Pick(gen.paper_ids))},
                                      {"timeExpires", I(now + 30 * kDay)},
                                      {"salt", S(rng.NextAlnumString(16))}})
                        .status());
  }
  RETURN_IF_ERROR(db->InsertValues("Settings", {{"name", S("sub_open")},
                                                {"value", I(1)},
                                                {"data", N()}})
                      .status());
  RETURN_IF_ERROR(db->InsertValues("Settings", {{"name", S("rev_open")},
                                                {"value", I(1)},
                                                {"data", N()}})
                      .status());
  for (size_t i = 0; i < 3; ++i) {
    RETURN_IF_ERROR(db->InsertValues("Formula",
                                     {{"formulaId", N()},
                                      {"name", S("score-" + std::to_string(i))},
                                      {"expression", S("avg(OveMer)")},
                                      {"createdBy", I(rng.Pick(gen.pc_contact_ids))}})
                        .status());
  }
  for (size_t i = 0; i < config.num_users / 20; ++i) {
    RETURN_IF_ERROR(db->InsertValues("Invitation",
                                     {{"invitationId", N()},
                                      {"email", S(Email(&rng, rng.NextPseudoword(4, 7)))},
                                      {"contactId", N()},
                                      {"invitedBy", I(rng.Pick(gen.pc_contact_ids))},
                                      {"created", I(now - rng.NextInt(0, 60 * kDay))}})
                        .status());
  }
  // Submission-form options for a third of the papers.
  for (size_t i = 0; i < gen.paper_ids.size(); i += 3) {
    auto st = db->InsertValues("PaperOption", {{"paperId", I(gen.paper_ids[i])},
                                               {"optionId", I(1)},
                                               {"value", S(Sentence(&rng, 3))}});
    if (!st.ok() && st.status().code() != StatusCode::kAlreadyExists) {
      return st.status();
    }
  }
  // Tombstones of accounts deleted before this dataset's epoch.
  for (size_t i = 0; i < std::max<size_t>(1, config.num_users / 40); ++i) {
    RETURN_IF_ERROR(db->InsertValues("DeletedContactInfo",
                                     {{"contactId", I(1'000'000 + static_cast<int64_t>(i))},
                                      {"name", S(rng.NextPseudoword(4, 8))},
                                      {"email", S(Email(&rng, rng.NextPseudoword(4, 7)))},
                                      {"deletedAt", I(now - rng.NextInt(0, 300 * kDay))}})
                        .status());
  }
  // A couple of tag annotations so the table is exercised.
  for (size_t i = 0; i < 4; ++i) {
    auto st = db->InsertValues("PaperTagAnno", {{"tag", S("session" + std::to_string(i))},
                                                {"annoId", I(static_cast<int64_t>(i))},
                                                {"annoText", S(Sentence(&rng, 3))}});
    if (!st.ok() && st.status().code() != StatusCode::kAlreadyExists) {
      return st.status();
    }
  }

  return gen;
}

}  // namespace edna::hotcrp
