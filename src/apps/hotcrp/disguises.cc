#include "src/apps/hotcrp/disguises.h"

#include "src/disguise/spec_parser.h"

namespace edna::hotcrp {

const std::string& GdprSpecText() {
  static const std::string kText = R"SPEC(
# HotCRP-GDPR: HotCRP's current account-deletion policy. "When a user
# deletes their account in HotCRP today, the HotCRP code transitively
# deletes all of the user's data, including their reviews." (paper, section 3)
disguise_name: "HotCRP-GDPR"
user_to_disguise: $UID
reversible: true

table PaperReview:
  transformations:
    # Deleting a review cascades to its ratings via the schema FK.
    Remove(pred: "contactId" = $UID)

table ReviewRating:
  transformations:
    # Ratings the user placed on other people's reviews.
    Remove(pred: "contactId" = $UID)

table PaperComment:
  transformations:
    Remove(pred: "contactId" = $UID)

table PaperConflict:
  transformations:
    Remove(pred: "contactId" = $UID)

table PaperReviewPreference:
  transformations:
    Remove(pred: "contactId" = $UID)

table TopicInterest:
  transformations:
    Remove(pred: "contactId" = $UID)

table PaperWatch:
  transformations:
    Remove(pred: "contactId" = $UID)

table Capability:
  transformations:
    Remove(pred: "contactId" = $UID)

table PaperReviewRefused:
  transformations:
    Remove(pred: "contactId" = $UID)

table ReviewRequest:
  transformations:
    Remove(pred: "requestedBy" = $UID)

table ActionLog:
  transformations:
    # The log keeps its rows but loses the user linkage (audit content stays).
    Modify(pred: "contactId" = $UID, column: "contactId", value: Const(NULL))
    Modify(pred: "destContactId" = $UID, column: "destContactId", value: Const(NULL))

table ContactInfo:
  transformations:
    # Paper.leadContactId / shepherd / manager, Formula.createdBy, and
    # Invitation references are nulled automatically by their SET NULL
    # foreign keys when the account row is removed.
    Remove(pred: "contactId" = $UID)

# End-state assertions (section 7): the user must be fully gone.
assert_empty ContactInfo: "contactId" = $UID
assert_empty PaperReview: "contactId" = $UID
assert_empty PaperComment: "contactId" = $UID
assert_empty PaperConflict: "contactId" = $UID
)SPEC";
  return kText;
}

const std::string& GdprPlusSpecText() {
  static const std::string kText = R"SPEC(
# HotCRP-GDPR+: user scrubbing (paper, section 3). Deletes the account and
# data only relevant to the user, but RETAINS reviews, comments, and review
# ratings, decorrelated onto fresh placeholder users -- one placeholder per
# retained row, so the contributions cannot be re-associated with each other
# or with the departed user (Figure 2).
disguise_name: "HotCRP-GDPR+"
user_to_disguise: $UID
reversible: true

table ContactInfo:
  generate_placeholder:
    # Placeholder users have suitable defaults: disabled, no permissions,
    # cannot log in (section 3).
    "name" <- Random
    "email" <- Const(NULL)
    "affiliation" <- Const('[scrubbed]')
    "passwordHash" <- Const('')
    "country" <- Const(NULL)
    "roles" <- Const(0)
    "disabled" <- Const(TRUE)
    "lastLogin" <- Const(NULL)
    "creationTime" <- Const(0)
    "collaborators" <- Const(NULL)
    "defaultWatch" <- Const('none')
  transformations:
    # (1) Delete Bea's user account.
    Remove(pred: "contactId" = $UID)

# (2) Delete information only relevant to the user.
table PaperReviewPreference:
  transformations:
    Remove(pred: "contactId" = $UID)

table TopicInterest:
  transformations:
    Remove(pred: "contactId" = $UID)

table PaperWatch:
  transformations:
    Remove(pred: "contactId" = $UID)

table Capability:
  transformations:
    Remove(pred: "contactId" = $UID)

table PaperReviewRefused:
  transformations:
    Remove(pred: "contactId" = $UID)

table ReviewRequest:
  transformations:
    Remove(pred: "requestedBy" = $UID)

# (3) Delete the user's contact-author relationships to submissions. The
# submissions themselves stay (a stricter policy might remove orphaned ones).
table PaperConflict:
  transformations:
    Remove(pred: "contactId" = $UID)

# (4)+(5) Retained contributions move to placeholder users.
table PaperReview:
  transformations:
    Decorrelate(pred: "contactId" = $UID, foreign_key: ("contactId", ContactInfo))

table PaperComment:
  transformations:
    Decorrelate(pred: "contactId" = $UID, foreign_key: ("contactId", ContactInfo))

table ReviewRating:
  transformations:
    Decorrelate(pred: "contactId" = $UID, foreign_key: ("contactId", ContactInfo))

# End-state assertions: the account is gone and nothing visible links to it.
assert_empty ContactInfo: "contactId" = $UID
assert_empty PaperReview: "contactId" = $UID
assert_empty PaperComment: "contactId" = $UID
assert_empty ReviewRating: "contactId" = $UID
assert_empty PaperConflict: "contactId" = $UID
assert_empty PaperReviewPreference: "contactId" = $UID
)SPEC";
  return kText;
}

const std::string& ConfAnonSpecText() {
  static const std::string kText = R"SPEC(
# HotCRP-ConfAnon: anonymize all conference data (section 4.2), e.g. some
# years after the conference. Every review, comment, and authorship
# relationship is decorrelated onto per-row placeholders; identifying
# columns are hashed or redacted; logs are dropped. Applies to every user
# at once -- NOT a per-user disguise.
disguise_name: "HotCRP-ConfAnon"
reversible: true

table ContactInfo:
  generate_placeholder:
    "name" <- Random
    "email" <- Const(NULL)
    "affiliation" <- Const('[scrubbed]')
    "passwordHash" <- Const('')
    "country" <- Const(NULL)
    "roles" <- Const(0)
    "disabled" <- Const(TRUE)
    "lastLogin" <- Const(NULL)
    "creationTime" <- Const(0)
    "collaborators" <- Const(NULL)
    "defaultWatch" <- Const('none')
  transformations:
    # Pseudonymize every real account (placeholders are disabled, so the
    # predicate skips rows this very disguise creates).
    Modify(pred: "disabled" = FALSE, column: "name", value: Hash)
    Modify(pred: "disabled" = FALSE, column: "email", value: Hash)
    Modify(pred: "disabled" = FALSE, column: "affiliation", value: Redact)
    Modify(pred: "disabled" = FALSE, column: "collaborators", value: Const(NULL))

table PaperReview:
  transformations:
    Decorrelate(pred: TRUE, foreign_key: ("contactId", ContactInfo))

table PaperComment:
  transformations:
    Decorrelate(pred: TRUE, foreign_key: ("contactId", ContactInfo))

table PaperConflict:
  transformations:
    # Authorship relationships also move to placeholders.
    Decorrelate(pred: "conflictType" >= 0, foreign_key: ("contactId", ContactInfo))

table Paper:
  transformations:
    Modify(pred: TRUE, column: "authorInformation", value: Redact)

table ReviewRequest:
  transformations:
    Modify(pred: TRUE, column: "email", value: Hash)

table ActionLog:
  transformations:
    Remove(pred: TRUE)

table MailLog:
  transformations:
    Remove(pred: TRUE)

assert_empty ActionLog: TRUE
assert_empty MailLog: TRUE
)SPEC";
  return kText;
}

StatusOr<disguise::DisguiseSpec> GdprSpec() {
  return disguise::ParseDisguiseSpec(GdprSpecText());
}

StatusOr<disguise::DisguiseSpec> GdprPlusSpec() {
  return disguise::ParseDisguiseSpec(GdprPlusSpecText());
}

StatusOr<disguise::DisguiseSpec> ConfAnonSpec() {
  return disguise::ParseDisguiseSpec(ConfAnonSpecText());
}

}  // namespace edna::hotcrp
