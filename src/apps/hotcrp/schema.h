// HotCRP application schema: a faithful subset of the conference review
// system evaluated in the paper, sized at the 25 object types Figure 4
// reports. Tables, keys, and delete actions mirror HotCRP's real schema
// shape (ContactInfo / Paper / PaperReview / PaperConflict / ... ), trimmed
// to the columns the disguises and workloads exercise.
#ifndef SRC_APPS_HOTCRP_SCHEMA_H_
#define SRC_APPS_HOTCRP_SCHEMA_H_

#include "src/db/schema.h"

namespace edna::hotcrp {

// Role bits in ContactInfo.roles.
inline constexpr int64_t kRolePc = 1;
inline constexpr int64_t kRoleChair = 2;
inline constexpr int64_t kRoleAuthor = 4;

// Conflict types in PaperConflict.conflictType.
inline constexpr int64_t kConflictAuthor = 32;  // contact author relationship
inline constexpr int64_t kConflictCollaborator = 2;

// Builds the full 25-table catalog.
db::Schema BuildSchema();

// Names of all 25 object types (stable order, for reporting).
const std::vector<std::string>& ObjectTypes();

}  // namespace edna::hotcrp

#endif  // SRC_APPS_HOTCRP_SCHEMA_H_
