#include "src/apps/lobsters/disguises.h"

#include "src/disguise/spec_parser.h"

namespace edna::lobsters {

const std::string& GdprSpecText() {
  static const std::string kText = R"SPEC(
# Lobsters-GDPR: account deletion as lobste.rs implements it. Stories and
# comments remain public but are reattributed to disabled placeholder
# accounts ("[deleted]"); everything private to the user is removed.
disguise_name: "Lobsters-GDPR"
user_to_disguise: $UID
reversible: true

table users:
  generate_placeholder:
    "username" <- Random
    "email" <- Const(NULL)
    "password_digest" <- Const('')
    "about" <- Const('[deleted]')
    "karma" <- Const(0)
    "invited_by_user_id" <- Const(NULL)
    "is_admin" <- Const(FALSE)
    "is_moderator" <- Const(FALSE)
    "deleted" <- Const(TRUE)
    "session_token" <- Const('')
    "rss_token" <- Const('')
    "created_at" <- Const(0)
    "last_login" <- Const(NULL)
  transformations:
    # invited_by_user_id back-references and moderation links are nulled
    # automatically by their SET NULL foreign keys.
    Remove(pred: "user_id" = $UID)

# Public contributions survive, decorrelated per row.
table stories:
  transformations:
    Decorrelate(pred: "user_id" = $UID, foreign_key: ("user_id", users))

table comments:
  transformations:
    Decorrelate(pred: "user_id" = $UID, foreign_key: ("user_id", users))

table suggested_titles:
  transformations:
    Decorrelate(pred: "user_id" = $UID, foreign_key: ("user_id", users))

table suggested_taggings:
  transformations:
    Decorrelate(pred: "user_id" = $UID, foreign_key: ("user_id", users))

# Private data is deleted outright.
table votes:
  transformations:
    Remove(pred: "user_id" = $UID)

table messages:
  transformations:
    Remove(pred: "author_user_id" = $UID)
    Remove(pred: "recipient_user_id" = $UID)

table tag_filters:
  transformations:
    Remove(pred: "user_id" = $UID)

table read_ribbons:
  transformations:
    Remove(pred: "user_id" = $UID)

table saved_stories:
  transformations:
    Remove(pred: "user_id" = $UID)

table hidden_stories:
  transformations:
    Remove(pred: "user_id" = $UID)

table hats:
  transformations:
    Remove(pred: "user_id" = $UID)

table hat_requests:
  transformations:
    Remove(pred: "user_id" = $UID)

table invitations:
  transformations:
    Remove(pred: "user_id" = $UID)

assert_empty users: "user_id" = $UID
assert_empty stories: "user_id" = $UID
assert_empty comments: "user_id" = $UID
assert_empty votes: "user_id" = $UID
assert_empty messages: "author_user_id" = $UID OR "recipient_user_id" = $UID
)SPEC";
  return kText;
}

StatusOr<disguise::DisguiseSpec> GdprSpec() {
  return disguise::ParseDisguiseSpec(GdprSpecText());
}

}  // namespace edna::lobsters
