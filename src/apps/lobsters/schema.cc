#include "src/apps/lobsters/schema.h"

#include <cassert>

namespace edna::lobsters {

namespace {

using db::ColumnDef;
using db::ColumnType;
using db::FkAction;
using db::ForeignKeyDef;
using db::Sensitivity;
using db::TableSchema;

// Sensitivity annotations for the PII taint analysis (src/analysis/taint.h).
ColumnDef Pii(ColumnDef col) {
  col.sensitivity = Sensitivity::kPii;
  return col;
}
ColumnDef Quasi(ColumnDef col) {
  col.sensitivity = Sensitivity::kQuasi;
  return col;
}

ColumnDef IntCol(const char* name, bool nullable = false) {
  return {.name = name, .type = ColumnType::kInt, .nullable = nullable};
}
ColumnDef AutoPk(const char* name) {
  return {.name = name, .type = ColumnType::kInt, .nullable = false, .auto_increment = true};
}
ColumnDef StrCol(const char* name, bool nullable = true) {
  return {.name = name, .type = ColumnType::kString, .nullable = nullable};
}
ColumnDef BoolCol(const char* name, bool dflt = false) {
  return {.name = name,
          .type = ColumnType::kBool,
          .nullable = false,
          .default_value = sql::Value::Bool(dflt)};
}
ForeignKeyDef Fk(const char* col, const char* parent, const char* pcol,
                 FkAction action = FkAction::kRestrict) {
  return {.column = col, .parent_table = parent, .parent_column = pcol, .on_delete = action};
}

TableSchema Users() {
  TableSchema t("users");
  t.AddColumn(AutoPk("user_id"))
      .AddColumn(Pii(StrCol("username", false)))
      .AddColumn(Pii(StrCol("email")))
      .AddColumn(Pii(StrCol("password_digest")))
      .AddColumn(Quasi(StrCol("about")))
      .AddColumn(IntCol("karma"))
      .AddColumn(IntCol("invited_by_user_id", true))
      .AddColumn(BoolCol("is_admin"))
      .AddColumn(BoolCol("is_moderator"))
      .AddColumn(BoolCol("deleted"))
      .AddColumn(Pii(StrCol("session_token")))
      .AddColumn(Pii(StrCol("rss_token")))
      .AddColumn(IntCol("created_at"))
      .AddColumn(IntCol("last_login", true))
      .SetPrimaryKey({"user_id"})
      .AddForeignKey(Fk("invited_by_user_id", "users", "user_id", FkAction::kSetNull));
  return t;
}

TableSchema Domains() {
  TableSchema t("domains");
  t.AddColumn(AutoPk("domain_id"))
      .AddColumn(StrCol("domain", false))
      .AddColumn(BoolCol("banned"))
      .SetPrimaryKey({"domain_id"});
  return t;
}

TableSchema Stories() {
  TableSchema t("stories");
  t.AddColumn(AutoPk("story_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("domain_id", true))
      .AddColumn(StrCol("title", false))
      .AddColumn(StrCol("url"))
      .AddColumn(Quasi(StrCol("description")))
      .AddColumn(IntCol("upvotes"))
      .AddColumn(IntCol("downvotes"))
      .AddColumn(IntCol("created_at"))
      .SetPrimaryKey({"story_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("domain_id", "domains", "domain_id", FkAction::kSetNull));
  return t;
}

TableSchema Comments() {
  TableSchema t("comments");
  t.AddColumn(AutoPk("comment_id"))
      .AddColumn(IntCol("story_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("parent_comment_id", true))
      .AddColumn(Quasi(StrCol("comment")))
      .AddColumn(IntCol("upvotes"))
      .AddColumn(IntCol("downvotes"))
      .AddColumn(IntCol("created_at"))
      .SetPrimaryKey({"comment_id"})
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade))
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("parent_comment_id", "comments", "comment_id", FkAction::kSetNull));
  return t;
}

TableSchema Votes() {
  TableSchema t("votes");
  t.AddColumn(AutoPk("vote_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("story_id", true))
      .AddColumn(IntCol("comment_id", true))
      .AddColumn(IntCol("vote"))
      .SetPrimaryKey({"vote_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade))
      .AddForeignKey(Fk("comment_id", "comments", "comment_id", FkAction::kCascade));
  return t;
}

TableSchema Tags() {
  TableSchema t("tags");
  t.AddColumn(AutoPk("tag_id"))
      .AddColumn(StrCol("tag", false))
      .AddColumn(StrCol("description"))
      .AddColumn(BoolCol("privileged"))
      .SetPrimaryKey({"tag_id"});
  return t;
}

TableSchema Taggings() {
  TableSchema t("taggings");
  t.AddColumn(AutoPk("tagging_id"))
      .AddColumn(IntCol("story_id"))
      .AddColumn(IntCol("tag_id"))
      .SetPrimaryKey({"tagging_id"})
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade))
      .AddForeignKey(Fk("tag_id", "tags", "tag_id"));
  return t;
}

TableSchema TagFilters() {
  TableSchema t("tag_filters");
  t.AddColumn(AutoPk("tag_filter_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("tag_id"))
      .SetPrimaryKey({"tag_filter_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("tag_id", "tags", "tag_id"));
  return t;
}

TableSchema Messages() {
  TableSchema t("messages");
  t.AddColumn(AutoPk("message_id"))
      .AddColumn(IntCol("author_user_id"))
      .AddColumn(IntCol("recipient_user_id"))
      .AddColumn(Pii(StrCol("subject")))
      .AddColumn(Pii(StrCol("body")))
      .AddColumn(BoolCol("deleted_by_author"))
      .AddColumn(BoolCol("deleted_by_recipient"))
      .AddColumn(IntCol("created_at"))
      .SetPrimaryKey({"message_id"})
      .AddForeignKey(Fk("author_user_id", "users", "user_id"))
      .AddForeignKey(Fk("recipient_user_id", "users", "user_id"));
  return t;
}

TableSchema Hats() {
  TableSchema t("hats");
  t.AddColumn(AutoPk("hat_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("granted_by_user_id", true))
      .AddColumn(StrCol("hat", false))
      .AddColumn(StrCol("link"))
      .SetPrimaryKey({"hat_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("granted_by_user_id", "users", "user_id", FkAction::kSetNull));
  return t;
}

TableSchema HatRequests() {
  TableSchema t("hat_requests");
  t.AddColumn(AutoPk("hat_request_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(StrCol("hat", false))
      .AddColumn(Quasi(StrCol("comment")))
      .SetPrimaryKey({"hat_request_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"));
  return t;
}

TableSchema Invitations() {
  TableSchema t("invitations");
  t.AddColumn(AutoPk("invitation_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(Pii(StrCol("email")))
      .AddColumn(Pii(StrCol("code")))
      .AddColumn(IntCol("used_at", true))
      .AddColumn(IntCol("new_user_id", true))
      .SetPrimaryKey({"invitation_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("new_user_id", "users", "user_id", FkAction::kSetNull));
  return t;
}

TableSchema InvitationRequests() {
  TableSchema t("invitation_requests");
  t.AddColumn(AutoPk("invitation_request_id"))
      .AddColumn(Pii(StrCol("name")))
      .AddColumn(Pii(StrCol("email")))
      .AddColumn(Quasi(StrCol("memo")))
      .SetPrimaryKey({"invitation_request_id"});
  return t;
}

TableSchema Moderations() {
  TableSchema t("moderations");
  t.AddColumn(AutoPk("moderation_id"))
      .AddColumn(IntCol("moderator_user_id", true))
      .AddColumn(IntCol("story_id", true))
      .AddColumn(IntCol("comment_id", true))
      .AddColumn(IntCol("user_id", true))
      .AddColumn(StrCol("action"))
      .AddColumn(Quasi(StrCol("reason")))
      .AddColumn(IntCol("created_at"))
      .SetPrimaryKey({"moderation_id"})
      .AddForeignKey(Fk("moderator_user_id", "users", "user_id", FkAction::kSetNull))
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kSetNull))
      .AddForeignKey(Fk("comment_id", "comments", "comment_id", FkAction::kSetNull))
      .AddForeignKey(Fk("user_id", "users", "user_id", FkAction::kSetNull));
  return t;
}

TableSchema ReadRibbons() {
  TableSchema t("read_ribbons");
  t.AddColumn(AutoPk("read_ribbon_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("story_id"))
      .AddColumn(IntCol("updated_at"))
      .SetPrimaryKey({"read_ribbon_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade));
  return t;
}

TableSchema SavedStories() {
  TableSchema t("saved_stories");
  t.AddColumn(AutoPk("saved_story_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("story_id"))
      .SetPrimaryKey({"saved_story_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade));
  return t;
}

TableSchema HiddenStories() {
  TableSchema t("hidden_stories");
  t.AddColumn(AutoPk("hidden_story_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("story_id"))
      .SetPrimaryKey({"hidden_story_id"})
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade));
  return t;
}

TableSchema SuggestedTitles() {
  TableSchema t("suggested_titles");
  t.AddColumn(AutoPk("suggested_title_id"))
      .AddColumn(IntCol("story_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(StrCol("title", false))
      .SetPrimaryKey({"suggested_title_id"})
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade))
      .AddForeignKey(Fk("user_id", "users", "user_id"));
  return t;
}

TableSchema SuggestedTaggings() {
  TableSchema t("suggested_taggings");
  t.AddColumn(AutoPk("suggested_tagging_id"))
      .AddColumn(IntCol("story_id"))
      .AddColumn(IntCol("user_id"))
      .AddColumn(IntCol("tag_id"))
      .SetPrimaryKey({"suggested_tagging_id"})
      .AddForeignKey(Fk("story_id", "stories", "story_id", FkAction::kCascade))
      .AddForeignKey(Fk("user_id", "users", "user_id"))
      .AddForeignKey(Fk("tag_id", "tags", "tag_id"));
  return t;
}

}  // namespace

db::Schema BuildSchema() {
  db::Schema schema;
  auto add = [&schema](TableSchema t) {
    Status st = schema.AddTable(std::move(t));
    assert(st.ok());
    (void)st;
  };
  add(Users());
  add(Domains());
  add(Stories());
  add(Comments());
  add(Votes());
  add(Tags());
  add(Taggings());
  add(TagFilters());
  add(Messages());
  add(Hats());
  add(HatRequests());
  add(Invitations());
  add(InvitationRequests());
  add(Moderations());
  add(ReadRibbons());
  add(SavedStories());
  add(HiddenStories());
  add(SuggestedTitles());
  add(SuggestedTaggings());
  return schema;
}

const std::vector<std::string>& ObjectTypes() {
  static const std::vector<std::string> kTypes = [] {
    std::vector<std::string> out;
    const db::Schema schema = BuildSchema();  // keep alive across the loop
    for (const db::TableSchema& t : schema.tables()) {
      out.push_back(t.name());
    }
    return out;
  }();
  return kTypes;
}

}  // namespace edna::lobsters
