// Lobsters-GDPR: the site's current account-deletion policy (Figure 4).
// Public contributions (stories, comments) stay visible but are reattributed
// to placeholder users -- the "[deleted]" pattern the paper describes for
// Reddit/Lobsters -- while private data (votes, messages, filters, saved/
// hidden stories) is removed along with the account itself.
#ifndef SRC_APPS_LOBSTERS_DISGUISES_H_
#define SRC_APPS_LOBSTERS_DISGUISES_H_

#include <string>

#include "src/common/status.h"
#include "src/disguise/spec.h"

namespace edna::lobsters {

const std::string& GdprSpecText();
StatusOr<disguise::DisguiseSpec> GdprSpec();

inline constexpr char kGdprName[] = "Lobsters-GDPR";

}  // namespace edna::lobsters

#endif  // SRC_APPS_LOBSTERS_DISGUISES_H_
