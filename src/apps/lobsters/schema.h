// Lobsters application schema: a faithful subset of the open-source news
// aggregator (lobste.rs), sized at the 19 object types Figure 4 reports.
#ifndef SRC_APPS_LOBSTERS_SCHEMA_H_
#define SRC_APPS_LOBSTERS_SCHEMA_H_

#include "src/db/schema.h"

namespace edna::lobsters {

// Builds the full 19-table catalog.
db::Schema BuildSchema();

// Names of all 19 object types (stable order, for reporting).
const std::vector<std::string>& ObjectTypes();

}  // namespace edna::lobsters

#endif  // SRC_APPS_LOBSTERS_SCHEMA_H_
